//! # sqg-da — scalable real-time data assimilation for turbulent dynamics
//!
//! A Rust reproduction of *"A Scalable Real-Time Data Assimilation Framework
//! for Predicting Turbulent Atmosphere Dynamics"* (SC 2024): the Ensemble
//! Score Filter (EnSF), a ViT surrogate with online training, the SQG
//! turbulence model, an LETKF baseline, and a Frontier performance
//! simulator — everything needed to regenerate the paper's tables and
//! figures (see `DESIGN.md` and `EXPERIMENTS.md`).
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! | module | contents |
//! |---|---|
//! | [`sqg`] | surface quasi-geostrophic spectral model |
//! | [`ensf`] | the Ensemble Score Filter (the paper's contribution) |
//! | [`letkf`] | the LETKF baseline |
//! | [`vit`] | the ViT surrogate with manual backprop |
//! | [`da_core`] | the DA workflow, OSSE harness and experiments |
//! | [`dist`] | the rank-parallel sharded DA cycling runtime |
//! | [`hpc`] | the Frontier performance simulator + simulated MPI |
//! | [`fft`], [`linalg`], [`stats`] | numerical substrates |
//!
//! ## Quickstart
//!
//! ```no_run
//! use sqg_da::da_core::experiments::{pretrain_surrogate, run_comparison, ComparisonConfig};
//!
//! let config = ComparisonConfig::small(10);
//! let surrogate = pretrain_surrogate(&config);
//! let comparison = run_comparison(&config, surrogate);
//! for series in &comparison.series {
//!     println!("{:>10}: steady RMSE {:.4}", series.label, series.steady_rmse());
//! }
//! ```

pub use da_core;
pub use dist;
pub use ensf;
pub use fft;
pub use hpc;
pub use letkf;
pub use linalg;
pub use sqg;
pub use stats;
pub use vit;
