//! Kinetic-energy spectrum of developed SQG turbulence.
//!
//! Run with:
//! ```sh
//! cargo run --release --example turbulence_spectrum
//! ```
//!
//! Integrates the SQG model to a statistically developed state and prints
//! the isotropic KE spectrum with the fitted inertial-range slope. The
//! paper's premise (§II-B) is that SQG turbulence follows the observed
//! `k^(-5/3)` Nastrom–Gage spectrum — the regime in which initial-condition
//! errors grow fast enough to make DA indispensable.

use sqg_da::sqg::{diag, SqgModel, SqgParams};
use sqg_da::stats::spectrum::fit_loglog_slope;

fn main() {
    // Ekman friction supplies the large-scale energy sink; without it the
    // baroclinically forced turbulence has no statistical equilibrium.
    let params = SqgParams { n: 64, ekman: 0.05, ..Default::default() };
    let mut model = SqgModel::new(params.clone());

    println!("spinning up 64x64x2 SQG turbulence (3000 steps = ~31 days)...");
    let state = model.spinup_nature(42, 0.05, 3000);
    let cfl = diag::cfl(&params, &state);
    println!("CFL number after spin-up: {cfl:.3}\n");

    let shells = diag::ke_spectrum(&params, &state, 0);
    println!("{:>5} {:>14} ", "k", "E(k)");
    for (k, e) in shells.iter().enumerate().skip(1) {
        if *e > 0.0 {
            let bar = "#".repeat(((e.log10() + 14.0).max(0.0) * 3.0) as usize);
            println!("{k:>5} {e:>14.6e} {bar}");
        }
    }

    // Fit the inertial range (between the energy-containing scales and the
    // hyperdiffusion cutoff).
    if let Some(slope) = fit_loglog_slope(&shells, 6, 20) {
        println!("\ninertial-range slope (k = 6..20): {slope:.2} (target ~ -5/3 = -1.67)");
        assert!(
            (-3.2..=-0.8).contains(&slope),
            "developed SQG turbulence should show a steep forward cascade, got {slope}"
        );
    } else {
        println!("\nspectrum too sparse to fit a slope");
    }
}
