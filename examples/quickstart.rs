//! Quickstart: one EnSF assimilation cycle on the SQG model.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Spins up a small SQG turbulence state, perturbs an ensemble away from
//! the truth, and cycles forecast + EnSF analysis for five 12-hour
//! assimilation windows, printing how the error contracts toward the
//! observation accuracy.
//!
//! With `SQG_DA_TELEMETRY=1` each cycle is also captured as a structured
//! record (RMSE, spread, per-phase timings, and the innovation / rank
//! histogram / spread–skill diagnostics) and written to
//! `quickstart_cycles.jsonl` — or streamed to `SQG_DA_TELEMETRY_JSONL` if
//! that is set.

use sqg_da::da_core::ForecastModel;
use sqg_da::ensf::{Ensf, EnsfConfig, IdentityObs};
use sqg_da::sqg::{SqgModel, SqgParams};
use sqg_da::stats::{gaussian, metrics, rng, Ensemble};

fn main() {
    // 1. A 32x32x2 SQG state on the turbulent attractor (the truth).
    let params = SqgParams { n: 32, ..Default::default() };
    let mut nature = SqgModel::new(params.clone());
    let mut truth = nature.spinup_nature(7, 0.05, 400).to_state_vector();
    println!("state dimension: {}", truth.len());

    // 2. A 16-member ensemble: truth + initial-condition noise (well above
    //    the observation error, so assimilation has something to correct).
    let ic_sigma = 0.05;
    let mut ensemble = Ensemble::zeros(16, truth.len());
    for m in 0..16 {
        let mut member_rng = rng::member_rng(99, m);
        let member = ensemble.member_mut(m);
        for (x, t) in member.iter_mut().zip(&truth) {
            *x = t + ic_sigma * gaussian::standard_normal(&mut member_rng);
        }
    }

    // 3. Cycle: 12 h forecast + EnSF analysis, five times.
    let mut model = sqg_da::da_core::SqgForecast::perfect(params);
    let obs_sigma = 0.005;
    let obs_op = IdentityObs::new(truth.len(), obs_sigma);
    let mut filter = Ensf::new(EnsfConfig {
        seed: 1,
        spread_relaxation: 0.9,
        ..Default::default()
    });
    let mut obs_rng = rng::seeded(123);

    println!("{:>6} {:>16} {:>16}", "cycle", "forecast RMSE", "analysis RMSE");
    let mut last_forecast = f64::NAN;
    let mut last_analysis = f64::NAN;
    for cycle in 1..=5 {
        let t_fc = telemetry::enabled().then(std::time::Instant::now);
        model.forecast(&mut truth, 12.0);
        model.forecast_ensemble(&mut ensemble, 12.0);
        let forecast_secs = t_fc.map(|t| t.elapsed().as_secs_f64());
        last_forecast = metrics::rmse(&ensemble.mean(), &truth);

        let y: Vec<f64> = truth
            .iter()
            .map(|&t| t + obs_sigma * gaussian::standard_normal(&mut obs_rng))
            .collect();
        let pre_diag = telemetry::enabled()
            .then(|| sqg_da::da_core::diagnostics::forecast_stats(&ensemble, &y, obs_sigma));
        let t_an = telemetry::enabled().then(std::time::Instant::now);
        ensemble = filter.analyze(&ensemble, &y, &obs_op);
        let analysis_secs = t_an.map(|t| t.elapsed().as_secs_f64());
        last_analysis = metrics::rmse(&ensemble.mean(), &truth);
        println!("{cycle:>6} {last_forecast:>16.6} {last_analysis:>16.6}");

        if telemetry::enabled() {
            telemetry::record_cycle(telemetry::CycleRecord {
                label: "quickstart".to_string(),
                cycle: cycle - 1,
                hours: cycle as f64 * 12.0,
                rmse: last_analysis,
                spread: ensemble.spread(),
                obs_count: y.len(),
                phases: vec![
                    ("forecast".to_string(), forecast_secs.unwrap_or(0.0)),
                    ("analysis".to_string(), analysis_secs.unwrap_or(0.0)),
                ],
                events: Vec::new(),
                diagnostics: pre_diag.as_ref().map(|pre| {
                    sqg_da::da_core::diagnostics::complete(pre, &ensemble, &y, last_analysis)
                }),
            });
        }
    }

    // Flush the per-cycle telemetry (if enabled) for downstream tooling.
    if telemetry::enabled() && std::env::var("SQG_DA_TELEMETRY_JSONL").is_err() {
        let path = "quickstart_cycles.jsonl";
        telemetry::write_jsonl(std::path::Path::new(path))
            .expect("failed to write cycle records");
        println!("\ntelemetry: {} cycle records written to {path}", 5);
    }

    println!(
        "
steady cycling: each analysis ({last_analysis:.5}) corrects the chaotic"
    );
    println!(
        "forecast-error growth ({last_forecast:.5}) back toward the observation accuracy ({obs_sigma})."
    );
    assert!(
        last_analysis < last_forecast,
        "the analysis should beat the forecast it corrects"
    );
    assert!(last_analysis < 10.0 * obs_sigma, "analysis should approach obs accuracy");
}
