//! Data assimilation with a sparse observing network.
//!
//! Run with:
//! ```sh
//! cargo run --release --example sparse_network
//! ```
//!
//! Operational networks never observe the whole state. This example thins
//! the OSSE network to every `stride`-th grid point and cycles both filters:
//! LETKF spreads the sparse information spatially through Gaspari–Cohn
//! localization, while EnSF's global score update receives it through the
//! likelihood. Sweeping the coverage shows how each filter's skill decays as
//! observations are withdrawn.

use sqg_da::da_core::osse::{nature_run, run_experiment, OsseConfig};
use sqg_da::da_core::{LetkfScheme, SparseEnsfScheme, SqgForecast};
use sqg_da::ensf::EnsfConfig;
use sqg_da::letkf::LetkfConfig;
use sqg_da::sqg::SqgParams;

fn main() {
    let cfg = OsseConfig {
        params: SqgParams { n: 16, ekman: 0.05, ..Default::default() },
        cycles: 15,
        obs_sigma: 0.005,
        ens_size: 12,
        ic_sigma: 0.01,
        spinup_steps: 300,
        seed: 404,
        ..Default::default()
    };
    let nature = nature_run(&cfg);
    println!("grid 16x16x2, obs sigma {}, climatology {:.3}\n", cfg.obs_sigma, nature.climatology_sd);
    println!(
        "{:>8} {:>10} {:>14} {:>14}",
        "stride", "coverage", "LETKF RMSE", "EnSF RMSE"
    );

    for stride in [1usize, 2, 4, 8] {
        let mut letkf_model = SqgForecast::perfect(cfg.params.clone());
        let mut letkf_scheme = LetkfScheme::with_stride(
            LetkfConfig { cutoff: 4.0e6, rtps_alpha: 0.3 },
            &cfg.params,
            cfg.obs_sigma,
            stride,
        );
        let letkf =
            run_experiment("letkf", &cfg, &nature, &mut letkf_model, &mut letkf_scheme)
                .expect("sparse-network OSSE is well-formed");

        let mut ensf_model = SqgForecast::perfect(cfg.params.clone());
        let mut ensf_scheme = SparseEnsfScheme::new(
            EnsfConfig { n_steps: 25, seed: 7, spread_relaxation: 0.9, ..Default::default() },
            cfg.params.state_dim(),
            stride,
            cfg.obs_sigma,
        );
        let ensf = run_experiment("ensf", &cfg, &nature, &mut ensf_model, &mut ensf_scheme)
            .expect("sparse-network OSSE is well-formed");

        println!(
            "{:>8} {:>9.0}% {:>14.5} {:>14.5}",
            stride,
            100.0 / stride as f64,
            letkf.steady_rmse(),
            ensf.steady_rmse()
        );
    }

    println!("\nreading: both filters beat the climatological error at every");
    println!("coverage; LETKF's localization makes it graceful under thinning,");
    println!("while EnSF (global update, no localization) needs denser coverage —");
    println!("the complementarity behind the paper's 'no tuning needed' trade-off.");
}
