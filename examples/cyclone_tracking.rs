//! Tracking a strong vortex through assimilation cycles.
//!
//! Run with:
//! ```sh
//! cargo run --release --example cyclone_tracking
//! ```
//!
//! The paper motivates real-time DA with high-impact phenomena such as
//! tropical cyclones: intense, localized vortices whose position and
//! amplitude are rapidly lost without assimilation. This example seeds a
//! strong warm-core vortex into the SQG flow, cycles EnSF and a free run
//! side by side, and reports how well each tracks the vortex center.

use sqg_da::da_core::{ForecastModel, SqgForecast};
use sqg_da::ensf::{Ensf, EnsfConfig, IdentityObs};
use sqg_da::sqg::{SqgModel, SqgParams, SqgState};
use sqg_da::stats::{gaussian, metrics, rng, Ensemble};

/// Adds a Gaussian warm anomaly ("cyclone") of amplitude `amp` and radius
/// `r` grid cells at `(cx, cy)` on the bottom boundary.
fn seed_vortex(state: &mut [f64], n: usize, cx: f64, cy: f64, amp: f64, r: f64) {
    for iy in 0..n {
        for ix in 0..n {
            // periodic distance to the center
            let dx = (ix as f64 - cx).rem_euclid(n as f64);
            let dx = dx.min(n as f64 - dx);
            let dy = (iy as f64 - cy).rem_euclid(n as f64);
            let dy = dy.min(n as f64 - dy);
            let d2 = dx * dx + dy * dy;
            state[iy * n + ix] += amp * (-d2 / (2.0 * r * r)).exp();
        }
    }
}

/// Location of the bottom-boundary buoyancy maximum (the vortex proxy).
fn vortex_center(state: &[f64], n: usize) -> (usize, usize) {
    let (mut best, mut bx, mut by) = (f64::NEG_INFINITY, 0, 0);
    for iy in 0..n {
        for ix in 0..n {
            let v = state[iy * n + ix];
            if v > best {
                best = v;
                bx = ix;
                by = iy;
            }
        }
    }
    (bx, by)
}

/// Periodic grid distance between two centers.
fn center_distance(a: (usize, usize), b: (usize, usize), n: usize) -> f64 {
    let d = |p: usize, q: usize| {
        let d = (p as isize - q as isize).unsigned_abs();
        d.min(n - d) as f64
    };
    (d(a.0, b.0).powi(2) + d(a.1, b.1).powi(2)).sqrt()
}

fn main() {
    let n = 32;
    let params = SqgParams { n, ..Default::default() };
    let dim = params.state_dim();

    // Nature: turbulent background + a strong vortex.
    let mut nature_model = SqgModel::new(params.clone());
    let mut truth = nature_model.spinup_nature(21, 0.04, 400).to_state_vector();
    seed_vortex(&mut truth, n, 10.0, 12.0, 0.15, 2.5);
    // Re-project through spectral space to keep the state consistent.
    truth = SqgState::from_state_vector(n, &truth).to_state_vector();

    // Ensembles for the DA run and the free run (same ICs).
    let members = 16;
    let ic_sigma = 0.02;
    let mut ensemble = Ensemble::zeros(members, dim);
    for m in 0..members {
        let mut mr = rng::member_rng(5150, m);
        let member = ensemble.member_mut(m);
        for (x, t) in member.iter_mut().zip(&truth) {
            *x = t + ic_sigma * gaussian::standard_normal(&mut mr);
        }
    }
    let mut free_ensemble = ensemble.clone();

    let mut da_model = SqgForecast::perfect(params.clone());
    let mut free_model = SqgForecast::perfect(params.clone());
    let obs_sigma = 0.005;
    let obs_op = IdentityObs::new(dim, obs_sigma);
    let mut filter = Ensf::new(EnsfConfig { seed: 3, ..Default::default() });
    let mut obs_rng = rng::seeded(777);

    println!("cycle | truth center | EnSF dist | free dist | EnSF rmse | free rmse");
    let cycles = 10;
    let mut final_da_dist = 0.0;
    let mut final_free_dist = 0.0;
    for cycle in 1..=cycles {
        // Truth evolves; vortex advects with the flow.
        let steps = nature_model.steps_per_hours(12.0);
        nature_model.forecast(&mut truth, steps);
        let tc = vortex_center(&truth, n);

        da_model.forecast_ensemble(&mut ensemble, 12.0);
        free_model.forecast_ensemble(&mut free_ensemble, 12.0);

        let y: Vec<f64> = truth
            .iter()
            .map(|&t| t + obs_sigma * gaussian::standard_normal(&mut obs_rng))
            .collect();
        ensemble = filter.analyze(&ensemble, &y, &obs_op);

        let da_mean = ensemble.mean();
        let free_mean = free_ensemble.mean();
        let da_dist = center_distance(vortex_center(&da_mean, n), tc, n);
        let free_dist = center_distance(vortex_center(&free_mean, n), tc, n);
        final_da_dist = da_dist;
        final_free_dist = free_dist;
        println!(
            "{cycle:>5} | ({:>2},{:>2})      | {da_dist:>9.2} | {free_dist:>9.2} | {:>9.5} | {:>9.5}",
            tc.0,
            tc.1,
            metrics::rmse(&da_mean, &truth),
            metrics::rmse(&free_mean, &truth),
        );
    }

    println!(
        "\nfinal vortex position error: EnSF {final_da_dist:.2} cells vs free run {final_free_dist:.2} cells"
    );
    assert!(
        final_da_dist <= final_free_dist,
        "EnSF should track the vortex at least as well as the free run"
    );
}
