//! Frontier-scale what-if studies with the performance simulator.
//!
//! Run with:
//! ```sh
//! cargo run --release --example frontier_scaling
//! ```
//!
//! Uses the `hpc` crate's calibrated models to answer the capacity-planning
//! questions the paper's §IV-B addresses: which distribution strategy fits
//! and performs best for each ViT size, and how the EnSF scales to
//! operational state dimensions.

use sqg_da::hpc::{
    ensf_step_time, scaling_curve, simulate_step, EnsfJob, Strategy, Topology, TrainJob,
};

const MB: u64 = 1024 * 1024;
const GB: f64 = 1024.0 * 1024.0 * 1024.0;

fn main() {
    // --- Memory: which strategies fit each Table II model on 64 GB HBM? ---
    println!("== per-GCD memory at 1024 GCDs (64 GB HBM each) ==");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "model", "DDP", "ZeRO-1", "ZeRO-2", "full-shard"
    );
    for size in [64usize, 128, 256] {
        let job = TrainJob::table2(size);
        let row: Vec<String> = [
            Strategy::Ddp,
            Strategy::ZeroStage1,
            Strategy::ZeroStage2,
            Strategy::FsdpFullShard,
        ]
        .iter()
        .map(|s| {
            let gb = s.memory_per_gcd(job.params, 1024, 8) / GB;
            if gb > 64.0 {
                format!("{gb:>7.1}G !!")
            } else {
                format!("{gb:>7.1}G   ")
            }
        })
        .collect();
        println!("{:<18} {}", format!("{size}^2 ({}M)", job.params / 1_000_000), row.join(" "));
    }

    // --- Strong scaling: pick the best strategy per size. ---
    println!("\n== strong scaling to 1024 GCDs (efficiency vs 8-GCD baseline) ==");
    let gcds = [8usize, 64, 256, 1024];
    for (size, strategy, bucket) in [
        (64usize, Strategy::Ddp, 120 * MB),
        (128, Strategy::Ddp, 120 * MB),
        (256, Strategy::ZeroStage1, 500 * MB),
    ] {
        let job = TrainJob::table2(size);
        let curve = scaling_curve(Topology::frontier, &job, strategy, &gcds, bucket);
        print!("{size:>4}^2 [{strategy:?}]:");
        for (g, _tp, eff) in &curve {
            print!("  {g:>4} GCDs {:>5.1}%", eff * 100.0);
        }
        println!();
    }

    // --- Step breakdown at 1024 GCDs (Fig. 7 style). ---
    println!("\n== runtime breakdown at 1024 GCDs ==");
    for (size, strategy) in [
        (64usize, Strategy::Ddp),
        (128, Strategy::Ddp),
        (256, Strategy::ZeroStage1),
    ] {
        let job = TrainJob::table2(size);
        let topo = Topology::frontier(1024);
        let b = simulate_step(&topo, &job, strategy, 1024, 120 * MB);
        let (c, m, i) = b.fractions();
        println!(
            "{size:>4}^2: step {:.3}s = compute {:.1}% + comm {:.1}% + io {:.1}%",
            b.total(),
            c * 100.0,
            m * 100.0,
            i * 100.0
        );
    }

    // --- EnSF at operational dimensions (Fig. 10 style). ---
    println!("\n== EnSF weak scaling (20 members/rank, 50 SDE steps) ==");
    for dim in [1_000_000u64, 10_000_000, 100_000_000] {
        let job = EnsfJob { dim, members_per_rank: 20, sde_steps: 50 };
        print!("dim 1e{}:", (dim as f64).log10() as u32);
        for g in [8usize, 64, 512, 1024] {
            let t = ensf_step_time(&Topology::frontier(g), &job, g);
            print!("  {g:>4} ranks {t:>7.2}s");
        }
        println!();
    }
}
