//! Online surrogate adaptation: the heart of the paper's Fig. 1 workflow.
//!
//! Run with:
//! ```sh
//! cargo run --release --example online_surrogate
//! ```
//!
//! Pre-trains a small ViT surrogate of the SQG 12 h flow map offline, then
//! cycles it inside the EnSF workflow twice — once frozen, once with online
//! fine-tuning on the analyzed transitions — and compares the RMSE series.
//! Online learning is what lets an offline foundation model keep up with a
//! drifting real atmosphere.

use sqg_da::da_core::experiments::{pretrain_surrogate, ComparisonConfig};
use sqg_da::da_core::osse::{nature_run, run_experiment};
use sqg_da::da_core::EnsfScheme;
use sqg_da::ensf::EnsfConfig;

fn main() {
    let mut config = ComparisonConfig::small(12);
    config.pretrain_pairs = 60;
    config.pretrain_epochs = 30;

    println!(
        "pre-training a {}-parameter ViT surrogate offline...",
        {
            let mut s = pretrain_surrogate(&config);
            s.num_params()
        }
    );

    let nature = nature_run(&config.osse);

    let run = |label: &str, online_steps: usize| {
        let mut surrogate = pretrain_surrogate(&config);
        surrogate.online_steps = online_steps;
        let mut scheme = EnsfScheme::new(
            EnsfConfig { n_steps: config.ensf_steps, seed: 9, ..Default::default() },
            config.osse.params.state_dim(),
            config.osse.obs_sigma,
        );
        run_experiment(label, &config.osse, &nature, &mut surrogate, &mut scheme)
            .expect("online-surrogate OSSE is well-formed")
    };

    let frozen = run("ViT+EnSF (frozen)", 0);
    let online = run("ViT+EnSF (online)", 2);

    println!("\n{:>6} {:>16} {:>16}", "hour", "frozen RMSE", "online RMSE");
    for i in 0..frozen.rmse.len() {
        println!(
            "{:>6.0} {:>16.5} {:>16.5}",
            frozen.hours[i], frozen.rmse[i], online.rmse[i]
        );
    }
    println!(
        "\nsteady-state RMSE: frozen {:.5} vs online {:.5}",
        frozen.steady_rmse(),
        online.steady_rmse()
    );
}
