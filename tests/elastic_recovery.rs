//! Elastic shrink-determinism harness — the acceptance test of the
//! rank-failure recovery work in `crates/dist/src/elastic.rs`.
//!
//! The contract: after a seeded rank kill at cycle `k` in an 8-rank elastic
//! run, every cycle `>= k` (including the redone kill cycle) is **bitwise
//! identical** to a fresh 7-rank run started from the cycle-`k` checkpoint.
//! The shrink must not merely recover — it must land on exactly the
//! trajectory a never-faulted run at the survivor count would produce.
//!
//! Like `tests/dist_determinism.rs`, the headline comparison runs each side
//! in a re-executed subprocess (one per scenario) so the two trajectories
//! share no process state whatsoever — no latched SIMD level, no RNG pools,
//! no telemetry globals — and compares the fingerprints the children print.
//! An in-process companion test additionally proves the checkpoint written
//! *by the killed run itself* restores bitwise.

use sqg_da::da_core::osse::OsseConfig;
use sqg_da::da_core::resilience::{Checkpoint, CheckpointConfig, RankKill};
use sqg_da::dist::{
    run_elastic_osse, run_elastic_osse_from, DistCycleConfig, ElasticCycleConfig,
    ElasticOutcome, ElasticRunResult,
};
use sqg_da::ensf::EnsfConfig;
use sqg_da::sqg::SqgParams;

/// Cycle during whose analysis the scripted victim dies.
const KILL_CYCLE: usize = 3;

/// Reduced-grid experiment matching `tests/dist_determinism.rs`:
/// `d = 512` (8 tiles of 64), 8 members.
fn elastic_config(cycles: usize) -> ElasticCycleConfig {
    ElasticCycleConfig::clean(DistCycleConfig {
        osse: OsseConfig {
            params: SqgParams { n: 16, ..Default::default() },
            cycles,
            obs_sigma: 0.005,
            ens_size: 8,
            ic_sigma: 0.01,
            spinup_steps: 40,
            seed: 3,
            ..Default::default()
        },
        ensf: EnsfConfig { n_steps: 10, seed: 5, ..Default::default() },
        ..Default::default()
    })
}

/// FNV-1a over the bit patterns of the analysis means of every cycle
/// `>= from_cycle` plus the final ensemble — any single-bit divergence in
/// the post-kill trajectory flips it.
fn fingerprint_from(result: &ElasticRunResult, from_cycle: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: f64| {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (cycle, mean) in &result.cycle_means {
        if *cycle >= from_cycle {
            mean.iter().copied().for_each(&mut eat);
        }
    }
    result.ensemble.as_slice().iter().copied().for_each(&mut eat);
    h
}

/// Child entry point for the subprocess protocol: inert unless
/// `ELASTIC_DET_CHILD` is set.
///
/// * `ELASTIC_DET_CHILD=kill` — 10-cycle 8-rank elastic run with rank 5
///   killed during cycle 3's analysis (mid-collective, after 4 SDE steps);
///   prints the fingerprint of cycles 3.. as the shrunk 7-rank group
///   computed them.
/// * `ELASTIC_DET_CHILD=resume` — reconstructs the cycle-3 checkpoint from
///   the clean 3-cycle prefix (bitwise identical to the killed run's
///   prefix: the kill only lands at cycle 3, and clean-prefix equality is
///   pinned by the elastic unit tests), then runs a fresh **7-rank** run
///   from that checkpoint and prints the same fingerprint.
#[test]
fn elastic_child() {
    let mode = match std::env::var("ELASTIC_DET_CHILD") {
        Ok(m) => m,
        Err(_) => return,
    };
    match mode.as_str() {
        "kill" => {
            let mut config = elastic_config(10);
            config.faults.rank_kills.push(RankKill {
                cycle: KILL_CYCLE,
                rank: 5,
                after_steps: 4,
            });
            let result = run_elastic_osse(&config, 8).unwrap();
            assert_eq!(result.outcome, ElasticOutcome::Completed);
            assert_eq!(result.counters.shrinks, 1);
            println!("ELASTIC_FINGERPRINT {:016x}", fingerprint_from(&result, KILL_CYCLE));
        }
        "resume" => {
            let path = std::path::PathBuf::from(
                std::env::var("ELASTIC_DET_CKPT").expect("parent sets ELASTIC_DET_CKPT"),
            );
            let mut prefix = elastic_config(KILL_CYCLE);
            prefix.checkpoint =
                Some(CheckpointConfig { path: path.clone(), every: KILL_CYCLE });
            run_elastic_osse(&prefix, 8).unwrap();
            let ck = Checkpoint::load(&path).expect("prefix run wrote the checkpoint");
            assert_eq!(ck.cycle, KILL_CYCLE);
            std::fs::remove_file(&path).ok();
            let result = run_elastic_osse_from(&elastic_config(10), 7, &ck).unwrap();
            println!("ELASTIC_FINGERPRINT {:016x}", fingerprint_from(&result, KILL_CYCLE));
        }
        other => panic!("unknown ELASTIC_DET_CHILD mode {other:?}"),
    }
}

/// Runs `elastic_child` in a subprocess in the given mode and returns the
/// fingerprint it printed.
fn child_fingerprint(mode: &str) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let ckpt = std::env::temp_dir()
        .join(format!("sqg_da_elastic_det_{}.ckpt", std::process::id()));
    let out = std::process::Command::new(exe)
        .args(["elastic_child", "--exact", "--nocapture"])
        .env("ELASTIC_DET_CHILD", mode)
        .env("ELASTIC_DET_CKPT", &ckpt)
        .output()
        .expect("spawn test subprocess");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "child (mode {mode}) failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    stdout
        .split("ELASTIC_FINGERPRINT ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no fingerprint in child output:\n{stdout}"))
        .to_string()
}

/// The acceptance criterion, end to end: kill during cycle 3 of an 8-rank
/// run, and cycles 3.. match a fresh 7-rank run from the cycle-3
/// checkpoint, bit for bit, across process boundaries.
#[test]
fn killed_8_rank_run_matches_fresh_7_rank_run_from_checkpoint() {
    assert_eq!(child_fingerprint("kill"), child_fingerprint("resume"));
}

/// In-process companion: the checkpoint written *by the killed run itself*
/// (at the boundary entering the kill cycle) restores bitwise into a fresh
/// run at the survivor count. 4 ranks, kill at cycle 2, `every: 2` with 3
/// cycles writes exactly one checkpoint (`cycle == 2`), so the file the
/// fresh run loads is the killed run's own pre-kill snapshot.
#[test]
fn kill_cycle_checkpoint_from_killed_run_restores_bitwise() {
    let path = std::env::temp_dir()
        .join(format!("sqg_da_elastic_selfck_{}.ckpt", std::process::id()));
    let mut config = elastic_config(3);
    config.faults.rank_kills.push(RankKill { cycle: 2, rank: 3, after_steps: 4 });
    config.checkpoint = Some(CheckpointConfig { path: path.clone(), every: 2 });
    let killed = run_elastic_osse(&config, 4).unwrap();
    assert_eq!(killed.group_sizes.last(), Some(&(2, 3)));

    let ck = Checkpoint::load(&path).expect("killed run wrote its cycle-2 checkpoint");
    std::fs::remove_file(&path).ok();
    assert_eq!(ck.cycle, 2, "every: 2 over 3 cycles writes only the cycle-2 boundary");
    let fresh = run_elastic_osse_from(&elastic_config(3), 3, &ck).unwrap();

    let killed_tail: Vec<&(usize, Vec<f64>)> =
        killed.cycle_means.iter().filter(|(c, _)| *c >= 2).collect();
    let fresh_tail: Vec<&(usize, Vec<f64>)> = fresh.cycle_means.iter().collect();
    assert_eq!(killed_tail.len(), 1);
    for ((ca, a), (cb, b)) in killed_tail.iter().zip(&fresh_tail) {
        assert_eq!(ca, cb);
        let bits_a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "post-kill cycle {ca} diverged from the fresh 3-rank run");
    }
    assert_eq!(killed.ensemble.as_slice(), fresh.ensemble.as_slice());
}
