//! Cross-rank determinism harness for the distributed cycling runtime —
//! the central test deliverable of the sharded-DA work.
//!
//! The contract (see `crates/dist`): a full OSSE experiment — forecast,
//! observe, sharded EnSF analysis, repeat — is **bitwise identical for any
//! simulated rank count**. This file proves it at 1/2/4/8 ranks over a
//! 10-cycle experiment, under both score kernels, and under each
//! `LINALG_SIMD` cap.
//!
//! The SIMD cap needs special handling: `linalg::simd::level()` latches the
//! detected level in a process-wide `OnceLock` on first use, so a test
//! cannot flip the cap in-process. The `simd_cap_*` tests therefore
//! re-execute this very test binary as a subprocess per (cap, rank count)
//! with `LINALG_SIMD` set in its environment, and compare the trajectory
//! fingerprints the children print. Different caps legitimately produce
//! different bits (SIMD width reassociates reductions); the invariant is
//! that *within* one cap the rank count never changes them.

use sqg_da::dist::{run_osse, DistCycleConfig, DistRunResult};
use sqg_da::ensf::{AnalysisMethod, EnsfConfig, ScoreKernel};
use sqg_da::sqg::SqgParams;
use sqg_da::da_core::osse::{MaskKind, OsseConfig};

/// Reduced-grid 10-cycle experiment: `d = 512` (8 tiles of 64), 8 members.
fn determinism_config(kernel: ScoreKernel) -> DistCycleConfig {
    DistCycleConfig {
        osse: OsseConfig {
            params: SqgParams { n: 16, ..Default::default() },
            cycles: 10,
            obs_sigma: 0.005,
            ens_size: 8,
            ic_sigma: 0.01,
            spinup_steps: 40,
            seed: 3,
            ..Default::default()
        },
        ensf: EnsfConfig { n_steps: 10, seed: 5, kernel, ..Default::default() },
        ..Default::default()
    }
}

/// The same experiment driven by the few-step flow-matching analysis: no
/// per-step noise at all, so rank invariance reduces entirely to the
/// fixed-order tile fold.
fn flow_determinism_config() -> DistCycleConfig {
    let mut config = determinism_config(ScoreKernel::Batched);
    config.ensf.n_steps = 6;
    config.ensf.method = AnalysisMethod::FlowMatching;
    config
}

/// FNV-1a over the bit patterns of the full analysis trajectory (per-cycle
/// means plus the final ensemble) — any single-bit divergence flips it.
fn fingerprint(result: &DistRunResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: f64| {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for mean in &result.cycle_means {
        mean.iter().copied().for_each(&mut eat);
    }
    result.ensemble.as_slice().iter().copied().for_each(&mut eat);
    h
}

fn assert_rank_invariant(config: &DistCycleConfig, label: &str) {
    let one = run_osse(config, 1).unwrap();
    assert_eq!(one.cycle_means.len(), 10);
    for ranks in [2usize, 4, 8] {
        let many = run_osse(config, ranks).unwrap();
        for (cycle, (a, b)) in one.cycle_means.iter().zip(&many.cycle_means).enumerate() {
            let bits_a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                bits_a, bits_b,
                "{label}: cycle {cycle} mean diverged at {ranks} ranks"
            );
        }
        let bits_one: Vec<u64> = one.ensemble.as_slice().iter().map(|v| v.to_bits()).collect();
        let bits_many: Vec<u64> = many.ensemble.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_one, bits_many, "{label}: final ensemble diverged at {ranks} ranks");
        assert_eq!(fingerprint(&one), fingerprint(&many));
    }
}

#[test]
fn ten_cycle_osse_is_bitwise_rank_invariant_batched() {
    assert_rank_invariant(&determinism_config(ScoreKernel::Batched), "Batched");
}

#[test]
fn ten_cycle_osse_is_bitwise_rank_invariant_reference() {
    assert_rank_invariant(&determinism_config(ScoreKernel::Reference), "Reference");
}

#[test]
fn ten_cycle_flow_osse_is_bitwise_rank_invariant() {
    assert_rank_invariant(&flow_determinism_config(), "FlowMatching");
}

/// The same experiment with a 25 % contiguous sensor outage: the
/// observation vector shrinks to the live sensors and the runtime
/// restricts the mask per *global* tile, so the analysis bits must stay
/// independent of how tiles are dealt to ranks.
fn masked_config(kernel: ScoreKernel) -> DistCycleConfig {
    let mut config = determinism_config(kernel);
    config.osse.obs_mask = MaskKind::Block { start: 192, len: 128 };
    config
}

#[test]
fn masked_osse_is_bitwise_rank_invariant_batched() {
    assert_rank_invariant(&masked_config(ScoreKernel::Batched), "Masked/Batched");
}

#[test]
fn masked_osse_is_bitwise_rank_invariant_reference() {
    assert_rank_invariant(&masked_config(ScoreKernel::Reference), "Masked/Reference");
}

/// The moving satellite-track outage under the flow analysis: the observed
/// window (and observation length) changes every cycle, so every cycle
/// re-partitions the mask across tiles.
#[test]
fn masked_track_flow_osse_is_bitwise_rank_invariant() {
    let mut config = flow_determinism_config();
    config.osse.obs_mask = MaskKind::Track { width: 256, speed: 40 };
    assert_rank_invariant(&config, "Masked/Flow");
}

/// Child entry point for the SIMD-cap subprocess protocol: inert unless
/// `DIST_DET_CHILD` is set, in which case it runs the experiment at
/// `DIST_DET_RANKS` ranks (under whatever `LINALG_SIMD` the parent set
/// before this process started) and prints the trajectory fingerprint.
#[test]
fn simd_cap_child() {
    if std::env::var("DIST_DET_CHILD").is_err() {
        return;
    }
    let ranks: usize = std::env::var("DIST_DET_RANKS")
        .expect("parent sets DIST_DET_RANKS")
        .parse()
        .expect("DIST_DET_RANKS is a rank count");
    let config = match std::env::var("DIST_DET_METHOD").as_deref() {
        Ok("flow") => flow_determinism_config(),
        _ => determinism_config(ScoreKernel::Batched),
    };
    let result = run_osse(&config, ranks).unwrap();
    println!("DIST_FINGERPRINT {:016x}", fingerprint(&result));
}

/// Runs `simd_cap_child` in a subprocess with the given SIMD cap, rank
/// count and analysis method, and returns the fingerprint it printed.
fn child_fingerprint_for(cap: &str, ranks: usize, method: &str) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["simd_cap_child", "--exact", "--nocapture"])
        .env("LINALG_SIMD", cap)
        .env("DIST_DET_CHILD", "1")
        .env("DIST_DET_RANKS", ranks.to_string())
        .env("DIST_DET_METHOD", method)
        .output()
        .expect("spawn test subprocess");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "child (cap {cap}, {ranks} ranks) failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The libtest harness may glue "test simd_cap_child ..." onto the same
    // line, so match the marker anywhere rather than at line start.
    stdout
        .split("DIST_FINGERPRINT ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no fingerprint in child output:\n{stdout}"))
        .to_string()
}

fn child_fingerprint(cap: &str, ranks: usize) -> String {
    child_fingerprint_for(cap, ranks, "sde")
}

#[test]
fn rank_invariance_holds_under_scalar_simd_cap() {
    assert_eq!(child_fingerprint("scalar", 1), child_fingerprint("scalar", 4));
}

#[test]
fn rank_invariance_holds_under_avx2_simd_cap() {
    assert_eq!(child_fingerprint("avx2", 1), child_fingerprint("avx2", 8));
}

#[test]
fn flow_rank_invariance_holds_under_scalar_simd_cap() {
    assert_eq!(
        child_fingerprint_for("scalar", 1, "flow"),
        child_fingerprint_for("scalar", 4, "flow")
    );
}

#[test]
fn flow_rank_invariance_holds_under_avx2_simd_cap() {
    assert_eq!(
        child_fingerprint_for("avx2", 1, "flow"),
        child_fingerprint_for("avx2", 8, "flow")
    );
}
