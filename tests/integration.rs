//! Cross-crate integration tests: the full DA workflow assembled from its
//! substrates, exercised end-to-end at small scale.

use sqg_da::da_core::experiments::{pretrain_surrogate, run_comparison, ComparisonConfig};
use sqg_da::da_core::osse::{nature_run, nature_run_with_error, run_experiment, OsseConfig};
use sqg_da::da_core::{
    EnsfScheme, ForecastModel, LetkfScheme, ModelError, ModelErrorConfig, NoAssimilation,
    SqgForecast,
};
use sqg_da::ensf::EnsfConfig;
use sqg_da::letkf::LetkfConfig;
use sqg_da::sqg::SqgParams;

fn tiny_osse(cycles: usize, seed: u64) -> OsseConfig {
    OsseConfig {
        params: SqgParams { n: 16, ekman: 0.05, ..Default::default() },
        cycles,
        obs_sigma: 0.005,
        ens_size: 10,
        ic_sigma: 0.01,
        spinup_steps: 60,
        seed,
        ..Default::default()
    }
}

/// The paper's central qualitative claim at miniature scale: with an
/// imperfect model, both filters assimilate, and DA beats free runs.
#[test]
fn fig4_shape_miniature() {
    let config = ComparisonConfig::small(10);
    let surrogate = pretrain_surrogate(&config);
    let cmp = run_comparison(&config, surrogate);

    let sqg_free = cmp.get("SQG only").unwrap();
    let vit_free = cmp.get("ViT only").unwrap();
    let letkf = cmp.get("SQG+LETKF").unwrap();
    let ensf = cmp.get("ViT+EnSF").unwrap();

    // Free runs drift toward climatological error; DA stays below them.
    assert!(letkf.steady_rmse() < sqg_free.steady_rmse());
    assert!(ensf.steady_rmse() < vit_free.steady_rmse());

    // Every series is finite and the right length.
    for s in &cmp.series {
        assert_eq!(s.rmse.len(), 10);
        assert!(s.rmse.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert_eq!(s.final_mean.len(), 512);
    }
}

/// EnSF with the *physics* model must track truth through many cycles
/// (filter stability — no divergence).
#[test]
fn ensf_physics_long_cycling_is_stable() {
    let cfg = tiny_osse(20, 17);
    let nr = nature_run(&cfg);
    let mut model = SqgForecast::perfect(cfg.params.clone());
    let mut scheme = EnsfScheme::new(
        EnsfConfig { n_steps: 25, seed: 2, ..Default::default() },
        cfg.params.state_dim(),
        cfg.obs_sigma,
    );
    let series = run_experiment("ensf", &cfg, &nr, &mut model, &mut scheme).unwrap();
    // Error must not blow up: last-5-cycle average below the climatological
    // scale of the field.
    let tail: f64 = series.rmse[15..].iter().sum::<f64>() / 5.0;
    assert!(
        tail < nr.climatology_sd,
        "EnSF diverged: tail RMSE {tail} vs climatology {}",
        nr.climatology_sd
    );
    // And below the free-run error at the same horizon.
    let mut free_model = SqgForecast::perfect(cfg.params.clone());
    let mut free = NoAssimilation;
    let free_series =
        run_experiment("free", &cfg, &nr, &mut free_model, &mut free).unwrap();
    assert!(series.steady_rmse() < free_series.steady_rmse());
}

/// LETKF with the physics model: same stability bar as EnSF.
#[test]
fn letkf_physics_long_cycling_is_stable() {
    let cfg = tiny_osse(20, 29);
    let nr = nature_run(&cfg);
    let mut model = SqgForecast::perfect(cfg.params.clone());
    let mut scheme = LetkfScheme::new(
        LetkfConfig { cutoff: 2.0e6, rtps_alpha: 0.3 },
        &cfg.params,
        cfg.obs_sigma,
    );
    let series = run_experiment("letkf", &cfg, &nr, &mut model, &mut scheme).unwrap();
    let tail: f64 = series.rmse[15..].iter().sum::<f64>() / 5.0;
    assert!(tail < nr.climatology_sd, "LETKF diverged: {tail}");
}

/// The paper's robustness claim (Fig. 4): when reality deviates from the
/// forecast model by unexpected stochastic errors, LETKF degrades sharply
/// (its underdispersive ensemble rejects the observations as the errors
/// accumulate) while EnSF keeps tracking at the observation-error level.
#[test]
fn model_error_hurts_letkf_more_than_ensf() {
    let cfg = tiny_osse(16, 31);

    let run_pair = |nature: &sqg_da::da_core::osse::NatureRun| {
        let mut m1 = SqgForecast::perfect(cfg.params.clone());
        let mut letkf_scheme = LetkfScheme::new(
            LetkfConfig { cutoff: 2.0e6, rtps_alpha: 0.3 },
            &cfg.params,
            cfg.obs_sigma,
        );
        let letkf = run_experiment("letkf", &cfg, nature, &mut m1, &mut letkf_scheme)
            .unwrap()
            .steady_rmse();
        let mut m2 = SqgForecast::perfect(cfg.params.clone());
        let mut ensf_scheme = EnsfScheme::new(
            EnsfConfig { n_steps: 25, seed: 4, ..Default::default() },
            cfg.params.state_dim(),
            cfg.obs_sigma,
        );
        let ensf =
            run_experiment("ensf", &cfg, nature, &mut m2, &mut ensf_scheme)
                .unwrap()
                .steady_rmse();
        (letkf, ensf)
    };

    let clean = nature_run(&cfg);
    let noisy = nature_run_with_error(
        &cfg,
        Some(ModelError::new(ModelErrorConfig::default(), 5)),
    );
    let (letkf_clean, ensf_clean) = run_pair(&clean);
    let (letkf_noisy, ensf_noisy) = run_pair(&noisy);

    // Perfect model: comparable skill.
    assert!(letkf_clean < 3.0 * cfg.obs_sigma);
    assert!(ensf_clean < 3.0 * cfg.obs_sigma);
    // Imperfect model: LETKF degrades markedly, EnSF stays near obs error.
    assert!(
        letkf_noisy > 3.0 * letkf_clean,
        "LETKF should degrade under model error: {letkf_clean} -> {letkf_noisy}"
    );
    assert!(
        ensf_noisy < 2.0 * ensf_clean,
        "EnSF should stay stable under model error: {ensf_clean} -> {ensf_noisy}"
    );
    assert!(
        ensf_noisy < letkf_noisy,
        "EnSF ({ensf_noisy}) must beat LETKF ({letkf_noisy}) under model error"
    );
}

/// The whole pipeline is reproducible end to end.
#[test]
fn comparison_is_reproducible() {
    let run = || {
        let config = ComparisonConfig::small(4);
        let surrogate = pretrain_surrogate(&config);
        run_comparison(&config, surrogate)
            .series
            .iter()
            .map(|s| s.rmse.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// EnSF and LETKF interoperate with the same ensemble layout: feeding one
/// filter's analysis into the other as the next forecast basis works.
#[test]
fn filters_can_be_chained() {
    let cfg = tiny_osse(2, 41);
    let nr = nature_run(&cfg);
    let mut model = SqgForecast::perfect(cfg.params.clone());
    let mut ensemble = sqg_da::da_core::osse::initial_ensemble(&cfg, &nr.truth[0]);

    // Cycle 1 with LETKF.
    model.forecast_ensemble(&mut ensemble, 12.0);
    let mut letkf_scheme = LetkfScheme::new(
        LetkfConfig { cutoff: 2.0e6, rtps_alpha: 0.3 },
        &cfg.params,
        cfg.obs_sigma,
    );
    use sqg_da::da_core::AnalysisScheme;
    ensemble = letkf_scheme.analyze(&ensemble, &nr.observations[0]);

    // Cycle 2 with EnSF.
    model.forecast_ensemble(&mut ensemble, 12.0);
    let mut ensf_scheme = EnsfScheme::new(
        EnsfConfig { n_steps: 20, seed: 6, ..Default::default() },
        cfg.params.state_dim(),
        cfg.obs_sigma,
    );
    ensemble = ensf_scheme.analyze(&ensemble, &nr.observations[1]);

    let err = sqg_da::stats::metrics::rmse(&ensemble.mean(), &nr.truth[2]);
    assert!(err.is_finite());
    assert!(err < nr.climatology_sd, "chained filters should track truth: {err}");
}
