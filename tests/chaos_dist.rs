//! Chaos testing for the elastic distributed runtime: every hostile
//! scenario — rank kill, rank rejoin, straggler-blown deadline — must
//! terminate with a **typed outcome** (never a hang, never a panic) and
//! leave a **flight-recorder postmortem** on disk that names the failure
//! and carries the degrading cycle's own DA diagnostics.
//!
//! Mirrors `tests/chaos.rs` for the supervised single-process loop; here
//! the fault surface is the simulated MPI world itself.

use sqg_da::da_core::osse::OsseConfig;
use sqg_da::da_core::resilience::{CheckpointConfig, RankKill, RankRejoin};
use sqg_da::dist::{
    modeled_analysis_secs, run_elastic_osse, CycleMode, DeadlinePolicy, DistCycleConfig,
    ElasticCycleConfig, ElasticOutcome,
};
use sqg_da::ensf::{AnalysisMethod, EnsfConfig};
use sqg_da::hpc::{Straggler, StragglerPlan};
use sqg_da::sqg::SqgParams;

/// Serializes the tests in this file: they all flip process-global
/// telemetry state (enable flag, counters, flight ring, postmortem sink).
static TELEMETRY_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Reduced grid (`d = 512`, 8 tiles of 64), matching the elastic unit tests.
fn elastic_config(cycles: usize) -> ElasticCycleConfig {
    ElasticCycleConfig::clean(DistCycleConfig {
        osse: OsseConfig {
            params: SqgParams { n: 16, ..Default::default() },
            cycles,
            obs_sigma: 0.005,
            ens_size: 8,
            ic_sigma: 0.01,
            spinup_steps: 40,
            seed: 3,
            ..Default::default()
        },
        ensf: EnsfConfig { n_steps: 10, seed: 5, ..Default::default() },
        ..Default::default()
    })
}

/// A fresh per-test postmortem directory under the system temp dir.
fn postmortem_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("sqg_da_chaos_dist_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create postmortem dir");
    dir
}

/// Reads every postmortem file whose name contains `slug` and returns
/// their concatenated JSON text (empty if none matched).
fn postmortems_matching(dir: &std::path::Path, slug: &str) -> String {
    let mut text = String::new();
    for entry in std::fs::read_dir(dir).expect("read postmortem dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap_or_default().to_string_lossy().into_owned();
        if name.starts_with("postmortem-") && name.contains(slug) {
            text.push_str(&std::fs::read_to_string(&path).expect("read postmortem"));
        }
    }
    text
}

fn telemetry_scope(dir: &std::path::Path) {
    telemetry::reset();
    telemetry::set_enabled(true);
    telemetry::set_postmortem_dir(Some(dir));
}

fn telemetry_close() {
    telemetry::set_postmortem_dir(None);
    telemetry::set_enabled(false);
    telemetry::reset();
}

/// A rank killed mid-analysis terminates the run with a typed outcome and
/// dumps a `rank_dead_shrink` postmortem whose flight ring records the
/// shrink and whose recent-cycle log carries the degrading cycle's
/// diagnostics.
#[test]
fn rank_kill_leaves_shrink_postmortem_with_cycle_diagnostics() {
    let _gate = TELEMETRY_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let dir = postmortem_dir("kill");
    telemetry_scope(&dir);

    let mut config = elastic_config(3);
    config.faults.rank_kills.push(RankKill { cycle: 1, rank: 2, after_steps: 4 });
    let result = run_elastic_osse(&config, 3).unwrap();

    // Typed outcome, no hang: the survivors completed every cycle.
    assert_eq!(result.outcome, ElasticOutcome::Completed);
    assert_eq!(result.counters.shrinks, 1);
    assert_eq!(telemetry::counter_value("elastic.shrinks"), 1);
    assert_eq!(telemetry::counter_value("elastic.cycles"), 3);

    let text = postmortems_matching(&dir, "rank_dead_shrink");
    assert!(!text.is_empty(), "kill must dump a rank_dead_shrink postmortem");
    // The black box names the shrink in the flight ring...
    assert!(text.contains("\"collective_shrink\""), "flight ring records the shrink:\n{text}");
    assert!(text.contains("rank_dead_shrink"), "postmortem reason names the shrink");
    // ...and the degrading cycle's record is present with its diagnostics
    // (postmortems are dumped after `record_cycle`, so the cycle that
    // shrank is in `recent_cycles` with a full DA diagnostics block).
    assert!(text.contains("\"recent_cycles\""));
    assert!(text.contains("\"diagnostics\""), "degrading cycle carries diagnostics:\n{text}");
    assert!(text.contains("\"spread_skill\""), "diagnostics block is populated");

    telemetry_close();
    std::fs::remove_dir_all(&dir).ok();
}

/// A kill that forces the analysis to be redone blows the cycle budget
/// post hoc (the ladder predicted one attempt; the shrink bought a
/// second): the run still terminates with a typed outcome, counts the
/// cycle as a deadline miss, and dumps a `deadline_blown` postmortem.
#[test]
fn blown_deadline_leaves_postmortem_and_typed_outcome() {
    let _gate = TELEMETRY_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let dir = postmortem_dir("deadline");
    telemetry_scope(&dir);

    let mut config = elastic_config(3);
    config.base.comm = Some(sqg_da::dist::CommSpec::clean(2));
    let dim = config.base.osse.params.state_dim();
    let steps = config.base.ensf.n_steps;
    let full2 = modeled_analysis_secs(&config.base, dim, 8, steps, 2);
    let deg1 = modeled_analysis_secs(&config.base, dim, 8, 3, 1);
    // Budget fits exactly one clean attempt plus half of the cheapest
    // possible retry: whatever rung the post-shrink re-evaluation picks
    // (full or degraded at 1 rank), the accumulated time must blow it —
    // and the degraded rung still fits on its own, so the retry runs
    // rather than dropping to forecast-only.
    config.faults.rank_kills.push(RankKill { cycle: 1, rank: 1, after_steps: 2 });
    config.deadline =
        Some(DeadlinePolicy { budget_secs: full2 + 0.5 * deg1, degraded_steps: 3 });
    let result = run_elastic_osse(&config, 2).unwrap();

    assert_eq!(result.outcome, ElasticOutcome::Completed);
    assert_eq!(result.counters.shrinks, 1);
    assert_eq!(result.counters.deadline_blown, 1, "redone cycle 1 must blow its budget");
    assert_eq!(result.deadline_hits, result.deadline_total - 1);
    assert_eq!(telemetry::counter_value("elastic.deadline.blown"), 1);

    let text = postmortems_matching(&dir, "deadline_blown");
    assert!(!text.is_empty(), "blown budget must dump a deadline_blown postmortem");
    assert!(text.contains("deadline_blown"), "postmortem names the deadline event");
    assert!(text.contains("\"recent_cycles\""));

    telemetry_close();
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill → checkpoint-backed rejoin: both the death and the re-admission
/// land in the flight ring, every rank ends with a typed `Completed`
/// outcome, and the rejoin counter agrees with the script.
#[test]
fn rejoin_after_kill_is_recorded_and_completes() {
    let _gate = TELEMETRY_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let dir = postmortem_dir("rejoin");
    telemetry_scope(&dir);

    let path = std::env::temp_dir()
        .join(format!("sqg_da_chaos_dist_rejoin_{}.ckpt", std::process::id()));
    let mut config = elastic_config(4);
    config.faults.rank_kills.push(RankKill { cycle: 1, rank: 1, after_steps: 2 });
    config.faults.rank_rejoins.push(RankRejoin { cycle: 3, rank: 1 });
    config.checkpoint = Some(CheckpointConfig { path: path.clone(), every: 1 });
    let result = run_elastic_osse(&config, 2).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(result.outcome, ElasticOutcome::Completed);
    assert_eq!(result.counters.rejoins, 1);
    assert_eq!(result.group_sizes.last(), Some(&(3, 2)), "full group restored");
    assert_eq!(telemetry::counter_value("elastic.rejoins"), 1);
    let events = telemetry::flight_events();
    assert!(
        events.iter().any(|e| e.label() == "rank_dead_shrink"),
        "flight ring records the death"
    );
    assert!(
        events.iter().any(|e| e.label() == "rank_rejoin"),
        "flight ring records the re-admission"
    );
    // The kill itself still left its postmortem on the way down.
    assert!(!postmortems_matching(&dir, "rank_dead_shrink").is_empty());

    telemetry_close();
    std::fs::remove_dir_all(&dir).ok();
}

/// Flow-matching under chaos: the deadline ladder pins every cycle on the
/// deepest degradation rung — a single-step DDIM flow analysis — a rank
/// dies mid-(degraded)-analysis and the survivors shrink and redo it. The
/// run must still terminate `Completed` with finite skill, proving the
/// few-step flow grid composes with the elastic shrink and deadline
/// machinery exactly like the SDE path.
#[test]
fn flow_matching_survives_shrink_and_deadline_ladder() {
    let _gate = TELEMETRY_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut config = elastic_config(4);
    config.base.ensf.n_steps = 6;
    config.base.ensf.method = AnalysisMethod::FlowMatching;
    config.base.comm = Some(sqg_da::dist::CommSpec::clean(3));
    let dim = config.base.osse.params.state_dim();
    let full3 = modeled_analysis_secs(&config.base, dim, 8, 6, 3);
    let full2 = modeled_analysis_secs(&config.base, dim, 8, 6, 2);
    let deg3 = modeled_analysis_secs(&config.base, dim, 8, 1, 3);
    let deg2 = modeled_analysis_secs(&config.base, dim, 8, 1, 2);
    // Budget sits between the 1-step and 6-step estimates at both group
    // sizes, so the ladder picks Degraded before *and* after the shrink.
    let budget = 2.5 * deg2;
    assert!(
        deg3 < budget && deg2 < budget && full3 > budget && full2 > budget,
        "cost-model sanity: degraded ({deg3:.3e}/{deg2:.3e}) must fit and \
         full ({full3:.3e}/{full2:.3e}) must blow the budget {budget:.3e}"
    );
    config.faults.rank_kills.push(RankKill { cycle: 1, rank: 2, after_steps: 1 });
    config.deadline = Some(DeadlinePolicy { budget_secs: budget, degraded_steps: 1 });
    let result = run_elastic_osse(&config, 3).unwrap();

    assert_eq!(result.outcome, ElasticOutcome::Completed);
    assert_eq!(result.counters.shrinks, 1);
    assert_eq!(result.counters.degraded_cycles, 4, "every cycle rides the 1-step flow rung");
    assert!(result.modes.iter().all(|&(_, m)| m == CycleMode::Degraded));
    assert_eq!(result.cycle_means.len(), 4, "every cycle completed");
    assert!(result.series.rmse.iter().all(|r| r.is_finite()));
}

/// A masked flow-matching cycle under elastic shrink-retry: a 25 %
/// contiguous sensor outage shrinks the observation vector, a rank dies
/// mid-analysis, and the survivors must re-partition the *global* mask
/// over their new tile ownership and redo the cycle. Completing with
/// finite skill proves the per-tile mask restriction composes with the
/// shrink machinery.
#[test]
fn masked_flow_matching_survives_shrink_retry() {
    let _gate = TELEMETRY_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut config = elastic_config(4);
    config.base.osse.obs_mask =
        sqg_da::da_core::osse::MaskKind::Block { start: 192, len: 128 };
    config.base.ensf.n_steps = 6;
    config.base.ensf.method = AnalysisMethod::FlowMatching;
    config.faults.rank_kills.push(RankKill { cycle: 1, rank: 2, after_steps: 1 });
    let result = run_elastic_osse(&config, 3).unwrap();

    assert_eq!(result.outcome, ElasticOutcome::Completed);
    assert_eq!(result.counters.shrinks, 1, "the injected kill must shrink the group");
    assert_eq!(result.counters.redone_analyses, 1, "the masked cycle is redone by survivors");
    assert_eq!(result.cycle_means.len(), 4, "every masked cycle completed");
    assert!(result.series.rmse.iter().all(|r| r.is_finite()));
}

/// Belt-and-braces no-hang sweep: all three chaos channels at once (kill,
/// straggler, tight deadline) on a larger world still terminates with a
/// typed outcome for every rank and a finite trajectory.
#[test]
fn combined_chaos_terminates_with_typed_outcomes() {
    let _gate = TELEMETRY_GATE.lock().unwrap_or_else(|e| e.into_inner());
    // Telemetry stays dark here: this scenario is about termination, and
    // running it dark also covers the counters-disabled paths.
    let mut config = elastic_config(4);
    config.base.comm = Some(sqg_da::dist::CommSpec::clean(4));
    let dim = config.base.osse.params.state_dim();
    let full = modeled_analysis_secs(&config.base, dim, 8, config.base.ensf.n_steps, 4);
    config.faults.rank_kills.push(RankKill { cycle: 1, rank: 3, after_steps: 1 });
    config.stragglers = StragglerPlan {
        events: vec![Straggler { rank: 1, from_cycle: 2, to_cycle: 2, slowdown: 8.0 }],
    };
    config.deadline = Some(DeadlinePolicy { budget_secs: full * 3.0, degraded_steps: 3 });
    let result = run_elastic_osse(&config, 4).unwrap();

    assert_eq!(result.outcome, ElasticOutcome::Completed);
    assert_eq!(result.counters.shrinks, 1);
    assert_eq!(result.cycle_means.len(), 4, "every cycle completed");
    assert!(result.series.rmse.iter().all(|r| r.is_finite()));
    assert!(result.deadline_total == 4);
}
