//! Chaos testing: the supervised OSSE loop under a hostile fault script.
//!
//! One end-to-end scenario per acceptance criterion: a chaos run that
//! must complete every cycle and still beat the free run, a
//! checkpoint → kill → restore round trip through a real file that must
//! be bit-identical, and a corrupted checkpoint that must be rejected.

use sqg_da::da_core::osse::{nature_run, run_experiment, OsseConfig};
use sqg_da::da_core::AnalysisScheme;
use sqg_da::da_core::resilience::{
    resume_supervised, run_supervised, AnalysisFault, Checkpoint, CheckpointConfig,
    CheckpointError, FaultPlan, HealthPolicy, LoopState, MemberFault, MemberFaultKind,
    ObsFault, ResilienceConfig,
};
use sqg_da::da_core::{
    EnsfScheme, FlowMatchingEnsfScheme, LetkfScheme, NoAssimilation, SqgForecast,
};
use sqg_da::ensf::EnsfConfig;
use sqg_da::letkf::LetkfConfig;
use sqg_da::sqg::SqgParams;

/// Serializes the tests that flip process-global telemetry state (enable
/// flag, cycle records, flight ring, postmortem sink); the checkpoint
/// tests run telemetry-dark and stay parallel.
static TELEMETRY_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn chaos_config(cycles: usize, seed: u64) -> OsseConfig {
    OsseConfig {
        params: SqgParams { n: 16, ekman: 0.05, ..Default::default() },
        cycles,
        obs_sigma: 0.005,
        ens_size: 10,
        ic_sigma: 0.01,
        spinup_steps: 60,
        seed,
        ..Default::default()
    }
}

fn ensf_scheme(cfg: &OsseConfig, dim: usize) -> EnsfScheme {
    ensf_scheme_with(cfg, dim, sqg_da::ensf::ScoreKernel::default())
}

fn ensf_scheme_with(
    cfg: &OsseConfig,
    dim: usize,
    kernel: sqg_da::ensf::ScoreKernel,
) -> EnsfScheme {
    EnsfScheme::new(
        EnsfConfig { n_steps: 20, seed: cfg.seed ^ 0xE45F, kernel, ..Default::default() },
        dim,
        cfg.obs_sigma,
    )
}

/// Everything at once: NaN'd and blown-up members, a dropped observation
/// batch, a thinned network, and an EnSF outage deep enough to exhaust the
/// retry budget and hit the LETKF fallback. The run must finish every
/// cycle, leave a recovery trail in telemetry, and still assimilate well
/// enough to beat a free (no-DA) run.
#[test]
fn chaos_run_completes_and_beats_free_run() {
    let _gate = TELEMETRY_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = chaos_config(16, 23);
    let nr = nature_run(&cfg);
    let dim = nr.truth[0].len();

    let res = ResilienceConfig {
        plan: FaultPlan {
            member_faults: vec![
                MemberFault { cycle: 2, member: 3, kind: MemberFaultKind::Nan },
                MemberFault { cycle: 2, member: 7, kind: MemberFaultKind::Nan },
                MemberFault { cycle: 9, member: 1, kind: MemberFaultKind::Corrupt { scale: 1e9 } },
            ],
            obs_faults: vec![(4, ObsFault::Drop), (11, ObsFault::Thin { stride: 4 })],
            analysis_faults: vec![AnalysisFault { cycle: 6, failures: 9 }],
            ..FaultPlan::none()
        },
        // EnSF's equilibrium spread at this scale sits near the default
        // 0.1σ floor; loosen it so only scripted faults trip guardrails.
        health: Some(HealthPolicy {
            spread_floor: 0.02 * cfg.obs_sigma,
            ..HealthPolicy::for_obs_sigma(cfg.obs_sigma)
        }),
        ..Default::default()
    };

    telemetry::set_enabled(true);
    let mut model = SqgForecast::perfect(cfg.params.clone());
    let mut scheme = ensf_scheme(&cfg, dim);
    let mut fallback = LetkfScheme::new(LetkfConfig::default(), &cfg.params, cfg.obs_sigma);
    let run = run_supervised(
        "chaos",
        &cfg,
        &res,
        &nr,
        &mut model,
        &mut scheme,
        Some(&mut fallback),
    )
    .unwrap();
    telemetry::set_enabled(false);

    // Every cycle completed despite the fault script.
    assert!(!run.interrupted);
    assert_eq!(run.cycles.len(), cfg.cycles);
    assert_eq!(run.series.rmse.len(), cfg.cycles);
    assert!(run.series.rmse.iter().all(|v| v.is_finite()));

    // Each scripted fault left its recovery action in the counters.
    assert_eq!(run.counters.quarantined_members, 3);
    assert_eq!(run.counters.degraded_cycles, 1, "dropped obs ⇒ one forecast-only cycle");
    assert_eq!(run.counters.analysis_retries, 2, "retry budget spent before fallback");
    assert_eq!(run.counters.analysis_fallbacks, 1);

    // The state machine visited Degraded and climbed back out of it.
    assert_eq!(run.cycles[2].state, LoopState::Degraded);
    assert!(run.cycles.iter().any(|c| c.state == LoopState::Recovering));
    // Spread relaxation keeps the analysis ensemble inflated at this scale,
    // so only scripted faults — never spontaneous collapse — trip guardrails.
    assert_eq!(run.counters.reinflations, 0, "no collapse repair expected");

    // The recovery trail is visible in telemetry, not just return values.
    let records: Vec<_> =
        telemetry::cycle_records().into_iter().filter(|r| r.label == "chaos").collect();
    assert_eq!(records.len(), cfg.cycles);
    let all_events: Vec<String> =
        records.iter().flat_map(|r| r.events.iter().cloned()).collect();
    assert!(all_events.iter().any(|e| e.starts_with("member_quarantined:")));
    assert!(all_events.iter().any(|e| e == "obs_dropped"));
    assert!(all_events.iter().any(|e| e == "obs_thinned:4"));
    assert!(all_events.iter().any(|e| e == "analysis_fallback:LETKF"));
    assert!(telemetry::counter_value("resilience.member_quarantined") >= 3);

    // Despite the chaos, assimilation still beats running the model free.
    let mut free_model = SqgForecast::perfect(cfg.params.clone());
    let mut free_scheme = NoAssimilation;
    let free = run_experiment("free", &cfg, &nr, &mut free_model, &mut free_scheme).unwrap();
    assert!(
        run.series.steady_rmse() < free.steady_rmse(),
        "chaos DA {} must beat free run {}",
        run.series.steady_rmse(),
        free.steady_rmse()
    );
}

/// The supervised retry/fallback ladder treats the flow-matching scheme
/// exactly like EnSF: scripted analysis failures burn the retry budget
/// (each retry reseeds the flow's initial-fill streams — the *only* RNG
/// the deterministic ODE consumes), then the LETKF fallback takes the
/// cycle, and the run still completes every cycle and beats the free run.
#[test]
fn flow_matching_chaos_run_retries_and_falls_back() {
    let cfg = chaos_config(12, 31);
    let nr = nature_run(&cfg);
    let dim = nr.truth[0].len();

    let res = ResilienceConfig {
        plan: FaultPlan {
            analysis_faults: vec![AnalysisFault { cycle: 5, failures: 9 }],
            ..FaultPlan::none()
        },
        health: Some(HealthPolicy {
            spread_floor: 0.02 * cfg.obs_sigma,
            ..HealthPolicy::for_obs_sigma(cfg.obs_sigma)
        }),
        ..Default::default()
    };

    let mut model = SqgForecast::perfect(cfg.params.clone());
    let mut scheme = FlowMatchingEnsfScheme::new(
        EnsfConfig { n_steps: 8, seed: cfg.seed ^ 0xE45F, ..Default::default() },
        dim,
        cfg.obs_sigma,
    );
    assert_eq!(scheme.name(), "FlowEnSF");
    let mut fallback = LetkfScheme::new(LetkfConfig::default(), &cfg.params, cfg.obs_sigma);
    let run = run_supervised(
        "flow-chaos",
        &cfg,
        &res,
        &nr,
        &mut model,
        &mut scheme,
        Some(&mut fallback),
    )
    .unwrap();

    assert!(!run.interrupted);
    assert_eq!(run.cycles.len(), cfg.cycles);
    assert!(run.series.rmse.iter().all(|v| v.is_finite()));
    assert_eq!(run.counters.analysis_retries, 2, "retry budget spent before fallback");
    assert_eq!(run.counters.analysis_fallbacks, 1);
    let all_events: Vec<&String> = run.cycles.iter().flat_map(|c| c.events.iter()).collect();
    assert!(all_events.iter().any(|e| *e == "analysis_fallback:LETKF"));

    let mut free_model = SqgForecast::perfect(cfg.params.clone());
    let mut free_scheme = NoAssimilation;
    let free = run_experiment("flow-free", &cfg, &nr, &mut free_model, &mut free_scheme).unwrap();
    assert!(
        run.series.steady_rmse() < free.steady_rmse(),
        "flow-matching chaos DA {} must beat free run {}",
        run.series.steady_rmse(),
        free.steady_rmse()
    );
}

/// The flight recorder end to end: an injected fault knocks the
/// supervisor out of `Healthy`, and that exact moment must produce a
/// structured postmortem JSON on disk carrying (a) the `healthy->degraded`
/// transition in the flight ring, (b) the degrading cycle's record with
/// its innovation diagnostics attached, and (c) the supervisor counters.
#[test]
fn injected_fault_produces_postmortem_with_diagnostics_and_transition() {
    let _gate = TELEMETRY_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = chaos_config(6, 53);
    let nr = nature_run(&cfg);
    let dim = nr.truth[0].len();
    let dir = std::env::temp_dir().join("sqg_da_chaos_postmortem");
    std::fs::remove_dir_all(&dir).ok();

    // Two NaN'd members at cycle 3: quarantine ⇒ Healthy → Degraded.
    let res = ResilienceConfig {
        plan: FaultPlan {
            member_faults: vec![
                MemberFault { cycle: 3, member: 2, kind: MemberFaultKind::Nan },
                MemberFault { cycle: 3, member: 5, kind: MemberFaultKind::Nan },
            ],
            ..FaultPlan::none()
        },
        health: Some(HealthPolicy {
            spread_floor: 0.02 * cfg.obs_sigma,
            ..HealthPolicy::for_obs_sigma(cfg.obs_sigma)
        }),
        ..Default::default()
    };

    telemetry::set_enabled(true);
    telemetry::reset();
    telemetry::set_postmortem_dir(Some(&dir));
    let mut model = SqgForecast::perfect(cfg.params.clone());
    let mut scheme = ensf_scheme(&cfg, dim);
    let run =
        run_supervised("postmortem", &cfg, &res, &nr, &mut model, &mut scheme, None).unwrap();
    telemetry::set_postmortem_dir(None);
    telemetry::set_enabled(false);

    assert_eq!(run.cycles[3].state, LoopState::Degraded, "fault must trip the supervisor");

    // Exactly the left-Healthy moment dumped (later cycles transition
    // Degraded → Recovering → Healthy, which is recovery, not a fault).
    let mut dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("postmortem dir must exist")
        .map(|e| e.unwrap().path())
        .collect();
    dumps.sort();
    assert_eq!(dumps.len(), 1, "one postmortem expected, got {dumps:?}");
    let doc = telemetry::json::parse(&std::fs::read_to_string(&dumps[0]).unwrap()).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(doc.get("reason").and_then(telemetry::Json::as_str), Some("left_healthy"));

    // (a) The transition is in the flight ring, tagged with the cycle.
    let flight = doc.get("flight").and_then(telemetry::Json::as_arr).unwrap();
    let transition = flight
        .iter()
        .find(|e| e.get("kind").and_then(telemetry::Json::as_str) == Some("transition"))
        .expect("flight ring must hold the state transition");
    assert_eq!(transition.get("label").and_then(telemetry::Json::as_str), Some("healthy->degraded"));
    assert_eq!(transition.get("cycle").and_then(telemetry::Json::as_i64), Some(3));
    assert!(
        flight.iter().any(|e| {
            e.get("kind").and_then(telemetry::Json::as_str) == Some("guardrail")
                && e.get("cycle").and_then(telemetry::Json::as_i64) == Some(3)
        }),
        "quarantine guardrail events must be on the ring"
    );

    // (b) The degrading cycle's record is in the snapshot, diagnostics
    // attached and finite.
    let cycles = doc.get("recent_cycles").and_then(telemetry::Json::as_arr).unwrap();
    let degrading = cycles
        .iter()
        .find(|c| {
            c.get("label").and_then(telemetry::Json::as_str) == Some("postmortem")
                && c.get("cycle").and_then(telemetry::Json::as_i64) == Some(3)
        })
        .expect("snapshot must include the degrading cycle");
    let diag = degrading.get("diagnostics").expect("degrading cycle must carry diagnostics");
    for key in ["of_mean", "of_var", "oa_mean", "oa_var", "chi2", "spread_skill"] {
        let v = diag.get(key).and_then(telemetry::Json::as_f64).unwrap_or(f64::NAN);
        assert!(v.is_finite(), "diagnostics.{key} must be finite, got {v}");
    }

    // (c) Supervisor bookkeeping rode along.
    let counters = doc.get("counters").unwrap();
    assert_eq!(
        counters
            .get("supervisor.transition.healthy_to_degraded")
            .and_then(telemetry::Json::as_i64),
        Some(1)
    );
    assert!(counters.get("resilience.member_quarantined").is_some());
}

/// Kill the loop mid-run with checkpointing to a real file, restore from
/// that file in a fresh process state, and require the finished series and
/// final ensemble to match an uninterrupted run bit for bit.
#[test]
fn checkpoint_kill_restore_is_bit_identical() {
    let cfg = chaos_config(8, 31);
    let nr = nature_run(&cfg);
    let dim = nr.truth[0].len();
    let path = std::env::temp_dir().join("sqg_da_chaos_ckpt.bin");

    // Reference: the same fault plan minus the kill, run to completion.
    let plan = FaultPlan {
        member_faults: vec![MemberFault { cycle: 1, member: 0, kind: MemberFaultKind::Nan }],
        ..FaultPlan::none()
    };
    let mut m_ref = SqgForecast::perfect(cfg.params.clone());
    let mut s_ref = ensf_scheme(&cfg, dim);
    let full = run_supervised(
        "ref",
        &cfg,
        &ResilienceConfig { plan: plan.clone(), ..Default::default() },
        &nr,
        &mut m_ref,
        &mut s_ref,
        None,
    )
    .unwrap();

    // Same plan, killed after cycle 4, checkpointing through the file.
    let res_kill = ResilienceConfig {
        plan: FaultPlan { kill_after: Some(4), ..plan.clone() },
        checkpoint: Some(CheckpointConfig { path: path.clone(), every: 2 }),
        ..Default::default()
    };
    let mut m1 = SqgForecast::perfect(cfg.params.clone());
    let mut s1 = ensf_scheme(&cfg, dim);
    let killed = run_supervised("kill", &cfg, &res_kill, &nr, &mut m1, &mut s1, None).unwrap();
    assert!(killed.interrupted);
    assert_eq!(killed.checkpoint.cycle, 4);

    // Restore from disk — fresh model, fresh scheme, nothing carried over.
    let ck = Checkpoint::load(&path).unwrap();
    assert_eq!(ck.cycle, 4);
    let mut m2 = SqgForecast::perfect(cfg.params.clone());
    let mut s2 = ensf_scheme(&cfg, dim);
    let resumed = resume_supervised(
        "resume",
        &cfg,
        &ResilienceConfig { plan, ..Default::default() },
        &nr,
        &mut m2,
        &mut s2,
        None,
        ck,
    )
    .unwrap();
    std::fs::remove_file(&path).ok();

    assert!(!resumed.interrupted);
    assert_eq!(resumed.series.rmse, full.series.rmse, "file round trip must be bit-identical");
    assert_eq!(resumed.series.spread, full.series.spread);
    assert_eq!(
        resumed.checkpoint.ensemble.as_slice(),
        full.checkpoint.ensemble.as_slice(),
        "final ensembles must match bit for bit"
    );
    assert_eq!(resumed.counters, full.counters);
}

/// Checkpoint → kill → restore must stay bit-identical under *both* score
/// kernels: the batched GEMM kernel derives every RNG stream from the same
/// (seed, cycle, member) keys as the reference path, so resuming mid-run
/// reproduces the uninterrupted series exactly regardless of kernel.
#[test]
fn checkpoint_restore_is_bit_identical_under_both_kernels() {
    use sqg_da::ensf::ScoreKernel;
    for (kernel, tag) in [(ScoreKernel::Reference, "ref"), (ScoreKernel::Batched, "bat")] {
        let cfg = chaos_config(6, 37);
        let nr = nature_run(&cfg);
        let dim = nr.truth[0].len();
        let path = std::env::temp_dir().join(format!("sqg_da_kernel_ckpt_{tag}.bin"));

        let mut m_ref = SqgForecast::perfect(cfg.params.clone());
        let mut s_ref = ensf_scheme_with(&cfg, dim, kernel);
        let full = run_supervised(
            "full",
            &cfg,
            &ResilienceConfig::default(),
            &nr,
            &mut m_ref,
            &mut s_ref,
            None,
        )
        .unwrap();

        let res_kill = ResilienceConfig {
            plan: FaultPlan { kill_after: Some(3), ..FaultPlan::none() },
            checkpoint: Some(CheckpointConfig { path: path.clone(), every: 1 }),
            ..Default::default()
        };
        let mut m1 = SqgForecast::perfect(cfg.params.clone());
        let mut s1 = ensf_scheme_with(&cfg, dim, kernel);
        let killed =
            run_supervised("kill", &cfg, &res_kill, &nr, &mut m1, &mut s1, None).unwrap();
        assert!(killed.interrupted);

        let ck = Checkpoint::load(&path).unwrap();
        let mut m2 = SqgForecast::perfect(cfg.params.clone());
        let mut s2 = ensf_scheme_with(&cfg, dim, kernel);
        let resumed = resume_supervised(
            "resume",
            &cfg,
            &ResilienceConfig::default(),
            &nr,
            &mut m2,
            &mut s2,
            None,
            ck,
        )
        .unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(
            resumed.series.rmse, full.series.rmse,
            "{kernel:?}: resumed series must be bit-identical"
        );
        assert_eq!(
            resumed.checkpoint.ensemble.as_slice(),
            full.checkpoint.ensemble.as_slice(),
            "{kernel:?}: final ensembles must match bit for bit"
        );
    }
}

/// A checkpoint that was damaged on disk must be rejected up front, never
/// fed into the cycling loop.
#[test]
fn corrupted_checkpoint_file_is_rejected() {
    let cfg = chaos_config(4, 41);
    let nr = nature_run(&cfg);
    let dim = nr.truth[0].len();
    let path = std::env::temp_dir().join("sqg_da_chaos_bad_ckpt.bin");

    let res = ResilienceConfig {
        plan: FaultPlan { kill_after: Some(2), ..FaultPlan::none() },
        checkpoint: Some(CheckpointConfig { path: path.clone(), every: 0 }),
        ..Default::default()
    };
    let mut model = SqgForecast::perfect(cfg.params.clone());
    let mut scheme = ensf_scheme(&cfg, dim);
    run_supervised("victim", &cfg, &res, &nr, &mut model, &mut scheme, None).unwrap();

    // Bit-rot in the ensemble payload: a NaN where a state value was.
    let mut raw = std::fs::read(&path).unwrap();
    raw[49..57].copy_from_slice(&f64::NAN.to_le_bytes());
    std::fs::write(&path, &raw).unwrap();
    let err = Checkpoint::load(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(matches!(err, CheckpointError::NonFinite { .. }), "got {err:?}");

    // A missing file is an I/O error, not a panic.
    assert!(matches!(
        Checkpoint::load(std::path::Path::new("/nonexistent/ckpt.bin")),
        Err(CheckpointError::Io(_))
    ));
}
