//! Golden-file regression harness for the two analysis schemes.
//!
//! Runs a reduced-grid OSSE (`n = 16`, `d = 512`, 10 cycles) for EnSF and
//! LETKF and compares the analysis ensemble mean and spread after cycles
//! 1, 5 and 10 against fixtures under `tests/golden/`. A drifting kernel —
//! a reassociated reduction, a changed RNG stream, a sign slip — shows up
//! here as a readable diff (max abs error, first mismatching index) rather
//! than as a silently different RMSE curve.
//!
//! The fixtures are generated with `LINALG_SIMD=scalar` (the portable
//! reference semantics; every test here pins the cap before first use of
//! linalg) and compared with a small tolerance (`GOLDEN_TOL`, default
//! `1e-9` relative) to absorb cross-toolchain libm differences.
//!
//! Regenerate after an *intentional* numerics change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_regression
//! ```

use sqg_da::da_core::osse::{initial_ensemble, nature_run, MaskKind, ObsOperatorKind, OsseConfig};
use sqg_da::da_core::{
    AnalysisScheme, ArctanEnsfScheme, EnsfScheme, FlowMatchingArctanEnsfScheme,
    FlowMatchingEnsfScheme, ForecastModel, LetkfScheme, MaskedEnsfScheme, MaskedLetkfScheme,
    SqgForecast,
};
use sqg_da::ensf::{AnalysisMethod, EnsfConfig};
use sqg_da::letkf::LetkfConfig;
use sqg_da::sqg::SqgParams;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Cycles (1-indexed) whose analysis statistics the fixtures pin.
const CHECKPOINTS: [usize; 3] = [1, 5, 10];

/// Pins the SIMD dispatch to the scalar reference kernels before anything
/// in this process touches linalg (the level latches in a `OnceLock`), so
/// fixtures compare across machines with different vector units.
fn pin_scalar_simd() {
    static PIN: std::sync::Once = std::sync::Once::new();
    PIN.call_once(|| {
        std::env::set_var("LINALG_SIMD", "scalar");
        assert_eq!(
            sqg_da::linalg::simd::level(),
            sqg_da::linalg::simd::Level::Scalar,
            "SIMD level latched before the golden harness could pin it"
        );
    });
}

fn osse_config() -> OsseConfig {
    OsseConfig {
        params: SqgParams { n: 16, ..Default::default() },
        cycles: 10,
        obs_sigma: 0.005,
        ens_size: 8,
        ic_sigma: 0.01,
        spinup_steps: 40,
        seed: 3,
        ..Default::default()
    }
}

/// Gain of the standard saturating-observation scenario: deep enough to
/// saturate the SQG state's amplitude range (see the `nonlinear_obs`
/// promotion, ROADMAP item 2).
const ARCTAN_GAIN: f64 = 40.0;

/// The standard nonlinear-observation scenario: the same reduced-grid OSSE
/// observed through componentwise `arctan(40 · x)`.
fn arctan_config() -> OsseConfig {
    OsseConfig { obs_operator: ObsOperatorKind::Arctan { gain: ARCTAN_GAIN }, ..osse_config() }
}

/// `(cycle, analysis mean, analysis spread)` at each checkpoint.
type Trajectory = Vec<(usize, Vec<f64>, f64)>;

/// Runs the 10-cycle OSSE described by `config` with the given scheme,
/// recording the analysis mean and spread at the checkpoint cycles.
fn run_trajectory(config: &OsseConfig, scheme: &mut dyn AnalysisScheme) -> Trajectory {
    let nature = nature_run(config);
    let mut model = SqgForecast::perfect(config.params.clone());
    let mut ensemble = initial_ensemble(config, &nature.truth[0]);
    let mut out = Vec::new();
    for cycle in 0..config.cycles {
        model.forecast_ensemble(&mut ensemble, config.obs_interval_hours);
        ensemble = scheme.analyze(&ensemble, &nature.observations[cycle]);
        if CHECKPOINTS.contains(&(cycle + 1)) {
            out.push((cycle + 1, ensemble.mean(), ensemble.spread()));
        }
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.golden"))
}

fn render(name: &str, traj: &Trajectory) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# {name} golden trajectory: reduced SQG OSSE (n=16, d=512), scalar SIMD");
    let _ = writeln!(s, "# regenerate: UPDATE_GOLDEN=1 cargo test --test golden_regression");
    for (cycle, mean, spread) in traj {
        let _ = writeln!(s, "cycle {cycle} spread {spread:.17e}");
        let _ = writeln!(s, "cycle {cycle} mean {}", mean.len());
        for v in mean {
            let _ = writeln!(s, "{v:.17e}");
        }
    }
    s
}

/// Parses a fixture back into a trajectory.
///
/// # Panics
/// Panics with a descriptive message on any malformed line — a corrupted
/// fixture should read as corruption, not as a numerics regression.
fn parse(name: &str, text: &str) -> Trajectory {
    let mut out: Trajectory = Vec::new();
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.starts_with('#'));
    while let Some((ln, line)) = lines.next() {
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["cycle", c, "spread", v] => {
                let cycle: usize = c.parse().unwrap_or_else(|_| panic!("{name}:{ln}: bad cycle"));
                let spread: f64 = v.parse().unwrap_or_else(|_| panic!("{name}:{ln}: bad spread"));
                out.push((cycle, Vec::new(), spread));
            }
            ["cycle", c, "mean", n] => {
                let cycle: usize = c.parse().unwrap_or_else(|_| panic!("{name}:{ln}: bad cycle"));
                let n: usize = n.parse().unwrap_or_else(|_| panic!("{name}:{ln}: bad length"));
                let entry = out
                    .iter_mut()
                    .find(|(c, ..)| *c == cycle)
                    .unwrap_or_else(|| panic!("{name}:{ln}: mean before spread for cycle {cycle}"));
                for _ in 0..n {
                    let (ln, line) =
                        lines.next().unwrap_or_else(|| panic!("{name}: truncated mean block"));
                    entry.1.push(
                        line.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("{name}:{ln}: bad value {line:?}")),
                    );
                }
            }
            _ => panic!("{name}:{ln}: unrecognized fixture line {line:?}"),
        }
    }
    out
}

fn tolerance() -> f64 {
    std::env::var("GOLDEN_TOL").ok().and_then(|v| v.parse().ok()).unwrap_or(1e-9)
}

/// Compares a vector against its golden values, reporting the max abs
/// error and the first mismatching index on failure.
fn assert_close(name: &str, what: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{name}: {what}: length {} != golden {}", got.len(), want.len());
    let tol = tolerance();
    let mut max_err = 0.0f64;
    let mut first_bad = None;
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let err = (g - w).abs();
        max_err = max_err.max(err);
        if err > tol * (1.0 + w.abs()) && first_bad.is_none() {
            first_bad = Some(i);
        }
    }
    if let Some(i) = first_bad {
        panic!(
            "{name}: {what} drifted from golden fixture:\n  \
             max-abs-err {max_err:.3e} (tol {tol:.1e})\n  \
             first mismatch at index {i}: got {:.17e}, golden {:.17e}\n  \
             if the numerics change was intentional, regenerate with\n  \
             UPDATE_GOLDEN=1 cargo test --test golden_regression",
            got[i], want[i]
        );
    }
}

fn check_against_golden(name: &str, traj: &Trajectory) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, render(name, traj)).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test --test golden_regression",
            path.display()
        )
    });
    let golden = parse(name, &text);
    assert_eq!(
        golden.iter().map(|(c, ..)| *c).collect::<Vec<_>>(),
        CHECKPOINTS.to_vec(),
        "{name}: fixture checkpoints"
    );
    for ((gc, gmean, gspread), (c, mean, spread)) in golden.iter().zip(traj) {
        assert_eq!(gc, c);
        assert_close(name, &format!("cycle {c} mean"), mean, gmean);
        assert_close(name, &format!("cycle {c} spread"), &[*spread], &[*gspread]);
    }
}

#[test]
fn ensf_trajectory_matches_golden() {
    pin_scalar_simd();
    let config = osse_config();
    let mut scheme = EnsfScheme::new(
        EnsfConfig { n_steps: 10, seed: 5, ..Default::default() },
        config.params.state_dim(),
        config.obs_sigma,
    );
    check_against_golden("ensf", &run_trajectory(&config, &mut scheme));
}

#[test]
fn letkf_trajectory_matches_golden() {
    pin_scalar_simd();
    let config = osse_config();
    let mut scheme = LetkfScheme::new(LetkfConfig::default(), &config.params, config.obs_sigma);
    check_against_golden("letkf", &run_trajectory(&config, &mut scheme));
}

/// Pins the standard nonlinear-observation scenario: EnSF assimilating
/// observations taken through the saturating `arctan(40 · x)` operator.
/// Both the nature run's observation generation and the scheme's
/// observation-space pull are on the fixture's critical path.
#[test]
fn ensf_arctan_trajectory_matches_golden() {
    pin_scalar_simd();
    let config = arctan_config();
    let mut scheme = ArctanEnsfScheme::new(
        EnsfConfig { n_steps: 10, seed: 5, ..Default::default() },
        config.params.state_dim(),
        config.obs_sigma,
        ARCTAN_GAIN,
    );
    check_against_golden("ensf_arctan", &run_trajectory(&config, &mut scheme));
}

/// Pins the few-step flow-matching analysis (6-step probability-flow ODE)
/// on the identity-observation OSSE. Unlike the SDE fixtures this
/// trajectory consumes RNG only in the initial Gaussian fills, so any
/// drift here points at the score fold, the DDIM coefficients or the
/// prior-variance guidance — not at a noise-stream change.
#[test]
fn flow_trajectory_matches_golden() {
    pin_scalar_simd();
    let config = osse_config();
    let mut scheme = FlowMatchingEnsfScheme::new(
        EnsfConfig { n_steps: 6, seed: 5, ..Default::default() },
        config.params.state_dim(),
        config.obs_sigma,
    );
    check_against_golden("flow", &run_trajectory(&config, &mut scheme));
}

/// The flow-matching scheme through the saturating `arctan(40 · x)`
/// operator: pins the nonlinear-observation guidance (Jacobian-weighted
/// Kalman correction of the denoised estimate) bit-for-bit.
#[test]
fn flow_arctan_trajectory_matches_golden() {
    pin_scalar_simd();
    let config = arctan_config();
    let mut scheme = FlowMatchingArctanEnsfScheme::new(
        EnsfConfig { n_steps: 6, seed: 5, ..Default::default() },
        config.params.state_dim(),
        config.obs_sigma,
        ARCTAN_GAIN,
    );
    check_against_golden("flow_arctan", &run_trajectory(&config, &mut scheme));
}

/// The 25 % contiguous block outage of the scenario library: covers the
/// top quarter of level 0 and the bottom quarter of level 1, so every
/// blinded pixel still has an observed vertical partner. The masked nature
/// run emits *shrunk* observation vectors (one entry per live sensor).
const BLOCK25: MaskKind = MaskKind::Block { start: 192, len: 128 };

/// Pins the inpainting EnSF on the 25 % block outage: the harmonic
/// innovation fill, the observed-component passthrough and the dense
/// assimilation of the completed vector are all on the critical path.
#[test]
fn ensf_mask_block_trajectory_matches_golden() {
    pin_scalar_simd();
    let config = OsseConfig { obs_mask: BLOCK25, ..osse_config() };
    let mut scheme = MaskedEnsfScheme::new(
        EnsfConfig { n_steps: 10, seed: 5, ..Default::default() },
        config.params.state_dim(),
        config.obs_sigma,
        ObsOperatorKind::Identity,
        BLOCK25,
    );
    check_against_golden("ensf_mask_block", &run_trajectory(&config, &mut scheme));
}

/// The moving satellite-track mask: the observed window (and hence the
/// observation-vector length) changes every cycle, so this fixture pins
/// the cycle-indexed mask resolution end to end.
#[test]
fn ensf_track_trajectory_matches_golden() {
    pin_scalar_simd();
    let track = MaskKind::Track { width: 256, speed: 40 };
    let config = OsseConfig { obs_mask: track, ..osse_config() };
    let mut scheme = MaskedEnsfScheme::new(
        EnsfConfig { n_steps: 10, seed: 5, ..Default::default() },
        config.params.state_dim(),
        config.obs_sigma,
        ObsOperatorKind::Identity,
        track,
    );
    check_against_golden("ensf_track", &run_trajectory(&config, &mut scheme));
}

/// The inpainting variant of the few-step probability-flow analysis on the
/// block outage: same innovation fill, deterministic DDIM transport.
#[test]
fn flow_inpaint_trajectory_matches_golden() {
    pin_scalar_simd();
    let config = OsseConfig { obs_mask: BLOCK25, ..osse_config() };
    let mut scheme = MaskedEnsfScheme::new(
        EnsfConfig {
            n_steps: 6,
            seed: 5,
            method: AnalysisMethod::FlowMatching,
            ..Default::default()
        },
        config.params.state_dim(),
        config.obs_sigma,
        ObsOperatorKind::Identity,
        BLOCK25,
    );
    check_against_golden("flow_inpaint", &run_trajectory(&config, &mut scheme));
}

/// Masked LETKF on the block outage: localization spreads the surviving
/// network's information into the blinded region (the strongest baseline
/// of the scenario study).
#[test]
fn letkf_mask_block_trajectory_matches_golden() {
    pin_scalar_simd();
    let config = OsseConfig { obs_mask: BLOCK25, ..osse_config() };
    let mut scheme =
        MaskedLetkfScheme::new(LetkfConfig::default(), &config.params, config.obs_sigma, BLOCK25);
    check_against_golden("letkf_mask_block", &run_trajectory(&config, &mut scheme));
}

#[test]
fn fixtures_roundtrip_through_the_parser() {
    pin_scalar_simd();
    let traj: Trajectory =
        vec![(1, vec![0.5, -1.25e-3], 0.125), (5, vec![2.0, 3.0], 0.25), (10, vec![], 0.0)];
    let parsed = parse("roundtrip", &render("roundtrip", &traj));
    assert_eq!(parsed, traj);
}

#[test]
fn golden_diff_is_readable() {
    pin_scalar_simd();
    // A tampered value must fail with the max-abs-err / first-index report,
    // not an opaque assert.
    let got = vec![1.0, 2.0, 3.0];
    let mut want = got.clone();
    want[1] = 2.5;
    let err = std::panic::catch_unwind(|| assert_close("demo", "cycle 1 mean", &got, &want))
        .expect_err("tampered fixture must fail");
    let msg = err.downcast_ref::<String>().expect("panic carries a message");
    assert!(msg.contains("max-abs-err 5.000e-1"), "unexpected diff: {msg}");
    assert!(msg.contains("first mismatch at index 1"), "unexpected diff: {msg}");
    assert!(msg.contains("UPDATE_GOLDEN=1"), "unexpected diff: {msg}");
}
