//! Diagnostics: kinetic energy, spectra, CFL.

use crate::dynamics::invert;
use crate::grid::SpectralGrid;
use crate::params::SqgParams;
use crate::state::{SqgState, LEVELS};
use fft::{plan_cache, Complex, Direction};

/// Kinetic-energy density spectrum of the flow at level `l`, binned into
/// isotropic shells (integer wavenumber). This is the quantity whose
/// −5/3 inertial-range slope the paper cites as evidence of realistic
/// turbulence.
pub fn ke_spectrum(p: &SqgParams, state: &SqgState, level: usize) -> Vec<f64> {
    let grid = SpectralGrid::new(p);
    let n = p.n;
    let theta: &[Vec<Complex>; LEVELS] =
        &[state.level(0).to_vec(), state.level(1).to_vec()];
    let mut psi = [vec![Complex::ZERO; n * n], vec![Complex::ZERO; n * n]];
    invert(&grid, theta, &mut psi);

    // KE per mode: 0.5 K^2 |psi|^2 (normalized like the stats spectrum).
    let half = n / 2;
    let mut shells = vec![0.0f64; half.max(1)];
    let norm = 1.0 / (n as f64).powi(4);
    let dk = 2.0 * std::f64::consts::PI / p.domain;
    for idx in 0..n * n {
        let k = grid.kmag[idx];
        let shell = (k / dk).round() as usize;
        if shell < shells.len() {
            shells[shell] += 0.5 * k * k * psi[level][idx].norm_sqr() * norm;
        }
    }
    shells
}

/// Maximum grid-space wind speed at either boundary, including the
/// background shear flow. Used for CFL checks.
pub fn max_wind_speed(p: &SqgParams, state: &SqgState) -> f64 {
    let grid = SpectralGrid::new(p);
    let n = p.n;
    let theta: &[Vec<Complex>; LEVELS] =
        &[state.level(0).to_vec(), state.level(1).to_vec()];
    let mut psi = [vec![Complex::ZERO; n * n], vec![Complex::ZERO; n * n]];
    invert(&grid, theta, &mut psi);
    let ifft = plan_cache::fft2(n, n, Direction::Inverse);
    let ubg = p.background_wind();
    let mut vmax = 0.0f64;
    for l in 0..LEVELS {
        let mut u = vec![Complex::ZERO; n * n];
        let mut v = vec![Complex::ZERO; n * n];
        for i in 0..n {
            for j in 0..n {
                let idx = i * n + j;
                u[idx] = Complex::new(0.0, -grid.ky[i]) * psi[l][idx];
                v[idx] = Complex::new(0.0, grid.kx[j]) * psi[l][idx];
            }
        }
        ifft.process(&mut u);
        ifft.process(&mut v);
        for idx in 0..n * n {
            let speed = ((u[idx].re + ubg[l]).powi(2) + v[idx].re.powi(2)).sqrt();
            vmax = vmax.max(speed);
        }
    }
    vmax
}

/// Domain-mean kinetic energy per unit mass `(u² + v²)/2` averaged over the
/// two boundaries [m²/s²] (eddy part only; the background shear flow is not
/// included).
pub fn mean_kinetic_energy(p: &SqgParams, state: &SqgState) -> f64 {
    // Sum the KE spectrum over shells at both levels (Parseval).
    let mut total = 0.0;
    for level in 0..LEVELS {
        total += ke_spectrum(p, state, level).iter().sum::<f64>();
    }
    total / LEVELS as f64
}

/// Advective CFL number `u_max * dt / dx`.
pub fn cfl(p: &SqgParams, state: &SqgState) -> f64 {
    max_wind_speed(p, state) * p.dt / p.dx()
}

/// Converts buoyancy [m/s²] to potential-temperature perturbation [K]
/// with reference θ₀ = 300 K, g = 9.81 m/s² (for display only).
pub fn buoyancy_to_kelvin(b: f64) -> f64 {
    b * 300.0 / 9.81
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_large_scale;

    #[test]
    fn spectrum_of_zero_state_is_zero() {
        let p = SqgParams { n: 16, ..Default::default() };
        let st = SqgState::zeros(16);
        let s = ke_spectrum(&p, &st, 0);
        assert!(s.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn spectrum_energy_where_ic_put_it() {
        let p = SqgParams { n: 32, ..Default::default() };
        let st = random_large_scale(32, 0.05, 5);
        let s = ke_spectrum(&p, &st, 0);
        // IC fills axis wavenumbers 1..=6 only, i.e. shells up to ceil(6*sqrt(2)).
        let low: f64 = s[1..=9].iter().sum();
        let high: f64 = s[10..].iter().sum();
        assert!(low > 0.0);
        assert!(high < 1e-6 * low, "energy leaked to high wavenumbers: {high} vs {low}");
    }

    #[test]
    fn background_flow_dominates_weak_state() {
        let p = SqgParams { n: 16, ..Default::default() };
        let st = random_large_scale(16, 1e-8, 3);
        let vmax = max_wind_speed(&p, &st);
        // Background is ±15 m/s with the default shear of 30.
        assert!((vmax - 15.0).abs() < 0.1, "vmax {vmax}");
    }

    #[test]
    fn default_config_is_cfl_stable() {
        let p = SqgParams::default();
        let st = random_large_scale(p.n, 0.05, 12);
        let c = cfl(&p, &st);
        assert!(c < 0.5, "CFL too aggressive: {c}");
    }

    #[test]
    fn kinetic_energy_positive_and_scales() {
        let p = SqgParams { n: 16, ..Default::default() };
        let st = random_large_scale(16, 0.05, 3);
        let ke = mean_kinetic_energy(&p, &st);
        assert!(ke > 0.0);
        // Doubling the buoyancy quadruples the (quadratic) energy.
        let v = st.to_state_vector();
        let double: Vec<f64> = v.iter().map(|x| 2.0 * x).collect();
        let st2 = SqgState::from_state_vector(16, &double);
        let ke2 = mean_kinetic_energy(&p, &st2);
        assert!((ke2 / ke - 4.0).abs() < 1e-6, "ratio {}", ke2 / ke);
    }

    #[test]
    fn zero_state_zero_energy() {
        let p = SqgParams { n: 16, ..Default::default() };
        assert_eq!(mean_kinetic_energy(&p, &SqgState::zeros(16)), 0.0);
    }

    #[test]
    fn kelvin_conversion() {
        assert!((buoyancy_to_kelvin(9.81 / 300.0) - 1.0).abs() < 1e-12);
    }
}
