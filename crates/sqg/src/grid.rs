//! Spectral grid: wavenumbers, dealias mask, inversion coefficients and the
//! implicit hyperdiffusion factor.
//!
//! Everything here is precomputed once per model instance; the time stepper
//! only multiplies by these tables.

use crate::params::SqgParams;

/// Precomputed spectral-space tables for an `n x n` doubly periodic grid.
#[derive(Debug, Clone)]
pub struct SpectralGrid {
    /// Grid points per side.
    pub n: usize,
    /// Physical zonal wavenumber per FFT bin (Nyquist zeroed for
    /// derivative use), `kx[j]` for column `j`.
    pub kx: Vec<f64>,
    /// Physical meridional wavenumber per FFT bin, `ky[i]` for row `i`.
    pub ky: Vec<f64>,
    /// Total wavenumber magnitude per mode, row-major `n*n`.
    pub kmag: Vec<f64>,
    /// 2/3-rule dealias mask (1.0 keep, 0.0 kill), row-major `n*n`.
    pub dealias_mask: Vec<f64>,
    /// Per-step hyperdiffusion decay factors, row-major `n*n`.
    pub hyperdiff: Vec<f64>,
    /// `1/tanh(mu)` per mode with `mu = N K H / f` (0 at K = 0 where the
    /// inversion is regularized separately).
    pub inv_tanh_mu: Vec<f64>,
    /// `1/sinh(mu)` per mode (0 at K = 0).
    pub inv_sinh_mu: Vec<f64>,
    /// Inversion prefactor `1 / (N K)` per mode (0 at K = 0); with buoyancy
    /// boundary conditions `b = f psi_z` the streamfunction is
    /// `psi = (1/NK) [b-combinations]`.
    pub inv_nk: Vec<f64>,
}

impl SpectralGrid {
    /// Builds all tables from the model parameters.
    ///
    /// # Panics
    /// Panics when `p` fails [`SqgParams::validate`].
    pub fn new(p: &SqgParams) -> Self {
        p.validate().expect("invalid SQG parameters");
        let n = p.n;
        let two_pi_over_l = 2.0 * std::f64::consts::PI / p.domain;

        // Signed integer wavenumbers with the Nyquist derivative zeroed:
        // d/dx of the Nyquist mode is not representable on the grid.
        let signed = |idx: usize| -> f64 {
            let half = n / 2;
            if idx < half {
                idx as f64
            } else if idx == half {
                0.0
            } else {
                idx as f64 - n as f64
            }
        };
        let kx: Vec<f64> = (0..n).map(|j| signed(j) * two_pi_over_l).collect();
        let ky: Vec<f64> = (0..n).map(|i| signed(i) * two_pi_over_l).collect();

        // For magnitudes (inversion, hyperdiffusion) the Nyquist mode keeps
        // its true magnitude.
        let mag_of = |idx: usize| -> f64 {
            let half = n / 2;
            let s = if idx <= half { idx as f64 } else { idx as f64 - n as f64 };
            s.abs() * two_pi_over_l
        };

        let mut kmag = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let kxm = mag_of(j);
                let kym = mag_of(i);
                kmag[i * n + j] = (kxm * kxm + kym * kym).sqrt();
            }
        }

        // 2/3 dealias rule on each axis' integer index.
        let cutoff = (n as f64 / 2.0) * (2.0 / 3.0);
        let mut dealias_mask = vec![1.0; n * n];
        if p.dealias {
            for i in 0..n {
                for j in 0..n {
                    let half = n / 2;
                    let kxi =
                        if j <= half { j as f64 } else { (j as isize - n as isize).abs() as f64 };
                    let kyi =
                        if i <= half { i as f64 } else { (i as isize - n as isize).abs() as f64 };
                    if kxi > cutoff || kyi > cutoff {
                        dealias_mask[i * n + j] = 0.0;
                    }
                }
            }
        }

        // Implicit hyperdiffusion: per-step decay exp(-dt/tau * (K/Kmax)^p).
        let kmax = kmag.iter().cloned().fold(0.0f64, f64::max);
        let order = p.diff_order as f64; // exponent on K (∇^order)
        let hyperdiff: Vec<f64> = kmag
            .iter()
            .map(|&k| (-(p.dt / p.diff_efold) * (k / kmax).powf(order)).exp())
            .collect();

        // Inversion tables: mu = N K H / f.
        let nfreq = p.buoyancy_freq();
        let mut inv_tanh_mu = vec![0.0; n * n];
        let mut inv_sinh_mu = vec![0.0; n * n];
        let mut inv_nk = vec![0.0; n * n];
        for (idx, &k) in kmag.iter().enumerate() {
            if k > 0.0 {
                let mu = nfreq * k * p.depth / p.coriolis.abs();
                inv_tanh_mu[idx] = 1.0 / mu.tanh();
                // sinh overflows near mu ~ 710; 1/sinh underflows to 0 there,
                // which is the correct asymptotic decoupling of the levels.
                inv_sinh_mu[idx] = if mu > 700.0 { 0.0 } else { 1.0 / mu.sinh() };
                inv_nk[idx] = 1.0 / (nfreq * k);
            }
        }

        SpectralGrid {
            n,
            kx,
            ky,
            kmag,
            dealias_mask,
            hyperdiff,
            inv_tanh_mu,
            inv_sinh_mu,
            inv_nk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SpectralGrid {
        SpectralGrid::new(&SqgParams::default())
    }

    #[test]
    fn wavenumbers_signed_and_nyquist_zeroed() {
        let g = grid();
        let n = g.n;
        let dk = 2.0 * std::f64::consts::PI / 20.0e6;
        assert_eq!(g.kx[0], 0.0);
        assert!((g.kx[1] - dk).abs() < 1e-20);
        assert_eq!(g.kx[n / 2], 0.0, "Nyquist derivative must be zeroed");
        assert!((g.kx[n - 1] + dk).abs() < 1e-20);
    }

    #[test]
    fn kmag_is_isotropic() {
        let g = grid();
        let n = g.n;
        // |k| at (i, j) equals |k| at (j, i).
        for i in 0..n {
            for j in 0..n {
                assert!((g.kmag[i * n + j] - g.kmag[j * n + i]).abs() < 1e-18);
            }
        }
        assert_eq!(g.kmag[0], 0.0);
    }

    #[test]
    fn dealias_keeps_low_kills_high() {
        let g = grid();
        let n = g.n;
        assert_eq!(g.dealias_mask[0], 1.0);
        assert_eq!(g.dealias_mask[5 * n + 5], 1.0);
        // Nyquist corner must be killed.
        assert_eq!(g.dealias_mask[(n / 2) * n + n / 2], 0.0);
        // Fraction retained should be ~ (2/3)^2 of modes.
        let kept: f64 = g.dealias_mask.iter().sum();
        let frac = kept / (n * n) as f64;
        assert!((frac - 4.0 / 9.0).abs() < 0.1, "kept fraction {frac}");
    }

    #[test]
    fn dealias_disabled_keeps_everything() {
        let p = SqgParams { dealias: false, ..Default::default() };
        let g = SpectralGrid::new(&p);
        assert!(g.dealias_mask.iter().all(|&m| m == 1.0));
    }

    #[test]
    fn hyperdiff_decays_small_scales_only() {
        let g = grid();
        let n = g.n;
        // Mean mode untouched.
        assert_eq!(g.hyperdiff[0], 1.0);
        // Large scale barely damped.
        assert!(g.hyperdiff[n + 1] > 0.999999);
        // Smallest scale damped by exp(-dt/tau).
        let p = SqgParams::default();
        let kmax_idx = g
            .kmag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let want = (-(p.dt / p.diff_efold)).exp();
        assert!((g.hyperdiff[kmax_idx] - want).abs() < 1e-12);
        // Monotone in K.
        for idx in 0..n * n {
            assert!(g.hyperdiff[idx] <= 1.0 && g.hyperdiff[idx] > 0.0);
        }
    }

    #[test]
    fn inversion_tables_regular_at_origin_and_decay() {
        let g = grid();
        assert_eq!(g.inv_tanh_mu[0], 0.0);
        assert_eq!(g.inv_sinh_mu[0], 0.0);
        assert_eq!(g.inv_nk[0], 0.0);
        // 1/sinh < 1/tanh for positive mu; both positive.
        let idx = 3 * g.n + 7;
        assert!(g.inv_sinh_mu[idx] > 0.0);
        assert!(g.inv_tanh_mu[idx] > g.inv_sinh_mu[idx]);
        // For very large K the levels decouple: 1/sinh -> 0, 1/tanh -> 1.
        let kmax_idx = g
            .kmag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(g.inv_tanh_mu[kmax_idx] - 1.0 < 1e-6);
        assert!(g.inv_sinh_mu[kmax_idx] < 1e-5);
    }
}
