//! Binary (de)serialization of SQG states and trajectories.
//!
//! A compact self-describing format (magic, version, grid size, per-snapshot
//! f64 grids) so nature runs and analysis trajectories can be written to
//! disk once and replayed by later experiments — the reproducibility
//! workflow an operational OSSE needs.

use crate::state::SqgState;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u32 = 0x5351_4731; // "SQG1"
const VERSION: u32 = 1;

/// A sequence of SQG states at a fixed cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Grid points per side.
    pub n: usize,
    /// Hours between snapshots.
    pub interval_hours: f64,
    /// Flat state vectors (`2 n²` each), in time order.
    pub snapshots: Vec<Vec<f64>>,
}

impl Trajectory {
    /// Empty trajectory for an `n x n` grid.
    pub fn new(n: usize, interval_hours: f64) -> Self {
        assert!(n > 0 && interval_hours > 0.0);
        Trajectory { n, interval_hours, snapshots: Vec::new() }
    }

    /// Appends a snapshot (as a flat state vector).
    ///
    /// # Panics
    /// Panics if the vector length does not match the grid.
    pub fn push(&mut self, state: &[f64]) {
        assert_eq!(state.len(), 2 * self.n * self.n, "snapshot length mismatch");
        self.snapshots.push(state.to_vec());
    }

    /// Appends a spectral state.
    pub fn push_state(&mut self, state: &SqgState) {
        assert_eq!(state.n(), self.n, "grid mismatch");
        self.snapshots.push(state.to_state_vector());
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when no snapshots are stored.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Simulated hours covered (0 for < 2 snapshots).
    pub fn duration_hours(&self) -> f64 {
        self.interval_hours * self.snapshots.len().saturating_sub(1) as f64
    }

    /// Serializes to a byte buffer.
    pub fn to_bytes(&self) -> Bytes {
        let dim = 2 * self.n * self.n;
        let mut buf = BytesMut::with_capacity(32 + self.snapshots.len() * dim * 8);
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.n as u64);
        buf.put_f64_le(self.interval_hours);
        buf.put_u64_le(self.snapshots.len() as u64);
        for snap in &self.snapshots {
            for &v in snap {
                buf.put_f64_le(v);
            }
        }
        buf.freeze()
    }

    /// Deserializes from a byte buffer.
    pub fn from_bytes(bytes: &Bytes) -> Result<Self, TrajectoryError> {
        let mut buf = bytes.clone();
        if buf.remaining() < 32 {
            return Err(TrajectoryError::Truncated);
        }
        if buf.get_u32_le() != MAGIC {
            return Err(TrajectoryError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(TrajectoryError::BadVersion(version));
        }
        let n = buf.get_u64_le() as usize;
        let interval_hours = buf.get_f64_le();
        let count = buf.get_u64_le() as usize;
        // `!(x > 0.0)` deliberately rejects NaN intervals too.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if n == 0 || !(interval_hours > 0.0) {
            return Err(TrajectoryError::BadHeader);
        }
        // Saturating throughout: a corrupted n or count must fail the
        // length check, not overflow into a tiny allocation request.
        let dim = 2usize.saturating_mul(n).saturating_mul(n);
        if buf.remaining() < count.saturating_mul(dim).saturating_mul(8) {
            return Err(TrajectoryError::Truncated);
        }
        let mut snapshots = Vec::with_capacity(count);
        for s in 0..count {
            let mut snap = Vec::with_capacity(dim);
            for _ in 0..dim {
                let v = buf.get_f64_le();
                if !v.is_finite() {
                    return Err(TrajectoryError::NonFinite { snapshot: s });
                }
                snap.push(v);
            }
            snapshots.push(snap);
        }
        Ok(Trajectory { n, interval_hours, snapshots })
    }

    /// Writes the trajectory to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a trajectory from a file.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Self::from_bytes(&Bytes::from(data)).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
        })
    }
}

/// Deserialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrajectoryError {
    /// Buffer shorter than its framing promises.
    Truncated,
    /// Wrong magic number.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// Nonsensical header fields.
    BadHeader,
    /// A snapshot carries NaN/inf values (corrupt payload).
    NonFinite {
        /// Index of the first offending snapshot.
        snapshot: usize,
    },
}

impl std::fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrajectoryError::Truncated => write!(f, "trajectory buffer truncated"),
            TrajectoryError::BadMagic => write!(f, "not an SQG trajectory"),
            TrajectoryError::BadVersion(v) => write!(f, "unsupported trajectory version {v}"),
            TrajectoryError::BadHeader => write!(f, "invalid trajectory header"),
            TrajectoryError::NonFinite { snapshot } => {
                write!(f, "trajectory snapshot {snapshot} contains NaN/inf values")
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_large_scale;

    fn sample_trajectory() -> Trajectory {
        let mut t = Trajectory::new(8, 12.0);
        for seed in 0..3 {
            t.push_state(&random_large_scale(8, 0.05, seed));
        }
        t
    }

    #[test]
    fn round_trip_bytes() {
        let t = sample_trajectory();
        let blob = t.to_bytes();
        let back = Trajectory::from_bytes(&blob).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.len(), 3);
        assert_eq!(back.duration_hours(), 24.0);
    }

    #[test]
    fn round_trip_file() {
        let t = sample_trajectory();
        let dir = std::env::temp_dir();
        let path = dir.join("sqg_da_traj_test.bin");
        t.save(&path).unwrap();
        let back = Trajectory::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t, back);
    }

    #[test]
    fn corrupted_magic_rejected() {
        let t = sample_trajectory();
        let mut raw = BytesMut::from(&t.to_bytes()[..]);
        raw[0] ^= 0xFF;
        assert_eq!(Trajectory::from_bytes(&raw.freeze()), Err(TrajectoryError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let t = sample_trajectory();
        let blob = t.to_bytes();
        let cut = blob.slice(0..blob.len() - 17);
        assert_eq!(Trajectory::from_bytes(&cut), Err(TrajectoryError::Truncated));
        let tiny = blob.slice(0..8);
        assert_eq!(Trajectory::from_bytes(&tiny), Err(TrajectoryError::Truncated));
    }

    #[test]
    fn bad_version_rejected() {
        let t = sample_trajectory();
        let mut raw = BytesMut::from(&t.to_bytes()[..]);
        raw[4] = 99;
        assert_eq!(
            Trajectory::from_bytes(&raw.freeze()),
            Err(TrajectoryError::BadVersion(99))
        );
    }

    #[test]
    fn empty_trajectory_round_trips() {
        let t = Trajectory::new(4, 6.0);
        let back = Trajectory::from_bytes(&t.to_bytes()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.duration_hours(), 0.0);
    }

    #[test]
    fn nan_payload_rejected() {
        let t = sample_trajectory();
        let mut raw = t.to_bytes().to_vec();
        // Poison one value of snapshot 1 with a NaN bit pattern.
        let dim = 2 * 8 * 8;
        let off = 32 + (dim + 3) * 8;
        raw[off..off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            Trajectory::from_bytes(&Bytes::from(raw)),
            Err(TrajectoryError::NonFinite { snapshot: 1 })
        );
    }

    #[test]
    #[should_panic]
    fn wrong_snapshot_length_panics() {
        let mut t = Trajectory::new(8, 12.0);
        t.push(&[0.0; 10]);
    }
}
