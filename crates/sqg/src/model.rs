//! High-level model interface used by the DA framework.

use crate::dynamics::Stepper;
use crate::init;
use crate::params::SqgParams;
use crate::state::SqgState;

/// The SQG forecast model: owns the stepper (FFT plans + scratch) and
/// advances grid-space state vectors, which is the representation the DA
/// filters exchange.
pub struct SqgModel {
    stepper: Stepper,
}

impl SqgModel {
    /// Creates a model for the given parameters.
    pub fn new(params: SqgParams) -> Self {
        SqgModel { stepper: Stepper::new(params) }
    }

    /// Model parameters.
    pub fn params(&self) -> &SqgParams {
        &self.stepper.params
    }

    /// State dimension (`2 n²`).
    pub fn state_dim(&self) -> usize {
        self.stepper.params.state_dim()
    }

    /// Advances a spectral state `steps` model steps in place.
    pub fn step_spectral(&mut self, state: &mut SqgState, steps: usize) {
        for _ in 0..steps {
            self.stepper.step(state.levels_mut());
        }
    }

    /// Advances a flat grid-space state vector by `steps` model steps.
    ///
    /// Convenience wrapper for DA: converts to spectral space, integrates,
    /// converts back. For member loops prefer doing the conversion once if
    /// profiling shows it matters (it is ~2 extra FFT pairs per call).
    pub fn forecast(&mut self, state: &mut [f64], steps: usize) {
        let n = self.stepper.params.n;
        let mut spec = SqgState::from_state_vector(n, state);
        self.step_spectral(&mut spec, steps);
        let out = spec.to_state_vector();
        state.copy_from_slice(&out);
    }

    /// Number of model steps per `hours` of simulated time.
    pub fn steps_per_hours(&self, hours: f64) -> usize {
        (hours * 3600.0 / self.stepper.params.dt).round() as usize
    }

    /// Generates a spun-up "nature" state: random large-scale initial
    /// condition integrated through `spinup_steps` to reach the turbulent
    /// attractor.
    pub fn spinup_nature(&mut self, seed: u64, amplitude: f64, spinup_steps: usize) -> SqgState {
        let mut st = init::random_large_scale(self.stepper.params.n, amplitude, seed);
        self.step_spectral(&mut st, spinup_steps);
        st
    }

    /// Immutable access to the spectral grid tables (for diagnostics).
    pub fn grid(&self) -> &crate::grid::SpectralGrid {
        &self.stepper.grid
    }

    /// Sets the thermal-relaxation reference state (acts when
    /// `params.tdiab > 0`); typically [`init::zonal_jet`].
    pub fn set_reference(&mut self, reference: &SqgState) {
        assert_eq!(reference.n(), self.stepper.params.n, "reference grid mismatch");
        self.stepper
            .set_reference([reference.level(0).to_vec(), reference.level(1).to_vec()]);
    }

    /// Builds a jet-forced model: thermal relaxation toward a zonal jet of
    /// amplitude `jet_amp` with timescale `params.tdiab` (which must be
    /// positive). The jet's baroclinic zone then continuously regenerates
    /// eddies — the statistically steady turbulence configuration.
    pub fn with_jet_forcing(params: SqgParams, jet_amp: f64) -> Self {
        assert!(params.tdiab > 0.0, "jet forcing requires tdiab > 0");
        let jet = init::zonal_jet(params.n, jet_amp);
        let mut model = SqgModel::new(params);
        model.set_reference(&jet);
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecast_is_deterministic() {
        let p = SqgParams { n: 16, ..Default::default() };
        let mut m1 = SqgModel::new(p.clone());
        let mut m2 = SqgModel::new(p);
        let st = init::random_large_scale(16, 0.05, 3);
        let mut v1 = st.to_state_vector();
        let mut v2 = v1.clone();
        m1.forecast(&mut v1, 5);
        m2.forecast(&mut v2, 5);
        assert_eq!(v1, v2);
    }

    #[test]
    fn forecast_changes_state() {
        let p = SqgParams { n: 16, ..Default::default() };
        let mut m = SqgModel::new(p);
        let st = init::random_large_scale(16, 0.05, 3);
        let v0 = st.to_state_vector();
        let mut v = v0.clone();
        m.forecast(&mut v, 5);
        let diff: f64 = v.iter().zip(&v0).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-8, "state did not evolve");
    }

    #[test]
    fn steps_per_hours_rounds() {
        let m = SqgModel::new(SqgParams { n: 16, dt: 900.0, ..Default::default() });
        assert_eq!(m.steps_per_hours(12.0), 48);
        assert_eq!(m.steps_per_hours(1.0), 4);
    }

    #[test]
    fn zero_steps_is_identity_up_to_round_trip() {
        let p = SqgParams { n: 16, ..Default::default() };
        let mut m = SqgModel::new(p);
        let st = init::random_large_scale(16, 0.05, 17);
        let v0 = st.to_state_vector();
        let mut v = v0.clone();
        m.forecast(&mut v, 0);
        for (a, b) in v.iter().zip(&v0) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn jet_forcing_sustains_turbulence() {
        // With relaxation toward a jet, the state must neither die out nor
        // blow up over a long run: statistically steady turbulence.
        let p = SqgParams { n: 16, tdiab: 5.0 * 86400.0, ekman: 0.05, ..Default::default() };
        let mut m = SqgModel::with_jet_forcing(p, 0.05);
        let mut st = init::random_large_scale(16, 0.01, 9);
        m.step_spectral(&mut st, 500);
        assert!(st.is_finite());
        let v_mid = st.total_variance();
        m.step_spectral(&mut st, 500);
        assert!(st.is_finite());
        let v_end = st.total_variance();
        assert!(v_end > 1e-8, "turbulence died out");
        assert!(v_end < 100.0 * v_mid.max(1e-8), "turbulence blew up");
    }

    #[test]
    fn chaotic_divergence_of_nearby_states() {
        // Two states differing by a tiny perturbation must separate — the
        // premise of the whole paper (rapid IC error growth).
        let p = SqgParams { n: 32, ..Default::default() };
        let mut m = SqgModel::new(p);
        let nature = m.spinup_nature(1, 0.05, 300);
        let mut a = nature.to_state_vector();
        let mut b = a.clone();
        b[0] += 1e-6;
        let d0: f64 = 1e-6;
        m.forecast(&mut a, 400);
        m.forecast(&mut b, 400);
        let d1: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(d1 > 10.0 * d0, "no chaotic growth: {d0} -> {d1}");
    }
}
