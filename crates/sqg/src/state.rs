//! SQG model state: spectral potential temperature (buoyancy) at the two
//! boundary levels, with conversions to/from the flat grid-space state
//! vector the DA filters operate on.

use fft::{plan_cache, Complex, Direction};

/// Number of vertical levels (the two boundaries of the Eady model).
pub const LEVELS: usize = 2;

/// Spectral state: buoyancy θ̂ at the bottom (`levels[0]`, z = 0) and top
/// (`levels[1]`, z = H) boundaries, each a row-major `n x n` complex field.
#[derive(Debug, Clone, PartialEq)]
pub struct SqgState {
    n: usize,
    levels: [Vec<Complex>; LEVELS],
}

impl SqgState {
    /// Zero state on an `n x n` grid.
    pub fn zeros(n: usize) -> Self {
        SqgState { n, levels: [vec![Complex::ZERO; n * n], vec![Complex::ZERO; n * n]] }
    }

    /// Builds a state from two spectral fields.
    ///
    /// # Panics
    /// Panics if the fields are not both `n * n` long.
    pub fn from_spectral(n: usize, bottom: Vec<Complex>, top: Vec<Complex>) -> Self {
        assert_eq!(bottom.len(), n * n);
        assert_eq!(top.len(), n * n);
        SqgState { n, levels: [bottom, top] }
    }

    /// Grid points per side.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Spectral field of level `l` (0 = bottom, 1 = top).
    pub fn level(&self, l: usize) -> &[Complex] {
        &self.levels[l]
    }

    /// Mutable spectral field of level `l`.
    pub fn level_mut(&mut self, l: usize) -> &mut [Complex] {
        &mut self.levels[l]
    }

    /// Both levels as a mutable pair (for the time stepper).
    pub fn levels_mut(&mut self) -> &mut [Vec<Complex>; LEVELS] {
        &mut self.levels
    }

    /// Converts grid-space fields (row-major, one per level) to a state.
    ///
    /// FFT plans come from the shared [`fft::plan_cache`], so repeated
    /// conversions (once per member per DA cycle) reuse one plan.
    pub fn from_grid(n: usize, grid: &[Vec<f64>; LEVELS]) -> Self {
        let fwd = plan_cache::fft2(n, n, Direction::Forward);
        let mut levels: [Vec<Complex>; LEVELS] =
            [vec![Complex::ZERO; n * n], vec![Complex::ZERO; n * n]];
        for (l, g) in grid.iter().enumerate() {
            assert_eq!(g.len(), n * n);
            for (z, &x) in levels[l].iter_mut().zip(g) {
                *z = Complex::from_re(x);
            }
            fwd.process(&mut levels[l]);
        }
        SqgState { n, levels }
    }

    /// Converts the spectral state to grid-space fields.
    pub fn to_grid(&self) -> [Vec<f64>; LEVELS] {
        let inv = plan_cache::fft2(self.n, self.n, Direction::Inverse);
        let mut out: [Vec<f64>; LEVELS] = [Vec::new(), Vec::new()];
        for (l, spec) in self.levels.iter().enumerate() {
            let mut buf = spec.clone();
            inv.process(&mut buf);
            out[l] = buf.into_iter().map(|z| z.re).collect();
        }
        out
    }

    /// Flattens to the DA state vector: bottom grid field then top grid
    /// field, `2 n²` values.
    pub fn to_state_vector(&self) -> Vec<f64> {
        let [b, t] = self.to_grid();
        let mut v = b;
        v.extend_from_slice(&t);
        v
    }

    /// Rebuilds a spectral state from a DA state vector.
    ///
    /// # Panics
    /// Panics if `v.len() != 2 n²`.
    pub fn from_state_vector(n: usize, v: &[f64]) -> Self {
        assert_eq!(v.len(), 2 * n * n, "state vector must have 2 n^2 entries");
        let bottom = v[..n * n].to_vec();
        let top = v[n * n..].to_vec();
        SqgState::from_grid(n, &[bottom, top])
    }

    /// Mean (domain-averaged) buoyancy of each level, read off the DC mode.
    pub fn mean_buoyancy(&self) -> [f64; LEVELS] {
        let norm = 1.0 / (self.n * self.n) as f64;
        [self.levels[0][0].re * norm, self.levels[1][0].re * norm]
    }

    /// Total buoyancy variance (about the level means) summed over levels,
    /// computed spectrally via Parseval.
    pub fn total_variance(&self) -> f64 {
        let n2 = (self.n * self.n) as f64;
        let mut total = 0.0;
        for spec in &self.levels {
            let all: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / (n2 * n2);
            let dc = spec[0].norm_sqr() / (n2 * n2);
            total += all - dc;
        }
        total
    }

    /// True if every coefficient is finite (blow-up guard used by tests and
    /// the forecast wrapper).
    pub fn is_finite(&self) -> bool {
        self.levels.iter().all(|spec| spec.iter().all(|z| z.is_finite()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_round_trip() {
        let n = 16;
        let bottom: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.13).sin()).collect();
        let top: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.07).cos()).collect();
        let st = SqgState::from_grid(n, &[bottom.clone(), top.clone()]);
        let [b2, t2] = st.to_grid();
        for (a, b) in bottom.iter().zip(&b2) {
            assert!((a - b).abs() < 1e-10);
        }
        for (a, b) in top.iter().zip(&t2) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn state_vector_round_trip() {
        let n = 8;
        let v: Vec<f64> = (0..2 * n * n).map(|i| ((i * 37 % 101) as f64 - 50.0) / 50.0).collect();
        let st = SqgState::from_state_vector(n, &v);
        let v2 = st.to_state_vector();
        for (a, b) in v.iter().zip(&v2) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn mean_buoyancy_reads_dc_mode() {
        let n = 8;
        let bottom = vec![3.0; n * n];
        let top = vec![-1.5; n * n];
        let st = SqgState::from_grid(n, &[bottom, top]);
        let m = st.mean_buoyancy();
        assert!((m[0] - 3.0).abs() < 1e-10);
        assert!((m[1] + 1.5).abs() < 1e-10);
    }

    #[test]
    fn variance_matches_grid_computation() {
        let n = 16;
        let bottom: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.31).sin()).collect();
        let top = vec![0.0; n * n];
        let grid_var: f64 = {
            let mean = bottom.iter().sum::<f64>() / (n * n) as f64;
            bottom.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n * n) as f64
        };
        let st = SqgState::from_grid(n, &[bottom, top]);
        assert!((st.total_variance() - grid_var).abs() < 1e-10);
    }

    #[test]
    fn finite_check() {
        let n = 4;
        let mut st = SqgState::zeros(n);
        assert!(st.is_finite());
        st.level_mut(0)[3] = Complex::new(f64::NAN, 0.0);
        assert!(!st.is_finite());
    }

    #[test]
    #[should_panic]
    fn wrong_state_vector_length_panics() {
        let _ = SqgState::from_state_vector(8, &[0.0; 10]);
    }
}
