//! Physical and numerical parameters of the SQG model.

/// Parameters of the two-level nonlinear Eady / SQG system.
///
/// Defaults follow the configuration used by the paper's reference
/// implementation (`jswhit/sqgturb`) for the 64×64×2 DA experiments:
/// doubly periodic 20 000 km domain, 10 km depth, 30 m/s shear, f-plane with
/// uniform stratification, 8th-order hyperdiffusion treated implicitly and a
/// 2/3 dealiasing rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SqgParams {
    /// Grid points per side (the state is `2 * n * n` values).
    pub n: usize,
    /// Domain side length [m].
    pub domain: f64,
    /// Boundary separation (depth) [m].
    pub depth: f64,
    /// Coriolis parameter f [1/s].
    pub coriolis: f64,
    /// Buoyancy frequency squared N² [1/s²].
    pub nsq: f64,
    /// Total shear across the depth: u(top) − u(bottom) [m/s].
    /// With `symmetric_jet`, background winds are ±shear/2.
    pub shear: f64,
    /// If true the background flow is ±U/2 at the two boundaries; if false
    /// it is 0 at the bottom and U at the top.
    pub symmetric_jet: bool,
    /// Ekman damping coefficient r [1/s]; 0 disables surface friction.
    pub ekman: f64,
    /// Model time step [s].
    pub dt: f64,
    /// Hyperdiffusion e-folding time at the smallest resolved scale [s].
    pub diff_efold: f64,
    /// Hyperdiffusion order (exponent on ∇²; 8 means ∇⁸).
    pub diff_order: u32,
    /// Apply the 2/3 dealiasing rule to nonlinear products.
    pub dealias: bool,
    /// Thermal ("diabatic") relaxation timescale toward a reference state
    /// [s]; 0 disables. With a zonal-jet reference this maintains the
    /// baroclinic zone against the turbulent heat flux, as in `sqgturb`'s
    /// jet configuration.
    pub tdiab: f64,
}

impl Default for SqgParams {
    fn default() -> Self {
        SqgParams {
            n: 64,
            domain: 20.0e6,
            depth: 10.0e3,
            coriolis: 1.0e-4,
            nsq: 1.0e-4,
            shear: 30.0,
            symmetric_jet: true,
            ekman: 0.0,
            dt: 900.0,
            diff_efold: 5400.0,
            diff_order: 8,
            dealias: true,
            tdiab: 0.0,
        }
    }
}

impl SqgParams {
    /// Buoyancy frequency N [1/s].
    pub fn buoyancy_freq(&self) -> f64 {
        self.nsq.sqrt()
    }

    /// Rossby radius of deformation `N H / f` [m]. For the defaults this is
    /// 1000 km — the scale coupling horizontal and vertical dynamics, and
    /// the scale the paper uses to couple LETKF localization extents.
    pub fn rossby_radius(&self) -> f64 {
        self.buoyancy_freq() * self.depth / self.coriolis
    }

    /// Background zonal wind at the two boundaries `[bottom, top]` [m/s].
    pub fn background_wind(&self) -> [f64; 2] {
        if self.symmetric_jet {
            [-0.5 * self.shear, 0.5 * self.shear]
        } else {
            [0.0, self.shear]
        }
    }

    /// Mean meridional buoyancy gradient `∂b̄/∂y = −f Λ` shared by both
    /// boundaries (thermal wind balance), with Λ = shear / depth [1/s²·s].
    pub fn mean_buoyancy_gradient(&self) -> f64 {
        -self.coriolis * self.shear / self.depth
    }

    /// Number of state variables (`2 n²`).
    pub fn state_dim(&self) -> usize {
        2 * self.n * self.n
    }

    /// Grid spacing [m].
    pub fn dx(&self) -> f64 {
        self.domain / self.n as f64
    }

    /// Validates parameter consistency, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 4 {
            return Err(format!("grid too small: n = {}", self.n));
        }
        if self.domain <= 0.0 || self.depth <= 0.0 {
            return Err("domain and depth must be positive".into());
        }
        if self.coriolis == 0.0 { // lint: allow(float-exact-compare, reason="validation rejects the exact degenerate value")
            return Err("coriolis parameter must be nonzero".into());
        }
        if self.nsq <= 0.0 {
            return Err("stratification N^2 must be positive".into());
        }
        if self.dt <= 0.0 {
            return Err("time step must be positive".into());
        }
        if self.tdiab < 0.0 {
            return Err("tdiab must be nonnegative (0 disables)".into());
        }
        if !self.diff_order.is_multiple_of(2) {
            return Err(format!("hyperdiffusion order must be even, got {}", self.diff_order));
        }
        if self.diff_efold <= 0.0 {
            return Err("diff_efold must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(SqgParams::default().validate().is_ok());
    }

    #[test]
    fn rossby_radius_default_is_1000km() {
        let p = SqgParams::default();
        assert!((p.rossby_radius() - 1.0e6).abs() < 1e-6);
    }

    #[test]
    fn background_wind_conventions() {
        let mut p = SqgParams::default();
        assert_eq!(p.background_wind(), [-15.0, 15.0]);
        p.symmetric_jet = false;
        assert_eq!(p.background_wind(), [0.0, 30.0]);
    }

    #[test]
    fn thermal_wind_gradient_sign() {
        let p = SqgParams::default();
        // Positive shear => negative (poleward-decreasing) buoyancy gradient.
        assert!(p.mean_buoyancy_gradient() < 0.0);
        assert!((p.mean_buoyancy_gradient() + 1.0e-4 * 30.0 / 1.0e4).abs() < 1e-18);
    }

    #[test]
    fn state_dim_and_dx() {
        let p = SqgParams::default();
        assert_eq!(p.state_dim(), 8192);
        assert!((p.dx() - 312_500.0).abs() < 1e-9);
    }

    #[test]
    fn tdiab_validation() {
        let ok = SqgParams { tdiab: 864000.0, ..Default::default() };
        assert!(ok.validate().is_ok());
        let bad = SqgParams { tdiab: -1.0, ..Default::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut p = SqgParams { n: 2, ..Default::default() };
        assert!(p.validate().is_err());
        p.n = 64;
        p.diff_order = 7;
        assert!(p.validate().is_err());
        p.diff_order = 8;
        p.dt = -1.0;
        assert!(p.validate().is_err());
        p.dt = 900.0;
        p.nsq = 0.0;
        assert!(p.validate().is_err());
    }
}
