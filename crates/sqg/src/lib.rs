//! # sqg — surface quasi-geostrophic turbulence model
//!
//! A from-scratch Rust implementation of the two-level nonlinear Eady /
//! surface quasi-geostrophic (SQG) system the paper uses as its forecast
//! model, numerically following the reference implementation
//! (`jswhit/sqgturb`, after Tulloch & Smith 2009):
//!
//! - spectral (FFT) spatial discretization on a doubly periodic grid,
//! - 4th-order Runge–Kutta time stepping,
//! - 2/3-rule dealiasing of the nonlinear advection,
//! - implicit (integrating-factor) 8th-order hyperdiffusion,
//! - f-plane, uniform stratification and shear; optional Ekman damping.
//!
//! The DA-facing entry point is [`SqgModel`], which forecasts flat
//! grid-space state vectors of dimension `2 n²` (boundary buoyancy at the
//! two levels).
//!
//! ```
//! use sqg::{SqgModel, SqgParams};
//! let mut model = SqgModel::new(SqgParams { n: 16, ..Default::default() });
//! let nature = model.spinup_nature(42, 0.05, 10);
//! let mut state = nature.to_state_vector();
//! model.forecast(&mut state, 4); // one hour at dt = 900 s
//! ```

#![warn(missing_docs)]
// Numeric kernels here read/write several arrays at matched indices;
// explicit index loops are the clearer idiom (spectral kernels index multiple parallel arrays).
#![allow(clippy::needless_range_loop)]

pub mod diag;
pub mod dynamics;
mod grid;
pub mod init;
pub mod io;
mod model;
mod params;
mod state;

pub use grid::SpectralGrid;
pub use model::SqgModel;
pub use params::SqgParams;
pub use state::{SqgState, LEVELS};
