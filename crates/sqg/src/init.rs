//! Initial-condition generators.

use crate::state::SqgState;
use fft::Complex;
use rand::Rng;
use stats::rng::seeded;

/// Random large-scale initial condition: energy in integer wavenumbers
/// 1..=6 with random phases, equal-and-opposite structure on the two
/// boundaries (the most unstable Eady configuration), amplitude `amp`
/// (buoyancy units, m/s²; ~0.05 corresponds to a few K of potential
/// temperature).
pub fn random_large_scale(n: usize, amp: f64, seed: u64) -> SqgState {
    let mut rng = seeded(seed);
    let mut grids = [vec![0.0f64; n * n], vec![0.0f64; n * n]];
    let kmax = 6usize.min(n / 4);
    for kx in 0..=kmax {
        for ky in 0..=kmax {
            if kx == 0 && ky == 0 {
                continue;
            }
            let phase: f64 = rng.random::<f64>() * std::f64::consts::TAU;
            let a = amp * (rng.random::<f64>() - 0.5)
                / ((kx * kx + ky * ky) as f64).sqrt();
            // Top anomaly anti-correlated with bottom and phase-shifted:
            // seeds baroclinic growth.
            let phase_top: f64 = phase + 0.5 * std::f64::consts::PI;
            for i in 0..n {
                for j in 0..n {
                    let arg = std::f64::consts::TAU
                        * (kx as f64 * j as f64 + ky as f64 * i as f64)
                        / n as f64;
                    grids[0][i * n + j] += a * (arg + phase).cos();
                    grids[1][i * n + j] -= a * (arg + phase_top).cos();
                }
            }
        }
    }
    SqgState::from_grid(n, &grids)
}

/// Adds white spectral-space noise of grid-space standard deviation `sigma`
/// to every mode of both levels (preserving Hermitian symmetry by working in
/// grid space). Used to perturb ensemble members around a nature state.
pub fn perturb(state: &SqgState, sigma: f64, seed: u64) -> SqgState {
    let n = state.n();
    let mut rng = seeded(seed);
    let mut grids = state.to_grid();
    for g in grids.iter_mut() {
        for x in g.iter_mut() {
            *x += sigma * stats::gaussian::standard_normal(&mut rng);
        }
    }
    SqgState::from_grid(n, &grids)
}

/// A zonal-jet base state: a periodic meridional buoyancy profile
/// `θ(y) = amp · sin(2π y / L)` at the bottom boundary with the opposite
/// sign aloft — a concentrated baroclinic zone whose thermal-wind shear
/// drives eddies, as in `sqgturb`'s jet configuration. Used as the
/// relaxation target of the `tdiab` thermal forcing.
pub fn zonal_jet(n: usize, amp: f64) -> SqgState {
    let mut grids = [vec![0.0f64; n * n], vec![0.0f64; n * n]];
    for iy in 0..n {
        let theta = amp * (std::f64::consts::TAU * iy as f64 / n as f64).sin();
        for ix in 0..n {
            grids[0][iy * n + ix] = theta;
            grids[1][iy * n + ix] = -theta;
        }
    }
    SqgState::from_grid(n, &grids)
}

/// Checks that a spectral field has (numerically) Hermitian symmetry on the
/// 2-D grid, i.e. it corresponds to a real field. Returns the worst defect.
pub fn hermitian_defect_2d(spec: &[Complex], n: usize) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let ci = (n - i) % n;
            let cj = (n - j) % n;
            let d = (spec[i * n + j] - spec[ci * n + cj].conj()).abs();
            worst = worst.max(d);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jet_structure() {
        let n = 16;
        let jet = zonal_jet(n, 0.1);
        let [bottom, top] = jet.to_grid();
        // Anti-symmetric between the levels.
        for (b, t) in bottom.iter().zip(&top) {
            assert!((b + t).abs() < 1e-12);
        }
        // Zonally uniform: every x at fixed y identical.
        for iy in 0..n {
            for ix in 1..n {
                assert!((bottom[iy * n + ix] - bottom[iy * n]).abs() < 1e-12);
            }
        }
        // Peak amplitude matches.
        let max = bottom.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        assert!((max - 0.1).abs() < 0.01);
        assert!(jet.is_finite());
    }

    #[test]
    fn ic_is_real_and_reproducible() {
        let a = random_large_scale(32, 0.05, 9);
        let b = random_large_scale(32, 0.05, 9);
        assert_eq!(a, b);
        assert!(hermitian_defect_2d(a.level(0), 32) < 1e-9);
        assert!(hermitian_defect_2d(a.level(1), 32) < 1e-9);
    }

    #[test]
    fn ic_amplitude_scales() {
        let small = random_large_scale(32, 0.01, 3).total_variance();
        let large = random_large_scale(32, 0.1, 3).total_variance();
        assert!((large / small - 100.0).abs() < 1e-6, "variance should scale with amp^2");
    }

    #[test]
    fn ic_has_zero_mean() {
        let st = random_large_scale(16, 0.05, 4);
        let m = st.mean_buoyancy();
        assert!(m[0].abs() < 1e-12 && m[1].abs() < 1e-12);
    }

    #[test]
    fn perturb_changes_state_by_sigma() {
        let st = random_large_scale(16, 0.05, 4);
        let pert = perturb(&st, 0.02, 77);
        let a = st.to_state_vector();
        let b = pert.to_state_vector();
        let rms: f64 = (a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            / a.len() as f64)
            .sqrt();
        assert!((rms - 0.02).abs() < 0.004, "perturbation rms {rms}");
    }

    #[test]
    fn different_seeds_give_different_perturbations() {
        let st = random_large_scale(16, 0.05, 4);
        let p1 = perturb(&st, 0.02, 1).to_state_vector();
        let p2 = perturb(&st, 0.02, 2).to_state_vector();
        let diff: f64 = p1.iter().zip(&p2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6);
    }
}
