//! SQG dynamics: boundary-buoyancy inversion and nonlinear tendencies.
//!
//! Interior PV is zero, so the streamfunction is fully determined by the
//! buoyancy on the two boundaries. With μ = N K H / f the spectral inversion
//! is (Tulloch & Smith 2009, as implemented in `sqgturb`):
//!
//! ```text
//! ψ̂(0) = (1 / N K) [ θ̂(H)/sinh μ − θ̂(0)/tanh μ ]
//! ψ̂(H) = (1 / N K) [ θ̂(H)/tanh μ − θ̂(0)/sinh μ ]
//! ```
//!
//! Each boundary's buoyancy is advected by the geostrophic flow plus the
//! sheared background wind, with the mean meridional buoyancy gradient
//! providing the baroclinic energy source:
//!
//! ```text
//! ∂θ/∂t = −J(ψ, θ) − u_bg ∂θ/∂x − v ∂b̄/∂y  (+ Ekman at z = 0)
//! ```

use crate::grid::SpectralGrid;
use crate::params::SqgParams;
use crate::state::LEVELS;
use fft::{plan_cache, Complex, Direction, Fft2, Fft2Scratch};
use std::sync::Arc;

/// Inverts boundary buoyancy to boundary streamfunction, writing into `psi`.
///
/// `theta` and `psi` are two spectral `n*n` fields each.
// lint: no_alloc
pub fn invert(
    grid: &SpectralGrid,
    theta: &[Vec<Complex>; LEVELS],
    psi: &mut [Vec<Complex>; LEVELS],
) {
    let m = grid.n * grid.n;
    debug_assert!(theta[0].len() == m && psi[0].len() == m);
    for idx in 0..m {
        let fnk = grid.inv_nk[idx];
        if fnk == 0.0 { // lint: allow(float-exact-compare, reason="inv_nk is constructed exactly 0.0 at K = 0")
            // K = 0: no flow from the mean mode.
            psi[0][idx] = Complex::ZERO;
            psi[1][idx] = Complex::ZERO;
            continue;
        }
        let it = grid.inv_tanh_mu[idx];
        let is = grid.inv_sinh_mu[idx];
        let tb = theta[0][idx];
        let tt = theta[1][idx];
        psi[0][idx] = (tt * is - tb * it) * fnk;
        psi[1][idx] = (tt * it - tb * is) * fnk;
    }
}

/// Scratch buffers reused across tendency evaluations (8 complex grids plus
/// the FFT transpose scratch).
pub struct TendencyScratch {
    psi: [Vec<Complex>; LEVELS],
    u: Vec<Complex>,
    v: Vec<Complex>,
    tx: Vec<Complex>,
    ty: Vec<Complex>,
    adv: Vec<Complex>,
    fft: Fft2Scratch,
}

impl TendencyScratch {
    /// Allocates scratch for an `n x n` grid.
    pub fn new(n: usize) -> Self {
        let z = vec![Complex::ZERO; n * n];
        TendencyScratch {
            psi: [z.clone(), z.clone()],
            u: z.clone(),
            v: z.clone(),
            tx: z.clone(),
            ty: z.clone(),
            adv: z,
            fft: Fft2Scratch::new(),
        }
    }
}

/// Computes `dθ̂/dt` for both levels into `tend`.
///
/// `fwd`/`inv` are forward/inverse 2-D FFT plans for the model grid. The
/// nonlinear advection is evaluated pseudo-spectrally and dealiased with the
/// grid's 2/3 mask; the background-shear and mean-gradient terms are linear
/// and handled exactly in spectral space.
// lint: no_alloc
#[allow(clippy::too_many_arguments)]
pub fn tendency(
    p: &SqgParams,
    grid: &SpectralGrid,
    fwd: &Fft2,
    ifft: &Fft2,
    theta: &[Vec<Complex>; LEVELS],
    tend: &mut [Vec<Complex>; LEVELS],
    scratch: &mut TendencyScratch,
) {
    let n = grid.n;
    let m = n * n;
    telemetry::counter_add("sqg.tendency.calls", 1);
    invert(grid, theta, &mut scratch.psi);

    let ubg = p.background_wind();
    let bbar_y = p.mean_buoyancy_gradient();

    for l in 0..LEVELS {
        let th = &theta[l];
        let psi = &scratch.psi[l];

        // Spectral derivatives -> grid space.
        for i in 0..n {
            let ky = grid.ky[i];
            for j in 0..n {
                let kx = grid.kx[j];
                let idx = i * n + j;
                // u = -∂ψ/∂y, v = ∂ψ/∂x
                scratch.u[idx] = Complex::new(0.0, -ky) * psi[idx];
                scratch.v[idx] = Complex::new(0.0, kx) * psi[idx];
                scratch.tx[idx] = Complex::new(0.0, kx) * th[idx];
                scratch.ty[idx] = Complex::new(0.0, ky) * th[idx];
            }
        }
        {
            let _span = telemetry::span!("fft");
            ifft.process_with_scratch(&mut scratch.u, &mut scratch.fft);
            ifft.process_with_scratch(&mut scratch.v, &mut scratch.fft);
            ifft.process_with_scratch(&mut scratch.tx, &mut scratch.fft);
            ifft.process_with_scratch(&mut scratch.ty, &mut scratch.fft);
        }

        // Nonlinear advection in grid space (real parts; imaginary parts are
        // round-off because the physical fields are real).
        for idx in 0..m {
            let adv = scratch.u[idx].re * scratch.tx[idx].re
                + scratch.v[idx].re * scratch.ty[idx].re;
            scratch.adv[idx] = Complex::from_re(adv);
        }
        {
            let _span = telemetry::span!("fft");
            fwd.process_with_scratch(&mut scratch.adv, &mut scratch.fft);
        }

        // Assemble the spectral tendency with dealiasing on the product.
        let _span = telemetry::span!("dealias");
        let t = &mut tend[l];
        for i in 0..n {
            let ky = grid.ky[i];
            let _ = ky;
            for j in 0..n {
                let kx = grid.kx[j];
                let idx = i * n + j;
                let ikx = Complex::new(0.0, kx);
                let mut dt = -(scratch.adv[idx] * grid.dealias_mask[idx]);
                // Background advection: -u_bg ∂θ/∂x
                dt -= ikx * th[idx] * ubg[l];
                // Mean-gradient term: -v ∂b̄/∂y with v̂ = i kx ψ̂
                dt -= ikx * psi[idx] * bbar_y;
                t[idx] = dt;
            }
        }

        // Ekman damping acts on the bottom boundary only.
        if l == 0 && p.ekman != 0.0 { // lint: allow(float-exact-compare, reason="ekman = 0 is the exact feature-off sentinel")
            for idx in 0..m {
                let k2 = grid.kmag[idx] * grid.kmag[idx];
                tend[0][idx] += scratch.psi[0][idx] * (p.ekman * k2);
            }
        }
    }
}

/// Advances `theta` one step with classic RK4 on the advective terms and an
/// integrating-factor (exact exponential) treatment of hyperdiffusion, as in
/// the reference implementation.
pub struct Stepper {
    /// Model parameters.
    pub params: SqgParams,
    /// Precomputed spectral tables.
    pub grid: SpectralGrid,
    fwd: Arc<Fft2>,
    ifft: Arc<Fft2>,
    scratch: TendencyScratch,
    k1: [Vec<Complex>; LEVELS],
    k2: [Vec<Complex>; LEVELS],
    k3: [Vec<Complex>; LEVELS],
    k4: [Vec<Complex>; LEVELS],
    tmp: [Vec<Complex>; LEVELS],
    /// Spectral reference state for thermal relaxation (zeros by default).
    reference: [Vec<Complex>; LEVELS],
}

impl Stepper {
    /// Builds a stepper (plans + scratch) for the given parameters.
    pub fn new(params: SqgParams) -> Self {
        let grid = SpectralGrid::new(&params);
        let n = params.n;
        let z = vec![Complex::ZERO; n * n];
        let mk = || [z.clone(), z.clone()];
        Stepper {
            fwd: plan_cache::fft2(n, n, Direction::Forward),
            ifft: plan_cache::fft2(n, n, Direction::Inverse),
            scratch: TendencyScratch::new(n),
            grid,
            params,
            k1: mk(),
            k2: mk(),
            k3: mk(),
            k4: mk(),
            tmp: mk(),
            reference: mk(),
        }
    }

    /// Sets the spectral reference state for thermal relaxation
    /// (`params.tdiab` must be positive for it to act).
    pub fn set_reference(&mut self, reference: [Vec<Complex>; LEVELS]) {
        let m = self.grid.n * self.grid.n;
        assert!(reference[0].len() == m && reference[1].len() == m);
        self.reference = reference;
    }

    /// One RK4 step of length `params.dt` applied in place.
    // lint: no_alloc
    pub fn step(&mut self, theta: &mut [Vec<Complex>; LEVELS]) {
        let _span = telemetry::span!("sqg.step");
        telemetry::counter_add("sqg.steps", 1);
        let dt = self.params.dt;
        let m = self.grid.n * self.grid.n;

        tendency(&self.params, &self.grid, &self.fwd, &self.ifft, theta, &mut self.k1, &mut self.scratch);
        for l in 0..LEVELS {
            for idx in 0..m {
                self.tmp[l][idx] = theta[l][idx] + self.k1[l][idx] * (0.5 * dt);
            }
        }
        tendency(&self.params, &self.grid, &self.fwd, &self.ifft, &self.tmp, &mut self.k2, &mut self.scratch);
        for l in 0..LEVELS {
            for idx in 0..m {
                self.tmp[l][idx] = theta[l][idx] + self.k2[l][idx] * (0.5 * dt);
            }
        }
        tendency(&self.params, &self.grid, &self.fwd, &self.ifft, &self.tmp, &mut self.k3, &mut self.scratch);
        for l in 0..LEVELS {
            for idx in 0..m {
                self.tmp[l][idx] = theta[l][idx] + self.k3[l][idx] * dt;
            }
        }
        tendency(&self.params, &self.grid, &self.fwd, &self.ifft, &self.tmp, &mut self.k4, &mut self.scratch);

        let sixth = dt / 6.0;
        // Thermal relaxation handled split-step with its exact exponential,
        // like the hyperdiffusion (both are linear and stiff-safe this way).
        let relax = if self.params.tdiab > 0.0 {
            (-dt / self.params.tdiab).exp()
        } else {
            1.0
        };
        for l in 0..LEVELS {
            for idx in 0..m {
                let incr = (self.k1[l][idx]
                    + self.k2[l][idx] * 2.0
                    + self.k3[l][idx] * 2.0
                    + self.k4[l][idx])
                    * sixth;
                // Implicit hyperdiffusion: exact exponential decay per step.
                let mut next = (theta[l][idx] + incr) * self.grid.hyperdiff[idx];
                if relax < 1.0 {
                    let r = self.reference[l][idx];
                    next = r + (next - r) * relax;
                }
                theta[l][idx] = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SqgState;

    fn small_params() -> SqgParams {
        SqgParams { n: 16, ..Default::default() }
    }

    #[test]
    fn inversion_of_zero_is_zero() {
        let p = small_params();
        let grid = SpectralGrid::new(&p);
        let theta = [vec![Complex::ZERO; 256], vec![Complex::ZERO; 256]];
        let mut psi = theta.clone();
        invert(&grid, &theta, &mut psi);
        assert!(psi[0].iter().all(|z| z.abs() == 0.0));
    }

    #[test]
    fn inversion_sign_warm_anomaly_bottom() {
        // A warm (positive buoyancy) anomaly at the bottom boundary induces a
        // negative streamfunction there: ψ̂(0) = -(f/NK) θ̂(0) coth(μ).
        let p = small_params();
        let grid = SpectralGrid::new(&p);
        let n = p.n;
        let mut theta = [vec![Complex::ZERO; n * n], vec![Complex::ZERO; n * n]];
        let idx = 3; // mode (ky=0, kx=3)
        theta[0][idx] = Complex::ONE;
        let mut psi = theta.clone();
        invert(&grid, &theta, &mut psi);
        assert!(psi[0][idx].re < 0.0, "bottom psi should oppose bottom theta");
        // Top response is weaker in magnitude (evanescent decay).
        assert!(psi[1][idx].abs() < psi[0][idx].abs());
        // Top response has the same sign as -1/sinh < 0 times theta:
        assert!(psi[1][idx].re < 0.0);
    }

    #[test]
    fn inversion_is_linear() {
        let p = small_params();
        let grid = SpectralGrid::new(&p);
        let n = p.n;
        let mk = |seed: f64| -> [Vec<Complex>; 2] {
            let f = |i: usize| Complex::new((i as f64 * seed).sin(), (i as f64 * seed).cos());
            [(0..n * n).map(f).collect(), (0..n * n).map(|i| f(i + 7)).collect()]
        };
        let a = mk(0.37);
        let b = mk(0.91);
        let mut pa = a.clone();
        let mut pb = b.clone();
        let mut pab = a.clone();
        invert(&grid, &a, &mut pa);
        invert(&grid, &b, &mut pb);
        let sum = [
            a[0].iter().zip(&b[0]).map(|(x, y)| *x + *y).collect::<Vec<_>>(),
            a[1].iter().zip(&b[1]).map(|(x, y)| *x + *y).collect::<Vec<_>>(),
        ];
        invert(&grid, &sum, &mut pab);
        for l in 0..2 {
            for idx in 0..n * n {
                let want = pa[l][idx] + pb[l][idx];
                assert!((pab[l][idx] - want).abs() < 1e-10 * (1.0 + want.abs()));
            }
        }
    }

    #[test]
    fn zero_state_is_fixed_point() {
        let p = small_params();
        let mut stepper = Stepper::new(p.clone());
        let mut theta = [vec![Complex::ZERO; 256], vec![Complex::ZERO; 256]];
        stepper.step(&mut theta);
        assert!(theta[0].iter().chain(&theta[1]).all(|z| z.abs() < 1e-14));
    }

    #[test]
    fn mean_buoyancy_is_conserved() {
        // The DC mode has no dynamics (k=0 advection, no diffusion): domain
        // means of both levels are exact invariants.
        let p = small_params();
        let n = p.n;
        let mut stepper = Stepper::new(p);
        let mut st = random_state(n, 0.05, 42);
        st[0][0] = Complex::from_re(7.0 * (n * n) as f64);
        let dc0 = st[0][0];
        let dc1 = st[1][0];
        for _ in 0..10 {
            stepper.step(&mut st);
        }
        assert!((st[0][0] - dc0).abs() < 1e-9 * dc0.abs().max(1.0));
        assert!((st[1][0] - dc1).abs() < 1e-9);
    }

    fn random_state(n: usize, amp: f64, seed: u64) -> [Vec<Complex>; 2] {
        // Random low-wavenumber field built in grid space then transformed.
        let mut s = seed | 1;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut grids = [vec![0.0f64; n * n], vec![0.0f64; n * n]];
        for g in grids.iter_mut() {
            for kx in 1..4usize {
                for ky in 1..4usize {
                    let phase = next() * std::f64::consts::PI * 2.0;
                    let a = amp * next();
                    for i in 0..n {
                        for j in 0..n {
                            g[i * n + j] += a
                                * (2.0 * std::f64::consts::PI
                                    * (kx as f64 * j as f64 + ky as f64 * i as f64)
                                    / n as f64
                                    + phase)
                                    .cos();
                        }
                    }
                }
            }
        }
        let st = SqgState::from_grid(n, &grids);
        [st.level(0).to_vec(), st.level(1).to_vec()]
    }

    #[test]
    fn short_integration_stays_finite_and_real() {
        let p = small_params();
        let n = p.n;
        let mut stepper = Stepper::new(p);
        let mut st = random_state(n, 0.05, 7);
        for _ in 0..50 {
            stepper.step(&mut st);
        }
        let state = SqgState::from_spectral(n, st[0].clone(), st[1].clone());
        assert!(state.is_finite());
        // Hermitian symmetry preserved => grid fields real.
        let grids = state.to_grid();
        let back = SqgState::from_grid(n, &grids);
        for l in 0..2 {
            for (a, b) in st[l].iter().zip(back.level(l)) {
                assert!((*a - *b).abs() < 1e-8 * (1.0 + a.abs()), "lost Hermitian symmetry");
            }
        }
    }

    #[test]
    fn inviscid_unsheared_flow_conserves_variance() {
        // Without shear (no baroclinic source), Ekman or hyperdiffusion, the
        // advection conserves buoyancy variance; dealiased pseudo-spectral
        // RK4 should conserve it to high accuracy over short times.
        let p = SqgParams {
            n: 16,
            shear: 0.0,
            ekman: 0.0,
            diff_efold: 1e30, // effectively no hyperdiffusion
            ..Default::default()
        };
        let n = p.n;
        let mut stepper = Stepper::new(p);
        let mut st = random_state(n, 0.05, 99);
        let v0 = SqgState::from_spectral(n, st[0].clone(), st[1].clone()).total_variance();
        for _ in 0..20 {
            stepper.step(&mut st);
        }
        let v1 = SqgState::from_spectral(n, st[0].clone(), st[1].clone()).total_variance();
        assert!(
            (v1 - v0).abs() < 1e-4 * v0,
            "variance drifted: {v0} -> {v1}"
        );
    }

    #[test]
    fn hyperdiffusion_reduces_variance() {
        let p = SqgParams { n: 16, shear: 0.0, diff_efold: 900.0, ..Default::default() };
        let n = p.n;
        let mut stepper = Stepper::new(p);
        let mut st = random_state(n, 0.05, 5);
        // Put energy at small scales so the hyperdiffusion bites.
        for l in 0..2 {
            for idx in 0..n * n {
                if stepper.grid.kmag[idx] > 0.8 * stepper.grid.kmag.iter().cloned().fold(0.0, f64::max) {
                    st[l][idx] = Complex::new(0.01, 0.0);
                }
            }
        }
        // Restore Hermitian symmetry after the manual edit.
        let grids = SqgState::from_spectral(n, st[0].clone(), st[1].clone()).to_grid();
        let sym = SqgState::from_grid(n, &grids);
        let mut st = [sym.level(0).to_vec(), sym.level(1).to_vec()];
        let v0 = SqgState::from_spectral(n, st[0].clone(), st[1].clone()).total_variance();
        for _ in 0..10 {
            stepper.step(&mut st);
        }
        let v1 = SqgState::from_spectral(n, st[0].clone(), st[1].clone()).total_variance();
        assert!(v1 < v0, "hyperdiffusion must dissipate variance: {v0} -> {v1}");
    }

    #[test]
    fn thermal_relaxation_pulls_toward_reference() {
        // Pure relaxation (no shear/advection matters over one step): a zero
        // state relaxes toward the reference with rate dt/tdiab.
        let p = SqgParams { n: 16, shear: 0.0, tdiab: 9000.0, ..Default::default() };
        let n = p.n;
        let reference = random_state(n, 0.05, 21);
        let mut stepper = Stepper::new(p.clone());
        stepper.set_reference(reference.clone());
        let mut st = [vec![Complex::ZERO; n * n], vec![Complex::ZERO; n * n]];
        stepper.step(&mut st);
        // After one step: theta ≈ (1 - e^{-dt/tau}) * reference (plus tiny
        // advection of the relaxed increment next step; one step is clean).
        let frac = 1.0 - (-p.dt / p.tdiab).exp();
        let mut worst = 0.0f64;
        for l in 0..2 {
            for idx in 1..n * n {
                let want = reference[l][idx] * frac;
                worst = worst.max((st[l][idx] - want).abs());
            }
        }
        let scale = reference[0].iter().map(|z| z.abs()).fold(0.0, f64::max);
        assert!(worst < 1e-6 * scale.max(1e-30), "relaxation off: {worst}");
    }

    #[test]
    fn relaxation_disabled_by_default() {
        let p = SqgParams { n: 16, shear: 0.0, ..Default::default() };
        let n = p.n;
        let mut stepper = Stepper::new(p);
        stepper.set_reference(random_state(n, 0.05, 22));
        let mut st = [vec![Complex::ZERO; n * n], vec![Complex::ZERO; n * n]];
        stepper.step(&mut st);
        // tdiab = 0: the reference must not leak into the state.
        assert!(st[0].iter().chain(&st[1]).all(|z| z.abs() < 1e-14));
    }

    #[test]
    fn baroclinic_instability_grows_perturbations() {
        // With shear on, small perturbations at deformation-radius scales
        // should extract energy from the mean state (Eady growth).
        let p = SqgParams { n: 32, ..Default::default() };
        let n = p.n;
        let mut stepper = Stepper::new(p);
        let mut st = random_state(n, 1e-4, 11);
        let v0 = SqgState::from_spectral(n, st[0].clone(), st[1].clone()).total_variance();
        for _ in 0..200 {
            stepper.step(&mut st);
        }
        let v1 = SqgState::from_spectral(n, st[0].clone(), st[1].clone()).total_variance();
        assert!(v1 > 1.5 * v0, "expected baroclinic growth: {v0} -> {v1}");
    }
}
