//! Property-based tests for the SQG model.

use proptest::prelude::*;
use sqg::{dynamics, SpectralGrid, SqgModel, SqgParams, SqgState};

fn small_params() -> SqgParams {
    SqgParams { n: 16, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Grid/state round trip: any real field survives
    /// grid → spectral → grid.
    #[test]
    fn state_vector_round_trip(v in prop::collection::vec(-10.0f64..10.0, 512)) {
        let st = SqgState::from_state_vector(16, &v);
        let back = st.to_state_vector();
        for (a, b) in v.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// The inversion is linear: invert(a·θ) == a·invert(θ).
    #[test]
    fn inversion_homogeneous(
        v in prop::collection::vec(-1.0f64..1.0, 512),
        a in -5.0f64..5.0,
    ) {
        let p = small_params();
        let grid = SpectralGrid::new(&p);
        let st = SqgState::from_state_vector(16, &v);
        let theta = [st.level(0).to_vec(), st.level(1).to_vec()];
        let mut psi = theta.clone();
        dynamics::invert(&grid, &theta, &mut psi);

        let scaled: Vec<f64> = v.iter().map(|x| a * x).collect();
        let st2 = SqgState::from_state_vector(16, &scaled);
        let theta2 = [st2.level(0).to_vec(), st2.level(1).to_vec()];
        let mut psi2 = theta2.clone();
        dynamics::invert(&grid, &theta2, &mut psi2);

        for l in 0..2 {
            for (z1, z2) in psi[l].iter().zip(&psi2[l]) {
                let want = *z1 * a;
                prop_assert!((*z2 - want).abs() < 1e-6 * (1.0 + want.abs()));
            }
        }
    }

    /// Time stepping preserves the domain means of both levels exactly and
    /// keeps the state finite, from any moderate initial condition.
    #[test]
    fn step_preserves_means_and_finiteness(
        v in prop::collection::vec(-0.05f64..0.05, 512),
        steps in 1usize..5,
    ) {
        let mut model = SqgModel::new(small_params());
        let mut state = v.clone();
        let mean_before: [f64; 2] = [
            v[..256].iter().sum::<f64>() / 256.0,
            v[256..].iter().sum::<f64>() / 256.0,
        ];
        model.forecast(&mut state, steps);
        prop_assert!(state.iter().all(|x| x.is_finite()));
        let mean_after: [f64; 2] = [
            state[..256].iter().sum::<f64>() / 256.0,
            state[256..].iter().sum::<f64>() / 256.0,
        ];
        for l in 0..2 {
            prop_assert!(
                (mean_before[l] - mean_after[l]).abs() < 1e-9 * (1.0 + mean_before[l].abs()),
                "level {l}: {} -> {}", mean_before[l], mean_after[l]
            );
        }
    }

    /// Determinism: the same initial state always evolves identically.
    #[test]
    fn forecast_deterministic(v in prop::collection::vec(-0.05f64..0.05, 512)) {
        let mut m1 = SqgModel::new(small_params());
        let mut m2 = SqgModel::new(small_params());
        let mut a = v.clone();
        let mut b = v;
        m1.forecast(&mut a, 3);
        m2.forecast(&mut b, 3);
        prop_assert_eq!(a, b);
    }
}

fn sample_trajectory() -> sqg::io::Trajectory {
    let mut traj = sqg::io::Trajectory::new(4, 12.0);
    for k in 0..3usize {
        let snap: Vec<f64> = (0..32).map(|i| ((i + k * 32) as f64 * 0.1).sin()).collect();
        traj.push(&snap);
    }
    traj
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decoding is total under truncation: every strict prefix of a valid
    /// buffer is rejected with an error, never a panic.
    #[test]
    fn trajectory_truncation_always_rejected(cut in 0usize..800) {
        let full = sample_trajectory().to_bytes();
        prop_assume!(cut < full.len());
        let prefix = bytes::Bytes::from(full[..cut].to_vec());
        prop_assert!(sqg::io::Trajectory::from_bytes(&prefix).is_err());
    }

    /// Decoding never propagates garbage: flipping any byte of a valid
    /// buffer either fails cleanly or still yields an all-finite
    /// trajectory of the advertised shape.
    #[test]
    fn trajectory_corruption_never_yields_nonfinite(
        pos in 0usize..800,
        flip in 1u8..=255,
    ) {
        let full = sample_trajectory().to_bytes();
        prop_assume!(pos < full.len());
        let mut raw = full.to_vec();
        raw[pos] ^= flip;
        match sqg::io::Trajectory::from_bytes(&bytes::Bytes::from(raw)) {
            Err(_) => {}
            Ok(t) => {
                for snap in &t.snapshots {
                    prop_assert_eq!(snap.len(), 2 * t.n * t.n);
                    prop_assert!(snap.iter().all(|v| v.is_finite()));
                }
            }
        }
    }

    /// NaN payloads are rejected no matter which snapshot value is hit.
    #[test]
    fn trajectory_nan_anywhere_rejected(slot in 0usize..96) {
        let full = sample_trajectory().to_bytes();
        let mut raw = full.to_vec();
        let off = 32 + slot * 8;
        raw[off..off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        let err = sqg::io::Trajectory::from_bytes(&bytes::Bytes::from(raw)).unwrap_err();
        prop_assert_eq!(err, sqg::io::TrajectoryError::NonFinite { snapshot: slot / 32 });
    }
}
