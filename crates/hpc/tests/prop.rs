//! Property-based tests for the performance models and the simulated MPI.

use hpc::mpi::run_world;
use hpc::{
    bus_bandwidth, collective_time, collective_with_retry, simulate_step, Collective,
    CollectiveError, RankFault, RetryPolicy, Strategy, Topology, TrainJob,
};
use proptest::prelude::*;

/// Seeded per-rank payload: deterministic, distinct across `(rank, i)`.
fn payload(seed: u64, rank: usize, i: usize) -> f64 {
    let x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((rank * 8191 + i) as u64)
        .wrapping_mul(0xD129_0B26_88CC_FC91);
    (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

const MB: u64 = 1024 * 1024;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Collective times are positive and monotone in message size.
    #[test]
    fn collective_time_monotone_in_size(
        gcds_exp in 1u32..10,
        mb in 1u64..512,
    ) {
        let gcds = 1usize << gcds_exp;
        let topo = Topology::frontier(gcds);
        for op in [Collective::AllReduce, Collective::AllGather, Collective::ReduceScatter] {
            let t1 = collective_time(&topo, op, gcds, mb * MB);
            let t2 = collective_time(&topo, op, gcds, 2 * mb * MB);
            prop_assert!(t1 > 0.0 && t1.is_finite());
            prop_assert!(t2 >= t1, "{op:?}: doubling size reduced time");
        }
    }

    /// Bus bandwidth never exceeds the fastest physical link.
    #[test]
    fn busbw_bounded_by_hardware(
        gcds_exp in 1u32..10,
        mb in 1u64..2048,
    ) {
        let gcds = 1usize << gcds_exp;
        let topo = Topology::frontier(gcds);
        for op in [Collective::AllReduce, Collective::AllGather, Collective::ReduceScatter] {
            let bw = bus_bandwidth(&topo, op, gcds, mb * MB);
            prop_assert!(bw <= topo.paired_gcd_bw * 1.001, "{op:?} exceeded hardware: {bw:.3e}");
        }
    }

    /// Memory accounting: sharding over more ranks never increases the
    /// per-GCD footprint, and DDP is always the upper bound.
    #[test]
    fn memory_monotone_in_ranks(
        params in 1_000_000u64..10_000_000_000,
        ranks_exp in 0u32..11,
    ) {
        let ranks = 1usize << ranks_exp;
        let ddp = Strategy::Ddp.memory_per_gcd(params, ranks, 8);
        for s in [
            Strategy::ZeroStage1,
            Strategy::ZeroStage2,
            Strategy::ZeroStage3,
            Strategy::FsdpHybrid,
        ] {
            let m = s.memory_per_gcd(params, ranks, 8);
            prop_assert!(m <= ddp + 1e-6, "{s:?} exceeded DDP");
            if ranks > 1 {
                let m2 = s.memory_per_gcd(params, 2 * ranks, 8);
                prop_assert!(m2 <= m + 1e-6, "{s:?} grew with ranks");
            }
        }
    }

    /// Step simulation: totals are positive, fractions sum to 1, and
    /// comm_exposed never exceeds comm_total.
    #[test]
    fn step_breakdown_consistent(
        size_idx in 0usize..3,
        gcds_exp in 3u32..10,
        bucket_mb in 10u64..1000,
    ) {
        let size = [64usize, 128, 256][size_idx];
        let gcds = 1usize << gcds_exp;
        let topo = Topology::frontier(gcds);
        let job = TrainJob::table2(size);
        for s in [Strategy::Ddp, Strategy::ZeroStage1, Strategy::FsdpFullShard] {
            let b = simulate_step(&topo, &job, s, gcds, bucket_mb * MB);
            prop_assert!(b.total() > 0.0 && b.total().is_finite());
            prop_assert!(b.comm_exposed <= b.comm_total + 1e-12);
            let (c, m, i) = b.fractions();
            prop_assert!((c + m + i - 1.0).abs() < 1e-9);
        }
    }

    /// Simulated MPI: allreduce equals the analytic sum for any world size
    /// and payload.
    #[test]
    fn mpi_allreduce_correct(
        size in 1usize..9,
        payload in prop::collection::vec(-100.0f64..100.0, 1..32),
    ) {
        let len = payload.len();
        let results = run_world(size, |comm| {
            // Each rank contributes payload * (rank+1).
            let mut buf: Vec<f64> =
                payload.iter().map(|v| v * (comm.rank() + 1) as f64).collect();
            comm.allreduce_sum(&mut buf);
            buf
        });
        let factor: f64 = (1..=size).map(|r| r as f64).sum();
        for r in &results {
            prop_assert_eq!(r.len(), len);
            for (got, want) in r.iter().zip(&payload) {
                prop_assert!((got - want * factor).abs() < 1e-9 * (1.0 + want.abs() * factor));
            }
        }
    }

    /// Simulated MPI point-to-point: tagged streams from several senders,
    /// consumed by selective recvs in an arbitrary interleaving, arrive with
    /// no loss, no duplication, no tag/source mixups, and in send order per
    /// `(src, tag)` — MPI's non-overtaking guarantee. The receiver's
    /// schedule is a seeded permutation of the whole message multiset, so
    /// many messages of one key sit in the out-of-order buffer while other
    /// keys drain (the scenario that exposed the `swap_remove` reordering).
    #[test]
    fn mpi_tagged_streams_fifo_no_loss_no_dup(
        n_senders in 1usize..4,
        counts in prop::collection::vec(0usize..5, 2..7),
        order_seed in 0u64..u64::MAX,
    ) {
        // Key k holds counts[k] messages and maps to a distinct (src, tag).
        let key = |k: usize| (1 + k % n_senders, (k / n_senders) as u64);
        let total: usize = counts.iter().sum();
        let counts = &counts;
        let results = run_world(n_senders + 1, |comm| {
            if comm.rank() == 0 {
                // Receive schedule: every (key, i) occurrence, permuted by a
                // seeded Fisher–Yates. Within one key the i-th selective
                // recv must yield the i-th message sent.
                let mut sched: Vec<usize> = Vec::new();
                for (k, &c) in counts.iter().enumerate() {
                    sched.extend(std::iter::repeat_n(k, c));
                }
                let mut s = order_seed | 1;
                for i in (1..sched.len()).rev() {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let j = (s >> 33) as usize % (i + 1);
                    sched.swap(i, j);
                }
                let mut next_seq = vec![0usize; counts.len()];
                for &k in &sched {
                    let (src, tag) = key(k);
                    let got = comm.recv(src, tag);
                    assert_eq!(got.len(), 3, "payload shape");
                    assert_eq!(got[0] as usize, src, "source mixup");
                    assert_eq!(got[1] as u64, tag, "tag mixup");
                    assert_eq!(
                        got[2] as usize, next_seq[k],
                        "FIFO violated for src {src} tag {tag}"
                    );
                    next_seq[k] += 1;
                }
                sched.len()
            } else {
                // Each sender emits its keys' messages in (key, seq) order.
                let mut sent = 0usize;
                for (k, &c) in counts.iter().enumerate() {
                    let (src, tag) = key(k);
                    if src != comm.rank() {
                        continue;
                    }
                    for seq in 0..c {
                        comm.send(0, tag, &[src as f64, tag as f64, seq as f64]);
                        sent += 1;
                    }
                }
                sent
            }
        });
        // Conservation: the receiver consumed exactly what the senders sent.
        prop_assert_eq!(results[0], total);
        let sent_total: usize = results[1..].iter().sum();
        prop_assert_eq!(sent_total, total);
    }

    /// Allreduce equals the *bitwise* serial fold in ascending rank order
    /// for every world size 1..=8 — the property the distributed filter's
    /// determinism contract leans on (the root accumulates rank 0, 1, 2, …
    /// regardless of which thread's contribution arrives first).
    #[test]
    fn mpi_allreduce_is_bitwise_serial_fold(
        size in 1usize..=8,
        len in 1usize..24,
        seed in 0u64..u64::MAX,
    ) {
        let results = run_world(size, |comm| {
            let mut buf: Vec<f64> =
                (0..len).map(|i| payload(seed, comm.rank(), i)).collect();
            comm.allreduce_sum(&mut buf);
            buf
        });
        // Serial fold, strictly ascending rank order.
        let expected: Vec<f64> = (0..len)
            .map(|i| {
                let mut acc = payload(seed, 0, i);
                for r in 1..size {
                    acc += payload(seed, r, i);
                }
                acc
            })
            .collect();
        let want: Vec<u64> = expected.iter().map(|v| v.to_bits()).collect();
        for (r, got) in results.iter().enumerate() {
            let bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&bits, &want, "rank {} disagrees with the serial fold", r);
        }
    }

    /// The data-movement collectives (broadcast, scatter, gather, allgather
    /// and its concatenating variant) move every payload exactly — right
    /// block to the right rank, rank order preserved — for world sizes
    /// 1..=8 and ragged per-rank lengths.
    #[test]
    fn mpi_data_movement_collectives_are_exact(
        size in 1usize..=8,
        base_len in 1usize..8,
        seed in 0u64..u64::MAX,
    ) {
        // Ragged parts: rank r owns base_len + (r % 3) elements.
        let part = |r: usize| -> Vec<f64> {
            (0..base_len + r % 3).map(|i| payload(seed, r, i)).collect()
        };
        let parts: Vec<Vec<f64>> = (0..size).map(part).collect();
        let concat: Vec<f64> = parts.concat();
        let results = run_world(size, |comm| {
            let r = comm.rank();
            // Scatter: rank 0 distributes, each rank gets exactly its part.
            let scattered =
                comm.scatter(if r == 0 { Some(&parts) } else { None });
            assert_eq!(scattered, parts[r], "scatter gave rank {r} the wrong block");
            // Gather: root reassembles the parts in rank order.
            if let Some(gathered) = comm.gather(&scattered) {
                assert_eq!(gathered, parts, "gather shuffled the parts");
            }
            // Broadcast: everyone ends with rank 0's payload.
            let mut b = if r == 0 { parts[0].clone() } else { Vec::new() };
            comm.broadcast(&mut b);
            assert_eq!(b, parts[0], "broadcast corrupted rank 0's payload");
            // Allgather (+ concat): replicated, rank-ordered, ragged-safe.
            let all = comm.allgather(&scattered);
            assert_eq!(all, parts, "allgather lost rank order");
            comm.allgather_concat(&scattered)
        });
        for (r, got) in results.iter().enumerate() {
            prop_assert_eq!(got, &concat, "allgather_concat wrong on rank {}", r);
        }
    }

    /// The fault-tolerant retry model is a pure function of its inputs with
    /// exact ULFM-shrink semantics: permanent faults are excluded up front,
    /// the worst surviving transient fault fixes the attempt count, and the
    /// budget bounds everything. Evaluating it twice (as every simulated
    /// rank does) must give identical results — that purity is what lets
    /// `crates/dist` fail consistently on all ranks with no agreement
    /// protocol.
    #[test]
    fn retry_model_is_pure_with_exact_shrink_semantics(
        gcds in 1usize..=8,
        fault_ranks_raw in prop::collection::vec(0usize..8, 0..4),
        failures in 0u32..6,
        permanent_mask in 0u8..16,
        max_retries in 0u32..5,
    ) {
        // One fault script entry per distinct rank (a duplicated permanent
        // rank would double-count in the shrink bookkeeping).
        let mut fault_ranks = fault_ranks_raw;
        fault_ranks.sort_unstable();
        fault_ranks.dedup();
        let faults: Vec<RankFault> = fault_ranks
            .iter()
            .enumerate()
            .map(|(i, &rank)| RankFault {
                rank,
                failures,
                permanent: permanent_mask & (1 << i) != 0,
            })
            .collect();
        let policy = RetryPolicy { max_retries, ..Default::default() };
        let topo = Topology::frontier(gcds);
        let run = || collective_with_retry(
            &topo, Collective::AllReduce, gcds, MB, &faults, &policy,
        );
        let first = run();
        prop_assert_eq!(&first, &run(), "retry model is not deterministic");

        let expected_excluded: Vec<usize> = faults
            .iter()
            .filter(|f| f.permanent && f.rank < gcds)
            .map(|f| f.rank)
            .collect();
        let transient = faults
            .iter()
            .filter(|f| !f.permanent && f.rank < gcds && !expected_excluded.contains(&f.rank))
            .map(|f| f.failures)
            .max()
            .unwrap_or(0);
        match first {
            Ok(r) => {
                prop_assert_eq!(r.excluded, expected_excluded.clone());
                prop_assert_eq!(r.participants, gcds - expected_excluded.len());
                prop_assert_eq!(r.attempts, transient + 1);
                prop_assert!(r.attempts <= 1 + max_retries);
                prop_assert!(r.time > 0.0 && r.time.is_finite());
            }
            Err(CollectiveError::NoSurvivors) => {
                prop_assert_eq!(expected_excluded.len(), gcds, "shrink had survivors");
            }
            Err(CollectiveError::Exhausted { attempts }) => {
                prop_assert_eq!(attempts, 1 + max_retries);
                prop_assert!(transient >= attempts, "budget sufficed but model gave up");
            }
        }
    }
}
