//! Property-based tests for the performance models and the simulated MPI.

use hpc::mpi::run_world;
use hpc::{
    bus_bandwidth, collective_time, simulate_step, Collective, Strategy, Topology, TrainJob,
};
use proptest::prelude::*;

const MB: u64 = 1024 * 1024;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Collective times are positive and monotone in message size.
    #[test]
    fn collective_time_monotone_in_size(
        gcds_exp in 1u32..10,
        mb in 1u64..512,
    ) {
        let gcds = 1usize << gcds_exp;
        let topo = Topology::frontier(gcds);
        for op in [Collective::AllReduce, Collective::AllGather, Collective::ReduceScatter] {
            let t1 = collective_time(&topo, op, gcds, mb * MB);
            let t2 = collective_time(&topo, op, gcds, 2 * mb * MB);
            prop_assert!(t1 > 0.0 && t1.is_finite());
            prop_assert!(t2 >= t1, "{op:?}: doubling size reduced time");
        }
    }

    /// Bus bandwidth never exceeds the fastest physical link.
    #[test]
    fn busbw_bounded_by_hardware(
        gcds_exp in 1u32..10,
        mb in 1u64..2048,
    ) {
        let gcds = 1usize << gcds_exp;
        let topo = Topology::frontier(gcds);
        for op in [Collective::AllReduce, Collective::AllGather, Collective::ReduceScatter] {
            let bw = bus_bandwidth(&topo, op, gcds, mb * MB);
            prop_assert!(bw <= topo.paired_gcd_bw * 1.001, "{op:?} exceeded hardware: {bw:.3e}");
        }
    }

    /// Memory accounting: sharding over more ranks never increases the
    /// per-GCD footprint, and DDP is always the upper bound.
    #[test]
    fn memory_monotone_in_ranks(
        params in 1_000_000u64..10_000_000_000,
        ranks_exp in 0u32..11,
    ) {
        let ranks = 1usize << ranks_exp;
        let ddp = Strategy::Ddp.memory_per_gcd(params, ranks, 8);
        for s in [
            Strategy::ZeroStage1,
            Strategy::ZeroStage2,
            Strategy::ZeroStage3,
            Strategy::FsdpHybrid,
        ] {
            let m = s.memory_per_gcd(params, ranks, 8);
            prop_assert!(m <= ddp + 1e-6, "{s:?} exceeded DDP");
            if ranks > 1 {
                let m2 = s.memory_per_gcd(params, 2 * ranks, 8);
                prop_assert!(m2 <= m + 1e-6, "{s:?} grew with ranks");
            }
        }
    }

    /// Step simulation: totals are positive, fractions sum to 1, and
    /// comm_exposed never exceeds comm_total.
    #[test]
    fn step_breakdown_consistent(
        size_idx in 0usize..3,
        gcds_exp in 3u32..10,
        bucket_mb in 10u64..1000,
    ) {
        let size = [64usize, 128, 256][size_idx];
        let gcds = 1usize << gcds_exp;
        let topo = Topology::frontier(gcds);
        let job = TrainJob::table2(size);
        for s in [Strategy::Ddp, Strategy::ZeroStage1, Strategy::FsdpFullShard] {
            let b = simulate_step(&topo, &job, s, gcds, bucket_mb * MB);
            prop_assert!(b.total() > 0.0 && b.total().is_finite());
            prop_assert!(b.comm_exposed <= b.comm_total + 1e-12);
            let (c, m, i) = b.fractions();
            prop_assert!((c + m + i - 1.0).abs() < 1e-9);
        }
    }

    /// Simulated MPI: allreduce equals the analytic sum for any world size
    /// and payload.
    #[test]
    fn mpi_allreduce_correct(
        size in 1usize..9,
        payload in prop::collection::vec(-100.0f64..100.0, 1..32),
    ) {
        let len = payload.len();
        let results = run_world(size, |comm| {
            // Each rank contributes payload * (rank+1).
            let mut buf: Vec<f64> =
                payload.iter().map(|v| v * (comm.rank() + 1) as f64).collect();
            comm.allreduce_sum(&mut buf);
            buf
        });
        let factor: f64 = (1..=size).map(|r| r as f64).sum();
        for r in &results {
            prop_assert_eq!(r.len(), len);
            for (got, want) in r.iter().zip(&payload) {
                prop_assert!((got - want * factor).abs() < 1e-9 * (1.0 + want.abs() * factor));
            }
        }
    }

    /// Simulated MPI point-to-point: tagged streams from several senders,
    /// consumed by selective recvs in an arbitrary interleaving, arrive with
    /// no loss, no duplication, no tag/source mixups, and in send order per
    /// `(src, tag)` — MPI's non-overtaking guarantee. The receiver's
    /// schedule is a seeded permutation of the whole message multiset, so
    /// many messages of one key sit in the out-of-order buffer while other
    /// keys drain (the scenario that exposed the `swap_remove` reordering).
    #[test]
    fn mpi_tagged_streams_fifo_no_loss_no_dup(
        n_senders in 1usize..4,
        counts in prop::collection::vec(0usize..5, 2..7),
        order_seed in 0u64..u64::MAX,
    ) {
        // Key k holds counts[k] messages and maps to a distinct (src, tag).
        let key = |k: usize| (1 + k % n_senders, (k / n_senders) as u64);
        let total: usize = counts.iter().sum();
        let counts = &counts;
        let results = run_world(n_senders + 1, |comm| {
            if comm.rank() == 0 {
                // Receive schedule: every (key, i) occurrence, permuted by a
                // seeded Fisher–Yates. Within one key the i-th selective
                // recv must yield the i-th message sent.
                let mut sched: Vec<usize> = Vec::new();
                for (k, &c) in counts.iter().enumerate() {
                    sched.extend(std::iter::repeat_n(k, c));
                }
                let mut s = order_seed | 1;
                for i in (1..sched.len()).rev() {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let j = (s >> 33) as usize % (i + 1);
                    sched.swap(i, j);
                }
                let mut next_seq = vec![0usize; counts.len()];
                for &k in &sched {
                    let (src, tag) = key(k);
                    let got = comm.recv(src, tag);
                    assert_eq!(got.len(), 3, "payload shape");
                    assert_eq!(got[0] as usize, src, "source mixup");
                    assert_eq!(got[1] as u64, tag, "tag mixup");
                    assert_eq!(
                        got[2] as usize, next_seq[k],
                        "FIFO violated for src {src} tag {tag}"
                    );
                    next_seq[k] += 1;
                }
                sched.len()
            } else {
                // Each sender emits its keys' messages in (key, seq) order.
                let mut sent = 0usize;
                for (k, &c) in counts.iter().enumerate() {
                    let (src, tag) = key(k);
                    if src != comm.rank() {
                        continue;
                    }
                    for seq in 0..c {
                        comm.send(0, tag, &[src as f64, tag as f64, seq as f64]);
                        sent += 1;
                    }
                }
                sent
            }
        });
        // Conservation: the receiver consumed exactly what the senders sent.
        prop_assert_eq!(results[0], total);
        let sent_total: usize = results[1..].iter().sum();
        prop_assert_eq!(sent_total, total);
    }
}
