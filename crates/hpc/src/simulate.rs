//! Training-step and EnSF performance simulation (Figs. 7, 9, 10).
//!
//! A training step = compute (GEMM model) + exposed communication
//! (collective model, bucketed, partially overlapped with backprop) + IO
//! (dataset reads + amortized checkpointing). Strong-scaling curves follow
//! by sweeping the GCD count with the per-GCD batch fixed.

use crate::collective::{collective_time, Collective};
use crate::gemm_model::{achieved_flops, KernelShape};
use crate::strategy::Strategy;
use crate::topology::Topology;

/// A distributed training job description.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainJob {
    /// Model parameters.
    pub params: u64,
    /// Tokens per sample (`(input/patch)²`).
    pub tokens_per_sample: usize,
    /// Samples per GCD per step.
    pub batch_per_gcd: usize,
    /// GEMM shape knobs for the compute model.
    pub shape: KernelShape,
    /// Bytes of one input sample (IO model).
    pub sample_bytes: u64,
}

impl TrainJob {
    /// The Table II job for a given input size, with the per-GCD batch
    /// set by the 64 GB activation budget (≈ tokens · d · depth bound).
    ///
    /// # Panics
    /// Panics for input sizes other than the paper's 64/128/256.
    pub fn table2(input_size: usize) -> TrainJob {
        let (params, tokens, shape, batch): (u64, usize, KernelShape, usize) = match input_size {
            64 => (
                157_000_000,
                256,
                KernelShape { embed_dim: 1024, heads: 8, mlp_ratio: 4 },
                4,
            ),
            128 => (
                1_200_000_000,
                1024,
                KernelShape { embed_dim: 2048, heads: 8, mlp_ratio: 4 },
                2,
            ),
            256 => (
                2_500_000_000,
                4096,
                KernelShape { embed_dim: 2048, heads: 8, mlp_ratio: 4 },
                1,
            ),
            other => panic!("Table II defines 64/128/256, got {other}"),
        };
        TrainJob {
            params,
            tokens_per_sample: tokens,
            batch_per_gcd: batch,
            shape,
            sample_bytes: (input_size * input_size * 2 * 4) as u64,
        }
    }
}

/// One step's wall-time decomposition [s].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepBreakdown {
    /// GEMM/compute time.
    pub compute: f64,
    /// Communication *not* hidden behind compute.
    pub comm_exposed: f64,
    /// Raw (unoverlapped) communication time.
    pub comm_total: f64,
    /// Dataset reads + amortized checkpoint writes.
    pub io: f64,
}

impl StepBreakdown {
    /// Total step wall time.
    pub fn total(&self) -> f64 {
        self.compute + self.comm_exposed + self.io
    }

    /// Fractions `(compute, comm, io)` of the step (Fig. 7's bars).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total();
        (self.compute / t, self.comm_exposed / t, self.io / t)
    }
}

/// Per-GCD dataset read bandwidth (Lustre, shared) [bytes/s].
const IO_BW: f64 = 0.5e9;
/// Amortized checkpoint write rate per step: params · 12 B every 200 steps
/// at 100 GB/s aggregate burst buffer.
const CKPT_AMORT: f64 = 12.0 / (200.0 * 100.0e9);

/// Overlap fraction of communication hidden behind backprop compute.
fn overlap_fraction(strategy: Strategy, bucket_bytes: u64, total_bytes: u64) -> f64 {
    let bucket_share = bucket_bytes as f64 / total_bytes.max(1) as f64;
    match strategy {
        // PyTorch DDP's bucketed gradient AllReduce pipelines very well.
        Strategy::Ddp => 0.92 * (1.0 - 0.3 * bucket_share).max(0.0),
        // DeepSpeed's bucketed AllReduce overlaps somewhat less (launch from
        // Python-side hooks), and large buckets leave less to pipeline.
        Strategy::ZeroStage1 | Strategy::ZeroStage2 => {
            0.85 * (1.0 - bucket_share).max(0.0)
        }
        // Parameter all-gathers block the forward pass: little overlap.
        Strategy::FsdpShardGradOp => 0.5,
        Strategy::ZeroStage3 | Strategy::FsdpFullShard | Strategy::FsdpHybrid => 0.3,
    }
}

/// Simulates one training step.
pub fn simulate_step(
    topo: &Topology,
    job: &TrainJob,
    strategy: Strategy,
    gcds: usize,
    bucket_bytes: u64,
) -> StepBreakdown {
    assert!(gcds >= 1 && gcds <= topo.total_gcds());
    assert!(bucket_bytes > 0, "bucket size must be positive");

    // Compute: Eq. 18 per-step FLOPs over the achieved-rate model.
    let flops = 6.0 * job.tokens_per_sample as f64 * job.batch_per_gcd as f64
        * job.params as f64;
    let compute = flops / achieved_flops(job.shape);

    // Communication: each pattern entry split into buckets.
    let mut comm_total = 0.0;
    let mut wire_total = 0u64;
    for (op, bytes) in strategy.comm_pattern(job.params) {
        wire_total += bytes;
        let buckets = bytes.div_ceil(bucket_bytes);
        let last = bytes - (buckets - 1) * bucket_bytes;
        if buckets > 1 {
            comm_total +=
                (buckets - 1) as f64 * collective_time(topo, op, gcds, bucket_bytes);
        }
        comm_total += collective_time(topo, op, gcds, last);
    }
    telemetry::counter_add("hpc.sim.steps", 1);
    telemetry::counter_add("hpc.comm.bytes", wire_total);
    if gcds == 1 {
        comm_total = 0.0;
    }
    let hidden = overlap_fraction(strategy, bucket_bytes, wire_total)
        * comm_total.min(0.95 * compute);
    let comm_exposed = (comm_total - hidden).max(0.0);

    // IO: read this step's samples + amortized checkpoints.
    let io = job.batch_per_gcd as f64 * job.sample_bytes as f64 / IO_BW
        + job.params as f64 * CKPT_AMORT;

    StepBreakdown { compute, comm_exposed, comm_total, io }
}

/// Strong-scaling curve: throughput [samples/s] and efficiency relative to
/// perfect scaling from the first entry of `gcds_list`.
pub fn scaling_curve(
    topo_of: impl Fn(usize) -> Topology,
    job: &TrainJob,
    strategy: Strategy,
    gcds_list: &[usize],
    bucket_bytes: u64,
) -> Vec<(usize, f64, f64)> {
    assert!(!gcds_list.is_empty());
    let base_gcds = gcds_list[0];
    let base = {
        let topo = topo_of(base_gcds);
        let t = simulate_step(&topo, job, strategy, base_gcds, bucket_bytes).total();
        base_gcds as f64 * job.batch_per_gcd as f64 / t
    };
    gcds_list
        .iter()
        .map(|&g| {
            let topo = topo_of(g);
            let t = simulate_step(&topo, job, strategy, g, bucket_bytes).total();
            let throughput = g as f64 * job.batch_per_gcd as f64 / t;
            let eff = throughput / (base * g as f64 / base_gcds as f64);
            (g, throughput, eff)
        })
        .collect()
}

/// EnSF cost model for the Fig. 10 weak-scaling study: ensemble-parallel,
/// per-rank work `∝ dim · members_per_rank · sde_steps`, followed by one
/// reduction of the state vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsfJob {
    /// State dimension.
    pub dim: u64,
    /// Ensemble members per rank.
    pub members_per_rank: usize,
    /// Reverse-SDE steps per analysis.
    pub sde_steps: usize,
}

/// Calibrated per-element throughput of the EnSF update on one GCD
/// [score-element-updates/s]: reproduces the paper's 0.4 s per step at
/// dim = 10⁶ (20 members, 50 SDE steps → 10⁹ updates in 0.4 s).
pub const ENSF_GCD_RATE: f64 = 2.5e9;

/// Predicted EnSF analysis time [s] on `gcds` ranks.
pub fn ensf_step_time(topo: &Topology, job: &EnsfJob, gcds: usize) -> f64 {
    let work = job.dim as f64 * job.members_per_rank as f64 * job.sde_steps as f64;
    let compute = work / ENSF_GCD_RATE;
    // Final "MPI reduce" of the analysis mean (one state vector, f64).
    let reduce = collective_time(topo, Collective::AllReduce, gcds, job.dim * 8);
    compute + reduce
}

/// Modeled compute time [s] of one sharded reverse-SDE step on one rank:
/// the rank scores `members` particles over its `local_len` state
/// components at the calibrated [`ENSF_GCD_RATE`]. The elastic cycle
/// driver prices its per-cycle deadline budget with this — the bulk-
/// synchronous step then costs the *worst* rank's figure (largest shard ×
/// largest straggler slowdown).
pub fn shard_step_compute_secs(members: usize, local_len: usize) -> f64 {
    members as f64 * local_len as f64 / ENSF_GCD_RATE
}

/// The full Fig.-1 workflow cycle: online ViT fine-tuning followed by the
/// EnSF analysis. The paper's premise is that this must complete within the
/// operational cadence (e.g. hourly), which is what makes the HPC scaling
/// essential.
#[derive(Debug, Clone)]
pub struct WorkflowCycle {
    /// The surrogate-training job (online fine-tuning configuration).
    pub train: TrainJob,
    /// Gradient steps of online fine-tuning per assimilation cycle.
    pub train_steps: usize,
    /// Distribution strategy for the training phase.
    pub strategy: Strategy,
    /// Communication bucket size [bytes].
    pub bucket_bytes: u64,
    /// The EnSF analysis job.
    pub ensf: EnsfJob,
}

/// Wall time [s] of one workflow cycle on `gcds` GCDs:
/// `(training, analysis, total)`. Training and EnSF run sequentially
/// (§III: "the overall computing time is the summation").
pub fn workflow_cycle_time(topo: &Topology, cycle: &WorkflowCycle, gcds: usize) -> (f64, f64, f64) {
    let step =
        simulate_step(topo, &cycle.train, cycle.strategy, gcds, cycle.bucket_bytes).total();
    let train = step * cycle.train_steps as f64;
    let analysis = ensf_step_time(topo, &cycle.ensf, gcds);
    (train, analysis, train + analysis)
}

/// True when the cycle fits inside the operational cadence.
pub fn is_realtime(cycle_time: f64, cadence_secs: f64) -> bool {
    cycle_time <= cadence_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    fn topo_of(g: usize) -> Topology {
        Topology::frontier(g)
    }

    #[test]
    fn breakdown_components_positive() {
        let job = TrainJob::table2(128);
        let topo = topo_of(1024);
        let b = simulate_step(&topo, &job, Strategy::Ddp, 1024, 120 * MB);
        assert!(b.compute > 0.0 && b.comm_exposed >= 0.0 && b.io > 0.0);
        assert!(b.comm_total >= b.comm_exposed);
        let (fc, fm, fi) = b.fractions();
        assert!((fc + fm + fi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig7_compute_comm_dominate_io_small() {
        for size in [64usize, 128, 256] {
            let job = TrainJob::table2(size);
            let topo = topo_of(1024);
            let strategy =
                if size == 256 { Strategy::ZeroStage1 } else { Strategy::Ddp };
            let b = simulate_step(&topo, &job, strategy, 1024, 120 * MB);
            let (_fc, _fm, fi) = b.fractions();
            assert!(fi < 0.10, "IO must be small for {size}: {fi}");
        }
    }

    #[test]
    fn fig7_comm_share_order() {
        // Paper: 64² has a larger comm share than 128²; 256² (sharded, 2×
        // message volume) also exceeds 128².
        let topo = topo_of(1024);
        let share = |size: usize, strategy: Strategy| {
            let job = TrainJob::table2(size);
            let b = simulate_step(&topo, &job, strategy, 1024, 120 * MB);
            b.fractions().1
        };
        let s64 = share(64, Strategy::Ddp);
        let s128 = share(128, Strategy::Ddp);
        let s256 = share(256, Strategy::FsdpFullShard);
        assert!(s64 > s128, "64² comm share {s64:.3} must exceed 128²'s {s128:.3}");
        assert!(s256 > s128, "256² comm share {s256:.3} must exceed 128²'s {s128:.3}");
    }

    #[test]
    fn fig9_128_reaches_about_86_percent() {
        let job = TrainJob::table2(128);
        let curve = scaling_curve(topo_of, &job, Strategy::Ddp, &[8, 64, 256, 1024], 120 * MB);
        let (g, _tp, eff) = *curve.last().unwrap();
        assert_eq!(g, 1024);
        assert!(
            (0.78..0.95).contains(&eff),
            "128² efficiency at 1024 GCDs should be ≈86%, got {eff:.3}"
        );
    }

    #[test]
    fn fig9_bucket_500mb_beats_200mb_for_256() {
        // Paper: ZeRO stage 1 with the default 200 MB bucket hits the
        // AllReduce dip; ~500 MB works best.
        let job = TrainJob::table2(256);
        let topo = topo_of(1024);
        let t200 =
            simulate_step(&topo, &job, Strategy::ZeroStage1, 1024, 200 * MB).total();
        let t500 =
            simulate_step(&topo, &job, Strategy::ZeroStage1, 1024, 500 * MB).total();
        assert!(t500 < t200, "500MB bucket must beat 200MB: {t500:.3} vs {t200:.3}");
    }

    #[test]
    fn fig9_zero_beats_fsdp_for_256() {
        let job = TrainJob::table2(256);
        let topo = topo_of(1024);
        let zero =
            simulate_step(&topo, &job, Strategy::ZeroStage1, 1024, 500 * MB).total();
        let fsdp_full =
            simulate_step(&topo, &job, Strategy::FsdpFullShard, 1024, 500 * MB).total();
        let fsdp_grad =
            simulate_step(&topo, &job, Strategy::FsdpShardGradOp, 1024, 500 * MB).total();
        assert!(zero < fsdp_full, "{zero:.3} vs full {fsdp_full:.3}");
        assert!(zero < fsdp_grad, "{zero:.3} vs grad_op {fsdp_grad:.3}");
    }

    #[test]
    fn fig9_256_with_tuned_bucket_near_85_percent() {
        let job = TrainJob::table2(256);
        let curve =
            scaling_curve(topo_of, &job, Strategy::ZeroStage1, &[8, 64, 256, 1024], 500 * MB);
        let (_g, _tp, eff) = *curve.last().unwrap();
        // Paper reports ~85%; the simulator's compute-heavy 256² job lands
        // slightly higher — accept the 80–95% band (documented in
        // EXPERIMENTS.md).
        assert!(
            (0.80..0.96).contains(&eff),
            "256² tuned efficiency should be ≈85-92%, got {eff:.3}"
        );
    }

    #[test]
    fn efficiency_degrades_with_scale() {
        let job = TrainJob::table2(128);
        let curve =
            scaling_curve(topo_of, &job, Strategy::Ddp, &[8, 64, 256, 1024], 120 * MB);
        for w in curve.windows(2) {
            assert!(w[1].2 <= w[0].2 + 1e-9, "efficiency must be nonincreasing");
        }
        assert!((curve[0].2 - 1.0).abs() < 1e-12, "baseline efficiency is 1");
    }

    #[test]
    fn fig10_weak_scaling_flat_and_magnitudes() {
        // Paper: ~0.4 s/step at 1M dims, ~28 s at 100M; flat in ranks.
        let job1m = EnsfJob { dim: 1_000_000, members_per_rank: 20, sde_steps: 50 };
        let t8 = ensf_step_time(&topo_of(8), &job1m, 8);
        let t1024 = ensf_step_time(&topo_of(1024), &job1m, 1024);
        assert!((0.3..0.6).contains(&t8), "1M-dim step {t8:.3}");
        assert!(t1024 < 1.3 * t8, "weak scaling must stay flat: {t8:.3} -> {t1024:.3}");

        let job100m = EnsfJob { dim: 100_000_000, members_per_rank: 20, sde_steps: 50 };
        let t100m = ensf_step_time(&topo_of(1024), &job100m, 1024);
        assert!((20.0..45.0).contains(&t100m), "100M-dim step {t100m:.1}");
        // Linear-in-dimension shape.
        assert!(t100m / t1024 > 30.0);
    }

    #[test]
    fn workflow_cycle_composition() {
        let cycle = WorkflowCycle {
            train: TrainJob::table2(128),
            train_steps: 50,
            strategy: Strategy::Ddp,
            bucket_bytes: 120 * MB,
            ensf: EnsfJob { dim: 10_000_000, members_per_rank: 20, sde_steps: 50 },
        };
        let topo = topo_of(1024);
        let (train, analysis, total) = workflow_cycle_time(&topo, &cycle, 1024);
        assert!(train > 0.0 && analysis > 0.0);
        assert!((total - train - analysis).abs() < 1e-12, "sequential composition");
    }

    #[test]
    fn paper_scale_workflow_is_realtime_hourly_at_1024_gcds() {
        // The paper's operational argument: with 1024 GCDs, online
        // fine-tuning (a few hundred steps) plus a 10M-dimension EnSF
        // analysis fits comfortably inside an hourly cadence — while a
        // single node cannot keep up with the training share.
        let cycle = WorkflowCycle {
            train: TrainJob::table2(128),
            train_steps: 200,
            strategy: Strategy::Ddp,
            bucket_bytes: 120 * MB,
            ensf: EnsfJob { dim: 10_000_000, members_per_rank: 20, sde_steps: 50 },
        };
        let big = topo_of(1024);
        let (_t, _a, total_1024) = workflow_cycle_time(&big, &cycle, 1024);
        assert!(
            is_realtime(total_1024, 3600.0),
            "1024 GCDs must be real-time: {total_1024:.0}s"
        );
        // Fewer GCDs process the same *global* training workload slower:
        // with per-GCD batch fixed, a single node does 128x less work per
        // step, so matching the global batch takes 128x more steps.
        let small = topo_of(8);
        let equivalent_steps = cycle.train_steps * (1024 / 8);
        let step8 =
            simulate_step(&small, &cycle.train, cycle.strategy, 8, cycle.bucket_bytes).total();
        let train8 = step8 * equivalent_steps as f64;
        assert!(
            train8 > total_1024 * 10.0,
            "single node should be far slower at the same global workload"
        );
    }

    #[test]
    #[should_panic]
    fn zero_bucket_rejected() {
        let job = TrainJob::table2(64);
        let topo = topo_of(8);
        let _ = simulate_step(&topo, &job, Strategy::Ddp, 8, 0);
    }
}
