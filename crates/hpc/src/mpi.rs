//! An in-process simulated MPI runtime with ULFM-style fault surfacing.
//!
//! Real concurrent "ranks" (one OS thread each) exchanging typed messages
//! over crossbeam channels, with the point-to-point and collective
//! operations the EnSF decomposition needs: `send`/`recv` (tagged, with
//! out-of-order buffering), `barrier`, `allreduce_sum`, `gather`,
//! `broadcast`, `scatter` and `allgather`/`allgather_concat`. This gives
//! the repository a faithful stand-in for the MPI parallelization of
//! §III-A3 that runs — and is tested — on one machine.
//!
//! ## Fault model
//!
//! The runtime mirrors the ULFM (User-Level Failure Mitigation) proposal:
//!
//! * A rank announces its own death with [`Comm::kill`] (flipping a flag in
//!   a world-shared liveness registry) and stops calling communication
//!   operations. Peers blocked on a receive from it observe a typed
//!   [`MpiError::RankDead`] carrying the offending `(src, tag)` — never a
//!   hang: the blocking receive is a timed poll over the inbox plus the
//!   registry.
//! * On any collective error a survivor calls [`Comm::revoke`], waking
//!   every peer still parked inside the broken collective with
//!   [`MpiError::Revoked`], then all survivors agree (deterministically,
//!   outside this module) on a shrunken group and call [`Comm::recover`].
//! * [`Comm::recover`] installs a new *group view* and bumps the *epoch*.
//!   Collective message tags encode the epoch, so stragglers from an
//!   abandoned collective attempt can never be mistaken for contributions
//!   to its retry: older-epoch messages are dropped on receipt,
//!   future-epoch messages are buffered until the local view catches up.
//! * A previously dead rank rejoins through an out-of-band *grant*
//!   ([`Comm::revive`] + [`Comm::send_grant`] on the coordinator,
//!   [`Comm::recv_grant`] on the rejoiner) followed by a matching
//!   [`Comm::recover`] on every member of the expanded group.
//!
//! Group views renumber ranks: after a shrink [`Comm::rank`] /
//! [`Comm::size`] describe the surviving group in ascending world-rank
//! order, so collective code written against them works unchanged across
//! membership changes, while [`Comm::world_rank`] stays fixed for
//! addressing point-to-point messages.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Top bit marks runtime-internal tags; user tags must keep it clear.
const TAG_SPECIAL: u64 = 1 << 63;
/// Epoch-stamped revocation notice (data = `[epoch]`).
const REVOKE_TAG: u64 = u64::MAX;
/// Out-of-band rejoin grant, valid across epochs.
const GRANT_TAG: u64 = u64::MAX - 1;

/// Collective operation codes folded into epoch-stamped tags.
const OP_REDUCE: u64 = 1;
const OP_RBCAST: u64 = 2;
const OP_GATHER: u64 = 3;
const OP_BCAST: u64 = 4;
const OP_SCATTER: u64 = 5;
const OP_BARRIER: u64 = 6;

/// How often a parked receive re-checks the liveness registry.
const POLL: Duration = Duration::from_micros(200);

/// Why a receive (and therefore a collective) could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiError {
    /// The source rank is registered dead and no matching message is
    /// buffered or in flight.
    RankDead {
        /// World rank of the dead peer.
        src: usize,
        /// Tag the receive was waiting on.
        tag: u64,
    },
    /// The receive deadline ([`Comm::set_recv_deadline`]) elapsed with the
    /// peer still alive but silent.
    Timeout {
        /// World rank of the silent peer.
        src: usize,
        /// Tag the receive was waiting on.
        tag: u64,
    },
    /// A peer revoked the current communication epoch (some collective
    /// broke elsewhere); abandon the operation and shrink.
    Revoked,
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::RankDead { src, tag } => {
                write!(f, "rank {src} is dead (receive tag {tag:#x})")
            }
            MpiError::Timeout { src, tag } => {
                write!(f, "receive from rank {src} timed out (tag {tag:#x})")
            }
            MpiError::Revoked => write!(f, "communication epoch revoked by a peer"),
        }
    }
}

impl std::error::Error for MpiError {}

/// A tagged message between ranks (`src` is a world rank).
#[derive(Debug, Clone)]
struct Message {
    src: usize,
    tag: u64,
    data: Vec<f64>,
}

/// Per-rank communicator handle.
pub struct Comm {
    world_rank: usize,
    world_size: usize,
    senders: Vec<Sender<Message>>,
    inbox: Receiver<Message>,
    /// World-shared liveness registry, one flag per world rank.
    alive: Arc<Vec<AtomicBool>>,
    /// Current group view: ascending world ranks. `rank()` is this rank's
    /// position in it.
    group: RefCell<Vec<usize>>,
    /// Membership-change counter stamped into collective tags.
    epoch: Cell<u64>,
    /// Set when a peer revoked the current epoch.
    revoked: Cell<bool>,
    /// Optional per-receive deadline (safety net against silent peers).
    deadline: Cell<Option<Duration>>,
    pending: RefCell<Vec<Message>>,
}

impl Comm {
    /// This rank's position in the current group view (renumbered after a
    /// shrink or rejoin; equals [`Comm::world_rank`] in a full world).
    ///
    /// # Panics
    /// Panics if this rank is not a member of its own group view (a
    /// [`Comm::recover`] misuse).
    pub fn rank(&self) -> usize {
        self.group
            .borrow()
            .iter()
            .position(|&w| w == self.world_rank)
            .expect("rank not in its own group view")
    }

    /// Current group size (shrinks and re-expands with membership).
    pub fn size(&self) -> usize {
        self.group.borrow().len()
    }

    /// This rank's immutable world id.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// The immutable world size the runtime was launched with.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Current group view (ascending world ranks).
    pub fn group(&self) -> Vec<usize> {
        self.group.borrow().clone()
    }

    /// Current communication epoch (bumped by every [`Comm::recover`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Whether `world_rank` is registered alive.
    ///
    /// # Panics
    /// Panics if `world_rank` is out of range.
    pub fn is_alive(&self, world_rank: usize) -> bool {
        self.alive[world_rank].load(Ordering::Acquire)
    }

    /// Registers this rank dead. Call at the scripted failure point, then
    /// stop communicating (other than [`Comm::recv_grant`]); peers observe
    /// [`MpiError::RankDead`] instead of hanging.
    pub fn kill(&self) {
        self.alive[self.world_rank].store(false, Ordering::Release);
    }

    /// Re-registers `world_rank` alive ahead of a rejoin grant, so that
    /// survivors entering the expanded group never spuriously observe the
    /// rejoiner as dead while it is still restoring its state.
    ///
    /// # Panics
    /// Panics if `world_rank` is out of range.
    pub fn revive(&self, world_rank: usize) {
        self.alive[world_rank].store(true, Ordering::Release);
    }

    /// Sets (or clears) the per-receive deadline. With a deadline set, a
    /// receive from a live-but-silent peer fails with [`MpiError::Timeout`]
    /// instead of blocking forever — the watchdog of last resort.
    pub fn set_recv_deadline(&self, deadline: Option<Duration>) {
        self.deadline.set(deadline);
    }

    /// Epoch-stamped tag for collective operation `op`.
    fn ctag(&self, op: u64) -> u64 {
        TAG_SPECIAL | ((self.epoch.get() & 0xFFFF) << 8) | op
    }

    /// Epoch carried by a stamped collective tag.
    fn tag_epoch(tag: u64) -> u64 {
        (tag >> 8) & 0xFFFF
    }

    /// Whether `tag` is an epoch-stamped collective tag (special, but not
    /// one of the fixed out-of-band tags).
    fn is_collective_tag(tag: u64) -> bool {
        tag & TAG_SPECIAL != 0 && tag != REVOKE_TAG && tag != GRANT_TAG
    }

    /// Raw send that tolerates disconnected dead peers.
    fn send_raw(&self, dst: usize, tag: u64, data: &[f64]) {
        assert!(dst < self.world_size, "send to invalid rank {dst}");
        let msg = Message { src: self.world_rank, tag, data: data.to_vec() };
        if self.senders[dst].send(msg).is_err() {
            // A receiver only disappears when its thread exited; that is
            // fine for a registered-dead rank and a bug otherwise.
            assert!(
                !self.is_alive(dst),
                "send to rank {dst}, which exited without kill()"
            );
        }
    }

    /// Sends `data` to world rank `dst` with `tag`.
    ///
    /// # Panics
    /// Panics if `dst` is out of range (matching MPI's erroneous-rank
    /// abort) or if `tag` has the runtime-reserved top bit set.
    pub fn send(&self, dst: usize, tag: u64, data: &[f64]) {
        assert!(tag & TAG_SPECIAL == 0, "tag {tag:#x} is runtime-reserved");
        self.send_raw(dst, tag, data);
    }

    /// Routes one inbound message while waiting for `(src, tag)`: returns
    /// the payload on a match, buffers unrelated user messages, drops
    /// stale-epoch collective traffic, buffers future-epoch collective
    /// traffic, and surfaces revocations.
    fn route(&self, msg: Message, src: usize, tag: u64) -> Result<Option<Vec<f64>>, MpiError> {
        if msg.tag == REVOKE_TAG {
            let revoked_epoch = msg.data.first().copied().unwrap_or(0.0) as u64;
            if revoked_epoch >= self.epoch.get() {
                self.revoked.set(true);
                return Err(MpiError::Revoked);
            }
            return Ok(None); // stale revoke from an already-resolved epoch
        }
        if Self::is_collective_tag(msg.tag) && Self::tag_epoch(msg.tag) < self.epoch.get() & 0xFFFF
        {
            return Ok(None); // straggler from an abandoned collective
        }
        if msg.src == src && msg.tag == tag {
            return Ok(Some(msg.data));
        }
        self.pending.borrow_mut().push(msg);
        Ok(None)
    }

    /// Fallible blocking receive from world rank `src` with `tag`.
    ///
    /// Messages from other sources/tags arriving first are buffered, and
    /// same-`(src, tag)` messages are delivered in send order (MPI's
    /// non-overtaking guarantee). Instead of hanging, fails typed:
    /// [`MpiError::RankDead`] when `src` is registered dead with no
    /// matching message buffered or in flight, [`MpiError::Revoked`] when a
    /// peer revoked the epoch, [`MpiError::Timeout`] when the optional
    /// receive deadline elapses.
    ///
    /// # Panics
    /// Panics if `src` is out of range.
    pub fn recv_checked(&self, src: usize, tag: u64) -> Result<Vec<f64>, MpiError> {
        assert!(src < self.world_size, "recv from invalid rank {src}");
        let deadline = self.deadline.get().map(|d| Instant::now() + d);
        loop {
            if self.revoked.get() {
                return Err(MpiError::Revoked);
            }
            // Check the out-of-order buffer first. `remove` (not
            // `swap_remove`) keeps the buffer in arrival order: with
            // several same-(src, tag) messages buffered, swap_remove would
            // deliver the newest second — reordering a FIFO stream (caught
            // by the proptest interleaving model).
            {
                let mut pending = self.pending.borrow_mut();
                if let Some(pos) = pending.iter().position(|m| m.src == src && m.tag == tag) {
                    return Ok(pending.remove(pos).data);
                }
            }
            if !self.is_alive(src) {
                // The sender may have died *after* sending the matching
                // message: drain the inbox before giving up on it.
                while let Ok(msg) = self.inbox.try_recv() {
                    if let Some(data) = self.route(msg, src, tag)? {
                        return Ok(data);
                    }
                }
                let mut pending = self.pending.borrow_mut();
                if let Some(pos) = pending.iter().position(|m| m.src == src && m.tag == tag) {
                    return Ok(pending.remove(pos).data);
                }
                return Err(MpiError::RankDead { src, tag });
            }
            match self.inbox.recv_timeout(POLL) {
                Ok(msg) => {
                    if let Some(data) = self.route(msg, src, tag)? {
                        return Ok(data);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(dl) = deadline {
                        if Instant::now() >= dl {
                            return Err(MpiError::Timeout { src, tag });
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(MpiError::RankDead { src, tag });
                }
            }
        }
    }

    /// Blocking receive of the next message from world rank `src` with
    /// `tag` (infallible wrapper over [`Comm::recv_checked`]).
    ///
    /// # Panics
    /// Panics when the underlying receive fails typed — the simulated
    /// analogue of an MPI abort for code that opted out of fault handling.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<f64> {
        self.recv_checked(src, tag)
            .unwrap_or_else(|e| panic!("recv(src={src}, tag={tag:#x}) failed: {e}"))
    }

    /// Notifies every live peer in the current group that the current
    /// epoch is broken, waking them out of parked receives with
    /// [`MpiError::Revoked`]. Idempotent per epoch; stale revokes are
    /// discarded by their receivers. The caller should follow up with
    /// [`Comm::recover`].
    pub fn revoke(&self) {
        let epoch = self.epoch.get() as f64;
        for &w in self.group.borrow().iter() {
            if w != self.world_rank && self.is_alive(w) {
                self.send_raw(w, REVOKE_TAG, &[epoch]);
            }
        }
        self.revoked.set(true);
    }

    /// Installs a new group view and epoch after a membership change
    /// (shrink or rejoin). Every member of `group` must call this with the
    /// same arguments; `epoch` is the count of membership changes so far,
    /// agreed deterministically by the caller. Clears the revoked flag and
    /// purges buffered traffic from abandoned epochs.
    ///
    /// # Panics
    /// Panics if `group` is empty, not strictly ascending, or does not
    /// contain this rank.
    pub fn recover(&self, group: &[usize], epoch: u64) {
        assert!(!group.is_empty(), "recover needs a non-empty group");
        assert!(
            group.windows(2).all(|w| w[0] < w[1]),
            "recover group must be strictly ascending"
        );
        assert!(
            group.contains(&self.world_rank),
            "rank {} missing from recover group {group:?}",
            self.world_rank
        );
        assert!(
            group.iter().all(|&w| w < self.world_size),
            "recover group contains out-of-world ranks"
        );
        self.epoch.set(epoch);
        self.revoked.set(false);
        *self.group.borrow_mut() = group.to_vec();
        let cur = epoch & 0xFFFF;
        self.pending.borrow_mut().retain(|m| {
            m.tag != REVOKE_TAG
                && !(Self::is_collective_tag(m.tag) && Self::tag_epoch(m.tag) < cur)
        });
    }

    /// Sends an out-of-band rejoin grant to world rank `dst` (call
    /// [`Comm::revive`] first so the rejoiner is registered alive).
    pub fn send_grant(&self, dst: usize, data: &[f64]) {
        self.send_raw(dst, GRANT_TAG, data);
    }

    /// Blocks until a rejoin grant arrives from world rank `src`. Unlike
    /// [`Comm::recv_checked`] this survives revocations (a dead rank does
    /// not participate in epochs), clearing the flag and waiting on.
    ///
    /// # Panics
    /// Panics if `src` is out of range.
    pub fn recv_grant(&self, src: usize) -> Result<Vec<f64>, MpiError> {
        loop {
            match self.recv_checked(src, GRANT_TAG) {
                Err(MpiError::Revoked) => self.revoked.set(false),
                other => return other,
            }
        }
    }

    /// Synchronizes the current group (fallible).
    pub fn try_barrier(&self) -> Result<(), MpiError> {
        let group = self.group();
        if group.len() == 1 {
            return Ok(());
        }
        let tag = self.ctag(OP_BARRIER);
        let root = group[0];
        if self.world_rank == root {
            for &w in &group[1..] {
                self.recv_checked(w, tag)?;
            }
            for &w in &group[1..] {
                self.send_raw(w, tag, &[]);
            }
        } else {
            self.send_raw(root, tag, &[]);
            self.recv_checked(root, tag)?;
        }
        Ok(())
    }

    /// Synchronizes the current group.
    ///
    /// # Panics
    /// Panics when the barrier fails typed (dead peer / revoked epoch).
    pub fn barrier(&self) {
        self.try_barrier().unwrap_or_else(|e| panic!("barrier failed: {e}"));
    }

    /// Elementwise sum-reduction of `buf` across the current group
    /// (fallible); every rank ends with the group sum (gather-to-root +
    /// broadcast).
    ///
    /// # Panics
    /// Panics if peers contribute mismatched lengths.
    pub fn try_allreduce_sum(&self, buf: &mut [f64]) -> Result<(), MpiError> {
        let group = self.group();
        if group.len() == 1 {
            return Ok(());
        }
        let t_red = self.ctag(OP_REDUCE);
        let t_bc = self.ctag(OP_RBCAST);
        let root = group[0];
        if self.world_rank == root {
            for &w in &group[1..] {
                let part = self.recv_checked(w, t_red)?;
                assert_eq!(part.len(), buf.len(), "allreduce length mismatch");
                for (a, b) in buf.iter_mut().zip(&part) {
                    *a += b;
                }
            }
            for &w in &group[1..] {
                self.send_raw(w, t_bc, buf);
            }
        } else {
            self.send_raw(root, t_red, buf);
            let total = self.recv_checked(root, t_bc)?;
            buf.copy_from_slice(&total);
        }
        Ok(())
    }

    /// Elementwise sum-reduction of `buf` across the current group; every
    /// rank ends with the group sum.
    ///
    /// # Panics
    /// Panics when the collective fails typed (dead peer / revoked epoch).
    pub fn allreduce_sum(&self, buf: &mut [f64]) {
        self.try_allreduce_sum(buf).unwrap_or_else(|e| panic!("allreduce failed: {e}"));
    }

    /// Gathers every group member's `data` to the group root (fallible);
    /// returns `Some(parts)` indexed by group position on the root and
    /// `None` elsewhere.
    pub fn try_gather(&self, data: &[f64]) -> Result<Option<Vec<Vec<f64>>>, MpiError> {
        let group = self.group();
        let tag = self.ctag(OP_GATHER);
        let root = group[0];
        if self.world_rank == root {
            let mut parts = vec![Vec::new(); group.len()];
            parts[0] = data.to_vec();
            for (i, &w) in group.iter().enumerate().skip(1) {
                parts[i] = self.recv_checked(w, tag)?;
            }
            Ok(Some(parts))
        } else {
            self.send_raw(root, tag, data);
            Ok(None)
        }
    }

    /// Gathers every group member's `data` to the group root; returns
    /// `Some(parts)` (indexed by group position) on the root and `None`
    /// elsewhere.
    ///
    /// # Panics
    /// Panics when the collective fails typed (dead peer / revoked epoch).
    pub fn gather(&self, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        self.try_gather(data).unwrap_or_else(|e| panic!("gather failed: {e}"))
    }

    /// Broadcasts the group root's `data` to the whole group, in place
    /// (fallible).
    pub fn try_broadcast(&self, data: &mut Vec<f64>) -> Result<(), MpiError> {
        let group = self.group();
        let tag = self.ctag(OP_BCAST);
        let root = group[0];
        if self.world_rank == root {
            for &w in &group[1..] {
                self.send_raw(w, tag, data);
            }
        } else {
            *data = self.recv_checked(root, tag)?;
        }
        Ok(())
    }

    /// Broadcasts the group root's `data` to the whole group (in place).
    ///
    /// # Panics
    /// Panics when the collective fails typed (dead peer / revoked epoch).
    pub fn broadcast(&self, data: &mut Vec<f64>) {
        self.try_broadcast(data).unwrap_or_else(|e| panic!("broadcast failed: {e}"));
    }

    /// Scatters the group root's per-member `parts` (indexed by group
    /// position) across the group (fallible); each rank returns its own
    /// part. Non-root ranks pass `None`.
    ///
    /// # Panics
    /// Panics if the root passes `None` or a parts list whose length
    /// differs from the group size (matching MPI's erroneous-argument
    /// abort).
    pub fn try_scatter(&self, parts: Option<&[Vec<f64>]>) -> Result<Vec<f64>, MpiError> {
        let group = self.group();
        let tag = self.ctag(OP_SCATTER);
        let root = group[0];
        if self.world_rank == root {
            let parts = parts.expect("scatter root needs the parts list");
            assert_eq!(parts.len(), group.len(), "scatter needs one part per rank");
            for (i, &w) in group.iter().enumerate().skip(1) {
                self.send_raw(w, tag, &parts[i]);
            }
            Ok(parts[0].clone())
        } else {
            self.recv_checked(root, tag)
        }
    }

    /// Scatters the group root's per-member `parts` across the group; each
    /// rank returns its own part. Non-root ranks pass `None`.
    ///
    /// # Panics
    /// Panics on root-argument misuse or when the collective fails typed.
    pub fn scatter(&self, parts: Option<&[Vec<f64>]>) -> Vec<f64> {
        self.try_scatter(parts).unwrap_or_else(|e| panic!("scatter failed: {e}"))
    }

    /// Gathers every group member's `data` to all members (fallible):
    /// returns the per-member parts in group order on every rank
    /// (gather-to-root + broadcast). Parts may have different lengths.
    pub fn try_allgather(&self, data: &[f64]) -> Result<Vec<Vec<f64>>, MpiError> {
        let size = self.size();
        if size == 1 {
            return Ok(vec![data.to_vec()]);
        }
        let gathered = self.try_gather(data)?;
        // Frame as [len_0, …, len_{size-1}, part_0 …, part_{size-1} …] so a
        // single broadcast carries both the lengths and the payload.
        let mut frame = if let Some(parts) = gathered {
            let mut frame: Vec<f64> = parts.iter().map(|p| p.len() as f64).collect();
            for p in &parts {
                frame.extend_from_slice(p);
            }
            frame
        } else {
            Vec::new()
        };
        self.try_broadcast(&mut frame)?;
        let lens: Vec<usize> = frame[..size].iter().map(|&l| l as usize).collect();
        let mut out = Vec::with_capacity(size);
        let mut offset = size;
        for len in lens {
            out.push(frame[offset..offset + len].to_vec());
            offset += len;
        }
        Ok(out)
    }

    /// Gathers every group member's `data` to all members, in group order.
    ///
    /// # Panics
    /// Panics when the collective fails typed (dead peer / revoked epoch).
    pub fn allgather(&self, data: &[f64]) -> Vec<Vec<f64>> {
        self.try_allgather(data).unwrap_or_else(|e| panic!("allgather failed: {e}"))
    }

    /// [`Comm::try_allgather`] flattened: every rank receives the
    /// concatenation of all members' contributions in group order. This is
    /// the reassembly primitive for contiguous state-block decompositions:
    /// with group position `r` owning block `r` of a partitioned vector,
    /// the result is the full vector, identically on every rank.
    pub fn try_allgather_concat(&self, data: &[f64]) -> Result<Vec<f64>, MpiError> {
        if self.size() == 1 {
            return Ok(data.to_vec());
        }
        let mut out = Vec::new();
        for part in self.try_allgather(data)? {
            out.extend_from_slice(&part);
        }
        Ok(out)
    }

    /// [`Comm::allgather`] flattened into one vector in group order.
    ///
    /// # Panics
    /// Panics when the collective fails typed (dead peer / revoked epoch).
    pub fn allgather_concat(&self, data: &[f64]) -> Vec<f64> {
        self.try_allgather_concat(data)
            .unwrap_or_else(|e| panic!("allgather_concat failed: {e}"))
    }
}

/// Runs `f` on `size` concurrent ranks and returns their results in rank
/// order.
///
/// # Panics
/// Panics when `size == 0` or when any rank's closure panics (the panic is
/// propagated to the caller).
pub fn run_world<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    assert!(size >= 1, "world needs at least one rank");
    let mut txs = Vec::with_capacity(size);
    let mut rxs = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded::<Message>();
        txs.push(tx);
        rxs.push(rx);
    }
    let alive: Arc<Vec<AtomicBool>> =
        Arc::new((0..size).map(|_| AtomicBool::new(true)).collect());

    let comms: Vec<Comm> = rxs
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Comm {
            world_rank: rank,
            world_size: size,
            senders: txs.clone(),
            inbox,
            alive: Arc::clone(&alive),
            group: RefCell::new((0..size).collect()),
            epoch: Cell::new(0),
            revoked: Cell::new(false),
            deadline: Cell::new(None),
            pending: RefCell::new(Vec::new()),
        })
        .collect();
    drop(txs);

    let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for comm in comms {
            let fr = &f;
            handles.push(scope.spawn(move || fr(&comm)));
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank panicked"));
        }
    });
    // INVARIANT: every handle joined successfully above, so each slot holds
    // Some(result).
    results.into_iter().map(|r| r.expect("rank produced no result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_runs_all_ranks() {
        let out = run_world(4, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn ring_send_recv() {
        let out = run_world(5, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 7, &[c.rank() as f64]);
            let got = c.recv(prev, 7);
            got[0] as usize
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn allreduce_sums_everywhere() {
        let out = run_world(6, |c| {
            let mut buf = vec![c.rank() as f64, 1.0];
            c.allreduce_sum(&mut buf);
            buf
        });
        for r in &out {
            assert_eq!(r, &vec![15.0, 6.0]);
        }
    }

    #[test]
    fn allreduce_single_rank_is_identity() {
        let out = run_world(1, |c| {
            let mut buf = vec![3.0, 4.0];
            c.allreduce_sum(&mut buf);
            buf
        });
        assert_eq!(out[0], vec![3.0, 4.0]);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_world(4, |c| c.gather(&[c.rank() as f64; 2]));
        let parts = out[0].as_ref().unwrap();
        for (r, p) in parts.iter().enumerate() {
            assert_eq!(p, &vec![r as f64; 2]);
        }
        assert!(out[1].is_none() && out[2].is_none() && out[3].is_none());
    }

    #[test]
    fn broadcast_distributes_root_data() {
        let out = run_world(4, |c| {
            let mut data = if c.rank() == 0 { vec![42.0, 7.0] } else { Vec::new() };
            c.broadcast(&mut data);
            data
        });
        for r in &out {
            assert_eq!(r, &vec![42.0, 7.0]);
        }
    }

    #[test]
    fn out_of_order_tags_buffered() {
        let out = run_world(2, |c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1.
                c.send(1, 2, &[2.0]);
                c.send(1, 1, &[1.0]);
                0.0
            } else {
                // Receive tag 1 first: the tag-2 message must be buffered.
                let a = c.recv(0, 1)[0];
                let b = c.recv(0, 2)[0];
                a * 10.0 + b
            }
        });
        assert_eq!(out[1], 12.0);
    }

    #[test]
    fn buffered_same_key_messages_stay_fifo() {
        // Regression: with >= 3 same-(src, tag) messages parked in the
        // out-of-order buffer, `swap_remove` delivered the newest message
        // second (0, 3, 2, 1 here). `remove` preserves send order.
        let out = run_world(2, |c| {
            if c.rank() == 0 {
                for seq in 0..4 {
                    c.send(1, 1, &[seq as f64]);
                }
                c.send(1, 2, &[99.0]);
                Vec::new()
            } else {
                // Draining tag 2 first forces all four tag-1 messages
                // through the pending buffer.
                assert_eq!(c.recv(0, 2), vec![99.0]);
                (0..4).map(|_| c.recv(0, 1)[0]).collect::<Vec<f64>>()
            }
        });
        assert_eq!(out[1], vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn scatter_distributes_root_parts() {
        let out = run_world(4, |c| {
            let parts: Option<Vec<Vec<f64>>> = (c.rank() == 0)
                .then(|| (0..4).map(|r| vec![r as f64; r + 1]).collect());
            c.scatter(parts.as_deref())
        });
        for (r, part) in out.iter().enumerate() {
            assert_eq!(part, &vec![r as f64; r + 1]);
        }
    }

    #[test]
    fn scatter_single_rank_is_identity() {
        let out = run_world(1, |c| c.scatter(Some(&[vec![5.0, 6.0]])));
        assert_eq!(out[0], vec![5.0, 6.0]);
    }

    #[test]
    fn allgather_collects_everywhere_in_rank_order() {
        let out = run_world(3, |c| c.allgather(&vec![c.rank() as f64; c.rank() + 1]));
        for parts in &out {
            assert_eq!(parts.len(), 3);
            for (r, p) in parts.iter().enumerate() {
                assert_eq!(p, &vec![r as f64; r + 1]);
            }
        }
    }

    #[test]
    fn allgather_concat_reassembles_blocks() {
        // Rank r owns the contiguous block [2r, 2r+1] of an 8-vector.
        let out = run_world(4, |c| {
            let lo = 2 * c.rank();
            c.allgather_concat(&[lo as f64, (lo + 1) as f64])
        });
        let want: Vec<f64> = (0..8).map(|i| i as f64).collect();
        for full in &out {
            assert_eq!(full, &want);
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::AtomicUsize;
        let counter = AtomicUsize::new(0);
        run_world(8, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must see all 8 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    #[should_panic]
    fn invalid_destination_panics() {
        run_world(2, |c| {
            if c.rank() == 0 {
                c.send(5, 0, &[1.0]);
            }
        });
    }

    #[test]
    #[should_panic]
    fn reserved_tag_panics() {
        run_world(2, |c| {
            if c.rank() == 0 {
                c.send(1, TAG_SPECIAL | 3, &[1.0]);
            }
        });
    }

    // Regression (satellite fix): a rank dying mid-collective used to
    // leave its peers blocked forever inside `recv`. The root must now
    // observe a typed `RankDead` carrying the offending (src, tag), and a
    // revocation must wake the other survivor with `Revoked`.
    #[test]
    fn dead_rank_mid_collective_returns_typed_error() {
        let out = run_world(3, |c| {
            if c.rank() == 2 {
                c.kill();
                return "dead".to_string();
            }
            let mut buf = vec![1.0];
            match c.try_allreduce_sum(&mut buf) {
                Ok(()) => "ok".to_string(),
                Err(MpiError::RankDead { src, tag }) => {
                    // Only the root receives from rank 2 directly; it
                    // revokes so the other survivor unblocks too.
                    c.revoke();
                    assert_eq!(src, 2);
                    assert_ne!(tag & TAG_SPECIAL, 0, "failure was inside a collective");
                    "rank_dead".to_string()
                }
                Err(MpiError::Revoked) => "revoked".to_string(),
                Err(e) => panic!("unexpected error: {e}"),
            }
        });
        assert_eq!(out[0], "rank_dead");
        assert_eq!(out[1], "revoked");
        assert_eq!(out[2], "dead");
    }

    #[test]
    fn messages_sent_before_death_still_deliver() {
        let out = run_world(2, |c| {
            if c.rank() == 1 {
                c.send(0, 5, &[7.0]);
                c.kill();
                return vec![];
            }
            // The backlog message must arrive even though the sender is
            // already registered dead; the *next* receive fails typed.
            let got = c.recv_checked(1, 5).expect("pre-death message lost");
            assert_eq!(
                c.recv_checked(1, 6),
                Err(MpiError::RankDead { src: 1, tag: 6 })
            );
            got
        });
        assert_eq!(out[0], vec![7.0]);
    }

    #[test]
    fn silent_peer_times_out_with_deadline() {
        let out = run_world(2, |c| {
            if c.rank() == 0 {
                c.set_recv_deadline(Some(Duration::from_millis(40)));
                let err = c.recv_checked(1, 9).unwrap_err();
                assert_eq!(err, MpiError::Timeout { src: 1, tag: 9 });
                c.set_recv_deadline(None);
                c.send(1, 1, &[0.0]); // release the peer
                1
            } else {
                c.recv(0, 1);
                2
            }
        });
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn shrink_renumbers_group_and_collectives_work() {
        let survivors = [0usize, 1, 3];
        let out = run_world(4, |c| {
            if c.world_rank() == 2 {
                c.kill();
                return (usize::MAX, usize::MAX, 0.0);
            }
            c.recover(&survivors, 1);
            let mut buf = vec![c.world_rank() as f64];
            c.allreduce_sum(&mut buf);
            // Group gather returns parts in ascending world order.
            let parts = c.allgather_concat(&[c.world_rank() as f64]);
            assert_eq!(parts, vec![0.0, 1.0, 3.0]);
            (c.rank(), c.size(), buf[0])
        });
        assert_eq!(out[0], (0, 3, 4.0));
        assert_eq!(out[1], (1, 3, 4.0));
        assert_eq!(out[3], (2, 3, 4.0));
    }

    #[test]
    fn stale_epoch_contribution_cannot_poison_a_retry() {
        let out = run_world(2, |c| {
            if c.rank() == 1 {
                // Contribute to an epoch-0 allreduce that rank 0 never
                // joins, abandoning it on timeout — the classic
                // half-finished collective a kill leaves behind.
                c.set_recv_deadline(Some(Duration::from_millis(30)));
                let mut buf = vec![100.0];
                assert!(matches!(
                    c.try_allreduce_sum(&mut buf),
                    Err(MpiError::Timeout { .. })
                ));
                c.set_recv_deadline(None);
                c.recover(&[0, 1], 1);
                let mut buf = vec![2.0];
                c.allreduce_sum(&mut buf);
                return buf[0];
            }
            // Rank 0 skips epoch 0 entirely; its retry at epoch 1 must not
            // absorb the stale 100.0 contribution.
            c.recover(&[0, 1], 1);
            let mut buf = vec![1.0];
            c.allreduce_sum(&mut buf);
            buf[0]
        });
        assert_eq!(out, vec![3.0, 3.0]);
    }

    #[test]
    fn grant_based_rejoin_restores_full_group() {
        let out = run_world(2, |c| {
            if c.world_rank() == 1 {
                c.kill();
                let grant = c.recv_grant(0).expect("grant never arrived");
                assert_eq!(grant, vec![2.0, 5.0]);
                c.recover(&[0, 1], grant[0] as u64);
                let mut buf = vec![10.0];
                c.allreduce_sum(&mut buf);
                return buf[0];
            }
            // Coordinator: shrink to itself, then re-admit rank 1. Each
            // membership change bumps the epoch; the grant carries the
            // epoch of the expanded group.
            c.recover(&[0], 1);
            assert_eq!((c.rank(), c.size()), (0, 1));
            c.revive(1);
            c.send_grant(1, &[2.0, 5.0]);
            c.recover(&[0, 1], 2);
            let mut buf = vec![20.0];
            c.allreduce_sum(&mut buf);
            buf[0]
        });
        assert_eq!(out, vec![30.0, 30.0]);
    }
}
