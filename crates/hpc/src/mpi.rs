//! An in-process simulated MPI runtime.
//!
//! Real concurrent "ranks" (one OS thread each) exchanging typed messages
//! over crossbeam channels, with the point-to-point and collective
//! operations the EnSF decomposition needs: `send`/`recv` (tagged, with
//! out-of-order buffering), `barrier`, `allreduce_sum`, `gather`,
//! `broadcast`, `scatter` and `allgather`/`allgather_concat`. This gives
//! the repository a faithful stand-in for the MPI
//! parallelization of §III-A3 that runs — and is tested — on one machine.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::cell::RefCell;
use std::sync::{Arc, Barrier};

/// A tagged message between ranks.
#[derive(Debug, Clone)]
struct Message {
    src: usize,
    tag: u64,
    data: Vec<f64>,
}

/// Per-rank communicator handle.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    inbox: Receiver<Message>,
    barrier: Arc<Barrier>,
    pending: RefCell<Vec<Message>>,
}

impl Comm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `data` to `dst` with `tag`.
    ///
    /// # Panics
    /// Panics if `dst` is out of range (matching MPI's erroneous-rank abort).
    pub fn send(&self, dst: usize, tag: u64, data: &[f64]) {
        assert!(dst < self.size, "send to invalid rank {dst}");
        self.senders[dst]
            .send(Message { src: self.rank, tag, data: data.to_vec() })
            .expect("receiver hung up");
    }

    /// Blocking receive of the next message from `src` with `tag`.
    /// Messages from other sources/tags arriving first are buffered, and
    /// same-`(src, tag)` messages are delivered in send order (MPI's
    /// non-overtaking guarantee).
    ///
    /// # Panics
    /// Panics if every other rank has exited without sending a matching
    /// message (the simulated analogue of an MPI abort on deadlock).
    pub fn recv(&self, src: usize, tag: u64) -> Vec<f64> {
        // Check the out-of-order buffer first. `remove` (not `swap_remove`)
        // keeps the buffer in arrival order: with several same-(src, tag)
        // messages buffered, swap_remove would move the *newest* message
        // into the scan position and deliver it second — reordering a FIFO
        // stream (caught by the proptest interleaving model).
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) =
                pending.iter().position(|m| m.src == src && m.tag == tag)
            {
                return pending.remove(pos).data;
            }
        }
        loop {
            let msg = self.inbox.recv().expect("all senders dropped");
            if msg.src == src && msg.tag == tag {
                return msg.data;
            }
            self.pending.borrow_mut().push(msg);
        }
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Elementwise sum-reduction of `buf` across all ranks; every rank ends
    /// with the global sum (gather-to-root + broadcast).
    pub fn allreduce_sum(&self, buf: &mut [f64]) {
        const TAG_GATHER: u64 = u64::MAX - 1;
        const TAG_BCAST: u64 = u64::MAX - 2;
        if self.size == 1 {
            return;
        }
        if self.rank == 0 {
            for src in 1..self.size {
                let part = self.recv(src, TAG_GATHER);
                assert_eq!(part.len(), buf.len(), "allreduce length mismatch");
                for (a, b) in buf.iter_mut().zip(&part) {
                    *a += b;
                }
            }
            for dst in 1..self.size {
                self.send(dst, TAG_BCAST, buf);
            }
        } else {
            self.send(0, TAG_GATHER, buf);
            let total = self.recv(0, TAG_BCAST);
            buf.copy_from_slice(&total);
        }
    }

    /// Gathers every rank's `data` to rank 0; returns `Some(parts)` on rank
    /// 0 (indexed by rank) and `None` elsewhere.
    pub fn gather(&self, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        const TAG: u64 = u64::MAX - 3;
        if self.rank == 0 {
            let mut parts = vec![Vec::new(); self.size];
            parts[0] = data.to_vec();
            for src in 1..self.size {
                parts[src] = self.recv(src, TAG);
            }
            Some(parts)
        } else {
            self.send(0, TAG, data);
            None
        }
    }

    /// Broadcasts rank 0's `data` to all ranks (in place).
    pub fn broadcast(&self, data: &mut Vec<f64>) {
        const TAG: u64 = u64::MAX - 4;
        if self.rank == 0 {
            for dst in 1..self.size {
                self.send(dst, TAG, data);
            }
        } else {
            *data = self.recv(0, TAG);
        }
    }

    /// Scatters rank 0's per-rank `parts` (indexed by rank) to every rank;
    /// each rank returns its own part. Non-root ranks pass `None`.
    ///
    /// # Panics
    /// Panics if rank 0 passes `None` or a parts list whose length differs
    /// from the world size (matching MPI's erroneous-argument abort).
    pub fn scatter(&self, parts: Option<&[Vec<f64>]>) -> Vec<f64> {
        const TAG: u64 = u64::MAX - 5;
        if self.rank == 0 {
            let parts = parts.expect("scatter root needs the parts list");
            assert_eq!(parts.len(), self.size, "scatter needs one part per rank");
            for (dst, part) in parts.iter().enumerate().skip(1) {
                self.send(dst, TAG, part);
            }
            parts[0].clone()
        } else {
            self.recv(0, TAG)
        }
    }

    /// Gathers every rank's `data` to all ranks: returns the per-rank parts
    /// in rank order on every rank (gather-to-root + broadcast). Parts may
    /// have different lengths.
    pub fn allgather(&self, data: &[f64]) -> Vec<Vec<f64>> {
        if self.size == 1 {
            return vec![data.to_vec()];
        }
        let gathered = self.gather(data);
        // Frame as [len_0, …, len_{size-1}, part_0 …, part_{size-1} …] so a
        // single broadcast carries both the lengths and the payload.
        let mut frame = if self.rank == 0 {
            // INVARIANT: gather returns Some on rank 0.
            let parts = gathered.expect("gather returns parts on root");
            let mut frame: Vec<f64> = parts.iter().map(|p| p.len() as f64).collect();
            for p in &parts {
                frame.extend_from_slice(p);
            }
            frame
        } else {
            Vec::new()
        };
        self.broadcast(&mut frame);
        let lens: Vec<usize> = frame[..self.size].iter().map(|&l| l as usize).collect();
        let mut out = Vec::with_capacity(self.size);
        let mut offset = self.size;
        for len in lens {
            out.push(frame[offset..offset + len].to_vec());
            offset += len;
        }
        out
    }

    /// [`Comm::allgather`] flattened: every rank receives the concatenation
    /// of all ranks' contributions in rank order. This is the reassembly
    /// primitive for contiguous state-block decompositions: with rank `r`
    /// owning block `r` of a partitioned vector, the result is the full
    /// vector, identically on every rank.
    pub fn allgather_concat(&self, data: &[f64]) -> Vec<f64> {
        if self.size == 1 {
            return data.to_vec();
        }
        let mut out = Vec::new();
        for part in self.allgather(data) {
            out.extend_from_slice(&part);
        }
        out
    }
}

/// Runs `f` on `size` concurrent ranks and returns their results in rank
/// order.
///
/// # Panics
/// Panics when `size == 0` or when any rank's closure panics (the panic is
/// propagated to the caller).
pub fn run_world<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    assert!(size >= 1, "world needs at least one rank");
    let mut txs = Vec::with_capacity(size);
    let mut rxs = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded::<Message>();
        txs.push(tx);
        rxs.push(rx);
    }
    let barrier = Arc::new(Barrier::new(size));

    let comms: Vec<Comm> = rxs
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Comm {
            rank,
            size,
            senders: txs.clone(),
            inbox,
            barrier: Arc::clone(&barrier),
            pending: RefCell::new(Vec::new()),
        })
        .collect();
    drop(txs);

    let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for comm in comms {
            let fr = &f;
            handles.push(scope.spawn(move || fr(&comm)));
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank panicked"));
        }
    });
    // INVARIANT: every handle joined successfully above, so each slot holds
    // Some(result).
    results.into_iter().map(|r| r.expect("rank produced no result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_runs_all_ranks() {
        let out = run_world(4, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn ring_send_recv() {
        let out = run_world(5, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 7, &[c.rank() as f64]);
            let got = c.recv(prev, 7);
            got[0] as usize
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn allreduce_sums_everywhere() {
        let out = run_world(6, |c| {
            let mut buf = vec![c.rank() as f64, 1.0];
            c.allreduce_sum(&mut buf);
            buf
        });
        for r in &out {
            assert_eq!(r, &vec![15.0, 6.0]);
        }
    }

    #[test]
    fn allreduce_single_rank_is_identity() {
        let out = run_world(1, |c| {
            let mut buf = vec![3.0, 4.0];
            c.allreduce_sum(&mut buf);
            buf
        });
        assert_eq!(out[0], vec![3.0, 4.0]);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_world(4, |c| c.gather(&[c.rank() as f64; 2]));
        let parts = out[0].as_ref().unwrap();
        for (r, p) in parts.iter().enumerate() {
            assert_eq!(p, &vec![r as f64; 2]);
        }
        assert!(out[1].is_none() && out[2].is_none() && out[3].is_none());
    }

    #[test]
    fn broadcast_distributes_root_data() {
        let out = run_world(4, |c| {
            let mut data = if c.rank() == 0 { vec![42.0, 7.0] } else { Vec::new() };
            c.broadcast(&mut data);
            data
        });
        for r in &out {
            assert_eq!(r, &vec![42.0, 7.0]);
        }
    }

    #[test]
    fn out_of_order_tags_buffered() {
        let out = run_world(2, |c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1.
                c.send(1, 2, &[2.0]);
                c.send(1, 1, &[1.0]);
                0.0
            } else {
                // Receive tag 1 first: the tag-2 message must be buffered.
                let a = c.recv(0, 1)[0];
                let b = c.recv(0, 2)[0];
                a * 10.0 + b
            }
        });
        assert_eq!(out[1], 12.0);
    }

    #[test]
    fn buffered_same_key_messages_stay_fifo() {
        // Regression: with >= 3 same-(src, tag) messages parked in the
        // out-of-order buffer, `swap_remove` delivered the newest message
        // second (0, 3, 2, 1 here). `remove` preserves send order.
        let out = run_world(2, |c| {
            if c.rank() == 0 {
                for seq in 0..4 {
                    c.send(1, 1, &[seq as f64]);
                }
                c.send(1, 2, &[99.0]);
                Vec::new()
            } else {
                // Draining tag 2 first forces all four tag-1 messages
                // through the pending buffer.
                assert_eq!(c.recv(0, 2), vec![99.0]);
                (0..4).map(|_| c.recv(0, 1)[0]).collect::<Vec<f64>>()
            }
        });
        assert_eq!(out[1], vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn scatter_distributes_root_parts() {
        let out = run_world(4, |c| {
            let parts: Option<Vec<Vec<f64>>> = (c.rank() == 0)
                .then(|| (0..4).map(|r| vec![r as f64; r + 1]).collect());
            c.scatter(parts.as_deref())
        });
        for (r, part) in out.iter().enumerate() {
            assert_eq!(part, &vec![r as f64; r + 1]);
        }
    }

    #[test]
    fn scatter_single_rank_is_identity() {
        let out = run_world(1, |c| c.scatter(Some(&[vec![5.0, 6.0]])));
        assert_eq!(out[0], vec![5.0, 6.0]);
    }

    #[test]
    fn allgather_collects_everywhere_in_rank_order() {
        let out = run_world(3, |c| c.allgather(&vec![c.rank() as f64; c.rank() + 1]));
        for parts in &out {
            assert_eq!(parts.len(), 3);
            for (r, p) in parts.iter().enumerate() {
                assert_eq!(p, &vec![r as f64; r + 1]);
            }
        }
    }

    #[test]
    fn allgather_concat_reassembles_blocks() {
        // Rank r owns the contiguous block [2r, 2r+1] of an 8-vector.
        let out = run_world(4, |c| {
            let lo = 2 * c.rank();
            c.allgather_concat(&[lo as f64, (lo + 1) as f64])
        });
        let want: Vec<f64> = (0..8).map(|i| i as f64).collect();
        for full in &out {
            assert_eq!(full, &want);
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_world(8, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must see all 8 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    #[should_panic]
    fn invalid_destination_panics() {
        run_world(2, |c| {
            if c.rank() == 0 {
                c.send(5, 0, &[1.0]);
            }
        });
    }
}
