//! # hpc — the Frontier performance-simulation substrate
//!
//! The paper's scalability results (Figs. 6–10) were measured on the
//! Frontier supercomputer; this crate replaces that hardware with calibrated
//! analytic models plus a real in-process rank runtime:
//!
//! - [`Topology`] — Frontier's node/GCD/fabric shape.
//! - [`collective`] — RCCL α–β cost models for AllReduce / AllGather /
//!   ReduceScatter, including the empirical ~256 MB AllReduce dip (Fig. 8).
//! - [`gemm_model`] — MI250X kernel-shape efficiency (Fig. 6's heatmap).
//! - [`Strategy`] — Table I's DDP/FSDP/ZeRO taxonomy with per-GCD memory
//!   and per-step communication footprints.
//! - [`simulate`] — training-step breakdown (Fig. 7), strong scaling
//!   (Fig. 9), and the EnSF weak-scaling model (Fig. 10).
//! - [`mpi`] — a simulated MPI world (threads + channels) used to run the
//!   EnSF rank decomposition for real at laptop scale.
//! - [`resilience`] — retry-with-backoff and ULFM-style shrink for the
//!   simulated collectives, with failure counters through telemetry.
//!
//! Absolute times are model outputs, not measurements; the *shapes*
//! (who wins, crossovers, efficiency trends) are the reproduction target —
//! see DESIGN.md §2 for the substitution argument.

#![warn(missing_docs)]
// Numeric kernels here read/write several arrays at matched indices;
// explicit index loops are the clearer idiom (rank loops index multiple parallel arrays).
#![allow(clippy::needless_range_loop)]

pub mod collective;
pub mod gemm_model;
pub mod mpi;
pub mod resilience;
pub mod simulate;
mod strategy;
mod topology;

pub use collective::{bus_bandwidth, collective_time, Collective};
pub use mpi::{run_world, Comm, MpiError};
pub use resilience::{
    collective_with_retry, CollectiveError, RankFault, RetriedCollective, RetryPolicy,
    Straggler, StragglerPlan,
};
pub use gemm_model::{achieved_flops, fig6_heatmap, KernelShape, GCD_PEAK_FLOPS};
pub use simulate::{
    ensf_step_time, is_realtime, scaling_curve, shard_step_compute_secs, simulate_step,
    workflow_cycle_time, EnsfJob, StepBreakdown, TrainJob, WorkflowCycle,
};
pub use strategy::{bytes_per_param, Strategy};
pub use topology::Topology;
