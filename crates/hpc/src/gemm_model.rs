//! MI250X GEMM-shape efficiency model (Fig. 6).
//!
//! Training throughput on a GCD is dominated by GEMMs whose shapes are set
//! by the architecture: the paper's single-node heatmap (20–52 TFLOPS over
//! the search space) shows
//!
//! * throughput peaking at embedding dimension 2048,
//! * decreasing with the number of attention heads (per-head GEMMs shrink),
//! * increasing with the MLP:attention ratio (more big GEMMs).
//!
//! This module reproduces those trends with a calibrated analytic model:
//! `achieved = peak · (f_mlp · e(d_mlp) + (1 − f_mlp) · e(d_head)) · κ(d)`
//! with `e` a saturating size-efficiency and `κ` a cache-pressure penalty
//! past d = 2048.

/// Peak matrix-engine throughput of one GCD [FLOP/s] (fp16/bf16 with fp32
/// accumulate; half of an MI250X's 383 TFLOPS).
pub const GCD_PEAK_FLOPS: f64 = 95.7e12;

/// Architecture knobs relevant to kernel sizing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelShape {
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// MLP hidden ratio.
    pub mlp_ratio: usize,
}

/// Saturating efficiency of a GEMM with inner dimension `d`.
fn size_eff(d: f64) -> f64 {
    // Half-efficiency near 192; saturates toward ~0.62 of peak (real
    // attention/MLP kernels never hit the matrix-engine peak).
    0.62 * d / (d + 192.0)
}

/// Cache/LDS pressure penalty: best at 2048, mild decline below it
/// (under-utilized compute units) and a steeper decline above it (working
/// sets spill out of LDS/L2) — the paper's observed optimum.
fn cache_penalty(d: f64) -> f64 {
    let x = (d / 2048.0).ln() / std::f64::consts::LN_2; // octaves from 2048
    if x <= 0.0 {
        1.0 - 0.06 * x * x
    } else {
        1.0 - 0.18 * x * x
    }
}

/// Fraction of training FLOPs spent in the MLP vs attention projections,
/// from the parameter balance `2 r d²` (MLP) vs `4 d²` (QKV + proj).
fn mlp_fraction(mlp_ratio: f64) -> f64 {
    2.0 * mlp_ratio / (2.0 * mlp_ratio + 4.0)
}

/// Achieved training throughput on one GCD [FLOP/s].
pub fn achieved_flops(shape: KernelShape) -> f64 {
    assert!(shape.embed_dim > 0 && shape.heads > 0 && shape.mlp_ratio > 0);
    assert_eq!(shape.embed_dim % shape.heads, 0, "heads must divide embed dim");
    let d = shape.embed_dim as f64;
    let dh = (shape.embed_dim / shape.heads) as f64;
    let f_mlp = mlp_fraction(shape.mlp_ratio as f64);
    let e_mlp = size_eff(d * (shape.mlp_ratio as f64).min(4.0));
    let e_attn = size_eff(dh);
    GCD_PEAK_FLOPS * (f_mlp * e_mlp + (1.0 - f_mlp) * e_attn) * cache_penalty(d).max(0.2)
}

/// The heatmap grid of Fig. 6: achieved TFLOPS over
/// (embed dim × heads × MLP ratio) for a 256² input on one node.
pub fn fig6_heatmap(
    embed_dims: &[usize],
    heads: &[usize],
    mlp_ratios: &[usize],
) -> Vec<(KernelShape, f64)> {
    let mut out = Vec::new();
    for &d in embed_dims {
        for &h in heads {
            if d % h != 0 {
                continue;
            }
            for &r in mlp_ratios {
                let shape = KernelShape { embed_dim: d, heads: h, mlp_ratio: r };
                out.push((shape, achieved_flops(shape) / 1e12));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tf(d: usize, h: usize, r: usize) -> f64 {
        achieved_flops(KernelShape { embed_dim: d, heads: h, mlp_ratio: r }) / 1e12
    }

    #[test]
    fn range_matches_paper_heatmap() {
        // Paper: single-node training performance varies from ~20 to
        // ~52 TFLOPS over the search space.
        let grid = fig6_heatmap(&[512, 1024, 2048, 4096], &[4, 8, 16, 32], &[1, 2, 4, 8]);
        let min = grid.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let max = grid.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        assert!(min > 10.0 && min < 30.0, "min {min:.1}");
        assert!(max > 42.0 && max < 60.0, "max {max:.1}");
    }

    #[test]
    fn embed_2048_is_best() {
        for &(h, r) in &[(8usize, 4usize), (16, 4), (8, 8)] {
            let at_2048 = tf(2048, h, r);
            assert!(at_2048 > tf(512, h, r), "2048 must beat 512");
            assert!(at_2048 > tf(4096, h, r), "2048 must beat 4096");
        }
    }

    #[test]
    fn more_heads_hurt() {
        // Paper: "higher number of attention heads reduce the performance".
        assert!(tf(2048, 8, 4) > tf(2048, 32, 4));
        assert!(tf(1024, 4, 4) > tf(1024, 16, 4));
    }

    #[test]
    fn more_mlp_helps() {
        // Paper: "Increasing the weight of MLP operations will improve the
        // performance overall."
        assert!(tf(2048, 8, 8) > tf(2048, 8, 2));
        assert!(tf(1024, 16, 8) > tf(1024, 16, 1));
    }

    #[test]
    fn achieved_below_peak() {
        let grid = fig6_heatmap(&[512, 1024, 2048, 4096], &[4, 8, 16, 32], &[1, 2, 4, 8]);
        for (shape, v) in grid {
            assert!(v * 1e12 < GCD_PEAK_FLOPS, "{shape:?} exceeds peak");
            assert!(v > 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn indivisible_heads_rejected() {
        let _ = achieved_flops(KernelShape { embed_dim: 100, heads: 3, mlp_ratio: 4 });
    }
}
