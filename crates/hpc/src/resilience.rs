//! Fault-tolerant simulated collectives: retry with exponential backoff
//! and ULFM-style shrink.
//!
//! At Frontier scale a multi-hour DA campaign sees rank failures as a
//! matter of course. MPI's ULFM proposal handles them by *revoking* the
//! communicator and *shrinking* it to the survivors; NCCL/RCCL deployments
//! typically retry the collective after a backoff. This module models both
//! on top of the α–β cost models: transient rank faults cost extra attempts
//! (each paying the collective time plus an exponential backoff), permanent
//! faults remove the rank from the communicator, and everything is reported
//! through the telemetry counters so campaign simulations can account for
//! the lost time.

use crate::collective::{collective_time, Collective};
use crate::topology::Topology;

/// Retry/backoff policy for a failed collective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts after the first before giving up.
    pub max_retries: u32,
    /// Backoff after the first failed attempt (seconds).
    pub base_backoff: f64,
    /// Backoff growth factor per further failure.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, base_backoff: 0.5, backoff_multiplier: 2.0 }
    }
}

/// A scripted rank fault in the simulated communicator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankFault {
    /// Rank (GCD index) that misbehaves.
    pub rank: usize,
    /// Number of attempts this rank fails (transient faults heal after
    /// that many retries; ignored for permanent faults).
    pub failures: u32,
    /// Permanent faults are excluded from the communicator (ULFM shrink)
    /// instead of retried.
    pub permanent: bool,
}

/// Outcome of a fault-tolerant collective.
#[derive(Debug, Clone, PartialEq)]
pub struct RetriedCollective {
    /// Total wall time: every attempt's collective time plus backoffs.
    pub time: f64,
    /// Attempts taken (1 = clean first try).
    pub attempts: u32,
    /// Ranks participating in the attempt that succeeded.
    pub participants: usize,
    /// Permanently failed ranks excluded by the shrink.
    pub excluded: Vec<usize>,
}

/// Why a fault-tolerant collective could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectiveError {
    /// Transient faults outlasted the retry budget.
    Exhausted {
        /// Attempts taken (1 + `max_retries`).
        attempts: u32,
    },
    /// Every rank failed permanently; there is no communicator to shrink to.
    NoSurvivors,
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::Exhausted { attempts } => {
                write!(f, "collective failed after {attempts} attempts")
            }
            CollectiveError::NoSurvivors => write!(f, "all ranks failed permanently"),
        }
    }
}

impl std::error::Error for CollectiveError {}

/// One scripted straggler episode: a rank running slow for a cycle range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// World rank that runs slow.
    pub rank: usize,
    /// First affected cycle (inclusive).
    pub from_cycle: usize,
    /// Last affected cycle (inclusive).
    pub to_cycle: usize,
    /// Time multiplier (≥ 1): 2.0 means everything on this rank takes
    /// twice as long.
    pub slowdown: f64,
}

/// Seedable per-rank slowdown schedule for the simulated communicator.
///
/// Stragglers model the contention/thermal slowdowns that dominate tail
/// latency at Frontier scale. The plan is deterministic — a pure function
/// of its seed — so every rank evaluates the identical schedule locally
/// and deadline decisions stay replicated. Slowdowns scale *modeled* time
/// only (the α–β collective costs and the modeled compute), never the real
/// wall clock of the in-process runtime.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StragglerPlan {
    /// The scripted episodes; overlapping episodes take the worst factor.
    pub events: Vec<Straggler>,
}

impl StragglerPlan {
    /// The empty plan: every rank at full speed.
    pub fn none() -> Self {
        StragglerPlan { events: Vec::new() }
    }

    /// Deterministically samples a plan: each (rank, cycle) cell straggles
    /// with probability `rate`, with a slowdown drawn uniformly from
    /// `(1, max_slowdown]`. Uses a splitmix64 stream keyed by `seed` so
    /// the plan is identical on every rank.
    pub fn random(seed: u64, ranks: usize, cycles: usize, rate: f64, max_slowdown: f64) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let unit = |v: u64| (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let mut events = Vec::new();
        for rank in 0..ranks {
            for cycle in 0..cycles {
                let (toss, mag) = (unit(next()), unit(next()));
                if toss < rate {
                    let slowdown = 1.0 + mag * (max_slowdown - 1.0);
                    events.push(Straggler { rank, from_cycle: cycle, to_cycle: cycle, slowdown });
                }
            }
        }
        StragglerPlan { events }
    }

    /// The slowdown factor for `rank` at `cycle` (1.0 when unaffected;
    /// overlapping episodes take the maximum).
    pub fn slowdown(&self, rank: usize, cycle: usize) -> f64 {
        self.events
            .iter()
            .filter(|s| s.rank == rank && (s.from_cycle..=s.to_cycle).contains(&cycle))
            .map(|s| s.slowdown)
            .fold(1.0, f64::max)
    }

    /// The worst slowdown among `members` at `cycle` — the factor a
    /// bulk-synchronous step pays, since every collective completes at the
    /// pace of its slowest participant.
    pub fn worst(&self, cycle: usize, members: &[usize]) -> f64 {
        members.iter().map(|&r| self.slowdown(r, cycle)).fold(1.0, f64::max)
    }
}

/// Runs a collective over `gcds` ranks under a set of scripted rank faults.
///
/// Permanent faults shrink the communicator first (their ranks never
/// participate). Each attempt then fails while any transient fault still
/// has failures left, costing the full collective time plus an exponential
/// backoff before the next try. Failure counters are exported through
/// telemetry (`hpc.collective.*`).
pub fn collective_with_retry(
    topo: &Topology,
    op: Collective,
    gcds: usize,
    bytes: u64,
    faults: &[RankFault],
    policy: &RetryPolicy,
) -> Result<RetriedCollective, CollectiveError> {
    let excluded: Vec<usize> =
        faults.iter().filter(|f| f.permanent && f.rank < gcds).map(|f| f.rank).collect();
    let participants = gcds - excluded.len();
    if participants == 0 {
        return Err(CollectiveError::NoSurvivors);
    }
    if !excluded.is_empty() {
        telemetry::counter_add("hpc.collective.shrinks", 1);
        telemetry::counter_add("hpc.collective.rank_failures", excluded.len() as u64);
        telemetry::flight_record(
            telemetry::FlightKind::CollectiveShrink,
            -1,
            "collective_shrink",
            participants as f64,
            excluded.len() as f64,
        );
        telemetry::dump_postmortem("collective_shrink");
    }

    // Worst remaining transient fault decides how many attempts fail.
    let transient_failures = faults
        .iter()
        .filter(|f| !f.permanent && f.rank < gcds && !excluded.contains(&f.rank))
        .map(|f| f.failures)
        .max()
        .unwrap_or(0);

    let per_attempt = collective_time(topo, op, participants, bytes);
    let mut time = 0.0;
    let mut backoff = policy.base_backoff;
    for attempt in 1..=(1 + policy.max_retries) {
        time += per_attempt;
        telemetry::counter_add("hpc.collective.attempts", 1);
        if attempt > transient_failures {
            return Ok(RetriedCollective { time, attempts: attempt, participants, excluded });
        }
        telemetry::counter_add("hpc.collective.retries", 1);
        telemetry::counter_add("hpc.collective.rank_failures", 1);
        time += backoff;
        backoff *= policy.backoff_multiplier;
    }
    telemetry::flight_record(
        telemetry::FlightKind::CollectiveExhausted,
        -1,
        "collective_retry_exhausted",
        (1 + policy.max_retries) as f64,
        bytes as f64,
    );
    telemetry::dump_postmortem("collective_retry_exhausted");
    Err(CollectiveError::Exhausted { attempts: 1 + policy.max_retries })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn topo() -> Topology {
        Topology::frontier(16)
    }

    #[test]
    fn straggler_plan_is_seeded_and_bulk_synchronous() {
        assert_eq!(StragglerPlan::none().worst(3, &[0, 1, 2]), 1.0);
        let plan = StragglerPlan {
            events: vec![
                Straggler { rank: 1, from_cycle: 2, to_cycle: 4, slowdown: 3.0 },
                Straggler { rank: 1, from_cycle: 3, to_cycle: 3, slowdown: 2.0 },
                Straggler { rank: 2, from_cycle: 0, to_cycle: 9, slowdown: 1.5 },
            ],
        };
        assert_eq!(plan.slowdown(1, 1), 1.0, "outside the episode");
        assert_eq!(plan.slowdown(1, 3), 3.0, "overlap takes the worst factor");
        assert_eq!(plan.worst(3, &[0, 1, 2]), 3.0);
        assert_eq!(plan.worst(3, &[0, 2]), 1.5, "shrunken group drops the straggler");
        // Same seed => same plan; different seed => (almost surely) different.
        let a = StragglerPlan::random(7, 8, 20, 0.3, 4.0);
        let b = StragglerPlan::random(7, 8, 20, 0.3, 4.0);
        assert_eq!(a, b);
        assert!(!a.events.is_empty(), "30% rate over 160 cells must fire");
        assert!(a.events.iter().all(|s| s.slowdown > 1.0 && s.slowdown <= 4.0));
        assert_ne!(a, StragglerPlan::random(8, 8, 20, 0.3, 4.0));
    }

    #[test]
    fn clean_collective_matches_base_model() {
        let r = collective_with_retry(
            &topo(),
            Collective::AllReduce,
            16,
            64 * MB,
            &[],
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(r.attempts, 1);
        assert_eq!(r.participants, 16);
        assert!(r.excluded.is_empty());
        assert_eq!(r.time, collective_time(&topo(), Collective::AllReduce, 16, 64 * MB));
    }

    #[test]
    fn transient_fault_costs_retries_and_backoff() {
        let faults = [RankFault { rank: 3, failures: 2, permanent: false }];
        let policy = RetryPolicy::default();
        let r = collective_with_retry(
            &topo(),
            Collective::AllReduce,
            16,
            64 * MB,
            &faults,
            &policy,
        )
        .unwrap();
        assert_eq!(r.attempts, 3, "two failures then success");
        let base = collective_time(&topo(), Collective::AllReduce, 16, 64 * MB);
        let expected = 3.0 * base + policy.base_backoff * (1.0 + policy.backoff_multiplier);
        assert!((r.time - expected).abs() < 1e-12, "{} vs {expected}", r.time);
    }

    #[test]
    fn permanent_fault_shrinks_communicator() {
        let faults = [
            RankFault { rank: 0, failures: 0, permanent: true },
            RankFault { rank: 5, failures: 0, permanent: true },
        ];
        let r = collective_with_retry(
            &topo(),
            Collective::AllGather,
            16,
            8 * MB,
            &faults,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(r.participants, 14);
        assert_eq!(r.excluded, vec![0, 5]);
        assert_eq!(r.attempts, 1, "survivors succeed on the first try");
        assert_eq!(r.time, collective_time(&topo(), Collective::AllGather, 14, 8 * MB));
    }

    #[test]
    fn retry_budget_exhaustion_is_an_error() {
        let faults = [RankFault { rank: 1, failures: 99, permanent: false }];
        let err = collective_with_retry(
            &topo(),
            Collective::ReduceScatter,
            16,
            MB,
            &faults,
            &RetryPolicy::default(),
        )
        .unwrap_err();
        assert_eq!(err, CollectiveError::Exhausted { attempts: 4 });
    }

    #[test]
    fn all_ranks_permanent_is_no_survivors() {
        let faults: Vec<RankFault> =
            (0..4).map(|r| RankFault { rank: r, failures: 0, permanent: true }).collect();
        let err = collective_with_retry(
            &topo(),
            Collective::AllReduce,
            4,
            MB,
            &faults,
            &RetryPolicy::default(),
        )
        .unwrap_err();
        assert_eq!(err, CollectiveError::NoSurvivors);
        // Out-of-range faults are ignored entirely.
        let ok = collective_with_retry(
            &topo(),
            Collective::AllReduce,
            4,
            MB,
            &[RankFault { rank: 9, failures: 0, permanent: true }],
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(ok.participants, 4);
    }

    #[test]
    fn failure_counters_reach_telemetry() {
        telemetry::set_enabled(true);
        let before = [
            telemetry::counter_value("hpc.collective.attempts"),
            telemetry::counter_value("hpc.collective.retries"),
            telemetry::counter_value("hpc.collective.rank_failures"),
        ];
        let faults = [RankFault { rank: 2, failures: 1, permanent: false }];
        collective_with_retry(
            &topo(),
            Collective::AllReduce,
            8,
            MB,
            &faults,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(telemetry::counter_value("hpc.collective.attempts") - before[0], 2);
        assert_eq!(telemetry::counter_value("hpc.collective.retries") - before[1], 1);
        assert_eq!(telemetry::counter_value("hpc.collective.rank_failures") - before[2], 1);
        telemetry::set_enabled(false);
    }
}
