//! Frontier machine model (§IV of the paper).
//!
//! Each node: one 3rd-gen EPYC + four MI250X, each MI250X exposing two
//! Graphics Compute Dies (GCDs) — eight "effective GPUs" per node with
//! 64 GB HBM each. GCDs are linked by Infinity Fabric at 100 GB/s
//! (200 GB/s between the two GCDs of one MI250X); nodes are linked by a
//! Slingshot-11 NIC at 100 GB/s. Frontier has 9408 nodes (75,264 GCDs).

/// Static description of the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Number of nodes in the job.
    pub nodes: usize,
    /// GCDs ("effective GPUs") per node.
    pub gcds_per_node: usize,
    /// HBM capacity per GCD [bytes].
    pub hbm_per_gcd: u64,
    /// Infinity-Fabric bandwidth between GCDs in a node [bytes/s].
    pub intra_node_bw: f64,
    /// Bandwidth between the two GCDs of one MI250X [bytes/s].
    pub paired_gcd_bw: f64,
    /// Slingshot-11 injection bandwidth per node [bytes/s].
    pub inter_node_bw: f64,
    /// Per-message launch/latency overhead for intra-node hops [s].
    pub intra_latency: f64,
    /// Per-message latency for inter-node hops [s].
    pub inter_latency: f64,
}

impl Topology {
    /// A Frontier job occupying `gcds` effective GPUs (rounded up to whole
    /// nodes).
    ///
    /// # Panics
    /// Panics if `gcds == 0` or exceeds the full machine (75,264 GCDs).
    pub fn frontier(gcds: usize) -> Self {
        assert!(gcds > 0, "need at least one GCD");
        assert!(gcds <= 9408 * 8, "Frontier has 75,264 GCDs");
        let nodes = gcds.div_ceil(8);
        Topology {
            nodes,
            gcds_per_node: 8,
            hbm_per_gcd: 64 * (1 << 30),
            intra_node_bw: 100.0e9,
            paired_gcd_bw: 200.0e9,
            inter_node_bw: 100.0e9,
            intra_latency: 5.0e-6,
            inter_latency: 15.0e-6,
        }
    }

    /// Total GCDs in the job.
    pub fn total_gcds(&self) -> usize {
        self.nodes * self.gcds_per_node
    }

    /// Total HBM across the job [bytes].
    pub fn total_hbm(&self) -> u64 {
        self.total_gcds() as u64 * self.hbm_per_gcd
    }

    /// True if the job spans more than one node.
    pub fn multi_node(&self) -> bool {
        self.nodes > 1
    }

    /// Node index of a global GCD rank.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.gcds_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_shape() {
        let t = Topology::frontier(1024);
        assert_eq!(t.nodes, 128);
        assert_eq!(t.total_gcds(), 1024);
        assert_eq!(t.hbm_per_gcd, 64 * (1 << 30));
        assert!(t.multi_node());
    }

    #[test]
    fn partial_node_rounds_up() {
        let t = Topology::frontier(9);
        assert_eq!(t.nodes, 2);
        assert_eq!(t.total_gcds(), 16);
    }

    #[test]
    fn single_node_job() {
        let t = Topology::frontier(8);
        assert_eq!(t.nodes, 1);
        assert!(!t.multi_node());
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(7), 0);
    }

    #[test]
    fn node_of_ranks() {
        let t = Topology::frontier(16);
        assert_eq!(t.node_of(7), 0);
        assert_eq!(t.node_of(8), 1);
        assert_eq!(t.node_of(15), 1);
    }

    #[test]
    fn bandwidth_hierarchy() {
        let t = Topology::frontier(64);
        assert!(t.paired_gcd_bw > t.intra_node_bw);
        assert!(t.inter_latency > t.intra_latency);
    }

    #[test]
    #[should_panic]
    fn zero_gcds_rejected() {
        let _ = Topology::frontier(0);
    }

    #[test]
    #[should_panic]
    fn oversubscription_rejected() {
        let _ = Topology::frontier(80_000);
    }
}
