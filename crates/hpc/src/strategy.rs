//! Distributed-training strategies (Table I) and their memory /
//! communication footprints.
//!
//! | partitioned state      | FSDP            | ZeRO    |
//! |------------------------|-----------------|---------|
//! | optimizer              | n/a             | stage 1 |
//! | optimizer + gradient   | `shard_grad_op` | stage 2 |
//! | + weights (everything) | `full_shard`    | stage 3 |
//! | hierarchical           | `hybrid_shard`  | n/a     |
//!
//! Memory model (mixed precision, Adam): fp16 weights (2 B) + fp16
//! gradients (2 B) + fp32 Adam moments (8 B) + ~2× weights of transient
//! all-gather / activation working space — the "≈12× parameter size" the
//! paper quotes. Communication per step: DDP all-reduces gradients (bucketed
//! ZeRO-1/2 do the same volume through AllReduce in their PyTorch-Lightning
//! configuration); full sharding adds a parameter all-gather in forward and
//! backward, ≈50 % more volume.

use crate::collective::Collective;

/// A data-parallel distribution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Plain data parallelism: everything replicated.
    Ddp,
    /// DeepSpeed ZeRO stage 1: optimizer states sharded.
    ZeroStage1,
    /// DeepSpeed ZeRO stage 2 / FSDP `shard_grad_op`: optimizer + grads.
    ZeroStage2,
    /// DeepSpeed ZeRO stage 3 / FSDP `full_shard`: everything sharded.
    ZeroStage3,
    /// FSDP `shard_grad_op` (alias of stage 2 partitioning).
    FsdpShardGradOp,
    /// FSDP `full_shard` (alias of stage 3 partitioning).
    FsdpFullShard,
    /// FSDP `hybrid_shard`: full shard within a node, replicate across.
    FsdpHybrid,
}

/// Bytes per parameter of each memory component (mixed precision + Adam).
pub mod bytes_per_param {
    /// fp16 master copy used in compute.
    pub const WEIGHTS: f64 = 2.0;
    /// fp16 gradients.
    pub const GRADS: f64 = 2.0;
    /// fp32 Adam first+second moments.
    pub const OPTIMIZER: f64 = 8.0;
    /// Transient working set (FSDP units, activation slack) ≈ 2× weights.
    pub const TRANSIENT: f64 = 4.0;
}

impl Strategy {
    /// Table I equivalence: the ZeRO stage with the same partitioning.
    pub fn zero_equivalent(self) -> Option<u8> {
        match self {
            Strategy::Ddp => None,
            Strategy::ZeroStage1 => Some(1),
            Strategy::ZeroStage2 | Strategy::FsdpShardGradOp => Some(2),
            Strategy::ZeroStage3 | Strategy::FsdpFullShard => Some(3),
            Strategy::FsdpHybrid => None,
        }
    }

    /// Memory per GCD [bytes] for a model of `params` parameters over
    /// `ranks` data-parallel ranks (`ranks_per_node` only matters for
    /// hybrid sharding).
    pub fn memory_per_gcd(self, params: u64, ranks: usize, ranks_per_node: usize) -> f64 {
        assert!(ranks >= 1 && ranks_per_node >= 1);
        use bytes_per_param::*;
        let p = params as f64;
        let n = ranks as f64;
        let shard = |x: f64, over: f64| x / over;
        // The transient working set follows the weights: strategies that
        // keep weights replicated materialize full-size buffers, while
        // full sharding only ever holds one FSDP unit (bounded by the
        // weight shard).
        let (w, g, o, t) = match self {
            Strategy::Ddp => (WEIGHTS, GRADS, OPTIMIZER, TRANSIENT),
            Strategy::ZeroStage1 => (WEIGHTS, GRADS, shard(OPTIMIZER, n), TRANSIENT),
            Strategy::ZeroStage2 | Strategy::FsdpShardGradOp => {
                (WEIGHTS, shard(GRADS, n), shard(OPTIMIZER, n), TRANSIENT)
            }
            Strategy::ZeroStage3 | Strategy::FsdpFullShard => (
                shard(WEIGHTS, n),
                shard(GRADS, n),
                shard(OPTIMIZER, n),
                shard(TRANSIENT, n),
            ),
            Strategy::FsdpHybrid => {
                let within = ranks_per_node.min(ranks) as f64;
                (
                    shard(WEIGHTS, within),
                    shard(GRADS, within),
                    shard(OPTIMIZER, within),
                    shard(TRANSIENT, within),
                )
            }
        };
        (w + g + o + t) * p
    }

    /// Per-step communication as `(collective, bytes-per-rank)` pairs for a
    /// model of `params` parameters (fp16 wire format).
    pub fn comm_pattern(self, params: u64) -> Vec<(Collective, u64)> {
        let bytes = params * 2; // fp16
        match self {
            // DDP and the bucketed ZeRO-1/2 configurations the paper runs
            // synchronize gradients with AllReduce.
            Strategy::Ddp | Strategy::ZeroStage1 | Strategy::ZeroStage2 => {
                vec![(Collective::AllReduce, bytes)]
            }
            // shard_grad_op: gradients reduce-scattered, updated params
            // all-gathered.
            Strategy::FsdpShardGradOp => vec![
                (Collective::ReduceScatter, bytes),
                (Collective::AllGather, bytes),
            ],
            // Full sharding: parameter all-gather in forward AND backward,
            // plus gradient reduce-scatter — the "~50% more volume".
            Strategy::ZeroStage3 | Strategy::FsdpFullShard | Strategy::FsdpHybrid => vec![
                (Collective::AllGather, bytes),
                (Collective::AllGather, bytes),
                (Collective::ReduceScatter, bytes),
            ],
        }
    }

    /// Total data *moved* per step [bytes], weighting each collective by
    /// its asymptotic ring traffic factor (AllReduce moves 2S, AG/RS move
    /// S). This is the quantity behind the paper's "FSDP incurs ~50% more
    /// communication volume than data parallelism".
    pub fn comm_volume(self, params: u64) -> u64 {
        self.comm_pattern(params)
            .iter()
            .map(|(c, b)| match c {
                Collective::AllReduce => 2 * b,
                Collective::AllGather | Collective::ReduceScatter => *b,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn table1_correspondence() {
        assert_eq!(Strategy::ZeroStage1.zero_equivalent(), Some(1));
        assert_eq!(Strategy::FsdpShardGradOp.zero_equivalent(), Some(2));
        assert_eq!(Strategy::ZeroStage2.zero_equivalent(), Some(2));
        assert_eq!(Strategy::FsdpFullShard.zero_equivalent(), Some(3));
        assert_eq!(Strategy::ZeroStage3.zero_equivalent(), Some(3));
        assert_eq!(Strategy::Ddp.zero_equivalent(), None);
        assert_eq!(Strategy::FsdpHybrid.zero_equivalent(), None);
    }

    #[test]
    fn ddp_memory_is_about_12x_plus_transient() {
        // Paper: "approximately 12 times the model parameter size".
        let p = 1_000_000_000u64;
        let m = Strategy::Ddp.memory_per_gcd(p, 64, 8);
        assert!((m / p as f64 - 16.0).abs() < 1e-9); // 12 + 4 transient
    }

    #[test]
    fn sharding_strictly_reduces_memory() {
        let p = 2_500_000_000u64;
        let n = 1024;
        let ddp = Strategy::Ddp.memory_per_gcd(p, n, 8);
        let s1 = Strategy::ZeroStage1.memory_per_gcd(p, n, 8);
        let s2 = Strategy::ZeroStage2.memory_per_gcd(p, n, 8);
        let s3 = Strategy::ZeroStage3.memory_per_gcd(p, n, 8);
        assert!(ddp > s1 && s1 > s2 && s2 > s3);
    }

    #[test]
    fn fsdp_aliases_match_zero_stages() {
        let p = 1_000_000_000u64;
        assert_eq!(
            Strategy::FsdpShardGradOp.memory_per_gcd(p, 128, 8),
            Strategy::ZeroStage2.memory_per_gcd(p, 128, 8)
        );
        assert_eq!(
            Strategy::FsdpFullShard.memory_per_gcd(p, 128, 8),
            Strategy::ZeroStage3.memory_per_gcd(p, 128, 8)
        );
    }

    #[test]
    fn hybrid_shards_within_node_only() {
        let p = 1_000_000_000u64;
        let hybrid = Strategy::FsdpHybrid.memory_per_gcd(p, 1024, 8);
        let full = Strategy::FsdpFullShard.memory_per_gcd(p, 1024, 8);
        let ddp = Strategy::Ddp.memory_per_gcd(p, 1024, 8);
        assert!(hybrid > full, "hybrid shards over fewer ranks");
        assert!(hybrid < ddp);
        // Hybrid at 1024 ranks equals full shard at 8 ranks.
        assert_eq!(hybrid, Strategy::FsdpFullShard.memory_per_gcd(p, 8, 8));
    }

    #[test]
    fn full_shard_fits_2_5b_where_ddp_does_not() {
        // The 2.5B model: DDP wants 2.5e9 * 16 B = 40 GB... fits in 64 GB,
        // but a 25B model would not — check the boundary logic at 25B.
        let p = 25_000_000_000u64;
        let hbm = 64.0 * GB;
        assert!(Strategy::Ddp.memory_per_gcd(p, 1024, 8) > hbm);
        assert!(Strategy::ZeroStage3.memory_per_gcd(p, 1024, 8) < hbm);
    }

    #[test]
    fn full_shard_is_1_5x_comm_volume() {
        // Paper: "FSDP incurs approximately 50% more communication volume
        // compared to data parallelism".
        let p = 1_000_000_000u64;
        let ddp = Strategy::Ddp.comm_volume(p) as f64;
        let full = Strategy::FsdpFullShard.comm_volume(p) as f64;
        assert!((full / ddp - 1.5).abs() < 1e-9);
    }

    #[test]
    fn comm_patterns_use_expected_collectives() {
        let p = 1_000u64;
        assert_eq!(Strategy::Ddp.comm_pattern(p), vec![(Collective::AllReduce, 2000)]);
        let full = Strategy::FsdpFullShard.comm_pattern(p);
        assert_eq!(full.len(), 3);
        assert!(full.iter().filter(|(c, _)| *c == Collective::AllGather).count() == 2);
    }
}
