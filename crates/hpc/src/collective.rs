//! RCCL collective cost models (Fig. 8).
//!
//! Hierarchical ring α–β model: a collective over `n` GCDs spanning several
//! nodes is bottlenecked by the slower of the intra-node Infinity-Fabric
//! phase and the inter-node Slingshot phase, with per-step launch latencies
//! and an empirical efficiency curve in the message size. Two empirical RCCL
//! effects observed on Frontier are reproduced:
//!
//! * small messages are latency-dominated, so bus bandwidth climbs with
//!   message size;
//! * **AllReduce shows a throughput dip around 256 MB**, where RCCL switches
//!   its internal algorithm/protocol — the effect the paper exploits when
//!   tuning the DeepSpeed bucket size (Fig. 9).

use crate::topology::Topology;

/// The three collectives that dominate data-parallel training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collective {
    /// Reduce + broadcast (DDP gradient sync, ZeRO-1/2 in bucketed form).
    AllReduce,
    /// Gather shards to all ranks (FSDP/ZeRO-3 parameter unsharding).
    AllGather,
    /// Reduce and scatter shards (FSDP/ZeRO gradient sharding).
    ReduceScatter,
}

impl Collective {
    /// Data-movement multiplier of the ring algorithm relative to the
    /// message size: AllReduce moves `2 (n−1)/n · S`, the others
    /// `(n−1)/n · S`.
    pub fn traffic_factor(self, n: usize) -> f64 {
        let ring = (n as f64 - 1.0) / n as f64;
        match self {
            Collective::AllReduce => 2.0 * ring,
            Collective::AllGather | Collective::ReduceScatter => ring,
        }
    }
}

/// Message-size efficiency: ramps from latency-bound to bandwidth-bound.
/// `s_half` is the size at which half the peak is achieved.
fn size_efficiency(bytes: f64, s_half: f64) -> f64 {
    bytes / (bytes + s_half)
}

/// The empirical AllReduce protocol-switch dip near 256 MB: a smooth
/// notch that suppresses throughput by up to ~45% at the center.
fn allreduce_dip(bytes: f64) -> f64 {
    let center = 256.0 * 1024.0 * 1024.0;
    let x = (bytes / center).ln();
    // Gaussian notch in log-size, width ~ half a decade.
    1.0 - 0.55 * (-(x * x) / (2.0 * 0.65f64 * 0.65)).exp()
}

/// Predicted wall time [s] of one collective of `bytes` per rank over
/// `gcds` ranks on `topo`.
pub fn collective_time(topo: &Topology, op: Collective, gcds: usize, bytes: u64) -> f64 {
    assert!(gcds >= 1);
    assert!(gcds <= topo.total_gcds(), "collective exceeds job size");
    if gcds == 1 || bytes == 0 {
        return topo.intra_latency;
    }
    let s = bytes as f64;
    let traffic = op.traffic_factor(gcds) * s;

    let within_node = gcds <= topo.gcds_per_node;
    // RCCL sustains only ~25% of Slingshot line rate for cross-node rings
    // (protocol + rail-routing overheads measured on Frontier).
    const RCCL_INTER_EFFICIENCY: f64 = 0.25;
    let (link_bw, latency, mut steps) = if within_node {
        (topo.intra_node_bw, topo.intra_latency, gcds as f64 - 1.0)
    } else {
        // Hierarchical ring: the inter-node phase over `nodes` NICs
        // bottlenecks; intra-node hops add latency steps.
        let nodes = gcds.div_ceil(topo.gcds_per_node);
        (
            topo.inter_node_bw * RCCL_INTER_EFFICIENCY,
            topo.inter_latency,
            nodes as f64 + topo.gcds_per_node as f64,
        )
    };
    // AllReduce benefits from RCCL's low-latency protocols; AG/RS pay the
    // full ring setup both ways.
    if op != Collective::AllReduce {
        steps *= 2.0;
    }

    // Effective bandwidth with message-size ramp and protocol effects.
    let mut eff = size_efficiency(s, 8.0 * 1024.0 * 1024.0);
    if op == Collective::AllReduce {
        eff *= allreduce_dip(s);
    } else {
        // AG/RS sustain slightly lower peak efficiency on RCCL.
        eff *= 0.92;
    }

    latency * steps + traffic / (link_bw * eff)
}

/// NCCL-convention "bus bandwidth" [bytes/s]: the normalized throughput the
/// paper plots in Fig. 8 (`busbw = traffic_factor · S / t`).
pub fn bus_bandwidth(topo: &Topology, op: Collective, gcds: usize, bytes: u64) -> f64 {
    let t = collective_time(topo, op, gcds, bytes);
    op.traffic_factor(gcds) * bytes as f64 / t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(gcds: usize) -> Topology {
        Topology::frontier(gcds)
    }

    const MB: u64 = 1024 * 1024;

    #[test]
    fn traffic_factors() {
        assert!((Collective::AllReduce.traffic_factor(2) - 1.0).abs() < 1e-12);
        assert!((Collective::AllGather.traffic_factor(2) - 0.5).abs() < 1e-12);
        // Large n: AllReduce → 2, others → 1.
        assert!((Collective::AllReduce.traffic_factor(1024) - 2.0).abs() < 0.01);
        assert!((Collective::ReduceScatter.traffic_factor(1024) - 1.0).abs() < 0.01);
    }

    #[test]
    fn bandwidth_grows_with_message_size() {
        let t = topo(64);
        let small = bus_bandwidth(&t, Collective::AllGather, 64, MB);
        let large = bus_bandwidth(&t, Collective::AllGather, 64, 1024 * MB);
        assert!(large > 2.0 * small, "{small:.3e} vs {large:.3e}");
    }

    #[test]
    fn allreduce_dip_at_256mb() {
        let t = topo(128);
        let at_64 = bus_bandwidth(&t, Collective::AllReduce, 128, 64 * MB);
        let at_256 = bus_bandwidth(&t, Collective::AllReduce, 128, 256 * MB);
        let at_1g = bus_bandwidth(&t, Collective::AllReduce, 128, 1024 * MB);
        assert!(at_256 < at_64, "dip must undercut 64MB: {at_256:.3e} vs {at_64:.3e}");
        assert!(at_256 < at_1g, "dip must undercut 1GB: {at_256:.3e} vs {at_1g:.3e}");
    }

    #[test]
    fn allgather_matches_reduce_scatter() {
        let t = topo(256);
        for mb in [16u64, 64, 256, 1024] {
            let ag = bus_bandwidth(&t, Collective::AllGather, 256, mb * MB);
            let rs = bus_bandwidth(&t, Collective::ReduceScatter, 256, mb * MB);
            assert!((ag - rs).abs() / ag < 1e-9, "AG and RS should coincide");
        }
    }

    #[test]
    fn allreduce_beats_others_at_64mb_at_scale() {
        // Paper: "For a message size of 64M, the AllReduce significantly
        // outperforms the other two at scale."
        let t = topo(1024);
        let ar = bus_bandwidth(&t, Collective::AllReduce, 1024, 64 * MB);
        let ag = bus_bandwidth(&t, Collective::AllGather, 1024, 64 * MB);
        assert!(ar > 1.3 * ag, "{ar:.3e} vs {ag:.3e}");
    }

    #[test]
    fn large_messages_converge_across_collectives() {
        // Paper: "for a larger message size, all three schemes perform more
        // or less the same" — within ~25% at 1 GB (away from the dip).
        let t = topo(1024);
        let ar = bus_bandwidth(&t, Collective::AllReduce, 1024, 1024 * MB);
        let ag = bus_bandwidth(&t, Collective::AllGather, 1024, 1024 * MB);
        let ratio = ar / ag;
        assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn single_rank_is_cheap() {
        let t = topo(8);
        let time = collective_time(&t, Collective::AllReduce, 1, 1024 * MB);
        assert!(time < 1e-4);
    }

    #[test]
    fn more_ranks_more_latency() {
        let t = topo(1024);
        let small = collective_time(&t, Collective::AllReduce, 16, MB);
        let big = collective_time(&t, Collective::AllReduce, 1024, MB);
        assert!(big > small, "latency term must grow with ranks");
    }

    #[test]
    fn intra_node_is_faster_than_cross_node() {
        let t = topo(64);
        let within = collective_time(&t, Collective::AllReduce, 8, 256 * MB);
        let across = collective_time(&t, Collective::AllReduce, 64, 256 * MB);
        assert!(across > within);
    }

    #[test]
    #[should_panic]
    fn oversized_collective_rejected() {
        let t = topo(8);
        let _ = collective_time(&t, Collective::AllReduce, 64, MB);
    }
}
