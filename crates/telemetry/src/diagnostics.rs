//! Per-cycle data-assimilation diagnostics payload.
//!
//! [`DaDiagnostics`] is the serialized form of the statistical filter
//! health checks computed each assimilation cycle (innovation moments,
//! chi-squared consistency, rank histogram, spread–skill ratio). The
//! telemetry crate only defines the container and its JSON round trip —
//! the numerics live in `stats::diagnostics` and the wiring in
//! `da_core::diagnostics`, keeping this crate dependency-free.
//!
//! Producers must keep every field **finite**: non-finite floats serialize
//! as `null` and would fail to re-parse (by design — a NaN diagnostic is a
//! bug upstream, not a value worth round-tripping).

use crate::json::Json;

/// Statistical filter-health diagnostics for one assimilation cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct DaDiagnostics {
    /// Mean of the O−F (observation minus forecast) innovation.
    pub of_mean: f64,
    /// Variance of the O−F innovation.
    pub of_var: f64,
    /// Mean of the O−A (observation minus analysis) residual.
    pub oa_mean: f64,
    /// Variance of the O−A residual.
    pub oa_var: f64,
    /// Chi-squared innovation consistency per degree of freedom
    /// (`≈ 1` for a calibrated filter).
    pub chi2: f64,
    /// Spread–skill ratio of the analysis ensemble (`0.0` when the skill
    /// denominator vanishes; `≪ 1` flags overconfidence).
    pub spread_skill: f64,
    /// Ensemble rank histogram of the observations against the forecast
    /// ensemble: `M + 1` bins for an `M`-member ensemble.
    pub rank_hist: Vec<u64>,
}

impl DaDiagnostics {
    /// Serializes to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("of_mean", Json::Num(self.of_mean)),
            ("of_var", Json::Num(self.of_var)),
            ("oa_mean", Json::Num(self.oa_mean)),
            ("oa_var", Json::Num(self.oa_var)),
            ("chi2", Json::Num(self.chi2)),
            ("spread_skill", Json::Num(self.spread_skill)),
            (
                "rank_hist",
                Json::Arr(self.rank_hist.iter().map(|&c| Json::from(c)).collect()),
            ),
        ])
    }

    /// Deserializes from the object shape produced by [`to_json`].
    pub fn from_json(v: &Json) -> Result<DaDiagnostics, String> {
        if !matches!(v, Json::Obj(_)) {
            return Err("diagnostics must be an object".into());
        }
        let f = |k: &str| {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing diagnostics field {k}"))
        };
        let rank_hist = match v.get("rank_hist") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|e| {
                    e.as_i64()
                        .and_then(|c| u64::try_from(c).ok())
                        .ok_or("rank_hist entries must be non-negative integers")
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing rank_hist".into()),
        };
        Ok(DaDiagnostics {
            of_mean: f("of_mean")?,
            of_var: f("of_var")?,
            oa_mean: f("oa_mean")?,
            oa_var: f("oa_var")?,
            chi2: f("chi2")?,
            spread_skill: f("spread_skill")?,
            rank_hist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DaDiagnostics {
        DaDiagnostics {
            of_mean: -0.001,
            of_var: 0.04,
            oa_mean: 0.0005,
            oa_var: 0.01,
            chi2: 1.12,
            spread_skill: 0.93,
            rank_hist: vec![3, 5, 9, 5, 2],
        }
    }

    #[test]
    fn json_round_trip() {
        let d = sample();
        let text = d.to_json().to_string();
        let back = DaDiagnostics::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn missing_fields_are_rejected() {
        let mut d = sample().to_json();
        if let Json::Obj(pairs) = &mut d {
            pairs.retain(|(k, _)| k != "chi2");
        }
        let err = DaDiagnostics::from_json(&d).unwrap_err();
        assert!(err.contains("chi2"), "{err}");
        assert!(DaDiagnostics::from_json(&Json::Arr(Vec::new())).is_err());
    }

    #[test]
    fn negative_histogram_counts_are_rejected() {
        let mut d = sample().to_json();
        if let Json::Obj(pairs) = &mut d {
            for (k, v) in pairs.iter_mut() {
                if k == "rank_hist" {
                    *v = Json::Arr(vec![Json::Int(-1)]);
                }
            }
        }
        assert!(DaDiagnostics::from_json(&d).is_err());
    }
}
