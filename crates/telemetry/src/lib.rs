//! Workspace-wide telemetry: hierarchical span timers, counters / gauges /
//! histograms, and per-cycle data-assimilation diagnostics with JSONL export.
//!
//! Everything routes through a process-global registry so instrumentation
//! can be dropped into any crate without plumbing a context object through
//! hot call paths. The whole layer sits behind a single enable switch:
//!
//! * Set `SQG_DA_TELEMETRY=1` (or `true` / `on`) in the environment, or call
//!   [`set_enabled(true)`](set_enabled), to turn collection on.
//! * When disabled (the default), every instrumentation macro reduces to one
//!   relaxed atomic load — a few nanoseconds — so instrumented hot loops cost
//!   effectively nothing (see `crates/bench/benches/telemetry_bench.rs`).
//! * Set `SQG_DA_TELEMETRY_JSONL=/path/to/file.jsonl` to stream every
//!   completed assimilation cycle record to disk as it is recorded.
//!
//! The main entry points:
//!
//! * [`span!`] — RAII wall-clock timer; nested spans build dotted paths like
//!   `osse.cycle.analysis`.
//! * [`counter_add`] / [`gauge_set`] / [`histogram_record`] — named
//!   metrics with sharded, rayon-safe aggregation.
//! * [`CycleRecord`] + [`record_cycle`] — structured per-cycle DA
//!   diagnostics (RMSE, spread, per-phase timings, innovation statistics)
//!   serializable to JSONL.
//! * [`snapshot_json`](report::snapshot_json) — one JSON object with every
//!   span and metric, used by the bench binaries' `--json` flag.
//! * [`flight_record`] + [`dump_postmortem`] — allocation-free flight
//!   recorder ring with a structured postmortem snapshot to
//!   `SQG_DA_POSTMORTEM_DIR` when a run leaves its healthy state.
//! * [`TraceEvent`] + [`chrome_trace`] — Chrome trace-event timelines for
//!   the distributed runtime's cross-rank comm/compute breakdown.

use std::sync::atomic::{AtomicU8, Ordering};

pub mod cycle;
pub mod diagnostics;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod report;
pub mod span;
pub mod trace;

pub use cycle::{clear_cycles, cycle_records, record_cycle, write_jsonl, CycleRecord};
pub use diagnostics::DaDiagnostics;
pub use flight::{
    dump_postmortem, flight_events, flight_record, reset_flight, set_postmortem_dir,
    FlightEvent, FlightKind,
};
pub use json::Json;
pub use metrics::{
    counter_add, counter_value, gauge_set, gauge_value, histogram_record, HistogramSnapshot,
};
pub use span::{span_enter, span_snapshot, SpanGuard, SpanStat};
pub use trace::{chrome_trace, TraceEvent};

/// Tri-state enable flag: 0 = unresolved, 1 = disabled, 2 = enabled.
///
/// Unresolved collapses to the environment's answer on first query, so the
/// steady-state check is a single relaxed load of a cached value.
static ENABLED: AtomicU8 = AtomicU8::new(0);

// State 0 is "unresolved"; `resolve_from_env` collapses it on first query.
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

#[cold]
fn resolve_from_env() -> bool {
    let on = std::env::var("SQG_DA_TELEMETRY")
        .map(|v| matches!(v.trim(), "1" | "true" | "TRUE" | "on" | "ON"))
        .unwrap_or(false);
    ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Whether telemetry collection is currently on.
///
/// This is the hot-path check every instrumentation macro performs first;
/// after the first call it is a single relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => resolve_from_env(),
    }
}

/// Programmatically enables or disables collection, overriding the
/// `SQG_DA_TELEMETRY` environment variable.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Resets all collected telemetry (spans, metrics, cycle records, flight
/// events) without touching the enable state. Intended for tests and
/// between-experiment boundaries.
pub fn reset() {
    span::reset_spans();
    metrics::reset_metrics();
    cycle::clear_cycles();
    flight::reset_flight();
}

/// Opens a named wall-clock span for the enclosing scope.
///
/// ```
/// # telemetry::set_enabled(true);
/// {
///     let _span = telemetry::span!("ensf.analysis");
///     // ... timed work ...
/// }
/// assert!(telemetry::span_snapshot().iter().any(|s| s.path == "ensf.analysis"));
/// ```
///
/// Spans nest: a span opened while another is active on the same thread
/// records under the dotted concatenation of the active paths. When
/// telemetry is disabled this costs one atomic load and returns a no-op
/// guard.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_enter($name)
    };
}

/// Serializes unit tests that toggle the global enable flag or reset the
/// global registries, since the test harness runs tests concurrently.
#[cfg(test)]
pub(crate) static TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_round_trip() {
        let _lock = TEST_LOCK.lock();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
    }
}
