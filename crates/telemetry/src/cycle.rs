//! Per-cycle data-assimilation diagnostics.
//!
//! The OSSE harness records one [`CycleRecord`] per assimilation cycle:
//! cycle index, forecast hours, analysis RMSE, ensemble spread, observation
//! count, and per-phase wall-clock timings. Records accumulate in a global
//! buffer (retrievable via [`cycle_records`], exportable via
//! [`write_jsonl`]) and, when `SQG_DA_TELEMETRY_JSONL` names a file, stream
//! to it as JSON Lines as they are recorded.

use crate::diagnostics::DaDiagnostics;
use crate::json::{self, Json};
use parking_lot::Mutex;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Diagnostics for one assimilation cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleRecord {
    /// Experiment / scheme label, e.g. `"EnSF"` or `"LETKF"`.
    pub label: String,
    /// Zero-based cycle index.
    pub cycle: usize,
    /// Simulated forecast hours elapsed at this cycle.
    pub hours: f64,
    /// Analysis root-mean-square error against truth.
    pub rmse: f64,
    /// Ensemble spread after analysis.
    pub spread: f64,
    /// Number of observations assimilated this cycle.
    pub obs_count: usize,
    /// `(phase name, wall-clock seconds)` pairs, e.g.
    /// `[("forecast", 0.12), ("analysis", 0.05)]`.
    pub phases: Vec<(String, f64)>,
    /// Resilience events raised during the cycle, e.g.
    /// `["member_quarantined:3", "analysis_retry:1"]` (empty when healthy).
    pub events: Vec<String>,
    /// Statistical filter-health diagnostics (innovation moments, chi²,
    /// rank histogram, spread–skill), when the harness computed them.
    pub diagnostics: Option<DaDiagnostics>,
}

impl CycleRecord {
    /// Serializes to a JSON object. The `diagnostics` key is emitted only
    /// when present, so records from harnesses that don't compute
    /// diagnostics keep their old shape.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("label", Json::from(self.label.as_str())),
            ("cycle", Json::from(self.cycle)),
            ("hours", Json::Num(self.hours)),
            ("rmse", Json::Num(self.rmse)),
            ("spread", Json::Num(self.spread)),
            ("obs_count", Json::from(self.obs_count)),
            (
                "phases",
                Json::Obj(
                    self.phases.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect(),
                ),
            ),
            (
                "events",
                Json::Arr(self.events.iter().map(|e| Json::from(e.as_str())).collect()),
            ),
        ];
        if let Some(d) = &self.diagnostics {
            pairs.push(("diagnostics", d.to_json()));
        }
        Json::obj(pairs)
    }

    /// Deserializes from the object shape produced by [`to_json`].
    pub fn from_json(v: &Json) -> Result<CycleRecord, String> {
        let f = |k: &str| v.get(k).and_then(Json::as_f64).ok_or_else(|| format!("missing {k}"));
        let phases = match v.get("phases") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, pv)| {
                    pv.as_f64().map(|s| (k.clone(), s)).ok_or_else(|| format!("bad phase {k}"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing phases".into()),
        };
        // `events` is absent in records written before the resilience layer.
        let events = match v.get("events") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|e| e.as_str().map(str::to_string).ok_or("non-string event"))
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("events must be an array".into()),
            None => Vec::new(),
        };
        // `diagnostics` is optional (absent from pre-observability records
        // and from harnesses that don't compute it); present-but-malformed
        // is an error, not a silent None.
        let diagnostics = match v.get("diagnostics") {
            Some(d) => Some(DaDiagnostics::from_json(d)?),
            None => None,
        };
        Ok(CycleRecord {
            label: v
                .get("label")
                .and_then(Json::as_str)
                .ok_or("missing label")?
                .to_string(),
            cycle: f("cycle")? as usize,
            hours: f("hours")?,
            rmse: f("rmse")?,
            spread: f("spread")?,
            obs_count: f("obs_count")? as usize,
            phases,
            events,
            diagnostics,
        })
    }
}

struct CycleSink {
    records: Vec<CycleRecord>,
    /// Lazily opened JSONL stream; `Some(None)` means "resolved: no file".
    stream: Option<Option<File>>,
}

static SINK: Mutex<CycleSink> = Mutex::new(CycleSink { records: Vec::new(), stream: None });

fn open_stream() -> Option<File> {
    let path = std::env::var("SQG_DA_TELEMETRY_JSONL").ok()?;
    if path.trim().is_empty() {
        return None;
    }
    match File::create(&path) {
        Ok(f) => Some(f),
        Err(e) => {
            eprintln!("telemetry: cannot open SQG_DA_TELEMETRY_JSONL={path}: {e}");
            None
        }
    }
}

/// Records one cycle's diagnostics (no-op while telemetry is disabled).
///
/// Appends to the in-memory buffer and, when `SQG_DA_TELEMETRY_JSONL` is
/// set, writes the record's JSON line to that file immediately.
pub fn record_cycle(record: CycleRecord) {
    if !crate::enabled() {
        return;
    }
    let mut sink = SINK.lock();
    let stream = sink.stream.get_or_insert_with(open_stream);
    if let Some(file) = stream {
        let line = format!("{}\n", record.to_json());
        if let Err(e) = file.write_all(line.as_bytes()) {
            eprintln!("telemetry: JSONL write failed: {e}");
        }
    }
    sink.records.push(record);
}

/// All cycle records collected so far, in recording order.
pub fn cycle_records() -> Vec<CycleRecord> {
    SINK.lock().records.clone()
}

/// Clears the in-memory cycle buffer (the JSONL stream, if any, is kept).
pub fn clear_cycles() {
    SINK.lock().records.clear();
}

/// Writes all collected cycle records to `path` as JSON Lines.
pub fn write_jsonl(path: &Path) -> std::io::Result<()> {
    let records = cycle_records();
    let mut out = String::new();
    for r in &records {
        out.push_str(&r.to_json().to_string());
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Parses a JSONL string back into records; errors carry the line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<CycleRecord>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, line)| {
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            CycleRecord::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: usize) -> CycleRecord {
        CycleRecord {
            label: "EnSF".into(),
            cycle,
            hours: cycle as f64 * 6.0,
            rmse: 0.1 / (cycle + 1) as f64,
            spread: 0.08,
            obs_count: 128,
            phases: vec![("forecast".into(), 0.012), ("analysis".into(), 0.034)],
            events: if cycle % 2 == 1 { vec![format!("member_quarantined:{cycle}")] } else { Vec::new() },
            diagnostics: if cycle.is_multiple_of(2) {
                Some(crate::DaDiagnostics {
                    of_mean: 0.001,
                    of_var: 0.02,
                    oa_mean: 0.0004,
                    oa_var: 0.008,
                    chi2: 1.05,
                    spread_skill: 0.9,
                    rank_hist: vec![2, 4, 6, 4, 2],
                })
            } else {
                None
            },
        }
    }

    #[test]
    fn legacy_records_without_events_parse() {
        // Records written before the resilience layer carry no `events` key.
        let legacy = "{\"label\":\"EnSF\",\"cycle\":0,\"hours\":0,\"rmse\":0.1,\
                      \"spread\":0.08,\"obs_count\":4,\"phases\":{\"analysis\":0.01}}\n";
        let recs = parse_jsonl(legacy).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].events.is_empty());
    }

    #[test]
    fn jsonl_round_trip() {
        let records: Vec<_> = (0..4).map(sample).collect();
        let mut text = String::new();
        for r in &records {
            text.push_str(&r.to_json().to_string());
            text.push('\n');
        }
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn record_and_clear_buffer() {
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        clear_cycles();
        record_cycle(sample(0));
        record_cycle(sample(1));
        let recs = cycle_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].cycle, 1);
        clear_cycles();
        assert!(cycle_records().is_empty());
    }

    #[test]
    fn disabled_drops_records() {
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        clear_cycles();
        crate::set_enabled(false);
        record_cycle(sample(0));
        crate::set_enabled(true);
        assert!(cycle_records().is_empty());
    }

    #[test]
    fn bad_lines_report_position() {
        let err = parse_jsonl("{\"label\":\"x\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn malformed_diagnostics_are_rejected_not_dropped() {
        // A record with a `diagnostics` key that is not a valid object
        // must fail parsing (absent is fine; corrupt is not).
        let good = sample(0).to_json().to_string();
        let bad = good.replace("\"diagnostics\":{", "\"diagnostics\":[{");
        assert_ne!(good, bad, "replacement must have applied");
        // The mutation breaks JSON nesting, or — if it were balanced —
        // the non-object diagnostics shape; either way line 2 errors.
        let text = format!("{good}\n{bad}\n");
        let err = parse_jsonl(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");

        // Balanced but wrong-typed diagnostics also fail.
        let wrong = good.replace(
            "\"diagnostics\":{",
            "\"diagnostics\":true,\"unused\":{",
        );
        let err2 = parse_jsonl(&wrong).unwrap_err();
        assert!(err2.contains("diagnostics"), "{err2}");
    }
}
