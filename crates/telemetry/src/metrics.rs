//! Named counters, gauges, and histograms with rayon-safe aggregation.
//!
//! * **Counters** are monotonically increasing `u64` sums (FFT invocations,
//!   SDE Euler steps, simulated collective bytes). Increments go to one of
//!   several `AtomicU64` shards picked by thread identity, so concurrent
//!   workers do not serialize on a single cache line; reads sum the shards.
//! * **Gauges** are last-write-wins `f64` values (current ensemble spread,
//!   latest epoch loss), stored as bit patterns in an `AtomicU64`.
//! * **Histograms** record `f64` samples into log2-spaced buckets plus
//!   exact count / sum / min / max, supporting approximate quantiles with
//!   well-defined edge cases (empty → `None`, single sample → that sample).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const COUNTER_SHARDS: usize = 16;
const BUCKETS: usize = 64;

struct Counter {
    shards: [AtomicU64; COUNTER_SHARDS],
}

impl Counter {
    fn new() -> Self {
        Counter { shards: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    fn add(&self, delta: u64) {
        self.shards[shard_index()].fetch_add(delta, Ordering::Relaxed);
    }

    fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread sticks to one counter shard, assigned round-robin.
    static SHARD_INDEX: usize =
        NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
}

fn shard_index() -> usize {
    SHARD_INDEX.with(|i| *i)
}

struct Histogram {
    bucket_counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Sum / min / max as f64 bit patterns, updated under the stats lock.
    stats: Mutex<HistStats>,
}

#[derive(Debug, Clone, Copy)]
struct HistStats {
    sum: f64,
    min: f64,
    max: f64,
}

/// Bucket index for a sample: log2-spaced so the histogram covers values
/// from ~1e-9 (sub-nanosecond seconds, tiny norms) to ~1e9 in 64 buckets.
fn bucket_of(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    (v.log2() as i64 + 30).clamp(0, BUCKETS as i64 - 1) as usize
}

/// Lower edge of bucket `i`, the inverse of [`bucket_of`] spacing.
fn bucket_low(i: usize) -> f64 {
    (2.0f64).powi(i as i32 - 30)
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            bucket_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            stats: Mutex::new(HistStats { sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }),
        }
    }

    fn record(&self, v: f64) {
        self.bucket_counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut s = self.stats.lock();
        s.sum += v;
        s.min = s.min.min(v);
        s.max = s.max.max(v);
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let stats = *self.stats.lock();
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count.load(Ordering::Relaxed),
            sum: stats.sum,
            min: stats.min,
            max: stats.max,
            bucket_counts: self.bucket_counts.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: f64,
    /// Smallest sample (`inf` when empty).
    pub min: f64,
    /// Largest sample (`-inf` when empty).
    pub max: f64,
    /// Per-bucket sample counts, log2-spaced.
    pub bucket_counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`).
    ///
    /// Edge cases: an empty histogram returns `None`; a single sample
    /// returns that sample (the exact min) for every `q`. Otherwise the
    /// answer interpolates within the bucket containing the target rank and
    /// is clamped to the exact `[min, max]` observed.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count == 1 {
            return Some(self.min);
        }
        let q = q.clamp(0.0, 1.0);
        // Rank in [1, count] of the sample we want.
        let target = (q * (self.count - 1) as f64).floor() as u64 + 1;
        let mut seen = 0u64;
        for (i, &c) in self.bucket_counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let within = (target - seen) as f64 / c as f64;
                let lo = bucket_low(i);
                let hi = bucket_low(i + 1);
                let est = lo + within * (hi - lo);
                return Some(est.clamp(self.min, self.max));
            }
            seen += c;
        }
        Some(self.max)
    }
}

#[derive(Default)]
struct MetricsStore {
    counters: HashMap<String, &'static Counter>,
    gauges: HashMap<String, &'static AtomicU64>,
    histograms: HashMap<String, &'static Histogram>,
}

/// Name → metric maps. Metrics themselves are leaked `'static` so the hot
/// increment path holds no lock while touching the atomics; the map lock is
/// only taken on first registration or for snapshots.
static STORE: Mutex<Option<MetricsStore>> = Mutex::new(None);

fn with_store<T>(f: impl FnOnce(&mut MetricsStore) -> T) -> T {
    let mut guard = STORE.lock();
    f(guard.get_or_insert_with(MetricsStore::default))
}

fn counter(name: &str) -> &'static Counter {
    with_store(|s| {
        if let Some(c) = s.counters.get(name) {
            return *c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new())); // lint: allow(no-alloc-reachable, reason="one-time registration on first use; the steady-state add path only loads the cached &'static")
        s.counters.insert(name.to_string(), c); // lint: allow(no-alloc-reachable, reason="one-time registration on first use; the steady-state add path only loads the cached &'static")
        c
    })
}

/// Adds `delta` to the named counter (no-op while telemetry is disabled).
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    counter(name).add(delta);
}

/// Current value of the named counter (0 if never written).
pub fn counter_value(name: &str) -> u64 {
    with_store(|s| s.counters.get(name).map(|c| c.value()).unwrap_or(0))
}

/// Sets the named gauge to `value` (no-op while telemetry is disabled).
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let g = with_store(|s| {
        if let Some(g) = s.gauges.get(name) {
            return *g;
        }
        let g: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
        s.gauges.insert(name.to_string(), g);
        g
    });
    g.store(value.to_bits(), Ordering::Relaxed);
}

/// Last value written to the named gauge, or `None` if never set.
pub fn gauge_value(name: &str) -> Option<f64> {
    with_store(|s| s.gauges.get(name).map(|g| f64::from_bits(g.load(Ordering::Relaxed))))
}

/// Records `value` into the named histogram (no-op while disabled).
pub fn histogram_record(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let h = with_store(|s| {
        if let Some(h) = s.histograms.get(name) {
            return *h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new())); // lint: allow(no-alloc-reachable, reason="one-time registration on first use; the steady-state record path only loads the cached &'static")
        s.histograms.insert(name.to_string(), h); // lint: allow(no-alloc-reachable, reason="one-time registration on first use; the steady-state record path only loads the cached &'static")
        h
    });
    h.record(value);
}

/// Snapshot of the named histogram, or `None` if it was never written.
pub fn histogram_snapshot(name: &str) -> Option<HistogramSnapshot> {
    with_store(|s| s.histograms.get(name).map(|h| h.snapshot(name)))
}

/// Names and values of all counters, sorted by name.
pub fn all_counters() -> Vec<(String, u64)> {
    let mut v: Vec<_> =
        with_store(|s| s.counters.iter().map(|(k, c)| (k.clone(), c.value())).collect());
    v.sort();
    v
}

/// Names and values of all gauges, sorted by name.
pub fn all_gauges() -> Vec<(String, f64)> {
    let mut v: Vec<_> = with_store(|s| {
        s.gauges
            .iter()
            .map(|(k, g)| (k.clone(), f64::from_bits(g.load(Ordering::Relaxed))))
            .collect()
    });
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

/// Snapshots of all histograms, sorted by name.
pub fn all_histograms() -> Vec<HistogramSnapshot> {
    let mut v: Vec<_> =
        with_store(|s| s.histograms.iter().map(|(k, h)| h.snapshot(k)).collect());
    v.sort_by(|a, b| a.name.cmp(&b.name));
    v
}

/// Drops every registered metric. (The leaked metric cells themselves are
/// intentionally retained — a bounded set of names over a process lifetime.)
pub fn reset_metrics() {
    let mut guard = STORE.lock();
    *guard = Some(MetricsStore::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        reset_metrics();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        counter_add("test.concurrent", 1);
                    }
                });
            }
        });
        assert_eq!(counter_value("test.concurrent"), 8000);
    }

    #[test]
    fn counter_sums_under_rayon() {
        use rayon::prelude::*;
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        reset_metrics();
        // The filters increment counters from inside rayon parallel loops;
        // sharded counters must not lose increments there either.
        let ones: Vec<u64> = (0..4096usize)
            .into_par_iter()
            .map(|_| {
                counter_add("test.rayon", 1);
                1
            })
            .collect();
        assert_eq!(ones.len(), 4096);
        assert_eq!(counter_value("test.rayon"), 4096);
    }

    #[test]
    fn gauge_last_write_wins() {
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        reset_metrics();
        gauge_set("g", 1.5);
        gauge_set("g", -2.25);
        assert_eq!(gauge_value("g"), Some(-2.25));
        assert_eq!(gauge_value("missing"), None);
    }

    #[test]
    fn histogram_quantile_edges() {
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        reset_metrics();
        // Empty: no snapshot at all.
        assert!(histogram_snapshot("h").is_none());
        // Single sample: every quantile is that sample.
        histogram_record("h", 3.0);
        let snap = histogram_snapshot("h").unwrap();
        assert_eq!(snap.quantile(0.0), Some(3.0));
        assert_eq!(snap.quantile(0.5), Some(3.0));
        assert_eq!(snap.quantile(1.0), Some(3.0));
        // Many samples: quantiles are ordered and clamped to [min, max].
        for i in 1..=100 {
            histogram_record("h", i as f64);
        }
        let snap = histogram_snapshot("h").unwrap();
        let q10 = snap.quantile(0.1).unwrap();
        let q50 = snap.quantile(0.5).unwrap();
        let q99 = snap.quantile(0.99).unwrap();
        assert!(q10 <= q50 && q50 <= q99);
        assert!(q10 >= snap.min && q99 <= snap.max);
        assert_eq!(snap.count, 101);
    }

    #[test]
    fn bucket_monotone() {
        let vals = [1e-9, 1e-3, 0.5, 1.0, 2.0, 1e3, 1e9];
        for w in vals.windows(2) {
            assert!(bucket_of(w[0]) <= bucket_of(w[1]));
        }
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
    }
}
