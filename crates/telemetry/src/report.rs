//! Whole-process telemetry snapshots and the bench `--json` writer.

use crate::json::Json;
use crate::{cycle, metrics, span};
use std::path::Path;

/// One JSON object summarizing every span, counter, gauge, histogram, and
/// cycle record collected so far.
///
/// Shape:
/// ```json
/// {
///   "spans":      { "osse.cycle": {"count":5,"total_secs":...,"min_secs":...,"max_secs":...}, ... },
///   "counters":   { "fft.calls": 1234, ... },
///   "gauges":     { "vit.train.loss": 0.73, ... },
///   "histograms": { "ensf.score.secs": {"count":...,"mean":...,"p50":...,"p99":...,"min":...,"max":...}, ... },
///   "cycles":     [ { ...cycle record... }, ... ]
/// }
/// ```
pub fn snapshot_json() -> Json {
    let spans = span::span_snapshot()
        .into_iter()
        .map(|s| {
            (
                s.path,
                Json::obj(vec![
                    ("count", Json::from(s.count)),
                    ("total_secs", Json::Num(s.total_secs)),
                    ("min_secs", Json::Num(s.min_secs)),
                    ("max_secs", Json::Num(s.max_secs)),
                ]),
            )
        })
        .collect();
    let counters = metrics::all_counters()
        .into_iter()
        .map(|(name, v)| (name, Json::from(v)))
        .collect();
    let gauges = metrics::all_gauges()
        .into_iter()
        .map(|(name, v)| (name, Json::Num(v)))
        .collect();
    let histograms = metrics::all_histograms()
        .into_iter()
        .map(|h| {
            let mean = h.mean();
            let p50 = h.quantile(0.5);
            let p99 = h.quantile(0.99);
            (
                h.name.clone(),
                Json::obj(vec![
                    ("count", Json::from(h.count)),
                    ("sum", Json::Num(h.sum)),
                    ("mean", mean.map(Json::Num).unwrap_or(Json::Null)),
                    ("p50", p50.map(Json::Num).unwrap_or(Json::Null)),
                    ("p99", p99.map(Json::Num).unwrap_or(Json::Null)),
                    ("min", Json::Num(h.min)),
                    ("max", Json::Num(h.max)),
                ]),
            )
        })
        .collect();
    let cycles = cycle::cycle_records().iter().map(CycleJson::to_json).collect();
    Json::obj(vec![
        ("spans", Json::Obj(spans)),
        ("counters", Json::Obj(counters)),
        ("gauges", Json::Obj(gauges)),
        ("histograms", Json::Obj(histograms)),
        ("cycles", Json::Arr(cycles)),
    ])
}

/// Local trait so the map above reads naturally.
trait CycleJson {
    fn to_json(&self) -> Json;
}

impl CycleJson for cycle::CycleRecord {
    fn to_json(&self) -> Json {
        cycle::CycleRecord::to_json(self)
    }
}

/// Writes `payload` (typically a bench result object, optionally merged
/// with [`snapshot_json`]) to `path` as pretty-enough single-line JSON.
pub fn write_json(path: &Path, payload: &Json) -> std::io::Result<()> {
    std::fs::write(path, format!("{payload}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn snapshot_is_valid_json_with_all_sections() {
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        crate::reset();
        crate::counter_add("snap.counter", 7);
        crate::gauge_set("snap.gauge", 2.5);
        crate::histogram_record("snap.hist", 1.0);
        {
            let _g = crate::span!("snap.span");
        }
        let snap = snapshot_json();
        let back = json::parse(&snap.to_string()).unwrap();
        for key in ["spans", "counters", "gauges", "histograms", "cycles"] {
            assert!(back.get(key).is_some(), "missing {key}");
        }
        assert_eq!(back.get("counters").unwrap().get("snap.counter").unwrap().as_i64(), Some(7));
    }
}
