//! Fault flight recorder: a fixed-capacity ring of recent events plus a
//! structured postmortem dump.
//!
//! Long cycling campaigns fail rarely and late; by the time a supervisor
//! leaves `Healthy` the console scrollback is gone. The flight recorder
//! keeps the last [`FLIGHT_CAPACITY`] notable events (state transitions,
//! guardrail firings, retry exhaustions, collective shrinks, per-cycle
//! diagnostics summaries) in a pre-allocated ring — recording is
//! allocation-free and disabled-path cheap like every other telemetry
//! call — and [`dump_postmortem`] snapshots the ring together with the
//! most recent cycle records, spans, and counters into one JSON file the
//! moment something goes wrong.
//!
//! The dump destination is `SQG_DA_POSTMORTEM_DIR` (environment) or
//! [`set_postmortem_dir`] (programmatic, wins over the environment). With
//! neither configured, dumps are skipped — instrumented code can call
//! [`dump_postmortem`] unconditionally.

use crate::json::Json;
use crate::{cycle, metrics, span};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};

/// Ring capacity: events kept before the oldest is overwritten.
pub const FLIGHT_CAPACITY: usize = 256;

/// Bytes of label stored inline per event (longer labels are truncated).
const LABEL_CAP: usize = 48;

/// Cycle records included in a postmortem snapshot.
const POSTMORTEM_CYCLES: usize = 16;

/// What kind of event a flight-recorder entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// Per-cycle diagnostics summary (`a` = spread–skill, `b` = chi²).
    CycleDiag,
    /// Supervisor state transition (`label` = `"from->to"`).
    Transition,
    /// A health guardrail fired (`label` names it).
    Guardrail,
    /// An analysis retry budget was exhausted.
    RetryExhausted,
    /// A simulated collective shrank away permanently failed ranks
    /// (`a` = surviving participants, `b` = excluded ranks).
    CollectiveShrink,
    /// A simulated collective exhausted its retry budget (`a` = attempts).
    CollectiveExhausted,
    /// A previously dead rank rejoined the communicator from a checkpoint
    /// (`a` = rejoined world rank, `b` = new group size).
    RankRejoin,
    /// A per-cycle deadline event (`label` = `"deadline_degraded"`,
    /// `"deadline_forecast_only"` or `"deadline_blown"`; `a` = modeled
    /// cycle seconds, `b` = budget seconds).
    Deadline,
    /// Anything else worth keeping in the black box.
    Other,
}

impl FlightKind {
    /// Stable lowercase name used in postmortem JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::CycleDiag => "cycle_diag",
            FlightKind::Transition => "transition",
            FlightKind::Guardrail => "guardrail",
            FlightKind::RetryExhausted => "retry_exhausted",
            FlightKind::CollectiveShrink => "collective_shrink",
            FlightKind::CollectiveExhausted => "collective_exhausted",
            FlightKind::RankRejoin => "rank_rejoin",
            FlightKind::Deadline => "deadline",
            FlightKind::Other => "other",
        }
    }
}

/// One recorded event. `Copy` and fixed-size so the ring never allocates.
#[derive(Debug, Clone, Copy)]
pub struct FlightEvent {
    /// Monotonic sequence number (never reused, survives ring wrap).
    pub seq: u64,
    /// Event category.
    pub kind: FlightKind,
    /// Assimilation cycle the event belongs to (`-1` when not cycle-bound).
    pub cycle: i64,
    /// First numeric payload (meaning depends on [`FlightKind`]).
    pub a: f64,
    /// Second numeric payload.
    pub b: f64,
    label: [u8; LABEL_CAP],
    label_len: u8,
}

impl FlightEvent {
    /// The event label (truncated to [`LABEL_CAP`] bytes at record time).
    pub fn label(&self) -> String {
        String::from_utf8_lossy(&self.label[..self.label_len as usize]).into_owned()
    }

    /// Serializes to a JSON object for postmortem snapshots.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", Json::from(self.seq)),
            ("kind", Json::from(self.kind.as_str())),
            ("cycle", Json::Int(self.cycle)),
            ("label", Json::from(self.label())),
            ("a", Json::Num(self.a)),
            ("b", Json::Num(self.b)),
        ])
    }
}

const EMPTY_EVENT: FlightEvent = FlightEvent {
    seq: 0,
    kind: FlightKind::Other,
    cycle: -1,
    a: 0.0,
    b: 0.0,
    label: [0; LABEL_CAP],
    label_len: 0,
};

struct Ring {
    events: [FlightEvent; FLIGHT_CAPACITY],
    /// Next write slot.
    head: usize,
    /// Events currently held (saturates at capacity).
    len: usize,
    /// Next sequence number.
    seq: u64,
}

static RING: Mutex<Ring> = Mutex::new(Ring {
    events: [EMPTY_EVENT; FLIGHT_CAPACITY],
    head: 0,
    len: 0,
    seq: 0,
});

static POSTMORTEM_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Records one event into the flight ring (no-op while telemetry is
/// disabled). The label is copied into a fixed inline buffer — truncated
/// past 48 bytes — so the hot path never allocates.
// lint: no_alloc
pub fn flight_record(kind: FlightKind, cycle: i64, label: &str, a: f64, b: f64) {
    if !crate::enabled() {
        return;
    }
    let mut ring = RING.lock();
    let seq = ring.seq;
    ring.seq += 1;
    let idx = ring.head;
    ring.head = (ring.head + 1) % FLIGHT_CAPACITY;
    if ring.len < FLIGHT_CAPACITY {
        ring.len += 1;
    }
    let n = label.len().min(LABEL_CAP);
    let e = &mut ring.events[idx];
    e.seq = seq;
    e.kind = kind;
    e.cycle = cycle;
    e.a = a;
    e.b = b;
    e.label[..n].copy_from_slice(&label.as_bytes()[..n]);
    e.label_len = n as u8;
}

/// The ring's current contents, oldest event first.
pub fn flight_events() -> Vec<FlightEvent> {
    let ring = RING.lock();
    let mut out = Vec::with_capacity(ring.len);
    let start = (ring.head + FLIGHT_CAPACITY - ring.len) % FLIGHT_CAPACITY;
    for k in 0..ring.len {
        out.push(ring.events[(start + k) % FLIGHT_CAPACITY]);
    }
    out
}

/// Empties the ring (sequence numbers keep counting).
pub fn reset_flight() {
    let mut ring = RING.lock();
    ring.head = 0;
    ring.len = 0;
}

/// Sets (or with `None` clears) the programmatic postmortem directory,
/// overriding `SQG_DA_POSTMORTEM_DIR`.
pub fn set_postmortem_dir(dir: Option<&Path>) {
    *POSTMORTEM_DIR.lock() = dir.map(Path::to_path_buf);
}

fn postmortem_dir() -> Option<PathBuf> {
    if let Some(dir) = POSTMORTEM_DIR.lock().clone() {
        return Some(dir);
    }
    match std::env::var("SQG_DA_POSTMORTEM_DIR") {
        Ok(d) if !d.trim().is_empty() => Some(PathBuf::from(d)),
        _ => None,
    }
}

/// Builds the postmortem snapshot object: the flight ring, the most
/// recent cycle records (diagnostics included), span timings, counters,
/// and gauges.
pub fn postmortem_json(reason: &str) -> Json {
    let events: Vec<Json> = flight_events().iter().map(FlightEvent::to_json).collect();
    let records = cycle::cycle_records();
    let skip = records.len().saturating_sub(POSTMORTEM_CYCLES);
    let recent: Vec<Json> = records[skip..].iter().map(cycle::CycleRecord::to_json).collect();
    let spans = span::span_snapshot()
        .into_iter()
        .map(|s| {
            (
                s.path,
                Json::obj(vec![
                    ("count", Json::from(s.count)),
                    ("total_secs", Json::Num(s.total_secs)),
                ]),
            )
        })
        .collect();
    let counters =
        metrics::all_counters().into_iter().map(|(name, v)| (name, Json::from(v))).collect();
    let gauges =
        metrics::all_gauges().into_iter().map(|(name, v)| (name, Json::Num(v))).collect();
    Json::obj(vec![
        ("reason", Json::from(reason)),
        ("flight", Json::Arr(events)),
        ("recent_cycles", Json::Arr(recent)),
        ("spans", Json::Obj(spans)),
        ("counters", Json::Obj(counters)),
        ("gauges", Json::Obj(gauges)),
    ])
}

/// Dumps a postmortem snapshot to the configured directory, returning the
/// file written. Skipped (returning `None`) while telemetry is disabled,
/// when no directory is configured, or if the write fails (reported to
/// stderr — a postmortem must never take the run down with it).
pub fn dump_postmortem(reason: &str) -> Option<PathBuf> {
    if !crate::enabled() {
        return None;
    }
    let dir = postmortem_dir()?;
    let seq = RING.lock().seq;
    let slug: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    let path = dir.join(format!("postmortem-{seq:06}-{slug}.json"));
    let payload = postmortem_json(reason);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("telemetry: cannot create postmortem dir {}: {e}", dir.display());
        return None;
    }
    match crate::report::write_json(&path, &payload) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("telemetry: postmortem write failed for {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_records_wraps_and_resets() {
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        reset_flight();
        for i in 0..(FLIGHT_CAPACITY + 10) {
            flight_record(FlightKind::Guardrail, i as i64, "spread_reinflated", 0.1, 0.2);
        }
        let events = flight_events();
        assert_eq!(events.len(), FLIGHT_CAPACITY, "ring saturates at capacity");
        // Oldest 10 events were overwritten; order is preserved.
        assert_eq!(events[0].cycle, 10);
        assert_eq!(events.last().unwrap().cycle, (FLIGHT_CAPACITY + 9) as i64);
        for w in events.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1, "sequence numbers are contiguous");
        }
        assert_eq!(events[0].label(), "spread_reinflated");
        reset_flight();
        assert!(flight_events().is_empty());
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        reset_flight();
        crate::set_enabled(false);
        flight_record(FlightKind::Transition, 0, "healthy->degraded", 0.0, 0.0);
        crate::set_enabled(true);
        assert!(flight_events().is_empty());
    }

    #[test]
    fn long_labels_truncate_without_allocation_growth() {
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        reset_flight();
        let long = "x".repeat(500);
        flight_record(FlightKind::Other, 3, &long, 1.0, 2.0);
        let events = flight_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label().len(), 48);
        assert_eq!(events[0].a, 1.0);
    }

    #[test]
    fn postmortem_writes_structured_json() {
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        crate::reset();
        let dir = std::env::temp_dir().join("sqg_da_flight_test");
        std::fs::remove_dir_all(&dir).ok();
        set_postmortem_dir(Some(&dir));
        flight_record(FlightKind::Transition, 2, "healthy->degraded", 0.0, 1.0);
        crate::counter_add("flight.test.counter", 4);
        let path = dump_postmortem("unit test: left healthy").expect("dump must happen");
        set_postmortem_dir(None);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(doc.get("reason").and_then(Json::as_str), Some("unit test: left healthy"));
        let flight = doc.get("flight").and_then(Json::as_arr).unwrap();
        assert_eq!(flight.len(), 1);
        assert_eq!(flight[0].get("kind").and_then(Json::as_str), Some("transition"));
        assert_eq!(flight[0].get("label").and_then(Json::as_str), Some("healthy->degraded"));
        assert!(doc.get("counters").unwrap().get("flight.test.counter").is_some());
        assert!(path.file_name().unwrap().to_string_lossy().contains("unit_test"));
    }

    #[test]
    fn elastic_kinds_have_stable_names() {
        let _lock = crate::TEST_LOCK.lock();
        assert_eq!(FlightKind::RankRejoin.as_str(), "rank_rejoin");
        assert_eq!(FlightKind::Deadline.as_str(), "deadline");
        crate::set_enabled(true);
        reset_flight();
        flight_record(FlightKind::Deadline, 4, "deadline_blown", 2.5, 1.0);
        flight_record(FlightKind::RankRejoin, 5, "rank_rejoin", 3.0, 8.0);
        let events = flight_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, FlightKind::Deadline);
        assert_eq!(events[1].label(), "rank_rejoin");
        reset_flight();
    }

    #[test]
    fn postmortem_without_sink_or_telemetry_is_skipped() {
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        set_postmortem_dir(None);
        // No directory configured (ignore any ambient env override).
        if std::env::var("SQG_DA_POSTMORTEM_DIR").is_err() {
            assert_eq!(dump_postmortem("nowhere"), None);
        }
        crate::set_enabled(false);
        assert_eq!(dump_postmortem("disabled"), None);
        crate::set_enabled(true);
    }
}
