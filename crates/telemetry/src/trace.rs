//! Chrome trace-event timelines.
//!
//! Converts per-rank event streams (forecast, score GEMM, collectives)
//! into the Chrome trace-event JSON Object Format — load the file at
//! `chrome://tracing` or <https://ui.perfetto.dev> to see the cross-rank
//! timeline. Only complete events (`"ph":"X"`) are emitted: one box per
//! event with explicit start and duration, which is all a deterministic
//! replayed timeline needs.

use crate::json::Json;

/// One complete ("X") trace event on some rank's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name, e.g. `"tile_partials"` or `"allgather"`.
    pub name: String,
    /// Category: the timeline convention is `"compute"` vs `"comm"` (plus
    /// `"cycle"` for per-cycle envelope rows).
    pub cat: String,
    /// Process id (one pid per experiment).
    pub pid: u32,
    /// Thread id — the rank, so each rank renders as one lane.
    pub tid: u32,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Extra `args` shown when the event is selected (byte counts etc.).
    pub args: Vec<(String, Json)>,
}

impl TraceEvent {
    /// Serializes to one Chrome trace-event object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name".to_string(), Json::from(self.name.as_str())),
            ("cat".to_string(), Json::from(self.cat.as_str())),
            ("ph".to_string(), Json::from("X")),
            ("ts".to_string(), Json::Num(self.ts_us)),
            ("dur".to_string(), Json::Num(self.dur_us)),
            ("pid".to_string(), Json::from(self.pid as u64)),
            ("tid".to_string(), Json::from(self.tid as u64)),
        ];
        if !self.args.is_empty() {
            pairs.push(("args".to_string(), Json::Obj(self.args.clone())));
        }
        Json::Obj(pairs)
    }
}

/// Wraps events in the Chrome trace-event JSON Object Format:
/// `{"traceEvents":[...]}`. Callers may append extra top-level keys
/// (summaries, reconciliation blocks) — the format explicitly allows and
/// ignores unknown keys.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    Json::obj(vec![(
        "traceEvents",
        Json::Arr(events.iter().map(TraceEvent::to_json).collect()),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, cat: &str, tid: u32, ts: f64, dur: f64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            pid: 1,
            tid,
            ts_us: ts,
            dur_us: dur,
            args: vec![("bytes".to_string(), Json::Int(4096))],
        }
    }

    #[test]
    fn chrome_object_format_round_trips() {
        let events = [ev("tile_partials", "compute", 0, 0.0, 12.5), ev("allgather", "comm", 1, 12.5, 3.0)];
        let doc = chrome_trace(&events);
        let back = crate::json::parse(&doc.to_string()).unwrap();
        let arr = back.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        for e in arr {
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
            for key in ["name", "cat", "ts", "dur", "pid", "tid"] {
                assert!(e.get(key).is_some(), "missing {key}");
            }
        }
        assert_eq!(arr[1].get("cat").and_then(Json::as_str), Some("comm"));
        assert_eq!(arr[1].get("args").unwrap().get("bytes").and_then(Json::as_i64), Some(4096));
    }

    #[test]
    fn empty_args_key_is_omitted() {
        let mut e = ev("x", "compute", 0, 0.0, 1.0);
        e.args.clear();
        assert!(e.to_json().get("args").is_none());
    }
}
