//! A small hand-rolled JSON value type with serialization and parsing.
//!
//! The workspace builds offline with no serde, so telemetry carries its own
//! minimal JSON: enough to emit cycle records / metric snapshots and to
//! round-trip them in tests. Objects preserve insertion order. Non-finite
//! floats serialize as `null` (JSON has no NaN/inf).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (kept distinct from floats so counters print exactly).
    Int(i64),
    /// Floating-point number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64 if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as i64 if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as &str if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        // Counters fit i64 in practice; saturate rather than wrap.
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{:?}` keeps a decimal point / exponent so the value
                    // re-parses as a float, and round-trips f64 exactly.
                    write!(f, "{n:?}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a JSON document. Returns `Err` with a position-tagged message on
/// malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    // INVARIANT: peek() returned Some, so `rest` is non-empty.
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // INVARIANT: the scanned range is ASCII digits/sign/exponent bytes.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>().map(Json::Num).map_err(|e| e.to_string())
        } else {
            text.parse::<i64>().map(Json::Int).map_err(|e| e.to_string())
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips() {
        let v = Json::obj(vec![
            ("cycle", Json::Int(3)),
            ("rmse", Json::Num(0.125)),
            ("label", Json::from("ensf \"n=64\"\n")),
            ("phases", Json::Arr(vec![Json::Num(1.5e-3), Json::Null])),
            ("ok", Json::Bool(true)),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_precision_and_specials_null() {
        let v = Json::Num(0.1 + 0.2);
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back.as_f64(), Some(0.1 + 0.2));
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn int_vs_float_distinction() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("42.0").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3e2").unwrap(), Json::Num(-300.0));
    }
}
