//! Hierarchical RAII span timers.
//!
//! A [`SpanGuard`] measures wall-clock time from creation to drop and folds
//! the measurement into a process-global registry keyed by the span's
//! dotted path. Nesting is tracked per thread: opening `"analysis"` while
//! `"osse.cycle"` is active records under `"osse.cycle.analysis"`.
//!
//! The registry is sharded (path-hash → shard) so concurrent spans from
//! rayon workers rarely contend on the same lock.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

const SHARDS: usize = 16;

/// Aggregated timing for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Dotted span path, e.g. `"osse.cycle.analysis"`.
    pub path: String,
    /// Number of completed spans recorded under this path.
    pub count: u64,
    /// Total wall-clock seconds across all completions.
    pub total_secs: f64,
    /// Shortest single completion, seconds.
    pub min_secs: f64,
    /// Longest single completion, seconds.
    pub max_secs: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Accum {
    count: u64,
    total_secs: f64,
    min_secs: f64,
    max_secs: f64,
}

struct Registry {
    shards: [Mutex<HashMap<String, Accum>>; SHARDS],
}

impl Registry {
    fn new() -> Self {
        Registry { shards: std::array::from_fn(|_| Mutex::new(HashMap::new())) }
    }

    fn shard_for(&self, path: &str) -> &Mutex<HashMap<String, Accum>> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        &self.shards[(h as usize) % SHARDS]
    }

    fn record(&self, path: &str, secs: f64) {
        let mut shard = self.shard_for(path).lock();
        let a = shard.entry(path.to_string()).or_default();
        if a.count == 0 {
            a.min_secs = secs;
            a.max_secs = secs;
        } else {
            a.min_secs = a.min_secs.min(secs);
            a.max_secs = a.max_secs.max(secs);
        }
        a.count += 1;
        a.total_secs += secs;
    }
}

static REGISTRY: std::sync::LazyLock<Registry> = std::sync::LazyLock::new(Registry::new);

thread_local! {
    /// Stack of active span names on this thread, joined with '.' to form
    /// the full path of newly opened spans.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`span!`](crate::span!); records on drop.
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct SpanGuard {
    /// `None` when telemetry is disabled — drop is then a no-op.
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    path: String,
    start: Instant,
}

/// Opens a span named `name` under the thread's current span path.
///
/// Use the [`span!`](crate::span!) macro rather than calling this directly.
#[inline]
pub fn span_enter(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: None };
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        stack.join(".")
    });
    SpanGuard { active: Some(ActiveSpan { path, start: Instant::now() }) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let secs = active.start.elapsed().as_secs_f64();
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            REGISTRY.record(&active.path, secs);
        }
    }
}

/// Snapshot of all recorded span statistics, sorted by path.
pub fn span_snapshot() -> Vec<SpanStat> {
    let mut out = Vec::new();
    for shard in &REGISTRY.shards {
        for (path, a) in shard.lock().iter() {
            out.push(SpanStat {
                path: path.clone(),
                count: a.count,
                total_secs: a.total_secs,
                min_secs: a.min_secs,
                max_secs: a.max_secs,
            });
        }
    }
    out.sort_by(|x, y| x.path.cmp(&y.path));
    out
}

/// Clears all recorded span statistics.
pub fn reset_spans() {
    for shard in &REGISTRY.shards {
        shard.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_paths_and_counts() {
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        reset_spans();
        {
            let _outer = crate::span!("outer");
            for _ in 0..3 {
                let _inner = crate::span!("inner");
            }
        }
        let snap = span_snapshot();
        let outer = snap.iter().find(|s| s.path == "outer").unwrap();
        let inner = snap.iter().find(|s| s.path == "outer.inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert!(outer.total_secs >= inner.total_secs, "parent covers children");
        assert!(inner.min_secs <= inner.max_secs);
    }

    #[test]
    fn disabled_records_nothing() {
        let _lock = crate::TEST_LOCK.lock();
        crate::set_enabled(true);
        reset_spans();
        crate::set_enabled(false);
        {
            let _g = crate::span!("ghost");
        }
        crate::set_enabled(true);
        assert!(span_snapshot().iter().all(|s| s.path != "ghost"));
    }
}
