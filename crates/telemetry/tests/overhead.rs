//! Disabled-path overhead budget: with telemetry off, every hot-path entry
//! point must cost no more than a few nanoseconds (one relaxed atomic load
//! plus a branch). This is a regression test on the *shape* of the fast
//! path — if someone accidentally moves work (allocation, locking,
//! formatting) in front of the `enabled()` check, per-op cost jumps by
//! orders of magnitude and this trips long before a profiler would.
//!
//! The budget is deliberately generous (well above the ~3 ns target) so CI
//! machines under load do not flake, while still catching the failure mode
//! that matters: accidental O(work) before the gate.

use std::time::Instant;

/// Per-op budget in nanoseconds. The real disabled cost is ~1–3 ns in
/// release; 250 ns absorbs debug builds and noisy shared runners while
/// remaining far below any accidental lock/alloc/format (≥ microseconds
/// when contended, ~50–100 ns even uncontended).
const BUDGET_NS: f64 = 250.0;
const ITERS: u64 = 2_000_000;

fn per_op_ns(f: impl Fn(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..ITERS {
        f(i);
    }
    start.elapsed().as_nanos() as f64 / ITERS as f64
}

#[test]
fn disabled_telemetry_stays_within_budget_and_records_nothing() {
    // Integration tests run in their own process, so this cannot race the
    // unit tests' TEST_LOCK-serialized state.
    telemetry::set_enabled(false);
    telemetry::reset();

    let counter = per_op_ns(|i| telemetry::counter_add("overhead.counter", i));
    let gauge = per_op_ns(|i| telemetry::gauge_set("overhead.gauge", i as f64));
    let span = per_op_ns(|_| {
        let _g = telemetry::span!("overhead.span");
    });
    let flight = per_op_ns(|i| {
        telemetry::flight_record(
            telemetry::FlightKind::Other,
            i as i64,
            "overhead_probe",
            1.0,
            2.0,
        )
    });

    println!(
        "disabled per-op: counter {counter:.1} ns, gauge {gauge:.1} ns, \
         span {span:.1} ns, flight {flight:.1} ns (budget {BUDGET_NS} ns)"
    );
    for (name, ns) in
        [("counter_add", counter), ("gauge_set", gauge), ("span", span), ("flight_record", flight)]
    {
        assert!(ns < BUDGET_NS, "{name} disabled path costs {ns:.1} ns > {BUDGET_NS} ns budget");
    }

    // And none of it may have leaked into the stores.
    assert_eq!(telemetry::counter_value("overhead.counter"), 0);
    assert_eq!(telemetry::gauge_value("overhead.gauge"), None);
    assert!(telemetry::span_snapshot().is_empty(), "spans recorded while disabled");
    assert!(telemetry::flight_events().is_empty(), "flight events recorded while disabled");
}
