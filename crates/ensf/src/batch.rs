//! Step-major, GEMM-batched EnSF analysis kernel.
//!
//! The reference path ([`crate::ScoreEstimator`]) evaluates the Monte-Carlo
//! prior score one particle at a time: per reverse-SDE step it walks the
//! forecast ensemble twice as strided dot products, re-multiplying every
//! ensemble element by `α_t` along the way. This module inverts the loop
//! nest to **step-major over a whole block of particles** and reformulates
//! both ensemble sweeps as matrix products:
//!
//! 1. squared distances via the norm expansion
//!    `‖z_i − α x_j‖² = ‖z_i‖² − 2α ⟨z_i, x_j⟩ + α² ‖x_j‖²`, with the Gram
//!    block `Z Xᵀ` computed by [`linalg::gemm::matmul_abt_into`]'s 4x4
//!    register-tiled kernel and the member norms `‖x_j‖²` hoisted out of
//!    the SDE loop entirely (computed once per analysis);
//! 2. a row-wise log-sum-exp softmax into weights `W` (P×M);
//! 3. the weighted conditional score `S = (α W X − Z)/β²` as a second GEMM
//!    plus one fused [`linalg::vector::scale_add`] pass.
//!
//! All reductions are fixed-order and per-output-element independent
//! (single `k`-ascending chains), so the kernel is bitwise deterministic
//! and invariant to how particles are partitioned into blocks — the same
//! contract the reference path guarantees, which keeps
//! [`crate::parallel::analyze_partitioned`]'s bitwise identity and the
//! resilience layer's bit-identical checkpoint resume intact. Per-particle
//! RNG streams are drawn in exactly the reference order (initial `N(0, I)`
//! fill, then one normal per component per non-final step), so reference
//! and batched kernels differ only by floating-point reassociation.
//!
//! All scratch lives in a caller-owned [`BatchScratch`]; after construction
//! the inner SDE loop performs no heap allocation.

use crate::filter::EnsfConfig;
use crate::obs::ObservationOperator;
use crate::schedule::DiffusionSchedule;
use crate::sde::TimeGrid;
use linalg::gemm::{matmul_abt_into, matmul_slices_affine_into, row_sq_norms, GemmScratch};
use linalg::vector::{axpy, scale_add};
use rand::Rng;
use rayon::prelude::*;
use stats::gaussian::{fill_standard_normal, NormalSampler};
use stats::rng::member_rng;
use stats::softmax::softmax_in_place;
use stats::Ensemble;

/// Batched Monte-Carlo prior-score evaluator.
///
/// Owns an index-ordered gather of the (mini-batched) forecast ensemble as
/// a contiguous `J x d` block plus the per-member squared norms, both
/// computed once per analysis and shared read-only by every particle block.
pub struct BatchedScore {
    /// Mini-batch members gathered contiguously, `J x d` row-major, in
    /// batch order (matching the reference path's summation order).
    gathered: Vec<f64>,
    /// `‖x_j‖²` per gathered member.
    xnorm: Vec<f64>,
    batch_len: usize,
    dim: usize,
    schedule: DiffusionSchedule,
}

impl BatchedScore {
    /// Gathers `batch` members (in the given order) out of the member-major
    /// `ensemble` buffer and precomputes their squared norms.
    ///
    /// # Panics
    /// Panics on shape mismatch, an empty batch, or an out-of-range index.
    pub fn new(
        ensemble: &[f64],
        members: usize,
        dim: usize,
        schedule: DiffusionSchedule,
        batch: &[usize],
    ) -> Self {
        assert_eq!(ensemble.len(), members * dim, "ensemble buffer shape mismatch");
        assert!(!batch.is_empty(), "mini-batch must be nonempty");
        assert!(batch.iter().all(|&j| j < members), "batch index out of range");
        let mut gathered = Vec::with_capacity(batch.len() * dim);
        for &j in batch {
            gathered.extend_from_slice(&ensemble[j * dim..(j + 1) * dim]);
        }
        let mut xnorm = vec![0.0; batch.len()];
        row_sq_norms(&gathered, batch.len(), dim, &mut xnorm);
        BatchedScore { gathered, xnorm, batch_len: batch.len(), dim, schedule }
    }

    /// Number of members in the Monte-Carlo batch.
    pub fn batch_len(&self) -> usize {
        self.batch_len
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Evaluates the prior score at pseudo-time `t` for all `b` particles
    /// in `z` (`b x d` row-major) at once, writing into `out` (`b x d`).
    ///
    /// `weights` (`b x J`) and `znorm` (`b`) are scratch; `weights` holds
    /// the normalized softmax weights on return.
    // lint: no_alloc
    pub fn score_block_into(
        &self,
        z: &[f64],
        b: usize,
        t: f64,
        out: &mut [f64],
        weights: &mut [f64],
        znorm: &mut [f64],
    ) {
        let (j, d) = (self.batch_len, self.dim);
        assert_eq!(z.len(), b * d);
        assert_eq!(out.len(), b * d);
        assert_eq!(weights.len(), b * j);
        assert_eq!(znorm.len(), b);
        let timer = telemetry::enabled().then(std::time::Instant::now); // lint: allow(nondeterministic-api, reason="telemetry wall-clock timing; never feeds the numerics")

        let alpha = self.schedule.alpha(t);
        let beta_sq = self.schedule.beta_sq(t);
        let inv_2b2 = 0.5 / beta_sq;
        let inv_b2 = 1.0 / beta_sq;
        let alpha_sq = alpha * alpha;

        // Distances via the norm expansion: the Gram block Z Xᵀ carries all
        // the O(b·J·d) work; norms are O((b+J)·d) and ‖x_j‖² is hoisted.
        row_sq_norms(z, b, d, znorm);
        matmul_abt_into(z, &self.gathered, b, j, d, weights);
        for (row, &zn) in weights.chunks_exact_mut(j).zip(znorm.iter()) {
            for (w, &xn) in row.iter_mut().zip(&self.xnorm) {
                *w = -(zn - 2.0 * alpha * *w + alpha_sq * xn) * inv_2b2;
            }
            softmax_in_place(row);
        }

        // Weighted conditional score: S = (α W X − Z) / β², with W X as the
        // second GEMM and the affine part fused into its store epilogue.
        matmul_slices_affine_into(weights, &self.gathered, b, j, d, z, alpha * inv_b2, -inv_b2, out);

        if let Some(t0) = timer {
            telemetry::histogram_record("ensf.score.secs", t0.elapsed().as_secs_f64()); // lint: allow(nondeterministic-api, reason="telemetry wall-clock timing; never feeds the numerics")
        }
    }
}

/// Caller-owned scratch for [`reverse_sde_assimilate_batched`].
///
/// Created once per analysis (per particle block); the reverse-SDE loop
/// borrows the same five buffers each step and never allocates.
pub struct BatchScratch {
    buffers: GemmScratch,
}

impl BatchScratch {
    /// Preallocates scratch for a block of `b` particles, a score batch of
    /// `j` members and state dimension `dim`.
    pub fn new(b: usize, j: usize, dim: usize) -> Self {
        let mut buffers = GemmScratch::new();
        // Prewarm so the integrator loops' borrows are allocation-free (the
        // SDE borrows the first five slices, the flow path all six).
        let _ = buffers.slices([b * dim, b * j, b, dim, dim, dim]);
        BatchScratch { buffers }
    }

    /// The underlying buffer pool (shared with the flow-matching
    /// integrator, which borrows the same prewarmed slices).
    pub(crate) fn buffers_mut(&mut self) -> &mut GemmScratch {
        &mut self.buffers
    }
}

/// Batched counterpart of [`crate::reverse_sde_assimilate`]: integrates a
/// whole block of particles through the reverse SDE step-major, evaluating
/// the prior score for all of them at once via [`BatchedScore`].
///
/// * `z` — `rngs.len() x dim` row-major block; on entry each row is a
///   sample of `N(0, I)`, on exit a posterior sample.
/// * `rngs` — one RNG per particle, positioned exactly after the initial
///   Gaussian fill (the reference stream contract).
///
/// Per particle this replicates [`crate::reverse_sde_assimilate`] operation
/// for operation — exponential linear step, explicit prior score, final-step
/// noise omission, damped likelihood pull — so the two paths agree to
/// floating-point reassociation and draw identical noise.
#[allow(clippy::too_many_arguments)]
pub fn reverse_sde_assimilate_batched<R: Rng>(
    z: &mut [f64],
    schedule: &DiffusionSchedule,
    n_steps: usize,
    grid: TimeGrid,
    score: &BatchedScore,
    obs: &impl ObservationOperator,
    y: &[f64],
    rngs: &mut [R],
    scratch: &mut BatchScratch,
) {
    // The one allocation of the whole integration: the time grid, computed
    // once up front. The stepping core below is allocation-free.
    let times = grid.points(schedule, n_steps);
    telemetry::counter_add("ensf.sde.euler_steps", ((times.len() - 1) * rngs.len()) as u64);
    reverse_sde_assimilate_batched_with_times(z, schedule, &times, score, obs, y, rngs, scratch);
}

/// Core of [`reverse_sde_assimilate_batched`] over a precomputed descending
/// time grid (`1 − eps = t_0 > … > t_n = 0`, as produced by
/// [`TimeGrid::points`]). Callers that must stay allocation-free per cycle
/// hoist the grid into caller-owned storage and call this directly.
// lint: no_alloc
#[allow(clippy::too_many_arguments)]
pub fn reverse_sde_assimilate_batched_with_times<R: Rng>(
    z: &mut [f64],
    schedule: &DiffusionSchedule,
    times: &[f64],
    score: &BatchedScore,
    obs: &impl ObservationOperator,
    y: &[f64],
    rngs: &mut [R],
    scratch: &mut BatchScratch,
) {
    let dim = score.dim();
    let j = score.batch_len();
    let b = rngs.len();
    assert_eq!(z.len(), b * dim, "particle block shape mismatch");
    let sigma_obs_sq = obs.sigma() * obs.sigma();
    // All five buffers live for the whole integration: the step loop below
    // is allocation-free.
    let [s, w, znorm, lik, jsq] = scratch.buffers.slices([b * dim, b * j, b, dim, dim]);
    let sampler = NormalSampler::new();

    for win in times.windows(2) {
        let t = win[0];
        let t_next = win[1];
        let dt = t - t_next;
        let sig2 = schedule.sigma_sq(t);
        let sig = sig2.sqrt();

        score.score_block_into(z, b, t, s, w, znorm);

        let decay = schedule.alpha(t_next) / schedule.alpha(t);
        let is_final = t_next <= 1e-300;
        let noise_amp = if is_final { 0.0 } else { sig * dt.sqrt() };
        let gain = sig2 * schedule.damping(t) * dt;
        // When the observation Jacobian is a uniform constant, the damping
        // factor is the same for every state element: compute it once per
        // step (same arithmetic as the per-element branch below, so for
        // constant-Jacobian operators the two paths agree bitwise).
        let hoisted_factor = obs.constant_jacobian_sq().map(|jc| {
            let c = gain * jc / sigma_obs_sq;
            if c > 1e-8 {
                (1.0 - (-c).exp()) / c
            } else {
                1.0
            }
        });

        for (i, rng) in rngs.iter_mut().enumerate() {
            let zrow = &mut z[i * dim..(i + 1) * dim];
            let srow = &s[i * dim..(i + 1) * dim];
            // Drift as one vectorized pass, then the serial noise stream
            // (RNG call order per particle is the reference contract).
            scale_add(zrow, decay, srow, sig2 * dt);
            if noise_amp != 0.0 { // lint: allow(float-exact-compare, reason="noise_amp is set to exactly 0.0 on the final step")
                for zi in zrow.iter_mut() {
                    *zi += noise_amp * sampler.sample(rng);
                }
            }
            if gain > 0.0 {
                obs.likelihood_score_into(zrow, y, gain, lik);
                if let Some(factor) = hoisted_factor {
                    axpy(factor, lik, zrow);
                } else {
                    obs.jacobian_sq(zrow, jsq);
                    for ((zi, li), ji) in zrow.iter_mut().zip(&*lik).zip(&*jsq) {
                        let c = gain * ji / sigma_obs_sq;
                        let factor = if c > 1e-8 { (1.0 - (-c).exp()) / c } else { 1.0 };
                        *zi += factor * li;
                    }
                }
            }
        }
    }
}

/// Runs the batched analysis over explicit particle blocks (one parallel
/// task per block, sequential within a block — the rank-decomposition
/// execution shape). Shared by [`crate::Ensf::analyze`] and
/// [`crate::parallel::analyze_partitioned`]; spread relaxation is the
/// caller's job. [`crate::AnalysisMethod::FlowMatching`] configs route each
/// block through the deterministic probability-flow integrator instead of
/// the reverse SDE (same initial fill, no further draws).
pub(crate) fn analyze_blocks(
    config: &EnsfConfig,
    cycle_seed: u64,
    blocks: &[(usize, usize)],
    forecast: &Ensemble,
    y: &[f64],
    obs: &impl ObservationOperator,
    batch: &[usize],
) -> Ensemble {
    let members = forecast.members();
    let dim = forecast.dim();
    let score = BatchedScore::new(forecast.as_slice(), members, dim, config.schedule, batch);
    let schedule = config.schedule;
    let n_steps = config.n_steps;
    let method = config.method;
    // The flow path needs the per-component prior spread of the same batch
    // the score gathers; computed once, shared read-only by every block.
    let prior_var = match method {
        crate::AnalysisMethod::FlowMatching => {
            let mut var = crate::flow::batch_variance(forecast.as_slice(), members, dim, batch);
            crate::flow::smooth_variance(&mut var, config.variance_smoothing);
            var
        }
        crate::AnalysisMethod::ReverseSde => Vec::new(),
    };

    let block_results: Vec<(usize, Vec<f64>)> = blocks
        .par_iter()
        .map(|&(start, end)| {
            let b = end - start;
            let mut block = vec![0.0; b * dim];
            // RNG streams keyed by *global* particle index: the basis of the
            // partition-invariance contract.
            let mut rngs: Vec<_> = (start..end).map(|m| member_rng(cycle_seed, m)).collect();
            for (row, rng) in block.chunks_exact_mut(dim).zip(rngs.iter_mut()) {
                fill_standard_normal(rng, row);
            }
            let mut scratch = BatchScratch::new(b, score.batch_len(), dim);
            match method {
                crate::AnalysisMethod::ReverseSde => reverse_sde_assimilate_batched(
                    &mut block,
                    &schedule,
                    n_steps,
                    TimeGrid::LogSpaced,
                    &score,
                    obs,
                    y,
                    &mut rngs,
                    &mut scratch,
                ),
                crate::AnalysisMethod::FlowMatching => {
                    crate::flow::probability_flow_assimilate_batched(
                        &mut block,
                        b,
                        &schedule,
                        n_steps,
                        TimeGrid::LogSpaced,
                        &score,
                        &prior_var,
                        obs,
                        y,
                        &mut scratch,
                    )
                }
            }
            (start, block)
        })
        .collect();

    let mut analysis = Ensemble::zeros(members, dim);
    for (start, block) in block_results {
        for (local, row) in block.chunks_exact(dim).enumerate() {
            analysis.member_mut(start + local).copy_from_slice(row);
        }
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::IdentityObs;
    use crate::score::ScoreEstimator;
    use stats::gaussian::standard_normal;
    use stats::rng::seeded;

    fn gaussian_block(rows: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded(seed);
        let mut v = vec![0.0; rows * dim];
        fill_standard_normal(&mut rng, &mut v);
        v
    }

    /// The batched score must match the reference estimator evaluation to
    /// floating-point reassociation accuracy on every row.
    #[test]
    fn block_score_matches_reference_estimator()  {
        let (members, dim, b) = (9, 17, 6);
        let ens = gaussian_block(members, dim, 3);
        let z = gaussian_block(b, dim, 4);
        let sch = DiffusionSchedule::default();
        let batch: Vec<usize> = (0..members).collect();
        let batched = BatchedScore::new(&ens, members, dim, sch, &batch);
        let reference = ScoreEstimator::new(&ens, members, dim, sch);

        for t in [0.9, 0.5, 0.1, 0.01] {
            let mut out = vec![0.0; b * dim];
            let mut w = vec![0.0; b * members];
            let mut zn = vec![0.0; b];
            batched.score_block_into(&z, b, t, &mut out, &mut w, &mut zn);
            for i in 0..b {
                let want = reference.score(&z[i * dim..(i + 1) * dim], t);
                for (g, wv) in out[i * dim..(i + 1) * dim].iter().zip(&want) {
                    assert!(
                        (g - wv).abs() < 1e-10 * (1.0 + wv.abs()),
                        "t={t} row {i}: {g} vs {wv}"
                    );
                }
            }
            // Weights rows are normalized distributions.
            for row in w.chunks_exact(members) {
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12);
            }
        }
    }

    /// Block evaluation is bitwise invariant to how particles are grouped.
    #[test]
    fn block_score_is_partition_invariant() {
        let (members, dim, b) = (7, 33, 10);
        let ens = gaussian_block(members, dim, 8);
        let z = gaussian_block(b, dim, 9);
        let sch = DiffusionSchedule::default();
        let batch: Vec<usize> = (0..members).collect();
        let score = BatchedScore::new(&ens, members, dim, sch, &batch);

        let mut full = vec![0.0; b * dim];
        let mut w = vec![0.0; b * members];
        let mut zn = vec![0.0; b];
        score.score_block_into(&z, b, 0.3, &mut full, &mut w, &mut zn);

        for split in 1..b {
            for (lo, hi) in [(0, split), (split, b)] {
                let rows = hi - lo;
                let mut part = vec![0.0; rows * dim];
                let mut wp = vec![0.0; rows * members];
                let mut zp = vec![0.0; rows];
                score.score_block_into(
                    &z[lo * dim..hi * dim],
                    rows,
                    0.3,
                    &mut part,
                    &mut wp,
                    &mut zp,
                );
                assert_eq!(part, full[lo * dim..hi * dim], "rows {lo}..{hi} diverged");
            }
        }
    }

    /// The batched integrator consumes RNG streams exactly like the
    /// reference (init fill + one normal per component per non-final step).
    #[test]
    fn batched_sde_draws_reference_noise_stream() {
        let (members, dim, b, n_steps) = (6, 5, 4, 12);
        let ens = gaussian_block(members, dim, 21);
        let sch = DiffusionSchedule::default();
        let batch: Vec<usize> = (0..members).collect();
        let score = BatchedScore::new(&ens, members, dim, sch, &batch);
        let obs = IdentityObs::new(dim, 0.7);
        let y = vec![0.2; dim];

        let mut z = vec![0.0; b * dim];
        let mut rngs: Vec<_> = (0..b).map(|m| member_rng(99, m)).collect();
        for (row, rng) in z.chunks_exact_mut(dim).zip(rngs.iter_mut()) {
            fill_standard_normal(rng, row);
        }
        let mut scratch = BatchScratch::new(b, members, dim);
        reverse_sde_assimilate_batched(
            &mut z, &sch, n_steps, TimeGrid::LogSpaced, &score, &obs, &y, &mut rngs, &mut scratch,
        );

        // After the run every stream must sit at the reference position:
        // the next draw equals a fresh stream fast-forwarded by the same
        // number of draws.
        let times = TimeGrid::LogSpaced.points(&sch, n_steps);
        let draws = dim + (times.len() - 2) * dim; // init + per non-final step
        for (m, rng) in rngs.iter_mut().enumerate() {
            let mut fresh = member_rng(99, m);
            for _ in 0..draws {
                standard_normal(&mut fresh);
            }
            assert_eq!(
                standard_normal(rng).to_bits(),
                standard_normal(&mut fresh).to_bits(),
                "particle {m} consumed a different number of draws"
            );
        }
    }
}
