//! Reverse-time SDE integration (Eq. 7).
//!
//! Samples from the target distribution are produced by integrating
//!
//! ```text
//! dZ = [ b(t) Z − σ²(t) s(Z, t) ] dt + σ(t) dW̄
//! ```
//!
//! backwards from `t = 1` (standard Gaussian) to `t = 0` (target).
//!
//! ## Discretization
//!
//! The drift `b(t) = −1/(1 − t)` is stiff near `t = 1`: explicit Euler with
//! uniform steps requires `Δt ≲ (1 − t)` and otherwise amplifies particles
//! catastrophically. Two standard remedies are combined here:
//!
//! 1. a **log-spaced time grid** in `u = 1 − t`, so every step satisfies
//!    `Δt / (1 − t) = const ≈ ln(1/eps)/n` regardless of `n`;
//! 2. an **exponential integrator** for the linear part: over one step the
//!    homogeneous solution is exactly `z ← (α(t′)/α(t)) z`, so only the
//!    score term is treated with Euler.
//!
//! A uniform grid remains available for ablation studies
//! ([`TimeGrid::Uniform`]); the benches show where it breaks.

use crate::schedule::DiffusionSchedule;
use rand::Rng;
use stats::gaussian::standard_normal;

/// Pseudo-time discretization for the reverse SDE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeGrid {
    /// Steps log-spaced in `1 − t`: uniformly stable (default).
    #[default]
    LogSpaced,
    /// Uniform steps in `t`: simple but unstable for small `eps`.
    Uniform,
}

impl TimeGrid {
    /// Returns the descending sequence of pseudo-times
    /// `1 − eps = t_0 > t_1 > … > t_n = 0` (n + 1 points).
    pub fn points(self, schedule: &DiffusionSchedule, n_steps: usize) -> Vec<f64> {
        assert!(n_steps >= 1, "need at least one Euler step");
        let eps = schedule.eps;
        match self {
            TimeGrid::Uniform => (0..=n_steps)
                .map(|i| (1.0 - eps) * (1.0 - i as f64 / n_steps as f64))
                .collect(),
            TimeGrid::LogSpaced => {
                // Two-sided geometric refinement: the reverse dynamics are
                // stiff at both endpoints (drift ~ 1/(1-t) at t = 1, score
                // scale 1/beta^2 = 1/t at t = 0), so steps shrink toward
                // both. Upper half: u = 1 - t geometric in [eps, 1/2];
                // lower half: t geometric in [eps, 1/2]; final point t = 0.
                let n_hi = n_steps / 2;
                let n_lo = n_steps - n_hi;
                let mut pts = Vec::with_capacity(n_steps + 1);
                if n_hi == 0 {
                    pts.push(1.0 - eps);
                } else {
                    let ratio = (0.5f64 / eps).ln() / n_hi as f64;
                    for i in 0..=n_hi {
                        let u = eps * (ratio * i as f64).exp();
                        pts.push(1.0 - u);
                    }
                }
                // Lower half: from t = 0.5 down to eps geometrically, then 0.
                if n_lo >= 2 {
                    let ratio = (0.5f64 / eps).ln() / (n_lo - 1) as f64;
                    for i in 1..n_lo {
                        let t = 0.5 * (-(ratio * i as f64)).exp();
                        pts.push(t);
                    }
                }
                pts.push(0.0);
                pts
            }
        }
    }
}

/// Integrates one particle of the reverse-time SDE in place.
///
/// * `z` — on entry a sample of `N(0, I)`; on exit a sample of the target.
/// * `n_steps` — number of (non-uniform) steps over `[0, 1]`.
/// * `score` — callback `(z, t, out)` writing the (posterior) score at
///   `(z, t)` into `out`.
/// * `rng` — source for the backward Brownian increments. Noise is omitted
///   on the final step so the sample lands on the target manifold.
pub fn reverse_sde_euler<R: Rng + ?Sized>(
    z: &mut [f64],
    schedule: &DiffusionSchedule,
    n_steps: usize,
    score: impl FnMut(&[f64], f64, &mut [f64]),
    rng: &mut R,
) {
    reverse_sde_with_grid(z, schedule, n_steps, TimeGrid::LogSpaced, score, rng);
}

/// [`reverse_sde_euler`] with an explicit time-grid choice.
pub fn reverse_sde_with_grid<R: Rng + ?Sized>(
    z: &mut [f64],
    schedule: &DiffusionSchedule,
    n_steps: usize,
    grid: TimeGrid,
    score: impl FnMut(&[f64], f64, &mut [f64]),
    rng: &mut R,
) {
    reverse_sde_stiff(z, schedule, n_steps, grid, 0.0, score, rng);
}

/// Stability factor: per (sub)step the explicit score contribution
/// `σ²(t)·Δt·L` (with `L` the score's Lipschitz scale) is kept below this.
const MAX_STEP_GAIN: f64 = 0.8;
/// Hard cap on substeps per grid interval (guards pathological hints).
const MAX_SUBSTEPS: usize = 256;

/// Reverse-SDE integrator with a stiffness hint for the score.
///
/// The prior score has Lipschitz scale `1/β_t²` (handled by the two-sided
/// grid); a damped likelihood score adds up to `h(t) · lik_stiffness`, where
/// for Gaussian observation error the natural hint is
/// `lik_stiffness = 1/σ_obs²` (times the squared operator norm of the
/// observation Jacobian, ≈ 1 for (sub)identity operators). Each grid
/// interval is subdivided so the explicit update stays contractive even for
/// very precise observations.
#[allow(clippy::too_many_arguments)]
pub fn reverse_sde_stiff<R: Rng + ?Sized>(
    z: &mut [f64],
    schedule: &DiffusionSchedule,
    n_steps: usize,
    grid: TimeGrid,
    lik_stiffness: f64,
    mut score: impl FnMut(&[f64], f64, &mut [f64]),
    rng: &mut R,
) {
    assert!(lik_stiffness >= 0.0, "stiffness hint must be nonnegative");
    let dim = z.len();
    let times = grid.points(schedule, n_steps);
    let mut s = vec![0.0; dim];

    for w in times.windows(2) {
        let t_hi = w[0];
        let t_lo = w[1]; // t_lo < t_hi (integrating backwards)
        let dt_full = t_hi - t_lo;

        // Stiffness at the interval's start (largest σ² of the interval).
        let lipschitz = 1.0 / schedule.beta_sq(t_hi)
            + lik_stiffness * schedule.damping(t_lo);
        let gain = schedule.sigma_sq(t_hi) * dt_full * lipschitz;
        let n_sub = ((gain / MAX_STEP_GAIN).ceil() as usize).clamp(1, MAX_SUBSTEPS);
        telemetry::counter_add("ensf.sde.euler_steps", n_sub as u64);
        let dt = dt_full / n_sub as f64;

        for k in 0..n_sub {
            let t = t_hi - k as f64 * dt;
            let t_next = t - dt;
            let sig2 = schedule.sigma_sq(t);
            let sig = sig2.sqrt();

            score(z, t, &mut s);

            // Exponential step for the linear drift b(t) z: the homogeneous
            // reverse flow is z(t') = alpha(t')/alpha(t) z(t) exactly.
            let decay = schedule.alpha(t_next) / schedule.alpha(t);
            let is_final = t_next <= 1e-300;
            let noise_amp = if is_final { 0.0 } else { sig * dt.sqrt() };
            for (zi, si) in z.iter_mut().zip(&s) {
                *zi = decay * *zi + sig2 * si * dt;
                if noise_amp != 0.0 { // lint: allow(float-exact-compare, reason="noise_amp is set to exactly 0.0 on the final step")
                    *zi += noise_amp * standard_normal(rng);
                }
            }
        }
    }
}

/// Reverse-SDE sampler for the *posterior*: the prior score is integrated
/// explicitly (two-sided grid + exponential linear step), while the damped
/// likelihood pull is applied with a locally linearized exponential
/// integrator. The sub-flow `dz = σ²(t) h(t) ∇log p(y|z) dt` has local
/// relaxation rate `λ_i = σ²(t) h(t) J_i² / σ_obs²` per component (with
/// `J_i²` the squared observation-Jacobian row norm), so the per-step
/// update multiplies the raw explicit increment by `(1 − e^{−c_i})/c_i`
/// with `c_i = λ_i Δt`: exact for linear (identity) observations, the plain
/// explicit step where the flow is slow (e.g. a saturated arctan), and
/// unconditionally stable for arbitrarily precise observations — where any
/// uniformly substepped explicit treatment diverges.
#[allow(clippy::too_many_arguments)]
pub fn reverse_sde_assimilate<R: Rng + ?Sized>(
    z: &mut [f64],
    schedule: &DiffusionSchedule,
    n_steps: usize,
    grid: TimeGrid,
    mut prior_score: impl FnMut(&[f64], f64, &mut [f64]),
    obs: &impl crate::obs::ObservationOperator,
    y: &[f64],
    rng: &mut R,
) {
    let dim = z.len();
    let times = grid.points(schedule, n_steps);
    // One add covers the whole particle: keeps the hot loop untouched.
    telemetry::counter_add("ensf.sde.euler_steps", (times.len() - 1) as u64);
    let mut s = vec![0.0; dim];
    let mut lik = vec![0.0; dim];
    let mut jsq = vec![1.0; dim];
    let sigma_obs_sq = obs.sigma() * obs.sigma();

    for w in times.windows(2) {
        let t = w[0];
        let t_next = w[1];
        let dt = t - t_next;
        let sig2 = schedule.sigma_sq(t);
        let sig = sig2.sqrt();

        // Prior part: exponential linear step + explicit score (the
        // two-sided grid keeps sigma^2 * dt / beta^2 bounded).
        prior_score(z, t, &mut s);
        let decay = schedule.alpha(t_next) / schedule.alpha(t);
        let is_final = t_next <= 1e-300;
        let noise_amp = if is_final { 0.0 } else { sig * dt.sqrt() };
        for (zi, si) in z.iter_mut().zip(&s) {
            *zi = decay * *zi + sig2 * si * dt;
            if noise_amp != 0.0 { // lint: allow(float-exact-compare, reason="noise_amp is set to exactly 0.0 on the final step")
                *zi += noise_amp * standard_normal(rng);
            }
        }

        // Likelihood part: raw explicit increment, damped per component by
        // the local relaxation factor (1 - e^{-c_i}) / c_i.
        let gain = sig2 * schedule.damping(t) * dt;
        if gain > 0.0 {
            lik.fill(0.0);
            obs.add_likelihood_score(z, y, gain, &mut lik);
            obs.jacobian_sq(z, &mut jsq);
            for ((zi, li), ji) in z.iter_mut().zip(&lik).zip(&jsq) {
                let c = gain * ji / sigma_obs_sq;
                let factor = if c > 1e-8 { (1.0 - (-c).exp()) / c } else { 1.0 };
                *zi += factor * li;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::rng::seeded;

    /// Reverse diffusion with the *analytic* score of N(m, v) must transport
    /// N(0, I) samples to N(m, v): the classic sanity check for the sampler.
    #[test]
    fn recovers_gaussian_target() {
        let sch = DiffusionSchedule::new(1e-4);
        let m = 3.0f64;
        let v = 0.25f64;
        let mut rng = seeded(9);
        let n = 4000;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let mut z = vec![standard_normal(&mut rng)];
            reverse_sde_euler(
                &mut z,
                &sch,
                120,
                |z, t, out| {
                    // Marginal at pseudo-time t: N(alpha m, alpha^2 v + beta^2).
                    let a = sch.alpha(t);
                    let var = a * a * v + sch.beta_sq(t);
                    out[0] = -(z[0] - a * m) / var;
                },
                &mut rng,
            );
            samples.push(z[0]);
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - m).abs() < 0.05, "mean {mean}");
        assert!((var - v).abs() < 0.08, "var {var}");
    }

    /// Log-spaced grid: monotone descending, endpoints right, stable ratio.
    #[test]
    fn log_grid_structure() {
        let sch = DiffusionSchedule::new(1e-3);
        let pts = TimeGrid::LogSpaced.points(&sch, 40);
        assert_eq!(pts.len(), 41);
        assert!((pts[0] - (1.0 - 1e-3)).abs() < 1e-12);
        assert!(pts[40].abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[1] < w[0], "grid must descend");
            // Stability: dt bounded by the distance to the nearest singular
            // endpoint (floored at eps for the final step to t = 0).
            let dt = w[0] - w[1];
            let margin = w[0].min(1.0 - w[0]).max(1e-3);
            assert!(dt / margin <= 1.0 + 1e-9, "step too large at t = {}", w[0]);
        }
    }

    #[test]
    fn uniform_grid_structure() {
        let sch = DiffusionSchedule::new(1e-3);
        let pts = TimeGrid::Uniform.points(&sch, 10);
        assert_eq!(pts.len(), 11);
        assert!((pts[0] - (1.0 - 1e-3)).abs() < 1e-12);
        assert!(pts[10].abs() < 1e-12);
        let d0 = pts[0] - pts[1];
        let d9 = pts[9] - pts[10];
        assert!((d0 - d9).abs() < 1e-12, "uniform grid must have equal steps");
    }

    /// With a zero score the integrator contracts the Gaussian start toward
    /// zero (alpha(0-end)/alpha(1-start) is tiny) and stays finite.
    #[test]
    fn zero_score_stays_finite() {
        let sch = DiffusionSchedule::default();
        let mut rng = seeded(3);
        let mut z = vec![0.5, -0.5, 1.0];
        reverse_sde_euler(&mut z, &sch, 50, |_, _, out| out.fill(0.0), &mut rng);
        assert!(z.iter().all(|x| x.is_finite()));
    }

    /// The sampler is deterministic given the RNG stream.
    #[test]
    fn deterministic_given_seed() {
        let sch = DiffusionSchedule::default();
        let run = || {
            let mut rng = seeded(17);
            let mut z = vec![standard_normal(&mut rng), standard_normal(&mut rng)];
            reverse_sde_euler(
                &mut z,
                &sch,
                30,
                |z, t, out| {
                    let a = sch.alpha(t);
                    let var = a * a + sch.beta_sq(t);
                    for (o, zi) in out.iter_mut().zip(z) {
                        *o = -(zi - a) / var;
                    }
                },
                &mut rng,
            );
            z
        };
        assert_eq!(run(), run());
    }

    /// More steps reduce discretization bias for a tight, offset target.
    #[test]
    fn refinement_improves_accuracy() {
        let sch = DiffusionSchedule::new(1e-4);
        let m = -2.0f64;
        let v = 0.04f64;
        let bias_for = |steps: usize| {
            let mut rng = seeded(11);
            let n = 800;
            let mut mean = 0.0;
            for _ in 0..n {
                let mut z = vec![standard_normal(&mut rng)];
                reverse_sde_euler(
                    &mut z,
                    &sch,
                    steps,
                    |z, t, out| {
                        let a = sch.alpha(t);
                        let var = a * a * v + sch.beta_sq(t);
                        out[0] = -(z[0] - a * m) / var;
                    },
                    &mut rng,
                );
                mean += z[0];
            }
            (mean / n as f64 - m).abs()
        };
        let coarse = bias_for(6);
        let fine = bias_for(150);
        assert!(fine <= coarse + 0.02, "coarse {coarse}, fine {fine}");
        assert!(fine < 0.1, "fine bias too large: {fine}");
    }

    /// The log-spaced grid stays accurate in a stiff regime (few steps,
    /// tiny eps); the uniform grid (with the same substepping safeguards)
    /// must at least remain finite. Stability ablation.
    #[test]
    fn log_grid_beats_uniform_when_stiff() {
        let sch = DiffusionSchedule::new(1e-6);
        let m = 1.0f64;
        let v = 0.09f64;
        let err_for = |grid: TimeGrid| {
            let mut rng = seeded(23);
            let n = 400;
            let mut mean = 0.0;
            let mut worst: f64 = 0.0;
            for _ in 0..n {
                let mut z = vec![standard_normal(&mut rng)];
                reverse_sde_with_grid(
                    &mut z,
                    &sch,
                    25,
                    grid,
                    |z, t, out| {
                        let a = sch.alpha(t);
                        let var = a * a * v + sch.beta_sq(t);
                        out[0] = -(z[0] - a * m) / var;
                    },
                    &mut rng,
                );
                mean += z[0];
                worst = worst.max(z[0].abs());
            }
            ((mean / n as f64 - m).abs(), worst)
        };
        let (log_bias, log_worst) = err_for(TimeGrid::LogSpaced);
        let (uni_bias, uni_worst) = err_for(TimeGrid::Uniform);
        assert!(log_bias < 0.2, "log-grid bias {log_bias}");
        assert!(log_worst < 10.0, "log-grid produced outliers: {log_worst}");
        assert!(uni_worst.is_finite() && uni_bias.is_finite());
        assert!(
            log_bias <= uni_bias + 0.05,
            "log grid should not be less accurate: log {log_bias} vs uniform {uni_bias}"
        );
    }

    /// Posterior sampler: with an essentially exact observation the
    /// analysis must land on it; with an uninformative one it must stay on
    /// the prior — across six orders of magnitude of observation precision,
    /// without a single NaN (the stability property the exponential
    /// likelihood integrator buys).
    #[test]
    fn assimilate_stable_for_tight_observations() {
        use crate::obs::IdentityObs;
        let sch = DiffusionSchedule::default();
        let m_prior = 0.0f64;
        let v_prior = 1.0f64;
        let y = vec![2.0];
        for sigma_obs in [1e-4, 1e-2, 1.0, 1e2] {
            let obs = IdentityObs::new(1, sigma_obs);
            let mut rng = seeded(31);
            let n = 400;
            let mut mean = 0.0;
            for _ in 0..n {
                let mut z = vec![standard_normal(&mut rng)];
                reverse_sde_assimilate(
                    &mut z,
                    &sch,
                    40,
                    TimeGrid::LogSpaced,
                    |z, t, out| {
                        let a = sch.alpha(t);
                        let var = a * a * v_prior + sch.beta_sq(t);
                        out[0] = -(z[0] - a * m_prior) / var;
                    },
                    &obs,
                    &y,
                    &mut rng,
                );
                assert!(z[0].is_finite(), "NaN at sigma_obs = {sigma_obs}");
                mean += z[0];
            }
            mean /= n as f64;
            if sigma_obs <= 1e-2 {
                assert!((mean - 2.0).abs() < 0.2, "tight obs: mean {mean} at {sigma_obs}");
            }
            if sigma_obs >= 1e2 {
                assert!(mean.abs() < 0.3, "loose obs: mean {mean} at {sigma_obs}");
            }
        }
    }

    /// The damped posterior mean interpolates monotonically between prior
    /// and observation as the observation tightens.
    #[test]
    fn assimilate_monotone_in_precision() {
        use crate::obs::IdentityObs;
        let sch = DiffusionSchedule::default();
        let y = vec![1.0];
        let mean_for = |sigma_obs: f64| {
            let obs = IdentityObs::new(1, sigma_obs);
            let mut rng = seeded(13);
            let n = 500;
            let mut mean = 0.0;
            for _ in 0..n {
                let mut z = vec![standard_normal(&mut rng)];
                reverse_sde_assimilate(
                    &mut z,
                    &sch,
                    40,
                    TimeGrid::LogSpaced,
                    |z, t, out| {
                        let a = sch.alpha(t);
                        let var = a * a + sch.beta_sq(t);
                        out[0] = -(z[0] - a * 0.0) / var;
                    },
                    &obs,
                    &y,
                    &mut rng,
                );
                mean += z[0];
            }
            mean / n as f64
        };
        let tight = mean_for(0.05);
        let medium = mean_for(0.5);
        let loose = mean_for(5.0);
        assert!(tight > medium && medium > loose, "{tight} > {medium} > {loose} violated");
    }

    #[test]
    #[should_panic]
    fn zero_steps_rejected() {
        let sch = DiffusionSchedule::default();
        let mut rng = seeded(1);
        let mut z = vec![0.0];
        reverse_sde_euler(&mut z, &sch, 0, |_, _, out| out.fill(0.0), &mut rng);
    }

    #[test]
    fn single_step_grids_span_the_whole_interval() {
        // n_steps = 1 is the degenerate discretization: both grids must
        // still produce exactly [1 − eps, 0] (the LogSpaced upper half is
        // empty, n_hi = 0, and the lower half has too few points to refine).
        let sch = DiffusionSchedule::default();
        for grid in [TimeGrid::LogSpaced, TimeGrid::Uniform] {
            let pts = grid.points(&sch, 1);
            assert_eq!(pts.len(), 2, "{grid:?}");
            assert_eq!(pts[0].to_bits(), (1.0 - sch.eps).to_bits(), "{grid:?} start");
            assert_eq!(pts[1].to_bits(), 0.0f64.to_bits(), "{grid:?} end");
        }
    }

    #[test]
    fn single_step_assimilation_is_noise_free_and_finite() {
        // With one Euler step the only step is the final one, where the
        // Brownian increment is omitted — so the result cannot depend on
        // the RNG at all, for any of the integration entry points.
        let sch = DiffusionSchedule::default();
        let obs = crate::obs::IdentityObs::new(3, 0.5);
        let y = vec![1.0, -2.0, 0.5];
        let run = |seed: u64| {
            let mut rng = seeded(seed);
            let mut z = vec![0.3, -0.7, 1.9];
            reverse_sde_assimilate(
                &mut z,
                &sch,
                1,
                TimeGrid::LogSpaced,
                |_, _, out| out.fill(0.0),
                &obs,
                &y,
                &mut rng,
            );
            z
        };
        let a = run(1);
        let b = run(999);
        assert!(a.iter().all(|v| v.is_finite()));
        assert_eq!(a, b, "single-step result leaked RNG state");
    }

    #[test]
    fn single_step_survives_near_zero_variance_observations() {
        // sigma → 0 sends the likelihood relaxation rate c = γ J²/σ² to
        // ~1e24; the exponential integrator's (1 − e^{−c})/c factor must
        // tame it into a bounded pull toward y instead of a 1e24-sized
        // explicit Euler overshoot.
        let sch = DiffusionSchedule::default();
        let obs = crate::obs::IdentityObs::new(2, 1e-12);
        let y = vec![2.0, -1.0];
        let mut rng = seeded(3);
        let mut z = vec![-10.0, 10.0];
        reverse_sde_assimilate(
            &mut z,
            &sch,
            1,
            TimeGrid::LogSpaced,
            |_, _, out| out.fill(0.0),
            &obs,
            &y,
            &mut rng,
        );
        for (zi, yi) in z.iter().zip(&y) {
            assert!(zi.is_finite(), "blow-up at sigma = 1e-12");
            assert!((zi - yi).abs() < 12.0, "overshot past the observation: {zi} vs {yi}");
        }
    }
}
