//! Observation operators and likelihood scores.
//!
//! The EnSF update needs `∇_x log p(y | x)` — the likelihood score. With
//! additive Gaussian observation error `y = h(x) + ε`, `ε ~ N(0, R)` and
//! diagonal `R`, the score is `J_h(x)ᵀ R⁻¹ (y − h(x))`. Implementations
//! provide the forward map and the score directly so nonlinear operators
//! (a selling point of EnSF over LETKF) avoid materializing Jacobians.

/// An observation operator `h` with additive Gaussian error of per-component
/// standard deviation `sigma` (diagonal R).
pub trait ObservationOperator: Sync {
    /// Dimension of the observation vector.
    fn obs_dim(&self) -> usize;

    /// Applies `h` to a state, writing into `out` (`out.len() == obs_dim`).
    fn apply(&self, state: &[f64], out: &mut [f64]);

    /// Per-component observation error standard deviation.
    fn sigma(&self) -> f64;

    /// Likelihood score `∇_x log p(y | x)` accumulated into `score_out`
    /// (added, not overwritten, scaled by `weight`), so the filter can fold
    /// the damping factor in without a temporary.
    fn add_likelihood_score(&self, state: &[f64], y: &[f64], weight: f64, score_out: &mut [f64]);

    /// Overwriting variant of [`add_likelihood_score`]
    /// (Self::add_likelihood_score): writes the weighted score into
    /// `score_out` directly. The default zeroes and delegates; dense
    /// operators override to save the clearing pass in the per-step hot
    /// loop. Must produce the same values as the default.
    fn likelihood_score_into(&self, state: &[f64], y: &[f64], weight: f64, score_out: &mut [f64]) {
        score_out.fill(0.0);
        self.add_likelihood_score(state, y, weight, score_out);
    }

    /// Writes the squared row norm of the observation Jacobian per state
    /// component, `out[i] = Σ_j (∂h_j/∂x_i)²`, used by the stabilized
    /// reverse-SDE integrator to bound the likelihood pull by its *local*
    /// stiffness. Default: 1 everywhere (identity-like operators).
    fn jacobian_sq(&self, _state: &[f64], out: &mut [f64]) {
        out.fill(1.0);
    }

    /// If [`jacobian_sq`](Self::jacobian_sq) is the same state-independent
    /// constant for *every* component, that constant; otherwise `None`.
    ///
    /// Lets the batched reverse-SDE integrator compute the likelihood
    /// damping factor once per step instead of one `exp` per state element.
    /// Only return `Some` when `jacobian_sq` writes exactly this value into
    /// every slot for every state — operators with per-component patterns
    /// (e.g. strided masks) or state-dependent Jacobians must return `None`.
    fn constant_jacobian_sq(&self) -> Option<f64> {
        None
    }

    /// Log-likelihood `log p(y | x)` up to an additive constant.
    fn log_likelihood(&self, state: &[f64], y: &[f64]) -> f64 {
        let mut hx = vec![0.0; self.obs_dim()];
        self.apply(state, &mut hx);
        let inv2s2 = 0.5 / (self.sigma() * self.sigma());
        -hx.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() * inv2s2
    }
}

/// Fully observed state: `h = I` (the paper's SQG experiment setting).
#[derive(Debug, Clone)]
pub struct IdentityObs {
    dim: usize,
    sigma: f64,
}

impl IdentityObs {
    /// Identity operator on a `dim`-dimensional state with error std `sigma`.
    ///
    /// # Panics
    /// Panics unless `sigma > 0`.
    pub fn new(dim: usize, sigma: f64) -> Self {
        assert!(sigma > 0.0, "observation error must be positive");
        IdentityObs { dim, sigma }
    }
}

impl ObservationOperator for IdentityObs {
    fn obs_dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, state: &[f64], out: &mut [f64]) {
        out.copy_from_slice(state);
    }

    fn sigma(&self) -> f64 {
        self.sigma
    }

    fn add_likelihood_score(&self, state: &[f64], y: &[f64], weight: f64, score_out: &mut [f64]) {
        let w = weight / (self.sigma * self.sigma);
        for ((s, x), yi) in score_out.iter_mut().zip(state).zip(y) {
            *s += w * (yi - x);
        }
    }

    fn likelihood_score_into(&self, state: &[f64], y: &[f64], weight: f64, score_out: &mut [f64]) {
        let w = weight / (self.sigma * self.sigma);
        for ((s, x), yi) in score_out.iter_mut().zip(state).zip(y) {
            *s = w * (yi - x);
        }
    }

    fn constant_jacobian_sq(&self) -> Option<f64> {
        Some(1.0)
    }
}

/// Observes every `stride`-th state component (sparse network).
#[derive(Debug, Clone)]
pub struct StridedObs {
    state_dim: usize,
    stride: usize,
    sigma: f64,
}

impl StridedObs {
    /// Observes components `0, stride, 2·stride, …` of a `state_dim` state.
    pub fn new(state_dim: usize, stride: usize, sigma: f64) -> Self {
        assert!(stride >= 1 && sigma > 0.0);
        StridedObs { state_dim, stride, sigma }
    }
}

impl ObservationOperator for StridedObs {
    fn obs_dim(&self) -> usize {
        self.state_dim.div_ceil(self.stride)
    }

    fn jacobian_sq(&self, _state: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for slot in out.iter_mut().step_by(self.stride) {
            *slot = 1.0;
        }
    }

    fn apply(&self, state: &[f64], out: &mut [f64]) {
        for (o, chunk) in out.iter_mut().zip(state.iter().step_by(self.stride)) {
            *o = *chunk;
        }
    }

    fn sigma(&self) -> f64 {
        self.sigma
    }

    fn add_likelihood_score(&self, state: &[f64], y: &[f64], weight: f64, score_out: &mut [f64]) {
        let w = weight / (self.sigma * self.sigma);
        for (k, yi) in y.iter().enumerate() {
            let idx = k * self.stride;
            score_out[idx] += w * (yi - state[idx]);
        }
    }
}

/// Nonlinear observation `h(x) = arctan(γ x)` componentwise — the stress
/// test used in the EnSF papers to demonstrate non-Gaussian DA. The gain γ
/// controls how hard the saturation bites: with γ |x| ≫ 1 the Jacobian
/// vanishes and the observation carries almost no amplitude information.
#[derive(Debug, Clone)]
pub struct ArctanObs {
    dim: usize,
    sigma: f64,
    gain: f64,
}

impl ArctanObs {
    /// Componentwise `arctan(x)` observation with error `sigma` (gain 1).
    pub fn new(dim: usize, sigma: f64) -> Self {
        Self::with_gain(dim, sigma, 1.0)
    }

    /// Componentwise `arctan(gain · x)` observation.
    pub fn with_gain(dim: usize, sigma: f64, gain: f64) -> Self {
        assert!(sigma > 0.0 && gain > 0.0);
        ArctanObs { dim, sigma, gain }
    }
}

impl ObservationOperator for ArctanObs {
    fn obs_dim(&self) -> usize {
        self.dim
    }

    fn jacobian_sq(&self, state: &[f64], out: &mut [f64]) {
        for (o, x) in out.iter_mut().zip(state) {
            let g = self.gain;
            let j = g / (1.0 + (g * x) * (g * x));
            *o = j * j;
        }
    }

    fn apply(&self, state: &[f64], out: &mut [f64]) {
        for (o, x) in out.iter_mut().zip(state) {
            *o = (self.gain * x).atan();
        }
    }

    fn sigma(&self) -> f64 {
        self.sigma
    }

    fn add_likelihood_score(&self, state: &[f64], y: &[f64], weight: f64, score_out: &mut [f64]) {
        // d/dx atan(gx) = g/(1+(gx)²).
        let w = weight / (self.sigma * self.sigma);
        let g = self.gain;
        for ((s, x), yi) in score_out.iter_mut().zip(state).zip(y) {
            *s += w * (yi - (g * x).atan()) * g / (1.0 + (g * x) * (g * x));
        }
    }
}

/// Nonlinear observation `h(x) = x³ / scale` componentwise: strongly
/// nonlinear yet informative at large amplitudes (the complement of
/// arctan's saturation).
#[derive(Debug, Clone)]
pub struct CubicObs {
    dim: usize,
    sigma: f64,
    scale: f64,
}

impl CubicObs {
    /// Componentwise `x³ / scale` observation with error `sigma`.
    pub fn new(dim: usize, sigma: f64, scale: f64) -> Self {
        assert!(sigma > 0.0 && scale > 0.0);
        CubicObs { dim, sigma, scale }
    }
}

impl ObservationOperator for CubicObs {
    fn obs_dim(&self) -> usize {
        self.dim
    }

    fn jacobian_sq(&self, state: &[f64], out: &mut [f64]) {
        for (o, x) in out.iter_mut().zip(state) {
            let j = 3.0 * x * x / self.scale;
            *o = j * j;
        }
    }

    fn apply(&self, state: &[f64], out: &mut [f64]) {
        for (o, x) in out.iter_mut().zip(state) {
            *o = x * x * x / self.scale;
        }
    }

    fn sigma(&self) -> f64 {
        self.sigma
    }

    fn add_likelihood_score(&self, state: &[f64], y: &[f64], weight: f64, score_out: &mut [f64]) {
        let w = weight / (self.sigma * self.sigma);
        for ((s, x), yi) in score_out.iter_mut().zip(state).zip(y) {
            *s += w * (yi - x * x * x / self.scale) * 3.0 * x * x / self.scale;
        }
    }
}

/// The componentwise base map a masked observing network sees through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaskedBase {
    /// Direct observation `h(x) = x` at each observed component.
    Identity,
    /// Saturating observation `h(x) = arctan(gain · x)` at each observed
    /// component (the EnSF papers' nonlinear stress operator).
    Arctan {
        /// Saturation gain γ (> 0).
        gain: f64,
    },
}

/// Partial observation of an explicit set of state components — the
/// inpainting-EnSF operator (Liang et al., arXiv:2501.12419).
///
/// The observation vector holds only the observed components, in ascending
/// state-index order. The likelihood score and its squared Jacobian are
/// *exactly zero* at unobserved components, so the reverse-SDE and
/// probability-flow integrators apply pure score-driven diffusion there
/// (inpainting) and observation-guided transport on the observed set — no
/// special-casing in the integrators themselves.
#[derive(Debug, Clone)]
pub struct MaskedObs {
    state_dim: usize,
    observed: Vec<usize>,
    base: MaskedBase,
    sigma: f64,
}

impl MaskedObs {
    /// Direct (identity-base) partial observation of the `observed` state
    /// components (ascending, unique, all `< state_dim`).
    ///
    /// # Panics
    /// Panics unless `sigma > 0` and the index list is strictly ascending
    /// and in range.
    pub fn identity(state_dim: usize, observed: Vec<usize>, sigma: f64) -> Self {
        Self::with_base(state_dim, observed, MaskedBase::Identity, sigma)
    }

    /// Saturating (`arctan(gain · x)`) partial observation — the composed
    /// Arctan+mask scenario operator.
    pub fn arctan(state_dim: usize, observed: Vec<usize>, sigma: f64, gain: f64) -> Self {
        assert!(gain > 0.0, "arctan gain must be positive");
        Self::with_base(state_dim, observed, MaskedBase::Arctan { gain }, sigma)
    }

    fn with_base(state_dim: usize, observed: Vec<usize>, base: MaskedBase, sigma: f64) -> Self {
        assert!(sigma > 0.0, "observation error must be positive");
        assert!(
            observed.windows(2).all(|w| w[0] < w[1]),
            "observed indices must be strictly ascending"
        );
        if let Some(&last) = observed.last() {
            assert!(last < state_dim, "observed index {last} out of range {state_dim}");
        }
        MaskedObs { state_dim, observed, base, sigma }
    }

    /// The observed state indices (ascending).
    pub fn observed(&self) -> &[usize] {
        &self.observed
    }

    /// Dimension of the underlying state.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }
}

impl ObservationOperator for MaskedObs {
    fn obs_dim(&self) -> usize {
        self.observed.len()
    }

    fn apply(&self, state: &[f64], out: &mut [f64]) {
        match self.base {
            MaskedBase::Identity => {
                for (o, &i) in out.iter_mut().zip(&self.observed) {
                    *o = state[i];
                }
            }
            MaskedBase::Arctan { gain } => {
                for (o, &i) in out.iter_mut().zip(&self.observed) {
                    *o = (gain * state[i]).atan();
                }
            }
        }
    }

    fn sigma(&self) -> f64 {
        self.sigma
    }

    fn jacobian_sq(&self, state: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        match self.base {
            MaskedBase::Identity => {
                for &i in &self.observed {
                    out[i] = 1.0;
                }
            }
            MaskedBase::Arctan { gain } => {
                for &i in &self.observed {
                    let x = state[i];
                    let j = gain / (1.0 + (gain * x) * (gain * x));
                    out[i] = j * j;
                }
            }
        }
    }

    fn add_likelihood_score(&self, state: &[f64], y: &[f64], weight: f64, score_out: &mut [f64]) {
        // Expression order mirrors IdentityObs / ArctanObs exactly so a
        // full mask reproduces the dense operators bit-for-bit.
        let w = weight / (self.sigma * self.sigma);
        match self.base {
            MaskedBase::Identity => {
                for (&i, yi) in self.observed.iter().zip(y) {
                    score_out[i] += w * (yi - state[i]);
                }
            }
            MaskedBase::Arctan { gain } => {
                let g = gain;
                for (&i, yi) in self.observed.iter().zip(y) {
                    let x = state[i];
                    score_out[i] += w * (yi - (g * x).atan()) * g / (1.0 + (g * x) * (g * x));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_score<O: ObservationOperator>(op: &O, x: &[f64], y: &[f64]) -> Vec<f64> {
        let h = 1e-6;
        let mut g = vec![0.0; x.len()];
        let mut xp = x.to_vec();
        for i in 0..x.len() {
            xp[i] = x[i] + h;
            let lp = op.log_likelihood(&xp, y);
            xp[i] = x[i] - h;
            let lm = op.log_likelihood(&xp, y);
            xp[i] = x[i];
            g[i] = (lp - lm) / (2.0 * h);
        }
        g
    }

    #[test]
    fn identity_score_matches_finite_difference() {
        let op = IdentityObs::new(4, 0.7);
        let x = [0.3, -1.2, 2.0, 0.0];
        let y = [0.5, -1.0, 1.5, 0.2];
        let mut s = vec![0.0; 4];
        op.add_likelihood_score(&x, &y, 1.0, &mut s);
        let fd = finite_diff_score(&op, &x, &y);
        for (a, b) in s.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn arctan_score_matches_finite_difference() {
        let op = ArctanObs::new(3, 0.5);
        let x = [0.3, -2.0, 5.0];
        let mut y = vec![0.0; 3];
        op.apply(&[0.1, -1.8, 4.0], &mut y);
        let mut s = vec![0.0; 3];
        op.add_likelihood_score(&x, &y, 1.0, &mut s);
        let fd = finite_diff_score(&op, &x, &y);
        for (a, b) in s.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn strided_obs_picks_components() {
        let op = StridedObs::new(6, 2, 1.0);
        assert_eq!(op.obs_dim(), 3);
        let mut out = vec![0.0; 3];
        op.apply(&[10.0, 11.0, 12.0, 13.0, 14.0, 15.0], &mut out);
        assert_eq!(out, vec![10.0, 12.0, 14.0]);
    }

    #[test]
    fn strided_score_only_touches_observed_components() {
        let op = StridedObs::new(4, 2, 1.0);
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [0.0, 0.0];
        let mut s = vec![0.0; 4];
        op.add_likelihood_score(&x, &y, 1.0, &mut s);
        assert!(s[0] != 0.0 && s[2] != 0.0);
        assert_eq!(s[1], 0.0);
        assert_eq!(s[3], 0.0);
    }

    #[test]
    fn likelihood_score_into_matches_zeroed_add() {
        // The overwriting variant must agree with fill(0) + add for every
        // operator (IdentityObs overrides it; the rest use the default).
        let x = [1.0, -2.0, 0.5, 3.0];
        let y = [0.5, 0.5, 0.5, 0.5];
        let ops: Vec<Box<dyn ObservationOperator>> = vec![
            Box::new(IdentityObs::new(4, 0.7)),
            Box::new(ArctanObs::new(4, 0.3)),
            Box::new(CubicObs::new(4, 0.5, 10.0)),
        ];
        for op in &ops {
            let mut via_add = vec![0.0; 4];
            op.add_likelihood_score(&x, &y, 1.3, &mut via_add);
            let mut via_into = vec![f64::NAN; 4]; // must overwrite, not read
            op.likelihood_score_into(&x, &y, 1.3, &mut via_into);
            for (a, b) in via_add.iter().zip(&via_into) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn constant_jacobian_sq_agrees_with_jacobian_sq() {
        // Some(c) must mean jacobian_sq writes exactly c everywhere.
        let x = [0.4, -1.1, 2.0];
        let ident = IdentityObs::new(3, 1.0);
        let c = ident.constant_jacobian_sq().unwrap();
        let mut js = vec![0.0; 3];
        ident.jacobian_sq(&x, &mut js);
        assert!(js.iter().all(|&j| j == c));
        // Non-uniform / state-dependent operators must opt out.
        assert!(StridedObs::new(4, 2, 1.0).constant_jacobian_sq().is_none());
        assert!(ArctanObs::new(3, 0.3).constant_jacobian_sq().is_none());
        assert!(CubicObs::new(3, 0.5, 10.0).constant_jacobian_sq().is_none());
    }

    #[test]
    fn score_weight_scales_linearly() {
        let op = IdentityObs::new(2, 1.0);
        let x = [1.0, -1.0];
        let y = [0.0, 0.0];
        let mut s1 = vec![0.0; 2];
        let mut s2 = vec![0.0; 2];
        op.add_likelihood_score(&x, &y, 1.0, &mut s1);
        op.add_likelihood_score(&x, &y, 0.5, &mut s2);
        for (a, b) in s1.iter().zip(&s2) {
            assert!((0.5 * a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn cubic_score_matches_finite_difference() {
        let op = CubicObs::new(3, 0.5, 10.0);
        let x = [0.3, -2.0, 3.0];
        let mut y = vec![0.0; 3];
        op.apply(&[0.2, -1.9, 2.8], &mut y);
        let mut s = vec![0.0; 3];
        op.add_likelihood_score(&x, &y, 1.0, &mut s);
        let fd = finite_diff_score(&op, &x, &y);
        for (a, b) in s.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn arctan_gain_controls_saturation() {
        let sharp = ArctanObs::with_gain(1, 0.1, 1.0);
        let mild = ArctanObs::with_gain(1, 0.1, 0.2);
        let mut js = vec![0.0];
        let mut jm = vec![0.0];
        sharp.jacobian_sq(&[5.0], &mut js);
        mild.jacobian_sq(&[5.0], &mut jm);
        // At x = 5 the mild-gain operator retains far more sensitivity.
        assert!(jm[0] > 2.0 * js[0], "{jm:?} vs {js:?}");
    }

    #[test]
    fn jacobian_sq_matches_operators() {
        let id = IdentityObs::new(3, 1.0);
        let mut out = vec![9.0; 3];
        id.jacobian_sq(&[1.0, 2.0, 3.0], &mut out);
        assert_eq!(out, vec![1.0, 1.0, 1.0]);

        let strided = StridedObs::new(4, 2, 1.0);
        let mut out = vec![9.0; 4];
        strided.jacobian_sq(&[0.0; 4], &mut out);
        assert_eq!(out, vec![1.0, 0.0, 1.0, 0.0]);

        let atan = ArctanObs::new(2, 1.0);
        let mut out = vec![0.0; 2];
        atan.jacobian_sq(&[0.0, 3.0], &mut out);
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert!((out[1] - (1.0f64 / 10.0).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn log_likelihood_peaks_at_consistent_state() {
        let op = IdentityObs::new(2, 1.0);
        let y = [1.0, 2.0];
        assert!(op.log_likelihood(&[1.0, 2.0], &y) > op.log_likelihood(&[0.0, 0.0], &y));
    }

    #[test]
    fn tighter_sigma_means_stronger_pull() {
        let tight = IdentityObs::new(1, 0.1);
        let loose = IdentityObs::new(1, 1.0);
        let mut st = vec![0.0];
        let mut sl = vec![0.0];
        tight.add_likelihood_score(&[0.0], &[1.0], 1.0, &mut st);
        loose.add_likelihood_score(&[0.0], &[1.0], 1.0, &mut sl);
        assert!(st[0] > sl[0]);
    }

    #[test]
    #[should_panic(expected = "observation error must be positive")]
    fn identity_zero_sigma_rejected() {
        // A zero-variance observation makes the likelihood score singular;
        // the constructor is the only guard.
        let _ = IdentityObs::new(4, 0.0);
    }

    #[test]
    #[should_panic]
    fn strided_zero_sigma_rejected() {
        let _ = StridedObs::new(4, 2, 0.0);
    }

    #[test]
    #[should_panic]
    fn arctan_zero_sigma_rejected() {
        let _ = ArctanObs::new(4, 0.0);
    }

    #[test]
    fn masked_identity_score_matches_finite_difference() {
        let op = MaskedObs::identity(5, vec![0, 2, 4], 0.7);
        let x = [0.3, -1.2, 2.0, 0.0, -0.4];
        let y = [0.5, 1.5, -0.1];
        let mut s = vec![0.0; 5];
        op.add_likelihood_score(&x, &y, 1.0, &mut s);
        let fd = finite_diff_score(&op, &x, &y);
        for (a, b) in s.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        assert_eq!(s[1], 0.0);
        assert_eq!(s[3], 0.0);
    }

    #[test]
    fn masked_arctan_score_matches_finite_difference() {
        let op = MaskedObs::arctan(4, vec![1, 3], 0.5, 3.0);
        let x = [9.0, 0.3, 9.0, -0.8];
        let mut y = vec![0.0; 2];
        op.apply(&[0.0, 0.2, 0.0, -0.7], &mut y);
        let mut s = vec![0.0; 4];
        op.add_likelihood_score(&x, &y, 1.0, &mut s);
        let fd = finite_diff_score(&op, &x, &y);
        for (a, b) in s.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        assert_eq!(s[0], 0.0);
        assert_eq!(s[2], 0.0);
    }

    #[test]
    fn full_masked_obs_reduces_to_dense_operators_bitwise() {
        let dim = 6;
        let all: Vec<usize> = (0..dim).collect();
        let x = [1.0, -2.0, 3.0, -0.5, 0.25, 4.0];
        let y = [0.5, 0.25, -0.5, 1.0, 0.0, -1.0];

        let masked = MaskedObs::identity(dim, all.clone(), 0.7);
        let dense = IdentityObs::new(dim, 0.7);
        let (mut a, mut b) = (vec![0.0; dim], vec![0.0; dim]);
        masked.add_likelihood_score(&x, &y, 1.3, &mut a);
        dense.add_likelihood_score(&x, &y, 1.3, &mut b);
        for (u, v) in a.iter().zip(&b) {
            assert_eq!(u.to_bits(), v.to_bits());
        }

        let masked = MaskedObs::arctan(dim, all, 0.7, 40.0);
        let dense = ArctanObs::with_gain(dim, 0.7, 40.0);
        let (mut a, mut b) = (vec![0.0; dim], vec![0.0; dim]);
        masked.add_likelihood_score(&x, &y, 0.9, &mut a);
        dense.add_likelihood_score(&x, &y, 0.9, &mut b);
        for (u, v) in a.iter().zip(&b) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn masked_jacobian_vanishes_off_mask() {
        let op = MaskedObs::identity(4, vec![1, 2], 1.0);
        let mut out = vec![9.0; 4];
        op.jacobian_sq(&[0.0; 4], &mut out);
        assert_eq!(out, vec![0.0, 1.0, 1.0, 0.0]);
        assert!(op.constant_jacobian_sq().is_none());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn masked_obs_rejects_unsorted_indices() {
        let _ = MaskedObs::identity(4, vec![2, 1], 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn masked_obs_rejects_out_of_range_index() {
        let _ = MaskedObs::identity(4, vec![0, 4], 1.0);
    }

    #[test]
    fn strided_obs_with_stride_one_is_the_identity_network() {
        let dense = StridedObs::new(5, 1, 0.7);
        let ident = IdentityObs::new(5, 0.7);
        assert_eq!(dense.obs_dim(), 5);
        let x = [1.0, -2.0, 3.0, -4.0, 5.0];
        let y = [0.5; 5];
        let (mut a, mut b) = (vec![0.0; 5], vec![0.0; 5]);
        dense.add_likelihood_score(&x, &y, 2.0, &mut a);
        ident.add_likelihood_score(&x, &y, 2.0, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn strided_obs_wider_than_state_keeps_one_component() {
        // stride > dim: only component 0 is observed; the score leaves
        // every other component untouched.
        let op = StridedObs::new(4, 10, 1.0);
        assert_eq!(op.obs_dim(), 1);
        let mut out = vec![0.0; 1];
        op.apply(&[9.0, 8.0, 7.0, 6.0], &mut out);
        assert_eq!(out, vec![9.0]);
        let mut s = vec![0.0; 4];
        op.add_likelihood_score(&[9.0, 8.0, 7.0, 6.0], &[0.0], 1.0, &mut s);
        assert!(s[0] != 0.0); // lint: allow(float-exact-compare, reason="score of the observed component is an exact nonzero product")
        assert_eq!(&s[1..], &[0.0, 0.0, 0.0]);
    }
}
