//! Probability-flow ODE integration: the flow-matching analysis path.
//!
//! The reverse-time SDE (Eq. 7, [`crate::reverse_sde_assimilate`]) and the
//! **probability-flow ODE**
//!
//! ```text
//! dZ = [ b(t) Z − ½ σ²(t) s(Z, t) ] dt
//! ```
//!
//! share the same marginals at every pseudo-time (Song et al.; Transue et
//! al., "Flow Matching for Efficient and Scalable Data Assimilation",
//! arXiv:2508.13313): the ODE transports the same `N(0, I)` start to the
//! same posterior, but *deterministically*. That buys the analysis two
//! things:
//!
//! 1. **Few-step integration.** Without per-step noise injection the only
//!    error source is the drift discretization, so the two-sided log grid
//!    ([`TimeGrid::LogSpaced`]) reaches the accuracy of the 100-step SDE in
//!    ~5–10 steps: each analysis costs proportionally fewer score GEMMs.
//! 2. **A smaller determinism surface.** Particles consume *no* RNG draws
//!    beyond the initial Gaussian fill, so the member-keyed (serial) and
//!    tile-keyed (sharded) stream contracts hold trivially and rank-count
//!    bitwise invariance reduces to the fixed-order score fold that
//!    [`BatchedScore`] and the dist kernel already guarantee.
//!
//! ## Observation guidance: why the flow cannot reuse the SDE's pull
//!
//! The stochastic path adds the *damped analytic likelihood score*
//! `h(t) ∇ log p(y | z)` to the prior score (Eq. 17). That surrogate is
//! **not** the score of the diffused posterior — it evaluates the
//! likelihood at the noisy state `z` instead of the clean state and ramps
//! it with an ad-hoc damping. The SDE tolerates the mismatch because its
//! per-step noise keeps re-mixing the marginal toward the true one; the
//! noiseless ODE integrates the same error *coherently* and converges to a
//! visibly biased posterior even on an infinitely fine grid (Gaussian
//! prior `N(0,1)`, identity obs with `r = 0.25`, `y = 1.5`: Kalman mean
//! 1.20, SDE ≈ 1.20, naive flow ≈ 1.56 — a 30% overshoot that refinement
//! does not cure).
//!
//! The flow therefore derives its pull from the **denoised estimate**
//! (Tweedie's formula), in the style of diffusion-posterior sampling:
//!
//! ```text
//! x̂_i  = (z_i + β²(t) s_i(z, t)) / α(t)     (E[x | z], free given s)
//! V_i  = α² v_i + β²                         (diffused prior variance)
//! v̂_i = v_i β² / V_i                         (Var[x_i | z])
//! x̂⁺_i = x̂_i + v̂_i J_i(x̂) (y_i − h_i(x̂)) / (r + J_i² v̂_i)
//! ```
//!
//! where `v_i` is the per-component prior ensemble variance and
//! `r = σ_obs²`. The correction is a per-component Kalman update of the
//! denoised estimate with the denoiser's residual uncertainty `v̂_i` as
//! the prior: a *convex* move of `h(x̂)` toward `y` in observation space,
//! so it is unconditionally stable — no damping profile, no relaxation
//! factor. `v̂_i` ramps from `v_i` at `t ≈ 1` (full Kalman pull while `x̂`
//! is still mostly prior mean) to `0` at `t = 0` (the endpoint is pinned).
//!
//! ## Discretization
//!
//! The guided denoiser is integrated with the **DDIM map** (the
//! exponential-integrator discretization of the PF-ODE in the
//! `(x̂, noise-direction)` frame):
//!
//! ```text
//! z ← α(t′) x̂⁺ + (β(t′)/β(t)) (z − α(t) x̂⁺)
//! ```
//!
//! For a Gaussian target with the exact score this map reproduces the
//! posterior **mean exactly at any step count** — including a single step
//! — because the flow map of a linear ODE is affine and the DDIM
//! coefficients solve it in closed form. (The naive explicit-Euler score
//! step instead leaves a few percent of the `N(0, I)` start untransported
//! on coarse grids, which swamps a posterior living at scale `10⁻²`.)
//! Few-step analyses are therefore mean-accurate but under-dispersed; the
//! ensemble spread is restored by the same [`crate::relax_spread`]
//! safeguard the SDE path already runs, exactly as the SDE relies on it
//! to undo its own obs-pinning overdispersion correction.

use crate::batch::{BatchScratch, BatchedScore};
use crate::obs::ObservationOperator;
use crate::schedule::DiffusionSchedule;
use crate::sde::TimeGrid;

/// Per-component sample variance over `batch` members of a member-major
/// ensemble buffer (divisor `J − 1`; all zeros when the batch has fewer
/// than two members).
///
/// This is the `v_i` the flow-matching guidance needs. The accumulation
/// order is the batch order, so the result is deterministic and — because
/// the batch is shared by every particle block — identical regardless of
/// how particles are partitioned over blocks, tiles or ranks.
///
/// # Panics
/// Panics on a shape mismatch or an out-of-range batch index.
pub fn batch_variance(ensemble: &[f64], members: usize, dim: usize, batch: &[usize]) -> Vec<f64> {
    assert_eq!(ensemble.len(), members * dim, "ensemble buffer shape mismatch");
    assert!(batch.iter().all(|&j| j < members), "batch index out of range");
    let j = batch.len();
    let mut var = vec![0.0; dim];
    if j < 2 {
        return var;
    }
    let mut mean = vec![0.0; dim];
    for &m in batch {
        let row = &ensemble[m * dim..(m + 1) * dim];
        for (mu, x) in mean.iter_mut().zip(row) {
            *mu += x;
        }
    }
    let inv = 1.0 / j as f64;
    for mu in &mut mean {
        *mu *= inv;
    }
    for &m in batch {
        let row = &ensemble[m * dim..(m + 1) * dim];
        for ((v, x), mu) in var.iter_mut().zip(row).zip(&mean) {
            let d = x - mu;
            *v += d * d;
        }
    }
    let inv1 = 1.0 / (j - 1) as f64;
    for v in &mut var {
        *v *= inv1;
    }
    var
}

/// Shrinks a per-component variance estimate toward its mean in place:
/// `v_i ← (1 − γ) v_i + γ v̄` with `v̄` the arithmetic mean over `var`.
///
/// With `J` ensemble members the raw per-component sample variance carries
/// `≈ √(2/(J − 1))` relative noise, and that noise feeds straight into the
/// flow-matching Kalman gain `v̂/(r + J² v̂)` — for small ensembles it costs
/// a visible fraction of the analysis accuracy. For statistically
/// homogeneous turbulence the spatial mean estimates the same variance
/// from `d·(J − 1)` samples instead of `J − 1`, so blending toward it
/// (`γ = 1` replaces the estimate outright) trades spatial heterogeneity
/// for estimator noise. The mean is accumulated in slice order, so the
/// result only depends on the slice contents — callers that shard the
/// state must smooth over a partition-independent extent (the distributed
/// kernel smooths within its fixed score tiles).
///
/// `γ = 0` (the [`crate::EnsfConfig`] default) and an empty slice are
/// exact no-ops.
pub fn smooth_variance(var: &mut [f64], gamma: f64) {
    if gamma <= 0.0 || var.is_empty() {
        return;
    }
    let mean = var.iter().sum::<f64>() / var.len() as f64;
    for v in var.iter_mut() {
        *v = (1.0 - gamma) * *v + gamma * mean;
    }
}

/// Integrates one particle of the probability-flow ODE in place.
///
/// Deterministic counterpart of [`crate::reverse_sde_assimilate`]: same
/// grid and exponential linear step, with the denoised-estimate guidance
/// described in the module docs in place of the SDE's damped likelihood
/// pull — no RNG parameter because the flow consumes no noise.
///
/// * `z` — on entry a sample of `N(0, I)`; on exit a posterior sample.
/// * `prior_var` — per-component prior ensemble variance `v_i`
///   ([`batch_variance`] over the same members the score uses).
/// * `prior_score` — callback `(z, t, out)` writing the prior score.
/// * `obs`, `y` — observation operator and observation vector.
///
/// # Panics
/// Panics when `prior_var` does not match the state dimension.
#[allow(clippy::too_many_arguments)]
pub fn probability_flow_assimilate(
    z: &mut [f64],
    schedule: &DiffusionSchedule,
    n_steps: usize,
    grid: TimeGrid,
    prior_var: &[f64],
    mut prior_score: impl FnMut(&[f64], f64, &mut [f64]),
    obs: &impl ObservationOperator,
    y: &[f64],
) {
    let dim = z.len();
    assert_eq!(prior_var.len(), dim, "prior variance shape mismatch");
    let times = grid.points(schedule, n_steps);
    telemetry::counter_add("ensf.flow.ode_steps", (times.len() - 1) as u64);
    let mut s = vec![0.0; dim];
    let mut xh = vec![0.0; dim];
    let mut lik = vec![0.0; dim];
    let mut jsq = vec![1.0; dim];
    let r = obs.sigma() * obs.sigma();

    for w in times.windows(2) {
        let t = w[0];
        let t_next = w[1];
        prior_score(z, t, &mut s);
        flow_step(z, &s, &mut xh, &mut lik, &mut jsq, prior_var, obs, y, r, schedule, t, t_next);
    }
}

/// One flow step for one particle: Tweedie denoising, the per-component
/// Kalman correction of the denoised estimate, and the DDIM map to the
/// next grid point. Shared verbatim by the reference and batched
/// integrators so they agree operation for operation.
#[allow(clippy::too_many_arguments)]
#[inline]
fn flow_step(
    z: &mut [f64],
    s: &[f64],
    xh: &mut [f64],
    lik: &mut [f64],
    jsq: &mut [f64],
    prior_var: &[f64],
    obs: &impl ObservationOperator,
    y: &[f64],
    r: f64,
    schedule: &DiffusionSchedule,
    t: f64,
    t_next: f64,
) {
    let alpha = schedule.alpha(t);
    let beta_sq = schedule.beta_sq(t);
    let alpha_next = schedule.alpha(t_next);
    // Noise-direction carry-over β(t′)/β(t) of the DDIM map.
    let beta_ratio = (schedule.beta_sq(t_next) / beta_sq).sqrt();

    // Tweedie denoising: x̂ = E[x | z] = (z + β² s)/α, elementwise from the
    // score already in hand — no extra ensemble pass.
    for ((xi, zi), si) in xh.iter_mut().zip(&*z).zip(s) {
        *xi = (*zi + beta_sq * si) / alpha;
    }
    // `lik_i = J_i(x̂) (y_i − h_i(x̂)) / r`, rescaled per component below to
    // the moment-matched denominator `r + J_i² v̂_i`.
    obs.likelihood_score_into(xh, y, 1.0, lik);
    obs.jacobian_sq(xh, jsq);

    for (k, (zi, xi)) in z.iter_mut().zip(&mut *xh).enumerate() {
        let v = prior_var[k];
        let big_v = alpha * alpha * v + beta_sq;
        let vh = v * beta_sq / big_v; // Var[x | z]: the denoiser's residual spread
        // Kalman update of x̂ toward the observation: a convex move in obs
        // space (|J Δx̂| ≤ |y − h(x̂)|), unconditionally stable.
        *xi += vh * lik[k] * r / (r + jsq[k] * vh);
        // DDIM: re-noise the guided denoised estimate to the next level.
        *zi = alpha_next * *xi + beta_ratio * (*zi - alpha * *xi);
    }
}

/// Batched counterpart of [`probability_flow_assimilate`]: integrates a
/// whole block of `b` particles through the probability-flow ODE
/// step-major, evaluating the prior score for all of them at once via
/// [`BatchedScore`] — the same two-GEMM score machinery the stochastic
/// path uses, minus the noise stream.
///
/// * `z` — `b x dim` row-major block; each row a sample of `N(0, I)` on
///   entry, a posterior sample on exit.
/// * `prior_var` — per-component prior variance of the score batch
///   ([`batch_variance`] over the same members `score` gathered).
///
/// Per particle this replicates [`probability_flow_assimilate`] operation
/// for operation, so the two paths agree to floating-point reassociation
/// (the same contract the SDE pair has). No RNG parameter: after the
/// caller's initial fill the integration is a pure function of the block.
#[allow(clippy::too_many_arguments)]
pub fn probability_flow_assimilate_batched(
    z: &mut [f64],
    b: usize,
    schedule: &DiffusionSchedule,
    n_steps: usize,
    grid: TimeGrid,
    score: &BatchedScore,
    prior_var: &[f64],
    obs: &impl ObservationOperator,
    y: &[f64],
    scratch: &mut BatchScratch,
) {
    // The one allocation of the whole integration: the time grid, computed
    // once up front. The stepping core below is allocation-free.
    let times = grid.points(schedule, n_steps);
    telemetry::counter_add("ensf.flow.ode_steps", ((times.len() - 1) * b) as u64);
    probability_flow_assimilate_batched_with_times(
        z, b, schedule, &times, score, prior_var, obs, y, scratch,
    );
}

/// Core of [`probability_flow_assimilate_batched`] over a precomputed
/// descending time grid (as produced by [`TimeGrid::points`]). Callers that
/// must stay allocation-free per cycle hoist the grid into caller-owned
/// storage and call this directly.
// lint: no_alloc
#[allow(clippy::too_many_arguments)]
pub fn probability_flow_assimilate_batched_with_times(
    z: &mut [f64],
    b: usize,
    schedule: &DiffusionSchedule,
    times: &[f64],
    score: &BatchedScore,
    prior_var: &[f64],
    obs: &impl ObservationOperator,
    y: &[f64],
    scratch: &mut BatchScratch,
) {
    let dim = score.dim();
    let j = score.batch_len();
    assert_eq!(z.len(), b * dim, "particle block shape mismatch");
    assert_eq!(prior_var.len(), dim, "prior variance shape mismatch");
    let r = obs.sigma() * obs.sigma();
    let [s, w, znorm, xh, lik, jsq] =
        scratch.buffers_mut().slices([b * dim, b * j, b, dim, dim, dim]);

    for win in times.windows(2) {
        let t = win[0];
        let t_next = win[1];
        score.score_block_into(z, b, t, s, w, znorm);
        for i in 0..b {
            let zrow = &mut z[i * dim..(i + 1) * dim];
            let srow = &s[i * dim..(i + 1) * dim];
            flow_step(zrow, srow, xh, lik, jsq, prior_var, obs, y, r, schedule, t, t_next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::IdentityObs;
    use stats::gaussian::{fill_standard_normal, standard_normal};
    use stats::rng::seeded;

    /// With the *analytic* posterior ingredients (Gaussian prior score +
    /// identity observation) the flow must transport N(0, I) to the
    /// Kalman posterior — in a handful of steps.
    #[test]
    fn few_step_flow_reaches_gaussian_posterior() {
        let sch = DiffusionSchedule::new(1e-4);
        let m_prior = 0.0f64;
        let v_prior = 1.0f64;
        let sigma_obs = 0.5f64;
        let y = vec![1.5];
        let obs = IdentityObs::new(1, sigma_obs);
        // Kalman: posterior mean = v/(v+r) * y with r = sigma_obs^2.
        let want_mean = v_prior / (v_prior + sigma_obs * sigma_obs) * y[0];

        for steps in [5, 10] {
            let mut rng = seeded(7);
            let n = 2000;
            let mut mean = 0.0;
            for _ in 0..n {
                let mut z = vec![standard_normal(&mut rng)];
                probability_flow_assimilate(
                    &mut z,
                    &sch,
                    steps,
                    TimeGrid::LogSpaced,
                    &[v_prior],
                    |z, t, out| {
                        let a = sch.alpha(t);
                        let var = a * a * v_prior + sch.beta_sq(t);
                        out[0] = -(z[0] - a * m_prior) / var;
                    },
                    &obs,
                    &y,
                );
                assert!(z[0].is_finite());
                mean += z[0];
            }
            mean /= n as f64;
            assert!(
                (mean - want_mean).abs() < 0.15,
                "{steps}-step flow mean {mean} vs Kalman {want_mean}"
            );
        }
    }

    /// On a fine grid the guided flow recovers the full Kalman posterior:
    /// mean *and* variance, the property the naive damped-likelihood flow
    /// provably lacks (it converges to a biased endpoint).
    #[test]
    fn fine_grid_flow_matches_kalman_posterior() {
        let sch = DiffusionSchedule::new(1e-4);
        let v_prior = 1.0f64;
        let sigma_obs = 0.5f64;
        let y = vec![1.5];
        let obs = IdentityObs::new(1, sigma_obs);
        let r = sigma_obs * sigma_obs;
        let want_mean = v_prior / (v_prior + r) * y[0];
        let want_var = v_prior * r / (v_prior + r);

        let mut rng = seeded(11);
        let n = 4000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let mut z = vec![standard_normal(&mut rng)];
            probability_flow_assimilate(
                &mut z,
                &sch,
                100,
                TimeGrid::LogSpaced,
                &[v_prior],
                |z, t, out| {
                    let a = sch.alpha(t);
                    let var = a * a * v_prior + sch.beta_sq(t);
                    out[0] = -z[0] / var;
                },
                &obs,
                &y,
            );
            sum += z[0];
            sum_sq += z[0] * z[0];
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - want_mean).abs() < 0.05, "flow mean {mean} vs Kalman {want_mean}");
        assert!((var - want_var).abs() < 0.05, "flow var {var} vs Kalman {want_var}");
    }

    /// The flow is a pure function of its inputs: no hidden RNG anywhere.
    #[test]
    fn flow_is_deterministic_without_any_rng() {
        let sch = DiffusionSchedule::default();
        let obs = IdentityObs::new(3, 0.4);
        let y = vec![0.5, -0.5, 1.0];
        let run = || {
            let mut z = vec![0.3, -0.7, 1.9];
            probability_flow_assimilate(
                &mut z,
                &sch,
                8,
                TimeGrid::LogSpaced,
                &[1.0, 0.5, 2.0],
                |_, _, out| out.fill(0.0),
                &obs,
                &y,
            );
            z
        };
        assert_eq!(run(), run());
    }

    /// Batched and reference flow integrators agree to reassociation on
    /// identical blocks (the same contract the SDE pair has).
    #[test]
    fn batched_flow_matches_reference_flow() {
        let (members, dim, b, n_steps) = (7, 11, 5, 8);
        let mut rng = seeded(31);
        let mut ens = vec![0.0; members * dim];
        fill_standard_normal(&mut rng, &mut ens);
        let sch = DiffusionSchedule::default();
        let batch: Vec<usize> = (0..members).collect();
        let score = BatchedScore::new(&ens, members, dim, sch, &batch);
        let prior_var = batch_variance(&ens, members, dim, &batch);
        let reference = crate::score::ScoreEstimator::new(&ens, members, dim, sch);
        let obs = IdentityObs::new(dim, 0.6);
        let y = vec![0.3; dim];

        let mut z0 = vec![0.0; b * dim];
        fill_standard_normal(&mut rng, &mut z0);

        let mut zb = z0.clone();
        let mut scratch = BatchScratch::new(b, members, dim);
        probability_flow_assimilate_batched(
            &mut zb,
            b,
            &sch,
            n_steps,
            TimeGrid::LogSpaced,
            &score,
            &prior_var,
            &obs,
            &y,
            &mut scratch,
        );

        let mut zr = z0;
        for row in zr.chunks_exact_mut(dim) {
            let mut buf = vec![0.0; members];
            probability_flow_assimilate(
                row,
                &sch,
                n_steps,
                TimeGrid::LogSpaced,
                &prior_var,
                |z, t, out| {
                    reference.score_into(z, t, out, &mut buf);
                },
                &obs,
                &y,
            );
        }
        for (a, r) in zb.iter().zip(&zr) {
            assert!((a - r).abs() < 1e-10 * (1.0 + r.abs()), "{a} vs {r}");
        }
    }

    /// Tight observations must not blow up: the relaxation factor keeps the
    /// guidance bounded across twelve orders of magnitude of `σ_obs`.
    #[test]
    fn flow_stable_for_tight_observations() {
        let sch = DiffusionSchedule::default();
        let y = vec![2.0];
        for sigma_obs in [1e-6, 1e-3, 1.0, 1e3] {
            let obs = IdentityObs::new(1, sigma_obs);
            let mut z = vec![-5.0];
            probability_flow_assimilate(
                &mut z,
                &sch,
                5,
                TimeGrid::LogSpaced,
                &[1.0],
                |z, t, out| {
                    let a = sch.alpha(t);
                    let var = a * a + sch.beta_sq(t);
                    out[0] = -z[0] / var;
                },
                &obs,
                &y,
            );
            assert!(z[0].is_finite(), "blow-up at sigma_obs = {sigma_obs}");
            assert!(z[0].abs() < 10.0, "overshoot at sigma_obs = {sigma_obs}: {}", z[0]);
        }
    }

    /// A tight observation actually *pins* the flow endpoint on the
    /// observation (the guidance reaches the full Kalman gain at t → 0).
    #[test]
    fn tight_observation_pins_endpoint() {
        let sch = DiffusionSchedule::new(1e-4);
        let obs = IdentityObs::new(1, 1e-2);
        let y = vec![2.0];
        let mut rng = seeded(5);
        let n = 500;
        let mut mean = 0.0;
        for _ in 0..n {
            let mut z = vec![standard_normal(&mut rng)];
            probability_flow_assimilate(
                &mut z,
                &sch,
                10,
                TimeGrid::LogSpaced,
                &[1.0],
                |z, t, out| {
                    let a = sch.alpha(t);
                    let var = a * a + sch.beta_sq(t);
                    out[0] = -z[0] / var;
                },
                &obs,
                &y,
            );
            mean += z[0];
        }
        mean /= n as f64;
        assert!((mean - 2.0).abs() < 0.1, "tight-obs flow mean {mean} should sit on y = 2");
    }

    /// Step refinement converges *in distribution*: the posterior mean is
    /// exact at every step count (the DDIM map solves the linear flow in
    /// closed form), while the sample variance grows monotonically from
    /// the under-dispersed few-step regime toward the Kalman variance.
    #[test]
    fn step_refinement_converges_in_distribution() {
        let sch = DiffusionSchedule::new(1e-4);
        let sigma_obs = 0.7f64;
        let obs = IdentityObs::new(1, sigma_obs);
        let y = vec![0.8];
        let r = sigma_obs * sigma_obs;
        let want_mean = 1.0 / (1.0 + r) * y[0];
        let want_var = r / (1.0 + r);

        let moments = |steps: usize| {
            let mut rng = seeded(23);
            let n = 2000;
            let (mut sum, mut sum_sq) = (0.0, 0.0);
            for _ in 0..n {
                let mut z = vec![standard_normal(&mut rng)];
                probability_flow_assimilate(
                    &mut z,
                    &sch,
                    steps,
                    TimeGrid::LogSpaced,
                    &[1.0],
                    |z, t, out| {
                        let a = sch.alpha(t);
                        let var = a * a + sch.beta_sq(t);
                        out[0] = -z[0] / var;
                    },
                    &obs,
                    &y,
                );
                sum += z[0];
                sum_sq += z[0] * z[0];
            }
            let mean = sum / n as f64;
            (mean, sum_sq / n as f64 - mean * mean)
        };

        let counts = [1usize, 4, 16, 100];
        let mv: Vec<(f64, f64)> = counts.iter().map(|&n| moments(n)).collect();
        for (&steps, &(mean, _)) in counts.iter().zip(&mv) {
            assert!(
                (mean - want_mean).abs() < 0.06,
                "{steps}-step flow mean {mean} vs Kalman {want_mean}"
            );
        }
        for w in mv.windows(2) {
            assert!(w[0].1 <= w[1].1 + 0.02, "variance not monotone: {} then {}", w[0].1, w[1].1);
        }
        let (_, fine_var) = mv[counts.len() - 1];
        assert!((fine_var - want_var).abs() < 0.05, "100-step var {fine_var} vs {want_var}");
    }

    /// `batch_variance` matches `Ensemble::variance` on the full batch and
    /// restricts correctly to a sub-batch.
    #[test]
    fn batch_variance_matches_ensemble_variance() {
        let (members, dim) = (9, 4);
        let mut rng = seeded(17);
        let mut buf = vec![0.0; members * dim];
        fill_standard_normal(&mut rng, &mut buf);
        let full: Vec<usize> = (0..members).collect();
        let got = batch_variance(&buf, members, dim, &full);
        let members_vec: Vec<Vec<f64>> =
            buf.chunks_exact(dim).map(|r| r.to_vec()).collect();
        let ens = stats::Ensemble::from_members(&members_vec);
        for (a, b) in got.iter().zip(ens.variance()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        // Sub-batch: only the chosen members contribute.
        let sub = batch_variance(&buf, members, dim, &[0, 2, 5]);
        let sub_members: Vec<Vec<f64>> =
            [0usize, 2, 5].iter().map(|&m| members_vec[m].clone()).collect();
        let sub_ens = stats::Ensemble::from_members(&sub_members);
        for (a, b) in sub.iter().zip(sub_ens.variance()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        // Degenerate single-member batch: zero variance, no NaN.
        assert!(batch_variance(&buf, members, dim, &[3]).iter().all(|v| *v == 0.0)); // lint: allow(float-exact-compare, reason="degenerate batch must return exact zeros")
    }

    /// `smooth_variance` endpoints: γ = 0 is a bitwise no-op, γ = 1 makes
    /// the estimate uniform at the mean, and intermediate γ blends while
    /// preserving the mean.
    #[test]
    fn smooth_variance_blends_toward_the_mean() {
        let original = vec![1.0, 2.0, 3.0, 6.0];
        let mean = 3.0;

        let mut var = original.clone();
        smooth_variance(&mut var, 0.0);
        assert_eq!(var, original, "gamma=0 must be a no-op");

        let mut var = original.clone();
        smooth_variance(&mut var, 1.0);
        for v in &var {
            assert!((v - mean).abs() < 1e-12, "gamma=1 must be uniform at the mean, got {v}");
        }

        let mut var = original.clone();
        smooth_variance(&mut var, 0.5);
        for (v, o) in var.iter().zip(&original) {
            assert!((v - 0.5 * (o + mean)).abs() < 1e-12);
        }
        let blended_mean = var.iter().sum::<f64>() / var.len() as f64;
        assert!((blended_mean - mean).abs() < 1e-12, "shrinkage preserves the mean");

        // Empty slice: no panic.
        smooth_variance(&mut [], 1.0);
    }
}
