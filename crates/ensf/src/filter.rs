//! The Ensemble Score Filter analysis step.
//!
//! One `analyze` call implements the paper's update step (§III-A2):
//!
//! 1. estimate the prior score from the forecast ensemble (training-free
//!    Monte-Carlo, Eqs. 15–16);
//! 2. form the posterior score by adding the damped analytic likelihood
//!    score, `ŝ_post(z, t) = ŝ_prior(z, t) + h(t) ∇ log p(y | z)` (Eq. 17);
//! 3. draw `M` fresh `N(0, I)` samples and push each through the
//!    discretized reverse-time SDE (Eq. 7) with `ŝ_post`;
//! 4. optionally relax the analysis spread toward the forecast spread
//!    (the paper's stability safeguard in lieu of localization/inflation).
//!
//! Particles are independent given the (read-only) forecast ensemble, so
//! step 3 parallelizes embarrassingly — rayon here, simulated MPI ranks in
//! [`crate::parallel`].

use crate::obs::ObservationOperator;
use crate::schedule::DiffusionSchedule;
use crate::score::ScoreEstimator;
use crate::sde::{reverse_sde_assimilate, TimeGrid};
use rand::seq::SliceRandom;
use rayon::prelude::*;
use stats::gaussian::fill_standard_normal;
use stats::rng::{member_rng, seeded, split_seed};
use stats::Ensemble;

/// Which implementation evaluates the Monte-Carlo score inside the
/// reverse-SDE loop.
///
/// Both kernels are deterministic, partition-invariant and draw identical
/// noise streams; they differ only by floating-point reassociation (the
/// batched kernel computes distances via a GEMM norm expansion). `Batched`
/// is the default; `Reference` is kept as the per-particle oracle for
/// equivalence testing and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreKernel {
    /// Per-particle strided dot products ([`crate::ScoreEstimator`]).
    Reference,
    /// Step-major two-GEMM evaluation over particle blocks
    /// ([`crate::BatchedScore`]).
    #[default]
    Batched,
}

/// Which dynamics transport the `N(0, I)` start to the posterior.
///
/// Both methods share the diffusion schedule, the time grid, the
/// Monte-Carlo score machinery (either [`ScoreKernel`]) and the damped
/// likelihood relaxation; they differ only in the integrated equation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisMethod {
    /// Stochastic reverse-time SDE (Eq. 7), Euler–Maruyama over the full
    /// grid — the paper's formulation, accurate at ~50–100 steps.
    #[default]
    ReverseSde,
    /// Deterministic probability-flow ODE (flow matching, Transue et al.
    /// arXiv:2508.13313): same marginals, no Brownian noise, comparable
    /// accuracy at ~5–10 steps ([`crate::probability_flow_assimilate`]).
    FlowMatching,
}

/// EnSF configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsfConfig {
    /// Euler steps for the reverse-time SDE (pseudo-time resolution).
    pub n_steps: usize,
    /// Mini-batch size `J` for the Monte-Carlo score (Eq. 15);
    /// `None` uses the whole ensemble.
    pub minibatch: Option<usize>,
    /// Diffusion schedule (endpoint clamp).
    pub schedule: DiffusionSchedule,
    /// Base seed; each analysis cycle and member derives its own stream.
    pub seed: u64,
    /// Spread relaxation weight `r ∈ [0, 1]`: per-variable analysis std is
    /// blended as `(1 − r) σ_a + r σ_f`. The paper relaxes the analysis
    /// spread to the prior to guarantee long-term stability; `1.0`
    /// reproduces that choice.
    pub spread_relaxation: f64,
    /// Score kernel implementation (batched GEMM by default).
    pub kernel: ScoreKernel,
    /// Transport dynamics: stochastic reverse SDE (default) or the
    /// deterministic few-step probability-flow ODE.
    pub method: AnalysisMethod,
    /// Variance shrinkage weight `γ ∈ [0, 1]` for the flow-matching
    /// guidance: the per-component prior variance is blended as
    /// `(1 − γ) v_i + γ v̄` toward its spatial mean before integration.
    /// With `J` members the raw estimate carries `≈ √(2/(J−1))` relative
    /// noise that feeds straight into the Kalman gain; for statistically
    /// homogeneous fields the spatial mean is a far lower-noise estimate
    /// of the same quantity. Ignored by [`AnalysisMethod::ReverseSde`];
    /// `0.0` (default) keeps the raw per-component estimate.
    pub variance_smoothing: f64,
}

impl Default for EnsfConfig {
    fn default() -> Self {
        EnsfConfig {
            n_steps: 50,
            minibatch: None,
            schedule: DiffusionSchedule::default(),
            seed: 0,
            spread_relaxation: 1.0,
            kernel: ScoreKernel::default(),
            method: AnalysisMethod::default(),
            variance_smoothing: 0.0,
        }
    }
}

impl EnsfConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_steps == 0 {
            return Err("n_steps must be positive".into());
        }
        if let Some(j) = self.minibatch {
            if j == 0 {
                return Err("minibatch must be nonempty".into());
            }
        }
        if !(0.0..=1.0).contains(&self.spread_relaxation) {
            return Err(format!("spread_relaxation must be in [0,1], got {}", self.spread_relaxation));
        }
        if !(0.0..=1.0).contains(&self.variance_smoothing) {
            return Err(format!(
                "variance_smoothing must be in [0,1], got {}",
                self.variance_smoothing
            ));
        }
        Ok(())
    }
}

/// The Ensemble Score Filter.
#[derive(Debug, Clone)]
pub struct Ensf {
    config: EnsfConfig,
    /// Analysis cycle counter: decorrelates RNG streams across cycles.
    cycle: u64,
}

impl Ensf {
    /// Creates a filter with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: EnsfConfig) -> Self {
        config.validate().expect("invalid EnSF configuration");
        Ensf { config, cycle: 0 }
    }

    /// The active configuration.
    pub fn config(&self) -> &EnsfConfig {
        &self.config
    }

    /// The analysis-cycle counter (how many `analyze` calls have run).
    /// Together with the seed this pins every internal RNG stream, so
    /// checkpoint/restore can resume cycling bit-identically.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Restores the analysis-cycle counter (checkpoint resume).
    pub fn set_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// Replaces the base seed, giving all subsequent analyses fresh SDE
    /// noise streams — the retry path after a failed/diverged analysis.
    pub fn reseed(&mut self, seed: u64) {
        self.config.seed = seed;
    }

    /// Performs one analysis: combines the forecast ensemble with the
    /// observation `y` under `obs`, returning the analysis ensemble.
    pub fn analyze(
        &mut self,
        forecast: &Ensemble,
        y: &[f64],
        obs: &impl ObservationOperator,
    ) -> Ensemble {
        assert_eq!(y.len(), obs.obs_dim(), "observation length mismatch");
        let _span = telemetry::span!("ensf.analysis");
        let members = forecast.members();
        let dim = forecast.dim();
        let cycle_seed = split_seed(self.config.seed, self.cycle.wrapping_add(0x5151));
        self.cycle += 1;

        // Mini-batch selection for the score MC sum (shared by all particles
        // within a cycle, re-drawn each cycle).
        let batch: Vec<usize> = match self.config.minibatch {
            Some(j) if j < members => {
                let mut idx: Vec<usize> = (0..members).collect();
                let mut rng = seeded(split_seed(cycle_seed, 0xBA7C4));
                idx.shuffle(&mut rng);
                idx.truncate(j);
                idx
            }
            _ => (0..members).collect(),
        };

        // Each particle: fresh Gaussian start, reverse SDE with posterior
        // score = prior score + damped likelihood score. The two kernels
        // agree to floating-point reassociation; both derive per-particle
        // RNG streams from the global member index.
        let mut analysis = match self.config.kernel {
            ScoreKernel::Batched => {
                // One block per available worker; the kernel's fixed-order
                // reductions make the result bitwise independent of the
                // block layout, so this is purely a load-balancing choice.
                let workers = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .clamp(1, members.max(1));
                let plan = crate::parallel::RankPlan::new(members, workers);
                crate::batch::analyze_blocks(
                    &self.config,
                    cycle_seed,
                    &plan.blocks,
                    forecast,
                    y,
                    obs,
                    &batch,
                )
            }
            ScoreKernel::Reference => {
                let estimator = ScoreEstimator::new(
                    forecast.as_slice(),
                    members,
                    dim,
                    self.config.schedule,
                )
                .with_batch(batch);

                let schedule = self.config.schedule;
                let n_steps = self.config.n_steps;
                let method = self.config.method;
                let prior_var = match method {
                    AnalysisMethod::FlowMatching => {
                        let mut var = crate::flow::batch_variance(
                            forecast.as_slice(),
                            members,
                            dim,
                            estimator.batch(),
                        );
                        crate::flow::smooth_variance(&mut var, self.config.variance_smoothing);
                        var
                    }
                    AnalysisMethod::ReverseSde => Vec::new(),
                };
                let mut analysis = Ensemble::zeros(members, dim);
                analysis
                    .as_mut_slice()
                    .par_chunks_mut(dim)
                    .enumerate()
                    .for_each(|(m, out)| {
                        let mut rng = member_rng(cycle_seed, m);
                        fill_standard_normal(&mut rng, out);
                        let mut scratch = vec![0.0; estimator.batch_len()];
                        match method {
                            AnalysisMethod::ReverseSde => reverse_sde_assimilate(
                                out,
                                &schedule,
                                n_steps,
                                TimeGrid::LogSpaced,
                                |z, t, s| {
                                    estimator.score_into(z, t, s, &mut scratch);
                                },
                                obs,
                                y,
                                &mut rng,
                            ),
                            AnalysisMethod::FlowMatching => {
                                crate::flow::probability_flow_assimilate(
                                    out,
                                    &schedule,
                                    n_steps,
                                    TimeGrid::LogSpaced,
                                    &prior_var,
                                    |z, t, s| {
                                        estimator.score_into(z, t, s, &mut scratch);
                                    },
                                    obs,
                                    y,
                                )
                            }
                        }
                    });
                analysis
            }
        };

        if self.config.spread_relaxation > 0.0 {
            relax_spread(&mut analysis, forecast, self.config.spread_relaxation);
        }
        if telemetry::enabled() {
            telemetry::counter_add("ensf.analyses", 1);
            telemetry::gauge_set("ensf.analysis.spread", analysis.spread());
            // Obs-space O−A residual moments: a quick filter-health pulse
            // without the full diagnostics pipeline. Partial-observation
            // operators shrink `y` below the state dimension; the residual
            // is then taken against `h(mean)` so only observed components
            // are compared (the dense path keeps its raw-mean comparison
            // bit-for-bit).
            let mean = analysis.mean();
            let (oa_mean, oa_var) = if y.len() == mean.len() {
                stats::diagnostics::residual_moments(&mean, y)
            } else {
                let mut hx = vec![0.0; obs.obs_dim()];
                obs.apply(&mean, &mut hx);
                stats::diagnostics::residual_moments(&hx, y)
            };
            telemetry::gauge_set("ensf.analysis.oa_mean", oa_mean);
            telemetry::gauge_set("ensf.analysis.oa_var", oa_var);
        }
        analysis
    }
}

/// Relaxes the per-variable analysis spread toward the forecast spread:
/// anomalies are rescaled so `σ_new = (1 − r) σ_a + r σ_f`. Shared with
/// [`crate::parallel::analyze_partitioned`] and the distributed runtime's
/// state-sharded analysis (the statistics are per-variable, so applying it
/// to a contiguous state block equals applying it to the full state).
///
/// When a variable's analysis spread has (numerically) collapsed — tight
/// observations can pull every member onto the observation to the last bit,
/// leaving `σ_a` at rounding level — rescaling would amplify arbitrary
/// round-off by `σ_f/σ_a` (or silently keep the collapse when `σ_a` is
/// exactly zero). Such degenerate variables instead adopt the *forecast*
/// anomalies scaled by `r`, which realizes the intended `σ_new ≈ r σ_f`
/// deterministically and independently of which score kernel produced the
/// (bit-level) collapse pattern.
pub fn relax_spread(analysis: &mut Ensemble, forecast: &Ensemble, r: f64) {
    /// `σ_a` below this fraction of `σ_f` is treated as fully collapsed.
    const DEGENERATE: f64 = 1e-8;
    let dim = analysis.dim();
    let var_a = analysis.variance();
    let var_f = forecast.variance();
    let mean = analysis.mean();
    let fmean = forecast.mean();
    let mut scale = vec![1.0; dim];
    let mut degenerate = vec![false; dim];
    for i in 0..dim {
        let sa = var_a[i].sqrt();
        let sf = var_f[i].sqrt();
        if sa > DEGENERATE * sf && sa > 1e-300 {
            scale[i] = ((1.0 - r) * sa + r * sf) / sa;
        } else if sf > 1e-300 {
            degenerate[i] = true;
        }
    }
    for m in 0..analysis.members() {
        let fx = forecast.member(m);
        let member = analysis.member_mut(m);
        for (i, x) in member.iter_mut().enumerate() {
            *x = if degenerate[i] {
                mean[i] + r * (fx[i] - fmean[i])
            } else {
                mean[i] + (*x - mean[i]) * scale[i]
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{ArctanObs, IdentityObs};
    use stats::gaussian::standard_normal;
    use stats::rng::seeded;

    fn gaussian_ensemble(members: usize, dim: usize, mean: f64, sd: f64, seed: u64) -> Ensemble {
        let mut rng = seeded(seed);
        let mut e = Ensemble::zeros(members, dim);
        for m in 0..members {
            for x in e.member_mut(m) {
                *x = mean + sd * standard_normal(&mut rng);
            }
        }
        e
    }

    #[test]
    fn analysis_moves_toward_observation() {
        // Forecast centered at 0, obs at 2 with tight error: analysis mean
        // should move decisively toward the observation.
        let fc = gaussian_ensemble(40, 4, 0.0, 1.0, 1);
        let obs = IdentityObs::new(4, 0.3);
        let y = vec![2.0; 4];
        let mut filter = Ensf::new(EnsfConfig { seed: 7, ..Default::default() });
        let an = filter.analyze(&fc, &y, &obs);
        let mean = an.mean();
        let avg = mean.iter().sum::<f64>() / mean.len() as f64;
        assert!(avg > 0.5, "analysis mean {avg} did not move toward obs");
        assert!(avg < 2.4, "analysis mean {avg} overshot");
        for mu in &mean {
            assert!(*mu > -0.5 && *mu < 2.8, "component ran away: {mu}");
        }
    }

    #[test]
    fn loose_observation_changes_little() {
        let fc = gaussian_ensemble(40, 4, 0.0, 0.5, 2);
        let obs = IdentityObs::new(4, 100.0); // essentially uninformative
        let y = vec![5.0; 4];
        let mut filter = Ensf::new(EnsfConfig { seed: 3, ..Default::default() });
        let an = filter.analyze(&fc, &y, &obs);
        for mu in &an.mean() {
            assert!(mu.abs() < 0.6, "uninformative obs should not move mean much: {mu}");
        }
    }

    #[test]
    fn spread_relaxation_restores_forecast_spread() {
        let fc = gaussian_ensemble(30, 6, 0.0, 1.0, 4);
        let obs = IdentityObs::new(6, 0.1);
        let y = vec![0.5; 6];
        let mut with = Ensf::new(EnsfConfig { seed: 5, spread_relaxation: 1.0, ..Default::default() });
        let mut without =
            Ensf::new(EnsfConfig { seed: 5, spread_relaxation: 0.0, ..Default::default() });
        let an_with = with.analyze(&fc, &y, &obs);
        let an_without = without.analyze(&fc, &y, &obs);
        // Full relaxation pins the per-variable spread at the forecast's.
        let vf = fc.variance();
        let vw = an_with.variance();
        for (a, b) in vw.iter().zip(&vf) {
            assert!((a.sqrt() - b.sqrt()).abs() < 1e-9, "{a} vs {b}");
        }
        // A tight observation should otherwise shrink the spread.
        assert!(an_without.spread() < an_with.spread());
    }

    #[test]
    fn deterministic_given_seed_and_cycle() {
        let fc = gaussian_ensemble(16, 3, 1.0, 0.5, 6);
        let obs = IdentityObs::new(3, 0.5);
        let y = vec![1.5; 3];
        let run = || {
            let mut f = Ensf::new(EnsfConfig { seed: 42, ..Default::default() });
            f.analyze(&fc, &y, &obs)
        };
        let a = run();
        let b = run();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn consecutive_cycles_use_fresh_noise() {
        let fc = gaussian_ensemble(16, 3, 1.0, 0.5, 6);
        let obs = IdentityObs::new(3, 0.5);
        let y = vec![1.5; 3];
        let mut f = Ensf::new(EnsfConfig { seed: 42, ..Default::default() });
        let a = f.analyze(&fc, &y, &obs);
        let b = f.analyze(&fc, &y, &obs);
        assert_ne!(a.as_slice(), b.as_slice(), "cycles must not reuse RNG streams");
    }

    #[test]
    fn minibatch_analysis_still_tracks_observation() {
        let fc = gaussian_ensemble(40, 4, 0.0, 1.0, 8);
        let obs = IdentityObs::new(4, 0.3);
        let y = vec![1.5; 4];
        let mut f = Ensf::new(EnsfConfig { seed: 1, minibatch: Some(10), ..Default::default() });
        let an = f.analyze(&fc, &y, &obs);
        let mean = an.mean();
        let avg = mean.iter().sum::<f64>() / mean.len() as f64;
        assert!(avg > 0.3, "minibatch analysis mean {avg}");
    }

    #[test]
    fn nonlinear_observation_supported() {
        // Truth at x=1.2 observed through arctan; forecast centered at 0.
        let fc = gaussian_ensemble(60, 2, 0.0, 1.0, 9);
        let obs = ArctanObs::new(2, 0.05);
        let truth = [1.2, 1.2];
        let mut y = vec![0.0; 2];
        obs.apply(&truth, &mut y);
        let mut f = Ensf::new(EnsfConfig { seed: 10, ..Default::default() });
        let an = f.analyze(&fc, &y, &obs);
        for mu in &an.mean() {
            assert!((mu - 1.2).abs() < 0.7, "nonlinear obs analysis mean {mu}");
        }
    }

    #[test]
    fn analysis_is_finite_in_high_dim() {
        let fc = gaussian_ensemble(20, 2048, 0.0, 1.0, 11);
        let obs = IdentityObs::new(2048, 1.0);
        let y = vec![0.3; 2048];
        let mut f = Ensf::new(EnsfConfig { seed: 2, n_steps: 20, ..Default::default() });
        let an = f.analyze(&fc, &y, &obs);
        assert!(an.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn reseed_changes_noise_and_cycle_restores_streams() {
        let fc = gaussian_ensemble(16, 3, 1.0, 0.5, 6);
        let obs = IdentityObs::new(3, 0.5);
        let y = vec![1.5; 3];
        let mut a = Ensf::new(EnsfConfig { seed: 42, ..Default::default() });
        let mut b = Ensf::new(EnsfConfig { seed: 42, ..Default::default() });
        b.reseed(99);
        assert_ne!(
            a.analyze(&fc, &y, &obs).as_slice(),
            b.analyze(&fc, &y, &obs).as_slice(),
            "reseed must change the SDE noise"
        );
        // Restoring (seed, cycle) reproduces the stream bit-identically.
        assert_eq!(a.cycle(), 1);
        let next = a.analyze(&fc, &y, &obs);
        let mut resumed = Ensf::new(EnsfConfig { seed: 42, ..Default::default() });
        resumed.set_cycle(1);
        assert_eq!(resumed.analyze(&fc, &y, &obs).as_slice(), next.as_slice());
    }

    #[test]
    #[should_panic]
    fn wrong_obs_length_panics() {
        let fc = gaussian_ensemble(8, 3, 0.0, 1.0, 1);
        let obs = IdentityObs::new(3, 1.0);
        let mut f = Ensf::new(EnsfConfig::default());
        let _ = f.analyze(&fc, &[0.0; 2], &obs);
    }

    #[test]
    fn config_validation() {
        assert!(EnsfConfig { n_steps: 0, ..Default::default() }.validate().is_err());
        assert!(EnsfConfig { minibatch: Some(0), ..Default::default() }.validate().is_err());
        assert!(
            EnsfConfig { spread_relaxation: 1.5, ..Default::default() }.validate().is_err()
        );
        assert!(
            EnsfConfig { variance_smoothing: -0.1, ..Default::default() }.validate().is_err()
        );
        assert!(
            EnsfConfig { variance_smoothing: 1.5, ..Default::default() }.validate().is_err()
        );
        assert!(
            EnsfConfig { variance_smoothing: 1.0, ..Default::default() }.validate().is_ok()
        );
        assert!(EnsfConfig::default().validate().is_ok());
    }
}
