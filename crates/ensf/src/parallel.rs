//! Rank-decomposed EnSF execution (the paper's §III-A3 / Fig. 10 layout).
//!
//! On Frontier the EnSF is parallelized "along the dimension of the
//! ensemble": every rank owns a contiguous block of particles, shares the
//! (small) forecast ensemble read-only, integrates its block independently
//! and the outputs are reduced at the end. This module reproduces that
//! decomposition explicitly — [`RankPlan`] computes the block layout and
//! [`analyze_partitioned`] executes the blocks (concurrently under rayon),
//! asserting that the result is bitwise identical to the single-rank filter
//! because every particle derives its RNG stream from its *global* index.

use crate::filter::{Ensf, EnsfConfig, ScoreKernel};
use crate::obs::ObservationOperator;
use crate::score::ScoreEstimator;
use crate::sde::{reverse_sde_assimilate, TimeGrid};
use rayon::prelude::*;
use stats::gaussian::fill_standard_normal;
use stats::rng::{member_rng, split_seed};
use stats::Ensemble;

/// Static block decomposition of `members` particles over `ranks` ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct RankPlan {
    /// Number of ranks.
    pub ranks: usize,
    /// Half-open particle ranges per rank.
    pub blocks: Vec<(usize, usize)>,
}

impl RankPlan {
    /// Splits `members` particles as evenly as possible over `ranks`.
    ///
    /// # Panics
    /// Panics if `ranks == 0`.
    pub fn new(members: usize, ranks: usize) -> Self {
        assert!(ranks > 0, "need at least one rank");
        let base = members / ranks;
        let extra = members % ranks;
        let mut blocks = Vec::with_capacity(ranks);
        let mut start = 0;
        for r in 0..ranks {
            let len = base + usize::from(r < extra);
            blocks.push((start, start + len));
            start += len;
        }
        RankPlan { ranks, blocks }
    }

    /// Largest block size (load-balance bound).
    pub fn max_block(&self) -> usize {
        self.blocks.iter().map(|(a, b)| b - a).max().unwrap_or(0)
    }
}

/// Runs one EnSF analysis with the ensemble partitioned into rank blocks.
///
/// Functionally identical to [`Ensf::analyze`] with no mini-batching; used
/// by the weak-scaling benchmark (Fig. 10) where each rank's wall time is
/// measured independently.
///
/// # Panics
/// Panics when `config` fails validation, `y` does not match the operator's
/// observation dimension, or `plan` does not cover the ensemble.
pub fn analyze_partitioned(
    config: &EnsfConfig,
    cycle: u64,
    plan: &RankPlan,
    forecast: &Ensemble,
    y: &[f64],
    obs: &impl ObservationOperator,
) -> Ensemble {
    config.validate().expect("invalid EnSF configuration");
    let members = forecast.members();
    let dim = forecast.dim();
    assert_eq!(y.len(), obs.obs_dim());
    assert_eq!(
        plan.blocks.last().map(|b| b.1),
        Some(members),
        "plan does not cover the ensemble"
    );

    let cycle_seed = split_seed(config.seed, cycle.wrapping_add(0x5151));

    let mut analysis = match config.kernel {
        ScoreKernel::Batched => {
            // The batched kernel's per-particle outputs are bitwise
            // independent of the block layout (see `linalg::matmul_abt_into`),
            // so handing the plan's blocks straight to the shared block
            // driver reproduces the single-rank filter exactly.
            let batch: Vec<usize> = (0..members).collect();
            crate::batch::analyze_blocks(config, cycle_seed, &plan.blocks, forecast, y, obs, &batch)
        }
        ScoreKernel::Reference => {
            let estimator =
                ScoreEstimator::new(forecast.as_slice(), members, dim, config.schedule);
            let schedule = config.schedule;
            let n_steps = config.n_steps;
            let method = config.method;
            let prior_var = match method {
                crate::AnalysisMethod::FlowMatching => {
                    let full: Vec<usize> = (0..members).collect();
                    let mut var =
                        crate::flow::batch_variance(forecast.as_slice(), members, dim, &full);
                    crate::flow::smooth_variance(&mut var, config.variance_smoothing);
                    var
                }
                crate::AnalysisMethod::ReverseSde => Vec::new(),
            };

            let mut analysis = Ensemble::zeros(members, dim);

            // One task per rank block; inside a block, particles run
            // sequentially, exactly as a single MPI rank would execute them.
            let block_results: Vec<(usize, Vec<f64>)> = plan
                .blocks
                .par_iter()
                .map(|&(start, end)| {
                    let mut block = vec![0.0; (end - start) * dim];
                    let mut scratch = vec![0.0; estimator.batch_len()];
                    for (local, m) in (start..end).enumerate() {
                        let out = &mut block[local * dim..(local + 1) * dim];
                        let mut rng = member_rng(cycle_seed, m);
                        fill_standard_normal(&mut rng, out);
                        match method {
                            crate::AnalysisMethod::ReverseSde => reverse_sde_assimilate(
                                out,
                                &schedule,
                                n_steps,
                                TimeGrid::LogSpaced,
                                |z, t, s| {
                                    estimator.score_into(z, t, s, &mut scratch);
                                },
                                obs,
                                y,
                                &mut rng,
                            ),
                            crate::AnalysisMethod::FlowMatching => {
                                crate::flow::probability_flow_assimilate(
                                    out,
                                    &schedule,
                                    n_steps,
                                    TimeGrid::LogSpaced,
                                    &prior_var,
                                    |z, t, s| {
                                        estimator.score_into(z, t, s, &mut scratch);
                                    },
                                    obs,
                                    y,
                                )
                            }
                        }
                    }
                    (start, block)
                })
                .collect();

            // "MPI reduce": gather rank blocks into the global analysis.
            for (start, block) in block_results {
                let nb = block.len() / dim;
                for local in 0..nb {
                    analysis
                        .member_mut(start + local)
                        .copy_from_slice(&block[local * dim..(local + 1) * dim]);
                }
            }
            analysis
        }
    };

    if config.spread_relaxation > 0.0 {
        crate::filter::relax_spread(&mut analysis, forecast, config.spread_relaxation);
    }
    analysis
}

/// Convenience: sequential reference via [`Ensf`] for equivalence tests.
pub fn analyze_reference(
    config: &EnsfConfig,
    forecast: &Ensemble,
    y: &[f64],
    obs: &impl ObservationOperator,
) -> Ensemble {
    let mut f = Ensf::new(config.clone());
    f.analyze(forecast, y, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::IdentityObs;
    use stats::gaussian::standard_normal;
    use stats::rng::seeded;

    fn ens(members: usize, dim: usize, seed: u64) -> Ensemble {
        let mut rng = seeded(seed);
        let mut e = Ensemble::zeros(members, dim);
        for m in 0..members {
            for x in e.member_mut(m) {
                *x = standard_normal(&mut rng);
            }
        }
        e
    }

    #[test]
    fn plan_covers_and_balances() {
        let p = RankPlan::new(20, 6);
        assert_eq!(p.blocks.len(), 6);
        assert_eq!(p.blocks[0].0, 0);
        assert_eq!(p.blocks.last().unwrap().1, 20);
        for w in p.blocks.windows(2) {
            assert_eq!(w[0].1, w[1].0, "blocks must tile contiguously");
        }
        assert!(p.max_block() <= 20 / 6 + 1);
    }

    #[test]
    fn plan_more_ranks_than_members() {
        let p = RankPlan::new(3, 8);
        assert_eq!(p.blocks.last().unwrap().1, 3);
        let total: usize = p.blocks.iter().map(|(a, b)| b - a).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn partitioned_matches_reference_bitwise() {
        let fc = ens(12, 16, 3);
        let obs = IdentityObs::new(16, 0.5);
        let y = vec![0.4; 16];
        let config = EnsfConfig { seed: 21, n_steps: 25, ..Default::default() };
        let reference = analyze_reference(&config, &fc, &y, &obs);
        for ranks in [1, 2, 3, 5, 12] {
            let plan = RankPlan::new(12, ranks);
            let got = analyze_partitioned(&config, 0, &plan, &fc, &y, &obs);
            assert_eq!(
                got.as_slice(),
                reference.as_slice(),
                "rank decomposition changed results at {ranks} ranks"
            );
        }
    }

    #[test]
    fn different_cycles_differ() {
        let fc = ens(8, 8, 5);
        let obs = IdentityObs::new(8, 0.5);
        let y = vec![0.0; 8];
        let config = EnsfConfig { seed: 9, n_steps: 10, ..Default::default() };
        let plan = RankPlan::new(8, 2);
        let a = analyze_partitioned(&config, 0, &plan, &fc, &y, &obs);
        let b = analyze_partitioned(&config, 1, &plan, &fc, &y, &obs);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic]
    fn zero_ranks_rejected() {
        let _ = RankPlan::new(4, 0);
    }
}
