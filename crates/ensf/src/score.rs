//! Training-free Monte-Carlo estimation of the prior score (Eqs. 12–16).
//!
//! For the schedule's conditional `Q(z_t | z_0) = N(α_t z_0, β_t² I)` and a
//! forecast ensemble `{x_j}`, the marginal score at `(z, t)` is the
//! weight-averaged conditional score
//!
//! ```text
//! ŝ(z, t) = Σ_j −(z − α_t x_j)/β_t² · ŵ_j,
//! ŵ_j ∝ exp(−‖z − α_t x_j‖² / 2β_t²),  Σ_j ŵ_j = 1,
//! ```
//!
//! i.e. a softmax over (scaled) squared distances, evaluated with the
//! log-sum-exp trick — in 8192 dimensions the raw exponents are O(−10⁴) and
//! would underflow to a 0/0 without it.

use crate::schedule::DiffusionSchedule;

/// Estimator of the prior score from a fixed forecast ensemble.
///
/// Borrows the (member-major) forecast ensemble; one estimator is shared
/// read-only across all reverse-SDE particles, which is what makes the
/// filter embarrassingly parallel over particles.
pub struct ScoreEstimator<'a> {
    ensemble: &'a [f64],
    members: usize,
    dim: usize,
    schedule: DiffusionSchedule,
    /// Indices of the mini-batch used in the MC sums (Eq. 15's `m_j`).
    batch: Vec<usize>,
}

impl<'a> ScoreEstimator<'a> {
    /// Creates an estimator over `members` vectors of length `dim` stored
    /// member-major in `ensemble`, using all members in the Monte-Carlo sum.
    pub fn new(
        ensemble: &'a [f64],
        members: usize,
        dim: usize,
        schedule: DiffusionSchedule,
    ) -> Self {
        assert_eq!(ensemble.len(), members * dim, "ensemble buffer shape mismatch");
        assert!(members >= 1, "need at least one member");
        ScoreEstimator { ensemble, members, dim, schedule, batch: (0..members).collect() }
    }

    /// Restricts the Monte-Carlo sum to the mini-batch `indices` (Eq. 15).
    ///
    /// # Panics
    /// Panics if any index is out of range or the batch is empty.
    pub fn with_batch(mut self, indices: Vec<usize>) -> Self {
        assert!(!indices.is_empty(), "mini-batch must be nonempty");
        assert!(indices.iter().all(|&i| i < self.members), "batch index out of range");
        self.batch = indices;
        self
    }

    /// Number of members in the Monte-Carlo batch.
    pub fn batch_len(&self) -> usize {
        self.batch.len()
    }

    /// Indices of the Monte-Carlo batch (in summation order).
    pub fn batch(&self) -> &[usize] {
        &self.batch
    }

    /// Evaluates the estimated prior score at `(z, t)`, writing into `out`,
    /// and returns the batch log-normalizer (useful for diagnostics).
    ///
    /// `scratch` must have length `batch_len()` and is overwritten with the
    /// final weights.
    pub fn score_into(&self, z: &[f64], t: f64, out: &mut [f64], scratch: &mut [f64]) -> f64 {
        assert_eq!(z.len(), self.dim);
        assert_eq!(out.len(), self.dim);
        assert_eq!(scratch.len(), self.batch.len());
        let timer = telemetry::enabled().then(std::time::Instant::now); // lint: allow(nondeterministic-api, reason="telemetry wall-clock timing; never feeds the numerics")

        let alpha = self.schedule.alpha(t);
        let beta_sq = self.schedule.beta_sq(t);
        let inv_2b2 = 0.5 / beta_sq;

        // Log-weights: −‖z − α x_j‖² / 2β².
        let mut max_lw = f64::NEG_INFINITY;
        for (slot, &j) in scratch.iter_mut().zip(&self.batch) {
            let xj = &self.ensemble[j * self.dim..(j + 1) * self.dim];
            let mut d2 = 0.0;
            for (zi, xi) in z.iter().zip(xj) {
                let d = zi - alpha * xi;
                d2 += d * d;
            }
            let lw = -d2 * inv_2b2;
            *slot = lw;
            if lw > max_lw {
                max_lw = lw;
            }
        }

        // Softmax with log-sum-exp.
        let mut total = 0.0;
        for w in scratch.iter_mut() {
            *w = (*w - max_lw).exp();
            total += *w;
        }
        let inv_total = 1.0 / total;

        // Weighted conditional scores: −(z − α x_j)/β².
        out.fill(0.0);
        let inv_b2 = 1.0 / beta_sq;
        for (w, &j) in scratch.iter().zip(&self.batch) {
            let wj = w * inv_total;
            if wj == 0.0 { // lint: allow(float-exact-compare, reason="exact-zero softmax weight skip is a bitwise no-op")
                continue;
            }
            let xj = &self.ensemble[j * self.dim..(j + 1) * self.dim];
            for ((o, zi), xi) in out.iter_mut().zip(z).zip(xj) {
                *o -= wj * (zi - alpha * xi) * inv_b2;
            }
        }
        if let Some(t0) = timer {
            telemetry::histogram_record("ensf.score.secs", t0.elapsed().as_secs_f64()); // lint: allow(nondeterministic-api, reason="telemetry wall-clock timing; never feeds the numerics")
        }
        max_lw + total.ln()
    }

    /// Convenience wrapper allocating the output.
    pub fn score(&self, z: &[f64], t: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        let mut scratch = vec![0.0; self.batch.len()];
        self.score_into(z, t, &mut out, &mut scratch);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// For a single-member "ensemble" the marginal is the conditional:
    /// score(z) = −(z − α x)/β², exactly.
    #[test]
    fn single_member_score_is_analytic() {
        let x = vec![1.0, -2.0, 0.5];
        let sch = DiffusionSchedule::default();
        let est = ScoreEstimator::new(&x, 1, 3, sch);
        let z = vec![0.0, 0.0, 0.0];
        let t = 0.4;
        let got = est.score(&z, t);
        let a = sch.alpha(t);
        let b2 = sch.beta_sq(t);
        for i in 0..3 {
            let want = -(z[i] - a * x[i]) / b2;
            assert!((got[i] - want).abs() < 1e-12);
        }
    }

    /// For a Gaussian ensemble the estimated score should roughly match the
    /// analytic Gaussian score of the diffused marginal
    /// N(α μ, α²σ² + β²): s(z) = −(z − αμ)/(α²σ² + β²).
    #[test]
    fn gaussian_ensemble_score_approximates_analytic() {
        use rand::Rng;
        let mut rng = stats::rng::seeded(5);
        let members = 4000;
        let dim = 1;
        let mu = 2.0;
        let sd = 0.5;
        let ens: Vec<f64> = (0..members)
            .map(|_| mu + sd * stats::gaussian::standard_normal(&mut rng))
            .collect();
        let sch = DiffusionSchedule::default();
        let est = ScoreEstimator::new(&ens, members, dim, sch);
        let t = 0.5;
        let a = sch.alpha(t);
        let b2 = sch.beta_sq(t);
        let var = a * a * sd * sd + b2;
        for _ in 0..20 {
            let z = a * mu + var.sqrt() * (rng.random::<f64>() * 2.0 - 1.0);
            let got = est.score(&[z], t)[0];
            let want = -(z - a * mu) / var;
            assert!(
                (got - want).abs() < 0.15 * (1.0 + want.abs()),
                "z={z}: got {got}, want {want}"
            );
        }
    }

    /// The score must point toward the data: moving z slightly along the
    /// score increases the (empirical) marginal log-density.
    #[test]
    fn score_points_uphill() {
        let ens = vec![1.0, 1.2, 0.8, 1.1, 0.9];
        let sch = DiffusionSchedule::default();
        let est = ScoreEstimator::new(&ens, 5, 1, sch);
        let t = 0.3;
        // z below the data cloud: score should be positive (push up).
        assert!(est.score(&[-1.0], t)[0] > 0.0);
        // z above: negative.
        assert!(est.score(&[3.0], t)[0] < 0.0);
    }

    /// No NaN/underflow in high dimension where raw weights are ~exp(−1e4).
    #[test]
    fn high_dimension_is_stable() {
        let dim = 4096;
        let members = 8;
        let mut ens = vec![0.0; members * dim];
        for (i, e) in ens.iter_mut().enumerate() {
            *e = ((i % 97) as f64 - 48.0) / 10.0;
        }
        let sch = DiffusionSchedule::default();
        let est = ScoreEstimator::new(&ens, members, dim, sch);
        let z = vec![0.1; dim];
        let s = est.score(&z, 0.01);
        assert!(s.iter().all(|v| v.is_finite()), "score must stay finite");
        let mag: f64 = s.iter().map(|v| v.abs()).sum();
        assert!(mag > 0.0);
    }

    /// Weights collapse onto the nearest member as t → 0: score matches the
    /// nearest member's conditional score.
    #[test]
    fn small_t_selects_nearest_member() {
        let ens = vec![0.0, 10.0]; // two 1-D members
        let sch = DiffusionSchedule::new(1e-6);
        let est = ScoreEstimator::new(&ens, 2, 1, sch);
        let t = 1e-5;
        let z = 0.3; // near member 0
        let got = est.score(&[z], t)[0];
        let a = sch.alpha(t);
        let b2 = sch.beta_sq(t);
        let want = -(z - a * 0.0) / b2;
        assert!((got - want).abs() < 1e-6 * want.abs().max(1.0));
    }

    #[test]
    fn minibatch_restricts_support() {
        let ens = vec![0.0, 100.0, 0.1, 99.9];
        let sch = DiffusionSchedule::default();
        // Batch only the members near 0.
        let est = ScoreEstimator::new(&ens, 4, 1, sch).with_batch(vec![0, 2]);
        assert_eq!(est.batch_len(), 2);
        // At z near 100 the batch still pulls toward ~0.
        let s = est.score(&[100.0], 0.5)[0];
        assert!(s < 0.0, "batched score must pull toward batch members");
    }

    #[test]
    #[should_panic]
    fn empty_batch_rejected() {
        let ens = vec![1.0];
        let _ =
            ScoreEstimator::new(&ens, 1, 1, DiffusionSchedule::default()).with_batch(vec![]);
    }
}
