//! Diffusion schedule (Eq. 9 of the paper).
//!
//! Following Song et al., the forward SDE uses `α_t = 1 − t`, `β_t = √t` on
//! the pseudo-time interval `[0, 1]`, giving the conditional
//! `Q(z_t | z_0) = N(α_t z_0, β_t² I)`: any initial distribution is
//! transported to `N(0, I)` at `t = 1`. The drift and diffusion of the SDE
//! follow from the schedule:
//!
//! ```text
//! b(t)  = d log α_t / dt  = −1 / (1 − t)
//! σ²(t) = dβ_t²/dt − 2 b(t) β_t² = 1 + 2 t / (1 − t)
//! ```
//!
//! Both are singular at `t = 1`, so evaluation is clamped to
//! `[eps, 1 − eps]` — the standard practice in score-based samplers.

/// Likelihood damping profile `h(t)` (Eq. 11). The paper uses the linear
/// `h(t) = T − t` and notes that "other options are also possible and will
/// be explored in future work" — the variants here implement that
/// exploration (all satisfy `h(0) = 1`, `h(1) = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Damping {
    /// `h(t) = 1 − t` (the paper's choice).
    #[default]
    Linear,
    /// `h(t) = (1 − t)²`: concentrates the observation pull late in the
    /// reverse integration (near the data manifold).
    Quadratic,
    /// `h(t) = √(1 − t)`: spreads the pull earlier.
    Sqrt,
    /// `h(t) = (1 + cos(π t)) / 2`: smooth at both endpoints.
    Cosine,
}

impl Damping {
    /// Evaluates the profile at (already clamped) pseudo-time `t`.
    #[inline]
    pub fn eval(self, t: f64) -> f64 {
        match self {
            Damping::Linear => 1.0 - t,
            Damping::Quadratic => (1.0 - t) * (1.0 - t),
            Damping::Sqrt => (1.0 - t).sqrt(),
            Damping::Cosine => 0.5 * (1.0 + (std::f64::consts::PI * t).cos()),
        }
    }
}

/// The (α, β) diffusion schedule with endpoint clamping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffusionSchedule {
    /// Endpoint clamp: pseudo-times are restricted to `[eps, 1 − eps]`.
    pub eps: f64,
    /// Likelihood damping profile `h(t)`.
    pub damping_profile: Damping,
}

impl Default for DiffusionSchedule {
    fn default() -> Self {
        DiffusionSchedule { eps: 1e-3, damping_profile: Damping::Linear }
    }
}

impl DiffusionSchedule {
    /// Creates a schedule with the given endpoint clamp.
    ///
    /// # Panics
    /// Panics unless `0 < eps < 0.5`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 0.5), got {eps}");
        DiffusionSchedule { eps, damping_profile: Damping::Linear }
    }

    /// Same schedule with a different damping profile.
    pub fn with_damping(mut self, profile: Damping) -> Self {
        self.damping_profile = profile;
        self
    }

    /// Clamps a pseudo-time into the valid interval.
    #[inline]
    pub fn clamp(&self, t: f64) -> f64 {
        t.clamp(self.eps, 1.0 - self.eps)
    }

    /// `α_t = 1 − t`.
    #[inline]
    pub fn alpha(&self, t: f64) -> f64 {
        1.0 - self.clamp(t)
    }

    /// `β_t² = t`.
    #[inline]
    pub fn beta_sq(&self, t: f64) -> f64 {
        self.clamp(t)
    }

    /// `β_t = √t`.
    #[inline]
    pub fn beta(&self, t: f64) -> f64 {
        self.beta_sq(t).sqrt()
    }

    /// Drift coefficient `b(t) = d log α_t / dt = −1/(1 − t)`.
    #[inline]
    pub fn drift(&self, t: f64) -> f64 {
        -1.0 / (1.0 - self.clamp(t))
    }

    /// Squared diffusion coefficient
    /// `σ²(t) = dβ²/dt − 2 b(t) β² = 1 + 2t/(1 − t)`.
    #[inline]
    pub fn sigma_sq(&self, t: f64) -> f64 {
        let t = self.clamp(t);
        1.0 + 2.0 * t / (1.0 - t)
    }

    /// Likelihood damping `h(t)` (the paper's `h(t) = T − t` with `T = 1`
    /// by default): full observation weight at `t = 0`, none at `t = 1`.
    #[inline]
    pub fn damping(&self, t: f64) -> f64 {
        self.damping_profile.eval(self.clamp(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let s = DiffusionSchedule::default();
        // t = 0 (clamped to eps): nearly identity transport.
        assert!((s.alpha(0.0) - (1.0 - s.eps)).abs() < 1e-15);
        assert!((s.beta_sq(0.0) - s.eps).abs() < 1e-15);
        // t = 1 (clamped): nearly pure noise.
        assert!((s.alpha(1.0) - s.eps).abs() < 1e-15);
        assert!((s.beta_sq(1.0) - (1.0 - s.eps)).abs() < 1e-15);
    }

    #[test]
    fn damping_boundary_conditions() {
        let s = DiffusionSchedule::default();
        assert!((s.damping(0.0) - 1.0).abs() < 2.0 * s.eps);
        assert!(s.damping(1.0) < 2.0 * s.eps);
        // monotone decreasing
        assert!(s.damping(0.2) > s.damping(0.8));
    }

    #[test]
    fn drift_and_sigma_satisfy_defining_relations() {
        let s = DiffusionSchedule::new(1e-6);
        for &t in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            // b = d log alpha / dt via finite differences.
            let h = 1e-7;
            let num_b = ((s.alpha(t + h)).ln() - (s.alpha(t - h)).ln()) / (2.0 * h);
            assert!((s.drift(t) - num_b).abs() < 1e-5, "drift at {t}");
            // sigma^2 = d beta^2/dt - 2 b beta^2
            let num_db2 = (s.beta_sq(t + h) - s.beta_sq(t - h)) / (2.0 * h);
            let want = num_db2 - 2.0 * s.drift(t) * s.beta_sq(t);
            assert!((s.sigma_sq(t) - want).abs() < 1e-4, "sigma_sq at {t}");
        }
    }

    #[test]
    fn forward_marginal_variance_is_consistent() {
        // Var(z_t) for z_0 with variance v0: alpha^2 v0 + beta^2.
        // At t=1 this approaches 1 regardless of v0 (the N(0,I) endpoint).
        let s = DiffusionSchedule::new(1e-9);
        for &v0 in &[0.01, 1.0, 100.0] {
            let var1 = s.alpha(1.0).powi(2) * v0 + s.beta_sq(1.0);
            assert!((var1 - 1.0).abs() < 1e-6 * (1.0 + v0), "v0 = {v0}: {var1}");
        }
    }

    #[test]
    fn sigma_sq_is_positive_and_growing() {
        let s = DiffusionSchedule::default();
        let mut prev = 0.0;
        for i in 0..100 {
            let t = i as f64 / 100.0;
            let ss = s.sigma_sq(t);
            assert!(ss >= 1.0 - 1e-12);
            assert!(ss >= prev);
            prev = ss;
        }
    }

    #[test]
    fn all_damping_profiles_satisfy_boundary_conditions() {
        for profile in [Damping::Linear, Damping::Quadratic, Damping::Sqrt, Damping::Cosine] {
            assert!((profile.eval(0.0) - 1.0).abs() < 1e-12, "{profile:?} h(0) != 1");
            assert!(profile.eval(1.0).abs() < 1e-12, "{profile:?} h(1) != 0");
            // Monotone nonincreasing on a sampled grid.
            let mut prev = profile.eval(0.0);
            for i in 1..=100 {
                let v = profile.eval(i as f64 / 100.0);
                assert!(v <= prev + 1e-12, "{profile:?} not monotone at {i}");
                prev = v;
            }
        }
    }

    #[test]
    fn damping_profile_ordering() {
        // At mid-time: quadratic < linear < sqrt (pull concentration).
        let t = 0.5;
        assert!(Damping::Quadratic.eval(t) < Damping::Linear.eval(t));
        assert!(Damping::Linear.eval(t) < Damping::Sqrt.eval(t));
    }

    #[test]
    fn with_damping_changes_schedule() {
        let lin = DiffusionSchedule::default();
        let quad = DiffusionSchedule::default().with_damping(Damping::Quadratic);
        assert!(quad.damping(0.5) < lin.damping(0.5));
    }

    #[test]
    #[should_panic]
    fn invalid_eps_rejected() {
        let _ = DiffusionSchedule::new(0.7);
    }

    #[test]
    fn linear_damping_is_exactly_t_minus_t_inside_the_clamp() {
        // The paper's h(t) = T − t with T = 1: on the clamped interval the
        // implementation must be the literal subtraction, to the bit.
        let s = DiffusionSchedule::new(1e-3);
        for i in 1..1000 {
            let t = i as f64 / 1000.0;
            if t < s.eps || t > 1.0 - s.eps {
                continue;
            }
            assert_eq!(s.damping(t).to_bits(), (1.0 - t).to_bits(), "h({t}) != 1 - {t}");
        }
    }

    #[test]
    fn damping_endpoints_saturate_at_the_clamp() {
        // Out-of-range pseudo-times clamp to [eps, 1 − eps] before h is
        // evaluated: h never exceeds h(eps) and never undershoots h(1 − eps).
        let s = DiffusionSchedule::new(1e-3);
        let at_lo = (1.0 - s.eps).to_bits();
        let at_hi = (1.0 - (1.0 - s.eps)).to_bits();
        for t in [-5.0, -1e-9, 0.0, 1e-4] {
            assert_eq!(s.damping(t).to_bits(), at_lo, "h({t}) should clamp to h(eps)");
        }
        for t in [1.0 - 1e-4, 1.0, 1.0 + 1e-9, 42.0] {
            assert_eq!(s.damping(t).to_bits(), at_hi, "h({t}) should clamp to h(1 - eps)");
        }
    }
}
