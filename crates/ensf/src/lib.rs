//! # ensf — the Ensemble Score Filter
//!
//! The paper's primary contribution: a training-free, score-based diffusion
//! filter for high-dimensional nonlinear data assimilation (Bao, Zhang &
//! Zhang; §III-A of the paper).
//!
//! Pipeline per analysis cycle:
//!
//! 1. [`DiffusionSchedule`] — `α_t = 1 − t`, `β_t = √t` (Eq. 9), with the
//!    damping `h(t) = 1 − t` for the likelihood score (Eq. 11).
//! 2. [`ScoreEstimator`] — Monte-Carlo prior score from the forecast
//!    ensemble (Eqs. 12–16), numerically stabilized with log-sum-exp.
//! 3. [`reverse_sde_euler`] — Euler–Maruyama integration of the
//!    reverse-time SDE (Eq. 7) from `N(0, I)` to the Bayesian posterior.
//! 4. [`Ensf::analyze`] — the full update, rayon-parallel over particles,
//!    with the paper's spread-relaxation stability safeguard.
//! 5. [`parallel`] — the explicit rank decomposition used for the Fig. 10
//!    weak-scaling study, bitwise-equivalent to the sequential filter.
//! 6. [`batch`] — the step-major batched analysis kernel ([`BatchedScore`]):
//!    per reverse-SDE step the score for a whole particle block is produced
//!    by two GEMMs plus a row-wise softmax, selected via
//!    [`EnsfConfig::kernel`] (the default). The per-particle path above is
//!    kept as the oracle ([`ScoreKernel::Reference`]).
//! 7. [`flow`] — the deterministic probability-flow ODE analysis path
//!    (flow matching): the same score machinery integrated without noise,
//!    reaching SDE-level accuracy in ~5–10 steps. Selected per config via
//!    [`EnsfConfig::method`] = [`AnalysisMethod::FlowMatching`].
//!
//! ```
//! use ensf::{Ensf, EnsfConfig, IdentityObs};
//! use stats::Ensemble;
//!
//! // Forecast ensemble of 8 members in 4 dimensions around 0.
//! let members: Vec<Vec<f64>> = (0..8)
//!     .map(|m| vec![0.1 * m as f64; 4])
//!     .collect();
//! let forecast = Ensemble::from_members(&members);
//! let obs = IdentityObs::new(4, 0.5);
//! let mut filter = Ensf::new(EnsfConfig::default());
//! let analysis = filter.analyze(&forecast, &[0.4; 4], &obs);
//! assert_eq!(analysis.members(), 8);
//! ```

#![warn(missing_docs)]

pub mod batch;
mod filter;
pub mod flow;
mod obs;
pub mod parallel;
mod schedule;
mod score;
mod sde;

pub use batch::{
    reverse_sde_assimilate_batched, reverse_sde_assimilate_batched_with_times, BatchScratch,
    BatchedScore,
};
pub use filter::{relax_spread, AnalysisMethod, Ensf, EnsfConfig, ScoreKernel};
pub use flow::{
    batch_variance, probability_flow_assimilate, probability_flow_assimilate_batched,
    probability_flow_assimilate_batched_with_times, smooth_variance,
};
pub use obs::{ArctanObs, CubicObs, IdentityObs, MaskedBase, MaskedObs, ObservationOperator, StridedObs};
pub use schedule::{Damping, DiffusionSchedule};
pub use score::ScoreEstimator;
pub use sde::{reverse_sde_assimilate, reverse_sde_euler, reverse_sde_stiff, reverse_sde_with_grid, TimeGrid};
