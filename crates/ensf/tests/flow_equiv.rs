//! Equivalence, determinism and posterior-quality contracts of the
//! flow-matching analysis path against the stochastic reverse SDE.
//!
//! The probability-flow ODE shares the diffusion schedule, the time grid
//! and the batched score machinery with the SDE path; it must (a) agree
//! between its own reference/batched kernels to ~1e-10 relative, (b) be
//! bitwise deterministic and rank-partition invariant *by construction*
//! (no per-step RNG at all), (c) consume exactly the initial-fill RNG
//! draws and nothing more, and (d) land on the same posterior region the
//! 100-step SDE reaches — in ~5–10 steps.

use ensf::parallel::{analyze_partitioned, RankPlan};
use ensf::{AnalysisMethod, Ensf, EnsfConfig, IdentityObs, ScoreKernel};
use proptest::prelude::*;
use stats::gaussian::standard_normal;
use stats::rng::seeded;
use stats::Ensemble;

fn ens(members: usize, dim: usize, seed: u64) -> Ensemble {
    let mut rng = seeded(seed);
    let mut e = Ensemble::zeros(members, dim);
    for m in 0..members {
        for x in e.member_mut(m) {
            *x = standard_normal(&mut rng);
        }
    }
    e
}

fn max_rel_diff(a: &Ensemble, b: &Ensemble) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs() / (1.0 + x.abs()))
        .fold(0.0f64, f64::max)
}

fn analyze_with(config: &EnsfConfig, fc: &Ensemble, y: &[f64], sigma: f64) -> Ensemble {
    let obs = IdentityObs::new(fc.dim(), sigma);
    Ensf::new(config.clone()).analyze(fc, y, &obs)
}

fn flow_config(kernel: ScoreKernel, n_steps: usize, seed: u64) -> EnsfConfig {
    EnsfConfig { n_steps, seed, kernel, method: AnalysisMethod::FlowMatching, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full flow analyses under the two score kernels agree to 1e-10
    /// relative for random shapes, seeds and (few-)step counts.
    #[test]
    fn flow_kernels_agree_on_random_problems(
        members in 2usize..12,
        dim in 1usize..33,
        n_steps in 1usize..20,
        seed in 0u64..1000,
        obs_sigma in 0.05f64..2.0,
    ) {
        let fc = ens(members, dim, seed);
        let y = vec![0.25; dim];
        let reference =
            analyze_with(&flow_config(ScoreKernel::Reference, n_steps, seed), &fc, &y, obs_sigma);
        let batched =
            analyze_with(&flow_config(ScoreKernel::Batched, n_steps, seed), &fc, &y, obs_sigma);
        let worst = max_rel_diff(&reference, &batched);
        prop_assert!(worst < 1e-10, "flow kernels diverged: max rel diff {}", worst);
    }

    /// Mini-batched flow analyses select the same score members (and the
    /// same prior variance) in the same order under both kernels.
    #[test]
    fn flow_kernels_agree_under_minibatch(
        seed in 0u64..500,
        j in 2usize..8,
    ) {
        let (members, dim) = (10, 12);
        let fc = ens(members, dim, seed);
        let y = vec![-0.1; dim];
        let mk = |kernel| EnsfConfig {
            n_steps: 8,
            minibatch: Some(j),
            seed,
            kernel,
            method: AnalysisMethod::FlowMatching,
            ..Default::default()
        };
        let reference = analyze_with(&mk(ScoreKernel::Reference), &fc, &y, 0.5);
        let batched = analyze_with(&mk(ScoreKernel::Batched), &fc, &y, 0.5);
        let worst = max_rel_diff(&reference, &batched);
        prop_assert!(worst < 1e-10, "minibatch flow kernels diverged: {}", worst);
    }
}

/// The flow analysis is bitwise run-to-run deterministic.
#[test]
fn flow_analysis_is_bitwise_deterministic() {
    let (members, dim) = (9, 64);
    let fc = ens(members, dim, 5);
    let y = vec![0.3; dim];
    let config = flow_config(ScoreKernel::Batched, 8, 11);
    let a = analyze_with(&config, &fc, &y, 0.4);
    let b = analyze_with(&config, &fc, &y, 0.4);
    assert_eq!(a.as_slice(), b.as_slice(), "flow analysis must be bitwise repeatable");
}

/// Partitioning particles over ranks does not change a single bit of the
/// flow analysis — with no per-step noise the contract reduces entirely
/// to the fixed-order score fold.
#[test]
fn flow_partitioning_is_bitwise_invariant() {
    let (members, dim) = (11, 48);
    let fc = ens(members, dim, 6);
    let y = vec![-0.2; dim];
    let obs = IdentityObs::new(dim, 0.5);
    let config = flow_config(ScoreKernel::Batched, 6, 3);
    let single = analyze_partitioned(&config, 0, &RankPlan::new(members, 1), &fc, &y, &obs);
    for ranks in [2, 3, 4, 7, 11] {
        let plan = RankPlan::new(members, ranks);
        let got = analyze_partitioned(&config, 0, &plan, &fc, &y, &obs);
        assert_eq!(
            got.as_slice(),
            single.as_slice(),
            "flow analysis changed bits at {ranks} ranks"
        );
    }
}

/// The deepest deadline-ladder degradation — a single-step flow — still
/// produces a sane, finite analysis that moves the mean from the forecast
/// toward the observation (the DDIM map solves the linear transport in
/// closed form, so even one step lands Kalman-accurate means).
#[test]
fn single_step_degraded_flow_stays_sane() {
    let (members, dim) = (12, 32);
    let mut rng = seeded(19);
    let mut fc = Ensemble::zeros(members, dim);
    for m in 0..members {
        for x in fc.member_mut(m) {
            *x = 1.0 + 0.2 * standard_normal(&mut rng);
        }
    }
    let y = vec![1.5; dim];
    let an = analyze_with(&flow_config(ScoreKernel::Batched, 1, 4), &fc, &y, 0.1);
    assert!(an.as_slice().iter().all(|v| v.is_finite()));
    let fm = fc.mean();
    for (i, (a, f)) in an.mean().iter().zip(&fm).enumerate() {
        assert!(
            *a > *f - 0.2 && *a < 1.5 + 0.2,
            "dim {i}: 1-step flow mean {a} outside forecast {f} .. obs 1.5 corridor"
        );
        assert!(*a > *f + 0.1, "dim {i}: 1-step flow mean {a} did not move toward obs");
    }
}

/// Posterior quality: the 6-step flow matches (or beats) the 100-step SDE
/// on analysis-mean RMSE *to the truth* in an OSSE-like tight-observation
/// regime — the matched-accuracy premise of the ≥5x speedup gate. (RMSE
/// to the truth, not to the observation: the SDE's damped likelihood pull
/// pins members exactly onto the noisy observation, which looks perfect
/// against y but carries the full obs error against the truth.)
#[test]
fn few_step_flow_matches_sde_posterior_region() {
    let (members, dim) = (16, 128);
    let mut rng = seeded(13);
    let truth: Vec<f64> =
        (0..dim).map(|i| 0.05 + 0.004 * ((i as f64) * 0.3).sin()).collect();
    let mut fc = Ensemble::zeros(members, dim);
    for m in 0..members {
        for (x, tr) in fc.member_mut(m).iter_mut().zip(&truth) {
            *x = tr + 0.01 * standard_normal(&mut rng);
        }
    }
    let sigma = 0.005;
    let y: Vec<f64> = truth.iter().map(|tr| tr + sigma * standard_normal(&mut rng)).collect();

    let sde = analyze_with(
        &EnsfConfig { n_steps: 100, seed: 7, ..Default::default() },
        &fc,
        &y,
        sigma,
    );
    let flow = analyze_with(&flow_config(ScoreKernel::Batched, 6, 7), &fc, &y, sigma);

    let rmse = |e: &Ensemble| {
        let mean = e.mean();
        (mean.iter().zip(&truth).map(|(m, tr)| (m - tr) * (m - tr)).sum::<f64>()
            / dim as f64)
            .sqrt()
    };
    let d_sde = rmse(&sde);
    let d_flow = rmse(&flow);
    assert!(
        d_flow < 1.5 * d_sde + 1e-3,
        "6-step flow analysis RMSE ({d_flow:e}) much worse than 100-step SDE ({d_sde:e})"
    );
}
