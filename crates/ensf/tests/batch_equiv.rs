//! Equivalence, determinism and partition-invariance of the batched
//! GEMM-based EnSF kernel against the per-particle reference path.
//!
//! The two kernels draw identical RNG streams and perform the same
//! per-step operations, differing only by floating-point reassociation
//! (the batched kernel computes distances via a GEMM norm expansion), so
//! full analyses must agree to ~1e-10 relative while each kernel on its
//! own is bitwise deterministic and partition-invariant.

use ensf::parallel::{analyze_partitioned, RankPlan};
use ensf::{Ensf, EnsfConfig, IdentityObs, ScoreKernel};
use proptest::prelude::*;
use stats::gaussian::standard_normal;
use stats::rng::seeded;
use stats::Ensemble;

fn ens(members: usize, dim: usize, seed: u64) -> Ensemble {
    let mut rng = seeded(seed);
    let mut e = Ensemble::zeros(members, dim);
    for m in 0..members {
        for x in e.member_mut(m) {
            *x = standard_normal(&mut rng);
        }
    }
    e
}

fn max_rel_diff(a: &Ensemble, b: &Ensemble) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs() / (1.0 + x.abs()))
        .fold(0.0f64, f64::max)
}

fn analyze_with(config: &EnsfConfig, fc: &Ensemble, y: &[f64], sigma: f64) -> Ensemble {
    let obs = IdentityObs::new(fc.dim(), sigma);
    Ensf::new(config.clone()).analyze(fc, y, &obs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full analyses under the two kernels agree to 1e-10 relative for
    /// random shapes, seeds and step counts.
    #[test]
    fn kernels_agree_on_random_problems(
        members in 2usize..12,
        dim in 1usize..33,
        n_steps in 5usize..30,
        seed in 0u64..1000,
        obs_sigma in 0.05f64..2.0,
    ) {
        let fc = ens(members, dim, seed);
        let y = vec![0.25; dim];
        let mk = |kernel| EnsfConfig { n_steps, seed, kernel, ..Default::default() };
        let reference = analyze_with(&mk(ScoreKernel::Reference), &fc, &y, obs_sigma);
        let batched = analyze_with(&mk(ScoreKernel::Batched), &fc, &y, obs_sigma);
        let worst = max_rel_diff(&reference, &batched);
        prop_assert!(worst < 1e-10, "kernels diverged: max rel diff {}", worst);
    }

    /// Mini-batched score sums select the same members in the same order
    /// under both kernels.
    #[test]
    fn kernels_agree_under_minibatch(
        seed in 0u64..500,
        j in 2usize..8,
    ) {
        let (members, dim) = (10, 12);
        let fc = ens(members, dim, seed);
        let y = vec![-0.1; dim];
        let mk = |kernel| EnsfConfig {
            n_steps: 12,
            minibatch: Some(j),
            seed,
            kernel,
            ..Default::default()
        };
        let reference = analyze_with(&mk(ScoreKernel::Reference), &fc, &y, 0.5);
        let batched = analyze_with(&mk(ScoreKernel::Batched), &fc, &y, 0.5);
        let worst = max_rel_diff(&reference, &batched);
        prop_assert!(worst < 1e-10, "minibatch kernels diverged: {}", worst);
    }
}

#[test]
fn batched_matches_reference_tight_obs_regime() {
    // OSSE-like regime: small ensemble spread around a small mean, tight
    // observation error — the conditions of the SQG cycling experiments.
    let (members, dim) = (6, 128);
    let mut rng = seeded(13);
    let mut fc = Ensemble::zeros(members, dim);
    for m in 0..members {
        for x in fc.member_mut(m) {
            *x = 0.05 + 0.005 * standard_normal(&mut rng);
        }
    }
    let y: Vec<f64> = (0..dim).map(|i| 0.05 + 0.002 * ((i as f64) * 0.3).sin()).collect();
    let run = |kernel| {
        let config = EnsfConfig { n_steps: 15, seed: 7, kernel, ..Default::default() };
        analyze_with(&config, &fc, &y, 0.005)
    };
    let reference = run(ScoreKernel::Reference);
    let batched = run(ScoreKernel::Batched);
    let worst = max_rel_diff(&reference, &batched);
    assert!(worst < 1e-10, "kernels diverged in tight-obs regime: max rel diff {worst:e}");
}

#[test]
fn batched_matches_reference_osse_shape() {
    let (members, dim) = (6, 128);
    let fc = ens(members, dim, 2);
    let y = vec![0.1; dim];
    let run = |kernel| {
        let config = EnsfConfig { n_steps: 15, seed: 7, kernel, ..Default::default() };
        analyze_with(&config, &fc, &y, 0.5)
    };
    let worst = max_rel_diff(&run(ScoreKernel::Reference), &run(ScoreKernel::Batched));
    assert!(worst < 1e-10, "kernels diverged: max rel diff {worst:e}");
}

/// The batched kernel is bitwise run-to-run deterministic.
#[test]
fn batched_analysis_is_bitwise_deterministic() {
    let (members, dim) = (9, 64);
    let fc = ens(members, dim, 5);
    let y = vec![0.3; dim];
    let config =
        EnsfConfig { n_steps: 20, seed: 11, kernel: ScoreKernel::Batched, ..Default::default() };
    let a = analyze_with(&config, &fc, &y, 0.4);
    let b = analyze_with(&config, &fc, &y, 0.4);
    assert_eq!(a.as_slice(), b.as_slice(), "batched analysis must be bitwise repeatable");
}

/// Partitioning particles over ranks does not change a single bit of the
/// batched analysis: every per-particle output is a fixed-order reduction
/// keyed by the particle's global index.
#[test]
fn batched_partitioning_is_bitwise_invariant() {
    let (members, dim) = (11, 48);
    let fc = ens(members, dim, 6);
    let y = vec![-0.2; dim];
    let obs = IdentityObs::new(dim, 0.5);
    let config =
        EnsfConfig { n_steps: 18, seed: 3, kernel: ScoreKernel::Batched, ..Default::default() };
    let single = analyze_partitioned(&config, 0, &RankPlan::new(members, 1), &fc, &y, &obs);
    for ranks in [2, 3, 4, 7, 11] {
        let plan = RankPlan::new(members, ranks);
        let got = analyze_partitioned(&config, 0, &plan, &fc, &y, &obs);
        assert_eq!(
            got.as_slice(),
            single.as_slice(),
            "batched analysis changed bits at {ranks} ranks"
        );
    }
}

/// No NaN/Inf at production scale (high dimension, many SDE steps) where
/// the GEMM norm expansion faces its worst cancellation.
#[test]
fn batched_analysis_finite_in_high_dim() {
    let (members, dim) = (20, 4096);
    let fc = ens(members, dim, 8);
    let y = vec![0.1; dim];
    let config =
        EnsfConfig { n_steps: 30, seed: 4, kernel: ScoreKernel::Batched, ..Default::default() };
    let an = analyze_with(&config, &fc, &y, 1.0);
    assert!(an.as_slice().iter().all(|v| v.is_finite()));
}
