//! Property-based tests for the Ensemble Score Filter.

use ensf::{
    AnalysisMethod, DiffusionSchedule, Ensf, EnsfConfig, IdentityObs, ScoreEstimator, TimeGrid,
};
use proptest::prelude::*;
use stats::Ensemble;

fn ensemble_strategy(members: usize, dim: usize) -> impl Strategy<Value = Ensemble> {
    prop::collection::vec(-5.0f64..5.0, members * dim).prop_map(move |data| {
        let members_vec: Vec<Vec<f64>> =
            data.chunks(dim).map(|c| c.to_vec()).collect();
        Ensemble::from_members(&members_vec)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The schedule is well-behaved over the whole clamped interval.
    #[test]
    fn schedule_invariants(t in 0.0f64..1.0, eps in 1e-6f64..0.4) {
        let s = DiffusionSchedule::new(eps);
        prop_assert!(s.alpha(t) > 0.0 && s.alpha(t) <= 1.0);
        prop_assert!(s.beta_sq(t) > 0.0 && s.beta_sq(t) < 1.0);
        prop_assert!(s.sigma_sq(t) >= 1.0 - 1e-12);
        prop_assert!(s.drift(t) < 0.0);
        prop_assert!((0.0..=1.0).contains(&s.damping(t)));
    }

    /// Time grids always descend from 1-eps to exactly 0 with n+1 points.
    #[test]
    fn grid_structure(n in 1usize..100, eps in 1e-6f64..0.3) {
        let s = DiffusionSchedule::new(eps);
        for grid in [TimeGrid::LogSpaced, TimeGrid::Uniform] {
            let pts = grid.points(&s, n);
            prop_assert_eq!(pts.len(), n + 1);
            prop_assert!((pts[0] - (1.0 - eps)).abs() < 1e-12);
            prop_assert_eq!(*pts.last().unwrap(), 0.0);
            for w in pts.windows(2) {
                prop_assert!(w[1] < w[0]);
            }
        }
    }

    /// The few-step flow grid hits the schedule endpoints *bitwise*: the
    /// first score evaluation sits exactly at `1 − ε` and the integration
    /// terminates exactly at `0`, for every step count the deadline
    /// ladder's degraded modes can pick. Float comparison by `to_bits` —
    /// any drift here would silently break the flow path's cross-rank
    /// bitwise-invariance contract.
    #[test]
    fn few_step_grid_endpoints_bitwise_exact(n in 1usize..=100, eps in 1e-6f64..0.3) {
        let s = DiffusionSchedule::new(eps);
        for grid in [TimeGrid::LogSpaced, TimeGrid::Uniform] {
            let pts = grid.points(&s, n);
            prop_assert_eq!(pts[0].to_bits(), (1.0 - eps).to_bits());
            prop_assert_eq!(pts.last().unwrap().to_bits(), 0.0f64.to_bits());
        }
    }

    /// Flow-matching analyses obey the same invariants as the SDE path —
    /// shape, finiteness, relaxed spread — at any few-step count,
    /// including the degenerate single-step grid.
    #[test]
    fn flow_analysis_invariants(
        ens in ensemble_strategy(8, 5),
        obs_val in -3.0f64..3.0,
        sigma in 0.05f64..5.0,
        steps in 1usize..12,
    ) {
        let obs = IdentityObs::new(5, sigma);
        let y = vec![obs_val; 5];
        let mut filter = Ensf::new(EnsfConfig {
            n_steps: steps,
            seed: 77,
            spread_relaxation: 1.0,
            method: AnalysisMethod::FlowMatching,
            ..Default::default()
        });
        let an = filter.analyze(&ens, &y, &obs);
        prop_assert_eq!(an.members(), 8);
        prop_assert_eq!(an.dim(), 5);
        prop_assert!(an.as_slice().iter().all(|v| v.is_finite()));
        let vf = ens.variance();
        let va = an.variance();
        for (a, f) in va.iter().zip(&vf) {
            if f.sqrt() > 1e-8 {
                prop_assert!((a.sqrt() - f.sqrt()).abs() < 1e-6 * (1.0 + f.sqrt()));
            }
        }
    }

    /// The MC score is always finite, for any ensemble, query point and
    /// pseudo-time (the log-sum-exp stability property).
    #[test]
    fn score_always_finite(
        ens in ensemble_strategy(6, 4),
        z in prop::collection::vec(-50.0f64..50.0, 4),
        t in 0.0f64..1.0,
    ) {
        let est = ScoreEstimator::new(
            ens.as_slice(), 6, 4, DiffusionSchedule::default());
        let s = est.score(&z, t);
        prop_assert!(s.iter().all(|v| v.is_finite()));
    }

    /// Translation equivariance: shifting the ensemble and the query point
    /// by the same constant leaves the score unchanged.
    #[test]
    fn score_translation_equivariant(
        ens in ensemble_strategy(5, 3),
        z in prop::collection::vec(-3.0f64..3.0, 3),
        shift in -10.0f64..10.0,
        t in 0.05f64..0.95,
    ) {
        let sch = DiffusionSchedule::default();
        let base = ScoreEstimator::new(ens.as_slice(), 5, 3, sch).score(&z, t);
        let alpha = sch.alpha(t);
        let shifted_data: Vec<f64> = ens.as_slice().iter().map(|v| v + shift).collect();
        // Query must shift by alpha * shift (z lives in diffused space).
        let z2: Vec<f64> = z.iter().map(|v| v + alpha * shift).collect();
        let s2 = ScoreEstimator::new(&shifted_data, 5, 3, sch).score(&z2, t);
        for (a, b) in base.iter().zip(&s2) {
            prop_assert!((a - b).abs() < 1e-7 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    /// A full analysis keeps shape, stays finite, and (with full
    /// relaxation) preserves the forecast spread per variable.
    #[test]
    fn analysis_invariants(
        ens in ensemble_strategy(8, 5),
        obs_val in -3.0f64..3.0,
        sigma in 0.05f64..5.0,
    ) {
        let obs = IdentityObs::new(5, sigma);
        let y = vec![obs_val; 5];
        let mut filter = Ensf::new(EnsfConfig {
            n_steps: 15,
            seed: 77,
            spread_relaxation: 1.0,
            ..Default::default()
        });
        let an = filter.analyze(&ens, &y, &obs);
        prop_assert_eq!(an.members(), 8);
        prop_assert_eq!(an.dim(), 5);
        prop_assert!(an.as_slice().iter().all(|v| v.is_finite()));
        let vf = ens.variance();
        let va = an.variance();
        for (a, f) in va.iter().zip(&vf) {
            // Full relaxation pins the analysis spread at the forecast's
            // (up to the degenerate zero-spread guard).
            if f.sqrt() > 1e-8 {
                prop_assert!((a.sqrt() - f.sqrt()).abs() < 1e-6 * (1.0 + f.sqrt()));
            }
        }
    }

    /// The analysis mean always lies within the interval spanned by the
    /// forecast mean and the observation (no overshoot), per variable, for
    /// identity observations — a weak but universal sanity property.
    #[test]
    fn analysis_mean_bracketed(
        ens in ensemble_strategy(10, 3),
        obs_val in -4.0f64..4.0,
        sigma in 0.1f64..2.0,
    ) {
        let obs = IdentityObs::new(3, sigma);
        let y = vec![obs_val; 3];
        let mut filter = Ensf::new(EnsfConfig { n_steps: 20, seed: 3, ..Default::default() });
        let an = filter.analyze(&ens, &y, &obs);
        let fm = ens.mean();
        let am = an.mean();
        for i in 0..3 {
            let lo = fm[i].min(obs_val);
            let hi = fm[i].max(obs_val);
            // Allow slack of one forecast std + obs noise scale: the
            // diffusion resampling is stochastic.
            let slack = ens.variance()[i].sqrt() + 0.5 * sigma + 0.3;
            prop_assert!(
                am[i] > lo - slack && am[i] < hi + slack,
                "dim {i}: analysis {} outside [{lo}, {hi}] ± {slack}",
                am[i]
            );
        }
    }
}
