//! Minimal in-tree shim for the `proptest` crate (offline build).
//!
//! Supports the declarative surface this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), numeric range
//! strategies, tuple strategies, `prop::collection::vec`, [`any`],
//! `prop_map` / `prop_flat_map`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking — each test runs a fixed
//! number of deterministic cases derived from the test's name (override the
//! base seed with `PROPTEST_SEED`), and a failing case panics with the case
//! index so it can be replayed.

#![warn(missing_docs)]

/// Run-configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator driving strategy sampling (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// Builds the deterministic per-test RNG. The base seed comes from
/// `PROPTEST_SEED` when set, else from a hash of the test name, so each
/// test gets a stable but distinct stream.
pub fn test_rng(test_name: &str) -> TestRng {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC0FF_EE00_5EED_5EED);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::new(base ^ h)
}

/// A value generator; mirrors `proptest::strategy::Strategy` (sans shrinking).
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into `f`, sampling the strategy it returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(
        self,
        f: F,
    ) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Always-the-same-value strategy; mirrors `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Full-range ("arbitrary") values; mirrors `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values over a broad dynamic range (no NaN/inf: the real
    /// crate's `any::<f64>()` defaults to non-special values too).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mag = (rng.unit_f64() * 2.0 - 1.0) * 1e9;
        mag * rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for any value of `T`; mirrors `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Collection strategies; mirrors `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec`]: a fixed `usize` or a
    /// `Range<usize>`.
    pub trait IntoLen {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and length spec `L`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector strategy; mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The prelude; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy,
    };

    /// Namespace alias; mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Skips the current case when its precondition fails; mirrors
/// `proptest::prop_assume!`. The shim runs each case body inside a closure,
/// so an early `return` abandons just that case (it still counts toward the
/// case budget — the shim does not resample).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests; mirrors `proptest::proptest!`.
///
/// Each generated `#[test]` runs `config.cases` deterministic cases. On
/// failure the panic message is prefixed (via `eprintln`) with the case
/// index and the effective seed for replay.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for __case in 0..config.cases {
                let __checkpoint = rng.clone();
                let run = || {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                };
                if let Err(panic) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(run),
                ) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (rng state {:?}; \
                         set PROPTEST_SEED to replay a different stream)",
                        __case + 1,
                        config.cases,
                        stringify!($name),
                        __checkpoint,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..1000 {
            let x = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&y));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::test_rng("vecs");
        let s = prop::collection::vec(0.0f64..1.0, 3..9);
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((3..9).contains(&v.len()));
        }
        let fixed = prop::collection::vec(any::<u64>(), 5usize);
        assert_eq!(Strategy::sample(&fixed, &mut rng).len(), 5);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::test_rng("compose");
        let s = (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(0.0f64..1.0, n).prop_map(|v| (v.len(), v))
        });
        for _ in 0..100 {
            let (n, v) = Strategy::sample(&s, &mut rng);
            assert_eq!(n, v.len());
            assert!((1..5).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, multiple args, trailing comma, mut.
        #[test]
        fn macro_generates_cases(
            a in 0usize..10,
            mut v in prop::collection::vec(-1.0f64..1.0, 4),
            (x, y) in (0.0f64..1.0, 0.0f64..1.0),
        ) {
            v.push(a as f64);
            prop_assert_eq!(v.len(), 5);
            prop_assert!(x < 1.0 && y < 1.0);
        }
    }
}
