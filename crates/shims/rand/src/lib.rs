//! Minimal in-tree shim for the `rand` crate (offline build).
//!
//! Implements exactly the surface this workspace uses: [`Rng::random`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. `StdRng` is xoshiro256++ seeded through a
//! splitmix64 expansion — deterministic and statistically solid, though its
//! stream differs from upstream `rand`'s ChaCha12 (nothing here relies on
//! cross-crate stream compatibility, only on within-tree determinism).

#![warn(missing_docs)]

/// Types samplable uniformly from an RNG's raw 64-bit output stream.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the high 53 bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` from the high 24 bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Random number generator core trait.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift.
    fn random_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // 128-bit multiply maps the 64-bit stream onto [0, bound) with
        // negligible (unrejected) bias — fine for shuffles and sampling.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Splitmix64 step: the standard seed-expansion generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden state; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        // Inline across crates: this sits on the floor of every sampling
        // hot loop in the workspace (without the hint, non-generic methods
        // stay out-of-line absent LTO).
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling/shuffling extensions.
pub mod seq {
    use super::Rng;

    /// Shuffle support for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_below(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn random_below_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for bound in [1u64, 2, 3, 17, 1000] {
            for _ in 0..1000 {
                assert!(rng.random_below(bound) < bound);
            }
        }
    }
}
