//! Minimal in-tree shim for the `rayon` crate (offline build).
//!
//! Real data parallelism on `std::thread::scope` — no work stealing, no
//! global pool, just static contiguous partitioning of the index space over
//! `available_parallelism()` scoped threads. That preserves the two
//! properties this workspace depends on:
//!
//! 1. **determinism** — results are gathered in index order, identical to
//!    the sequential execution (the tree's RNG streams are derived from
//!    *global* indices, so scheduling cannot perturb them);
//! 2. **disjointness** — `par_chunks_mut` hands every thread a disjoint set
//!    of `&mut` chunks, so no unsafe code is needed anywhere.
//!
//! Implemented surface: `par_iter().map(...).collect()`, ranges'
//! `into_par_iter().map(...).collect()`, and `par_chunks_mut(...)`
//! (+ `.enumerate()`) `.for_each(...)` — exactly what the workspace uses.

#![warn(missing_docs)]
// Every unsafe operation must sit in its own audited `unsafe { }` block.
#![deny(unsafe_op_in_unsafe_fn)]

use std::num::NonZeroUsize;

/// Everything call sites import; mirrors `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// Number of worker threads for `n` items (at least 1, at most the CPU
/// count, never more than the item count).
fn workers_for(n: usize) -> usize {
    let cpus = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cpus.min(n).max(1)
}

/// Splits `0..n` into `w` contiguous, maximally even ranges.
fn partition(n: usize, w: usize) -> Vec<std::ops::Range<usize>> {
    let base = n / w;
    let extra = n % w;
    let mut out = Vec::with_capacity(w);
    let mut start = 0;
    for i in 0..w {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f(i)` for every `i` in `0..n` on scoped threads, returning results
/// in index order. Falls back to a plain loop for tiny inputs or
/// single-core machines.
fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let w = workers_for(n);
    if w <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let ranges = partition(n, w);
    let f = &f;
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(w);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || r.map(f).collect::<Vec<T>>()))
            .collect();
        for h in handles {
            // INVARIANT: propagating a worker panic matches rayon's
            // behavior; join only errs when the closure itself panicked.
            parts.push(h.join().expect("rayon-shim worker panicked"));
        }
    });
    parts.into_iter().flatten().collect()
}

/// Runs `f(i)` for every `i` in `0..n` on scoped threads, for side effects.
fn run_indexed_unit<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let w = workers_for(n);
    if w <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let f = &f;
    std::thread::scope(|scope| {
        for r in partition(n, w) {
            scope.spawn(move || {
                for i in r {
                    f(i);
                }
            });
        }
    });
}

/// A parallel iterator: a lazy description of an indexed computation.
pub trait ParallelIterator: Sized {
    /// Item type produced.
    type Item: Send;

    /// Number of items.
    fn pi_len(&self) -> usize;

    /// Computes the item at `index`. Must be callable concurrently.
    fn pi_get(&self, index: usize) -> Self::Item;

    /// Maps every item through `f` (lazily).
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Pairs every item with its index (lazily).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Applies `f` to every item, in parallel.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F)
    where
        Self: Sync,
    {
        run_indexed_unit(self.pi_len(), |i| f(self.pi_get(i)));
    }

    /// Collects into a container, preserving index order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C
    where
        Self: Sync,
    {
        C::from_par_iter(self)
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        Self: Sync,
        S: std::iter::Sum<Self::Item>,
    {
        run_indexed(self.pi_len(), |i| self.pi_get(i)).into_iter().sum()
    }
}

/// Collection types constructible from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds the container, preserving index order.
    fn from_par_iter<P: ParallelIterator<Item = T> + Sync>(par: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T> + Sync>(par: P) -> Self {
        run_indexed(par.pi_len(), |i| par.pi_get(i))
    }
}

/// Lazy `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, index: usize) -> U {
        (self.f)(self.base.pi_get(index))
    }
}

/// Lazy `enumerate` adapter.
pub struct Enumerate<P> {
    base: P,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, index: usize) -> (usize, P::Item) {
        (index, self.base.pi_get(index))
    }
}

/// Conversion into a parallel iterator; mirrors `rayon::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over `start..end`.
pub struct RangeParIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;

    fn pi_len(&self) -> usize {
        self.len
    }

    fn pi_get(&self, index: usize) -> usize {
        self.start + index
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { start: self.start, len: self.end.saturating_sub(self.start) }
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_get(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// Shared-slice parallel extensions; mirrors `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over the elements.
    fn par_iter(&self) -> SliceParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceParIter<'_, T> {
        SliceParIter { slice: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> SliceParIter<'_, T> {
        SliceParIter { slice: self }
    }
}

/// Mutable-slice parallel extensions; mirrors `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { chunks: self.chunks_mut(size).collect() }
    }
}

/// Parallel iterator over disjoint `&mut` chunks.
///
/// Consuming adaptor: unlike the read-only iterators above it owns the
/// borrowed chunks, distributing whole chunks over scoped threads.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send + 'a> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { chunks: self.chunks }
    }

    /// Applies `f` to every chunk, in parallel.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F)
    where
        T: Sync,
    {
        ParChunksMutEnumerate { chunks: self.chunks }.for_each(|(_, c)| f(c));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send + 'a> ParChunksMutEnumerate<'a, T> {
    /// Applies `f` to every `(index, chunk)` pair, in parallel.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F)
    where
        T: Sync,
    {
        let n = self.chunks.len();
        let w = workers_for(n);
        if w <= 1 || n <= 1 {
            for (i, c) in self.chunks.into_iter().enumerate() {
                f((i, c));
            }
            return;
        }
        // Deal whole (index, chunk) pairs to workers; chunks are disjoint
        // `&mut` borrows, so each worker owns its share outright.
        let mut shares: Vec<Vec<(usize, &'a mut [T])>> =
            (0..w).map(|_| Vec::with_capacity(n / w + 1)).collect();
        for (i, chunk) in self.chunks.into_iter().enumerate() {
            shares[i % w].push((i, chunk));
        }
        let f = &f;
        std::thread::scope(|scope| {
            for share in shares {
                scope.spawn(move || {
                    for (i, chunk) in share {
                        f((i, chunk));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_ordered() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_matches_sequential() {
        let data: Vec<(usize, usize)> = (0..64).map(|i| (i, i + 1)).collect();
        let got: Vec<usize> = data.par_iter().map(|&(a, b)| a + b).collect();
        let want: Vec<usize> = data.iter().map(|&(a, b)| a + b).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_chunks_mut_disjoint_and_complete() {
        let mut buf = vec![0u64; 10_000];
        buf.par_chunks_mut(137).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u64 + 1;
            }
        });
        assert!(buf.iter().all(|&x| x > 0), "every element visited");
        // Chunk 0 covers [0, 137), chunk 1 [137, 274), ...
        assert_eq!(buf[0], 1);
        assert_eq!(buf[137], 2);
        assert_eq!(buf[9999], (9999 / 137 + 1) as u64);
    }

    #[test]
    fn par_chunks_mut_plain_for_each() {
        let mut buf = vec![1.0f64; 512];
        buf.par_chunks_mut(64).for_each(|chunk| {
            for x in chunk.iter_mut() {
                *x *= 2.0;
            }
        });
        assert!(buf.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let mut empty: Vec<f64> = Vec::new();
        empty.par_chunks_mut(4).for_each(|_| panic!("no chunks expected"));
    }

    #[test]
    fn nested_parallelism_works() {
        // letkf-style: par over grid points, gemm-style par inside.
        let outer: Vec<Vec<usize>> = (0..8)
            .into_par_iter()
            .map(|i| (0..16).into_par_iter().map(move |j| i * 16 + j).collect())
            .collect();
        for (i, inner) in outer.iter().enumerate() {
            assert_eq!(inner, &(i * 16..(i + 1) * 16).collect::<Vec<_>>());
        }
    }
}
