//! Minimal in-tree shim for the `bytes` crate (offline build).
//!
//! [`Bytes`] (cheaply cloneable, sliceable, immutable view backed by an
//! `Arc<Vec<u8>>`), [`BytesMut`] (growable builder), and the little-endian
//! [`Buf`]/[`BufMut`] accessors the serialization modules use.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut, Index, IndexMut};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer; mirrors `bytes::Bytes`.
///
/// Cloning shares the backing allocation; [`Buf`] reads advance a per-value
/// cursor, so a clone acts as an independent read cursor over shared data.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a view of the sub-range (sharing the backing allocation).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: Arc::new(data), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer; mirrors `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor for the [`Buf`] impl.
    pos: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap), pos: 0 }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut { data: data.to_vec(), pos: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Index<usize> for BytesMut {
    type Output = u8;

    fn index(&self, i: usize) -> &u8 {
        &self.data[i]
    }
}

impl IndexMut<usize> for BytesMut {
    fn index_mut(&mut self, i: usize) -> &mut u8 {
        &mut self.data[i]
    }
}

/// Sequential little-endian reads; mirrors `bytes::Buf`.
pub trait Buf {
    /// Bytes remaining ahead of the cursor.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes from the cursor, advancing it.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a single byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.get_u64_le().to_le_bytes())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential little-endian writes; mirrors `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0x7F);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_f32_le(1.5);
        b.put_f64_le(-2.25);
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 1 + 4 + 8 + 4 + 8);
        assert_eq!(frozen.get_u8(), 0x7F);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64_le(), 42);
        assert_eq!(frozen.get_f32_le(), 1.5);
        assert_eq!(frozen.get_f64_le(), -2.25);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn clone_is_independent_cursor() {
        let mut b = BytesMut::new();
        b.put_u64_le(7);
        let frozen = b.freeze();
        let mut a = frozen.clone();
        let mut c = frozen.clone();
        assert_eq!(a.get_u64_le(), 7);
        assert_eq!(a.remaining(), 0);
        assert_eq!(c.get_u64_le(), 7, "clone keeps its own cursor");
    }

    #[test]
    fn slice_shares_and_bounds() {
        let data: Vec<u8> = (0..32).collect();
        let b = Bytes::from(data);
        let s = b.slice(8..16);
        assert_eq!(&s[..], &(8u8..16).collect::<Vec<_>>()[..]);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn bytes_mut_index_and_mutate() {
        let mut raw = BytesMut::from(&[1u8, 2, 3][..]);
        raw[0] ^= 0xFF;
        assert_eq!(raw[0], 0xFE);
        assert_eq!(raw.freeze()[0], 0xFE);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.get_u32_le();
    }
}
