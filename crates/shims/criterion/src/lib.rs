//! Minimal in-tree shim for the `criterion` crate (offline build).
//!
//! Supports the harness surface this workspace's benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `bench_with_input`/`sample_size`/
//! `finish`, [`Bencher::iter`], and [`BenchmarkId`].
//!
//! Differences from the real crate: no statistical analysis — each bench
//! runs a short warm-up, then `sample_size` timed batches, and reports the
//! median ns/iteration to stdout. Good enough for relative comparisons and
//! the telemetry-overhead threshold check; not a replacement for real
//! criterion confidence intervals.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` for benches that import it
/// from here rather than `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark; mirrors `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Id from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing driver handed to benchmark closures; mirrors `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, auto-scaling iterations per sample so each sample
    /// runs long enough to measure, and records ns/iter samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration scaling: grow the batch until one
        // batch takes >= ~1ms (or a growth cap), so short routines are
        // measured over many iterations.
        let mut iters: u64 = 1;
        let target = Duration::from_millis(1);
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= target || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(4).max(iters + 1);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            self.samples.push(ns);
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut s = self.samples.clone();
        // INVARIANT: samples are elapsed-time measurements, never NaN.
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    }
}

fn report(id: &str, bencher: &Bencher) {
    let ns = bencher.median_ns();
    let (value, unit) = if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else if ns < 1_000_000_000.0 {
        (ns / 1_000_000.0, "ms")
    } else {
        (ns / 1_000_000_000.0, "s")
    };
    println!("{id:<48} time: {value:>10.3} {unit}/iter  (median of {} samples)", bencher.sample_size);
}

/// Benchmark registry/driver; mirrors `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: 20 };
        f(&mut b);
        report(id, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== {name} ==");
        BenchmarkGroup { _parent: self, name: name.to_string(), sample_size: 20 }
    }
}

/// A group of related benchmarks; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<P, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: BenchmarkId,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions; mirrors `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point; mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_with_input_and_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(4);
        g.bench_with_input(BenchmarkId::from_parameter(128usize), &128usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }

    #[test]
    fn median_of_samples() {
        let b = Bencher { samples: vec![5.0, 1.0, 3.0], sample_size: 3 };
        assert_eq!(b.median_ns(), 3.0);
    }
}
