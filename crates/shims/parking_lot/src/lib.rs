//! Minimal in-tree shim for the `parking_lot` crate (offline build).
//!
//! `Mutex` and `RwLock` with parking_lot's poison-free API, implemented
//! over the std primitives: a poisoned std lock means a panic already
//! unwound while holding it, so propagating the panic (instead of surfacing
//! a `PoisonError`) matches parking_lot's observable behavior for this
//! workspace.

#![warn(missing_docs)]

use std::sync;

/// A mutual-exclusion lock; mirrors `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock; mirrors `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
