//! Minimal in-tree shim for the `crossbeam` crate (offline build).
//!
//! Only `channel::{unbounded, Sender, Receiver}` is implemented, as thin
//! wrappers over `std::sync::mpsc`. The simulated-MPI runtime gives every
//! rank its own inbox `Receiver` (moved into the rank's thread) and a clone
//! of every peer's `Sender`, which is exactly the sharing pattern
//! `std::sync::mpsc` supports natively.

#![warn(missing_docs)]
// Every unsafe operation must sit in its own audited `unsafe { }` block.
#![deny(unsafe_op_in_unsafe_fn)]

/// Multi-producer channels; mirrors `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has hung up.
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, failing if all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocks until a message arrives or `timeout` elapses. Wakes
        /// immediately on arrival (a real timed wait, not a sleep), which
        /// the simulated-MPI runtime relies on for low-latency polling of
        /// dead-rank flags while a receive is parked.
        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, mpsc::RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_across_threads() {
            let (tx, rx) = unbounded::<usize>();
            std::thread::scope(|s| {
                for i in 0..8 {
                    let tx = tx.clone();
                    s.spawn(move || tx.send(i).unwrap());
                }
                drop(tx);
                let mut got: Vec<usize> = (0..8).map(|_| rx.recv().unwrap()).collect();
                got.sort_unstable();
                assert_eq!(got, (0..8).collect::<Vec<_>>());
                assert!(rx.recv().is_err(), "all senders dropped");
            });
        }
    }
}
