//! Property-based tests for the FFT substrate.

use fft::{real, Complex, Direction, Fft2, FftPlan};
use proptest::prelude::*;

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// forward ∘ inverse == identity for arbitrary power-of-two inputs.
    #[test]
    fn round_trip_pow2(exp in 0usize..9, seed in any::<u64>()) {
        let n = 1usize << exp;
        let mut rng_state = seed;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let input: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        let mut buf = input.clone();
        FftPlan::new(n, Direction::Forward).process(&mut buf);
        FftPlan::new(n, Direction::Inverse).process(&mut buf);
        for (a, b) in buf.iter().zip(&input) {
            prop_assert!((*a - *b).abs() < 1e-9 * (n as f64).max(1.0));
        }
    }

    /// Round trip for arbitrary (Bluestein) lengths.
    #[test]
    fn round_trip_any_len(input in (1usize..80).prop_flat_map(complex_vec)) {
        let n = input.len();
        let mut buf = input.clone();
        FftPlan::new(n, Direction::Forward).process(&mut buf);
        FftPlan::new(n, Direction::Inverse).process(&mut buf);
        for (a, b) in buf.iter().zip(&input) {
            prop_assert!((*a - *b).abs() < 1e-7 * n as f64);
        }
    }

    /// Parseval: energy is conserved up to the 1/N convention.
    #[test]
    fn parseval(input in (2usize..64).prop_flat_map(complex_vec)) {
        let n = input.len();
        let te: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = input.clone();
        FftPlan::new(n, Direction::Forward).process(&mut buf);
        let fe: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() <= 1e-6 * te.max(1.0));
    }

    /// DFT of a real signal is Hermitian-symmetric.
    #[test]
    fn real_spectrum_hermitian(x in prop::collection::vec(-1e3f64..1e3, 2..64)) {
        let spec = real::rfft(&x);
        prop_assert!(real::hermitian_symmetry_error(&spec) < 1e-6);
    }

    /// Linearity: F(a x + b y) == a F(x) + b F(y).
    #[test]
    fn linearity(
        n_exp in 1usize..7,
        a in -10.0f64..10.0,
        b in -10.0f64..10.0,
        seed in any::<u64>(),
    ) {
        let n = 1usize << n_exp;
        let mut s = seed | 1;
        let mut next = || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let x: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        let y: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        let plan = FftPlan::new(n, Direction::Forward);
        let mut fx = x.clone();
        let mut fy = y.clone();
        plan.process(&mut fx);
        plan.process(&mut fy);
        let mut fxy: Vec<Complex> = x.iter().zip(&y).map(|(p, q)| *p * a + *q * b).collect();
        plan.process(&mut fxy);
        for i in 0..n {
            let want = fx[i] * a + fy[i] * b;
            prop_assert!((fxy[i] - want).abs() < 1e-7 * n as f64 * (a.abs() + b.abs() + 1.0));
        }
    }

    /// 2-D round trip on small rectangular grids.
    #[test]
    fn round_trip_2d(rows in 1usize..12, cols in 1usize..12, seed in any::<u64>()) {
        let mut s = seed | 1;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let input: Vec<Complex> =
            (0..rows * cols).map(|_| Complex::new(next(), next())).collect();
        let mut buf = input.clone();
        Fft2::new(rows, cols, Direction::Forward).process(&mut buf);
        Fft2::new(rows, cols, Direction::Inverse).process(&mut buf);
        for (p, q) in buf.iter().zip(&input) {
            prop_assert!((*p - *q).abs() < 1e-7 * (rows * cols) as f64);
        }
    }

    /// Time-domain circular shift only changes spectral phases, not magnitudes.
    #[test]
    fn shift_preserves_magnitude(n_exp in 1usize..7, shift in 0usize..64, seed in any::<u64>()) {
        let n = 1usize << n_exp;
        let shift = shift % n;
        let mut s = seed | 1;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let x: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        let mut shifted = vec![Complex::ZERO; n];
        for i in 0..n {
            shifted[(i + shift) % n] = x[i];
        }
        let plan = FftPlan::new(n, Direction::Forward);
        let mut fx = x;
        let mut fs = shifted;
        plan.process(&mut fx);
        plan.process(&mut fs);
        for i in 0..n {
            prop_assert!((fx[i].abs() - fs[i].abs()).abs() < 1e-7 * n as f64);
        }
    }
}
