//! Process-wide cache of planned 2-D FFTs.
//!
//! Building an [`Fft2`] is not free: power-of-two lengths precompute twiddle
//! tables and Bluestein lengths precompute chirp sequences plus an inner
//! convolution plan. The SQG hot path (RK4 stages, state round-trips,
//! diagnostics) keeps asking for the same few `(rows, cols, direction)`
//! shapes, so [`fft2`] memoizes plans behind a `parking_lot::RwLock`d map
//! and hands out `Arc` clones.
//!
//! Concurrency: the fast path takes a read lock only; on a miss the plan is
//! built *outside* any lock and inserted under a short write lock (first
//! inserter wins, losers drop their duplicate). Plans are immutable after
//! construction, so sharing one across threads is safe — `Fft2::process`
//! takes `&self`.

use crate::fft2::Fft2;
use crate::plan::Direction;
use parking_lot::RwLock;
// lint: allow(nondeterministic-api, reason="keyed get/insert only; the plan map is never iterated")
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

type Key = (usize, usize, Direction);

// lint: allow(nondeterministic-api, reason="keyed get/insert only; the plan map is never iterated")
fn cache() -> &'static RwLock<HashMap<Key, Arc<Fft2>>> {
    static CACHE: OnceLock<RwLock<HashMap<Key, Arc<Fft2>>>> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Returns the cached 2-D plan for `rows x cols` grids in direction `dir`,
/// building and memoizing it on first request.
///
/// # Panics
/// Panics if `rows == 0 || cols == 0` (same contract as [`Fft2::new`]).
pub fn fft2(rows: usize, cols: usize, dir: Direction) -> Arc<Fft2> {
    let key = (rows, cols, dir);
    if let Some(plan) = cache().read().get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("fft.plan_cache.hits", 1);
        return Arc::clone(plan);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    telemetry::counter_add("fft.plan_cache.misses", 1);
    // Build outside the lock: plan construction can be expensive and must
    // not serialize unrelated lookups behind a write guard.
    let built = Arc::new(Fft2::new(rows, cols, dir));
    let mut map = cache().write();
    Arc::clone(map.entry(key).or_insert(built))
}

/// Number of distinct plans currently cached.
pub fn len() -> usize {
    cache().read().len()
}

/// Drops every cached plan (outstanding `Arc`s stay valid). Mainly for
/// tests and memory-sensitive embedders.
pub fn clear() {
    cache().write().clear();
}

/// Cumulative `(hits, misses)` since process start.
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;

    #[test]
    fn same_key_returns_same_plan() {
        let a = fft2(16, 8, Direction::Forward);
        let b = fft2(16, 8, Direction::Forward);
        assert!(Arc::ptr_eq(&a, &b), "repeat lookups must share one plan");
        let c = fft2(16, 8, Direction::Inverse);
        assert!(!Arc::ptr_eq(&a, &c), "direction is part of the key");
    }

    #[test]
    fn cached_plan_matches_fresh_plan() {
        let (rows, cols) = (12, 20); // non-power-of-two: Bluestein path
        let input: Vec<Complex> = (0..rows * cols)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.13).cos()))
            .collect();
        let mut via_cache = input.clone();
        fft2(rows, cols, Direction::Forward).process(&mut via_cache);
        let mut fresh = input.clone();
        Fft2::new(rows, cols, Direction::Forward).process(&mut fresh);
        assert_eq!(via_cache, fresh, "cache must be transparent bit-for-bit");
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let (h0, m0) = stats();
        let _ = fft2(31, 7, Direction::Forward); // unique shape: miss
        let _ = fft2(31, 7, Direction::Forward); // hit
        let (h1, m1) = stats();
        assert!(m1 > m0, "first lookup of a new shape must miss");
        assert!(h1 > h0, "second lookup must hit");
        assert!(len() >= 1);
    }
}
