//! Real-input transforms and spectral-convention helpers.
//!
//! The SQG model stores full complex spectra (simplicity over packed rfft
//! layouts), but diagnostics and the observation pipeline work with real
//! fields. These helpers convert between the two and expose the Hermitian
//! symmetry checks used by the property tests.

use crate::complex::Complex;
use crate::plan::{Direction, FftPlan};

/// Forward-transforms a real signal, returning the full complex spectrum.
pub fn rfft(input: &[f64]) -> Vec<Complex> {
    let mut buf: Vec<Complex> = input.iter().map(|&x| Complex::from_re(x)).collect();
    FftPlan::new(input.len(), Direction::Forward).process(&mut buf);
    buf
}

/// Inverse-transforms a Hermitian-symmetric spectrum back to a real signal.
///
/// The imaginary residue left by rounding is discarded; callers that want to
/// validate symmetry first can use [`hermitian_symmetry_error`].
pub fn irfft(spectrum: &[Complex]) -> Vec<f64> {
    let mut buf = spectrum.to_vec();
    FftPlan::new(spectrum.len(), Direction::Inverse).process(&mut buf);
    buf.into_iter().map(|z| z.re).collect()
}

/// Maximum deviation of `spectrum` from exact Hermitian symmetry
/// (`X[k] == conj(X[n-k])`), which characterizes the spectrum of a real
/// signal. Returns 0 for lengths < 2.
pub fn hermitian_symmetry_error(spectrum: &[Complex]) -> f64 {
    let n = spectrum.len();
    let mut worst = 0.0f64;
    for k in 1..n {
        let d = (spectrum[k] - spectrum[n - k].conj()).abs();
        if d > worst {
            worst = d;
        }
    }
    // DC (and Nyquist for even n) must be purely real.
    worst = worst.max(spectrum[0].im.abs());
    if n.is_multiple_of(2) && n > 0 {
        worst = worst.max(spectrum[n / 2].im.abs());
    }
    worst
}

/// Enforces Hermitian symmetry in place by averaging conjugate pairs.
///
/// Spectral filters in the DA update can leave tiny asymmetries after
/// round-off; projecting back keeps the physical fields exactly real.
pub fn symmetrize_hermitian(spectrum: &mut [Complex]) {
    let n = spectrum.len();
    if n == 0 {
        return;
    }
    spectrum[0].im = 0.0;
    if n.is_multiple_of(2) {
        spectrum[n / 2].im = 0.0;
    }
    for k in 1..n.div_ceil(2) {
        let avg = (spectrum[k] + spectrum[n - k].conj()) * 0.5;
        spectrum[k] = avg;
        spectrum[n - k] = avg.conj();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_round_trip() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin() + 0.5).collect();
        let spec = rfft(&x);
        let back = irfft(&spec);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn real_signal_spectrum_is_hermitian() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64).cos() * (i as f64 * 0.1).exp()).collect();
        let spec = rfft(&x);
        assert!(hermitian_symmetry_error(&spec) < 1e-9);
    }

    #[test]
    fn symmetrize_produces_real_inverse() {
        // Start from a deliberately asymmetric spectrum.
        let mut spec: Vec<Complex> =
            (0..16).map(|k| Complex::new(k as f64, (k as f64).sin())).collect();
        symmetrize_hermitian(&mut spec);
        assert!(hermitian_symmetry_error(&spec) < 1e-12);
        let mut buf = spec.clone();
        FftPlan::new(16, Direction::Inverse).process(&mut buf);
        for z in &buf {
            assert!(z.im.abs() < 1e-10, "inverse not real: {z:?}");
        }
    }

    #[test]
    fn symmetrize_is_idempotent() {
        let mut spec: Vec<Complex> =
            (0..15).map(|k| Complex::new((k as f64).cos(), (k * k) as f64 * 0.01)).collect();
        symmetrize_hermitian(&mut spec);
        let once = spec.clone();
        symmetrize_hermitian(&mut spec);
        for (a, b) in once.iter().zip(&spec) {
            assert!((*a - *b).abs() < 1e-14);
        }
    }

    #[test]
    fn odd_length_round_trip() {
        let x: Vec<f64> = (0..21).map(|i| (i as f64 * 0.7).cos()).collect();
        let back = irfft(&rfft(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
