//! A minimal double-precision complex number type.
//!
//! We deliberately avoid an external complex-number dependency: the FFT and
//! the SQG spectral kernels only need a handful of operations, and keeping the
//! type local lets us guarantee `#[repr(C)]` layout (two adjacent `f64`s)
//! which the 2-D transpose kernels rely on.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Euler's formula: `exp(i theta)`.
    #[inline(always)]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared modulus `re^2 + im^2`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplication by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }

    /// Multiplicative inverse `1/z`.
    #[inline(always)]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex { re: self.re / d, im: -self.im / d }
    }

    /// Fused multiply-add: `self * b + c`, written to help the optimizer
    /// keep everything in registers in the FFT butterflies.
    #[inline(always)]
    pub fn mul_add(self, b: Complex, c: Complex) -> Self {
        Complex {
            re: self.re * b.re - self.im * b.im + c.re,
            im: self.re * b.im + self.im * b.re + c.im,
        }
    }

    /// Returns true if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns true if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline(always)]
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline(always)]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline(always)]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z * w^{-1}
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline(always)]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline(always)]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl AddAssign for Complex {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl DivAssign<f64> for Complex {
    #[inline(always)]
    fn div_assign(&mut self, rhs: f64) {
        let inv = 1.0 / rhs;
        self.re *= inv;
        self.im *= inv;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    #[inline(always)]
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(-z + z, Complex::ZERO);
        assert!((z * z.inv() - Complex::ONE).abs() < EPS);
    }

    #[test]
    fn modulus_and_conjugate() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < EPS);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!((z * z.conj() - Complex::from_re(25.0)).abs() < EPS);
    }

    #[test]
    fn cis_matches_euler() {
        let t = 0.7;
        let z = Complex::cis(t);
        assert!((z.re - t.cos()).abs() < EPS);
        assert!((z.im - t.sin()).abs() < EPS);
        assert!((z.abs() - 1.0).abs() < EPS);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex::I * Complex::I + Complex::ONE).abs() < EPS);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex::new(1.5, -0.5);
        let b = Complex::new(-2.0, 3.0);
        let c = Complex::new(0.25, 0.75);
        let fused = a.mul_add(b, c);
        let plain = a * b + c;
        assert!((fused - plain).abs() < EPS);
    }

    #[test]
    fn division() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let q = a / b;
        assert!((q * b - a).abs() < EPS);
    }

    #[test]
    fn sum_iterator() {
        let s: Complex = (0..4).map(|k| Complex::new(k as f64, -(k as f64))).sum();
        assert_eq!(s, Complex::new(6.0, -6.0));
    }

    #[test]
    fn arg_quadrants() {
        assert!((Complex::new(1.0, 0.0).arg() - 0.0).abs() < EPS);
        assert!((Complex::new(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
        assert!((Complex::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < EPS);
    }
}
