//! Bluestein's chirp-z algorithm for arbitrary-length DFTs.
//!
//! Any length-`n` DFT can be written as a circular convolution of two chirp
//! sequences, which we evaluate with a power-of-two radix-2 FFT of length
//! `m >= 2n - 1`. The SQG grids are powers of two, but the DA framework lets
//! users pick arbitrary grid sizes (e.g. 96 or 192 points per side), and the
//! spectrum diagnostics bin over arbitrary-length shells — so a general
//! fallback is part of the substrate, not gold-plating.

use crate::complex::Complex;
use crate::plan::{Direction, Radix2Plan};
use crate::radix2::fft_in_place;

/// Precomputed Bluestein data for one `(n, direction)` pair.
#[derive(Debug)]
pub(crate) struct BluesteinPlan {
    n: usize,
    dir: Direction,
    /// Convolution length (power of two, `>= 2n - 1`).
    m: usize,
    /// Forward and inverse radix-2 plans of length `m`.
    fwd: Radix2Plan,
    inv: Radix2Plan,
    /// Chirp `a_j = exp(sign * i * pi * j^2 / n)` for `j in 0..n`.
    chirp: Vec<Complex>,
    /// FFT of the zero-padded conjugate chirp kernel (length `m`).
    kernel_f: Vec<Complex>,
}

impl BluesteinPlan {
    pub(crate) fn new(n: usize, dir: Direction) -> Self {
        assert!(n > 0);
        let m = (2 * n - 1).next_power_of_two();
        let sign = dir.sign();

        // chirp[j] = exp(sign * i * pi * j^2 / n). Reduce j^2 mod 2n before
        // the float conversion so large n does not lose precision.
        let chirp: Vec<Complex> = (0..n)
            .map(|j| {
                let jj = ((j as u128 * j as u128) % (2 * n as u128)) as f64;
                Complex::cis(sign * std::f64::consts::PI * jj / n as f64)
            })
            .collect();

        // Kernel b_j = conj(chirp[|j|]) arranged circularly, then FFT'd.
        let mut kernel = vec![Complex::ZERO; m];
        kernel[0] = chirp[0].conj();
        for j in 1..n {
            let c = chirp[j].conj();
            kernel[j] = c;
            kernel[m - j] = c;
        }
        let fwd = Radix2Plan::new(m, Direction::Forward);
        let inv = Radix2Plan::new(m, Direction::Inverse);
        fft_in_place(&fwd, &mut kernel);

        BluesteinPlan { n, dir, m, fwd, inv, chirp, kernel_f: kernel }
    }

    pub(crate) fn process(&self, data: &mut [Complex]) {
        let mut scratch = Vec::new();
        self.process_buffered(data, &mut scratch);
    }

    pub(crate) fn process_buffered(&self, data: &mut [Complex], scratch: &mut Vec<Complex>) {
        debug_assert_eq!(data.len(), self.n);
        scratch.clear();
        scratch.resize(self.m, Complex::ZERO);

        // Pre-multiply by the chirp and zero-pad.
        for j in 0..self.n {
            scratch[j] = data[j] * self.chirp[j];
        }

        // Circular convolution with the conjugate chirp via the length-m FFT.
        fft_in_place(&self.fwd, scratch);
        for (z, k) in scratch.iter_mut().zip(&self.kernel_f) {
            *z *= *k;
        }
        fft_in_place(&self.inv, scratch);
        let minv = 1.0 / self.m as f64;

        // Post-multiply by the chirp; apply 1/n for inverse transforms.
        let norm = if self.dir == Direction::Inverse { minv / self.n as f64 } else { minv };
        for j in 0..self.n {
            data[j] = scratch[j] * self.chirp[j] * norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FftPlan;

    fn dft_naive(input: &[Complex], dir: Direction) -> Vec<Complex> {
        let n = input.len();
        let sign = dir.sign();
        let mut out = vec![Complex::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            let mut acc = Complex::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc += x * Complex::cis(theta);
            }
            if dir == Direction::Inverse {
                acc /= n as f64;
            }
            *o = acc;
        }
        out
    }

    #[test]
    fn matches_naive_for_non_power_of_two() {
        for n in [3usize, 5, 6, 7, 12, 15, 31, 96, 100] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.9).cos(), (i as f64 * 0.4).sin()))
                .collect();
            let mut got = input.clone();
            FftPlan::new(n, Direction::Forward).process(&mut got);
            let want = dft_naive(&input, Direction::Forward);
            for (g, w) in got.iter().zip(&want) {
                assert!((*g - *w).abs() < 1e-8 * n as f64, "n={n}: {g:?} vs {w:?}");
            }
        }
    }

    #[test]
    fn inverse_round_trip_non_power_of_two() {
        for n in [5usize, 12, 96] {
            let input: Vec<Complex> =
                (0..n).map(|i| Complex::new(i as f64, (i * i) as f64 * 0.01)).collect();
            let mut buf = input.clone();
            FftPlan::new(n, Direction::Forward).process(&mut buf);
            FftPlan::new(n, Direction::Inverse).process(&mut buf);
            for (g, w) in buf.iter().zip(&input) {
                assert!((*g - *w).abs() < 1e-8 * n as f64);
            }
        }
    }

    #[test]
    fn length_one_is_identity() {
        let mut buf = vec![Complex::new(2.5, -1.5)];
        FftPlan::new(1, Direction::Forward).process(&mut buf);
        assert!((buf[0] - Complex::new(2.5, -1.5)).abs() < 1e-12);
    }

    #[test]
    fn buffered_path_reuses_scratch() {
        let n = 7;
        let plan = FftPlan::new(n, Direction::Forward);
        let mut scratch = Vec::new();
        let input: Vec<Complex> = (0..n).map(|i| Complex::from_re(i as f64)).collect();
        let mut a = input.clone();
        let mut b = input.clone();
        plan.process(&mut a);
        plan.process_buffered(&mut b, &mut scratch);
        // Scratch grew once to the convolution length and is reusable.
        assert!(scratch.capacity() >= 2 * n - 1);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-12);
        }
        let mut c = input.clone();
        plan.process_buffered(&mut c, &mut scratch);
        for (x, y) in a.iter().zip(&c) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }
}
