//! 2-D transforms over row-major grids, with optional rayon parallelism.
//!
//! The SQG model calls these on every Runge-Kutta stage, so [`Fft2`] owns
//! both row and column plans plus per-call scratch handling, and parallelizes
//! over rows/columns when the grid is large enough to amortize the fork-join
//! overhead.

use crate::complex::Complex;
use crate::plan::{Direction, FftPlan};
use rayon::prelude::*;

/// Below this many total points, the sequential path is faster than
/// spinning up rayon tasks (measured: crossover near 64x64 on 8 cores).
const PAR_THRESHOLD: usize = 128 * 128;

/// Rows handed to one rayon task in the parallel pass, so each task's
/// 1-D scratch allocation is amortized over many transforms instead of
/// being re-created per row.
const ROWS_PER_TASK: usize = 16;

/// Reusable scratch for [`Fft2::process_with_scratch`]: the transpose
/// buffer plus the 1-D plan scratch used on the sequential path. Grown on
/// first use, then reused allocation-free across calls (e.g. once per RK4
/// stage loop in the SQG stepper).
#[derive(Debug, Default)]
pub struct Fft2Scratch {
    t: Vec<Complex>,
    row: Vec<Complex>,
}

impl Fft2Scratch {
    /// Creates an empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        Fft2Scratch::default()
    }
}

/// Planned 2-D FFT for `rows x cols` row-major grids.
#[derive(Debug)]
pub struct Fft2 {
    rows: usize,
    cols: usize,
    row_plan: FftPlan,
    col_plan: FftPlan,
}

impl Fft2 {
    /// Builds a 2-D plan for `rows x cols` grids in direction `dir`.
    pub fn new(rows: usize, cols: usize, dir: Direction) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be nonzero");
        Fft2 {
            rows,
            cols,
            row_plan: FftPlan::new(cols, dir),
            col_plan: FftPlan::new(rows, dir),
        }
    }

    /// Grid height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Transform direction.
    pub fn direction(&self) -> Direction {
        self.row_plan.direction()
    }

    /// Transforms `data` (row-major, length `rows * cols`) in place.
    ///
    /// Convenience wrapper over [`Fft2::process_with_scratch`] with
    /// call-local scratch; hot loops should hold a [`Fft2Scratch`] and call
    /// the buffered entry point directly to avoid the per-call transpose
    /// allocation.
    pub fn process(&self, data: &mut [Complex]) {
        let mut scratch = Fft2Scratch::new();
        self.process_with_scratch(data, &mut scratch);
    }

    /// Transforms `data` in place, reusing `scratch` across calls.
    ///
    /// Bitwise identical to [`Fft2::process`]: scratch buffers only change
    /// where intermediates live, never the operation order.
    pub fn process_with_scratch(&self, data: &mut [Complex], scratch: &mut Fft2Scratch) {
        telemetry::counter_add("fft.fft2.calls", 1);
        assert_eq!(
            data.len(),
            self.rows * self.cols,
            "buffer must be rows*cols = {}",
            self.rows * self.cols
        );

        let parallel = self.rows * self.cols >= PAR_THRESHOLD;

        // Pass 1: independent FFTs along each row. Parallel tasks own a
        // block of rows and one scratch each; each row transform is
        // independent, so the grouping cannot affect results.
        if parallel {
            data.par_chunks_mut(self.cols * ROWS_PER_TASK).for_each(|chunk| {
                let mut task_scratch = Vec::new();
                for row in chunk.chunks_mut(self.cols) {
                    self.row_plan.process_buffered(row, &mut task_scratch);
                }
            });
        } else {
            for row in data.chunks_mut(self.cols) {
                self.row_plan.process_buffered(row, &mut scratch.row);
            }
        }

        // Pass 2: transpose, FFT rows of the transpose, transpose back.
        // The explicit transpose keeps pass 2 cache-friendly and lets us use
        // the same contiguous row kernel.
        let n = self.rows * self.cols;
        if scratch.t.len() < n {
            scratch.t.resize(n, Complex::ZERO);
        }
        let t = &mut scratch.t[..n];
        transpose_into(data, self.rows, self.cols, t);
        if parallel {
            t.par_chunks_mut(self.rows * ROWS_PER_TASK).for_each(|chunk| {
                let mut task_scratch = Vec::new();
                for col in chunk.chunks_mut(self.rows) {
                    self.col_plan.process_buffered(col, &mut task_scratch);
                }
            });
        } else {
            for col in t.chunks_mut(self.rows) {
                self.col_plan.process_buffered(col, &mut scratch.row);
            }
        }
        transpose_into(t, self.cols, self.rows, data);
    }
}

/// Returns the transpose of a `rows x cols` row-major matrix.
pub fn transpose(data: &[Complex], rows: usize, cols: usize) -> Vec<Complex> {
    let mut out = vec![Complex::ZERO; rows * cols];
    transpose_into(data, rows, cols, &mut out);
    out
}

/// Writes the transpose of a `rows x cols` row-major matrix into `out`
/// (which becomes `cols x rows` row-major).
pub fn transpose_into(data: &[Complex], rows: usize, cols: usize, out: &mut [Complex]) {
    assert_eq!(data.len(), rows * cols);
    assert_eq!(out.len(), rows * cols);
    // Blocked to keep both source rows and destination rows in cache.
    const B: usize = 32;
    for bi in (0..rows).step_by(B) {
        for bj in (0..cols).step_by(B) {
            for i in bi..(bi + B).min(rows) {
                for j in bj..(bj + B).min(cols) {
                    out[j * rows + i] = data[i * cols + j];
                }
            }
        }
    }
}

/// Forward-transforms a real row-major grid into a full complex spectrum.
///
/// Plans come from the process-wide [`crate::plan_cache`], so repeated
/// calls on the same grid shape skip plan construction entirely.
pub fn rfft2(field: &[f64], rows: usize, cols: usize) -> Vec<Complex> {
    assert_eq!(field.len(), rows * cols);
    let mut buf: Vec<Complex> = field.iter().map(|&x| Complex::from_re(x)).collect();
    crate::plan_cache::fft2(rows, cols, Direction::Forward).process(&mut buf);
    buf
}

/// Inverse-transforms a complex spectrum to a real row-major grid,
/// discarding the (round-off level) imaginary parts.
///
/// Plans come from the process-wide [`crate::plan_cache`].
pub fn irfft2(spectrum: &[Complex], rows: usize, cols: usize) -> Vec<f64> {
    assert_eq!(spectrum.len(), rows * cols);
    let mut buf = spectrum.to_vec();
    crate::plan_cache::fft2(rows, cols, Direction::Inverse).process(&mut buf);
    buf.into_iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dft2_naive(input: &[Complex], rows: usize, cols: usize) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; rows * cols];
        for p in 0..rows {
            for q in 0..cols {
                let mut acc = Complex::ZERO;
                for i in 0..rows {
                    for j in 0..cols {
                        let theta = -2.0
                            * std::f64::consts::PI
                            * ((p * i) as f64 / rows as f64 + (q * j) as f64 / cols as f64);
                        acc += input[i * cols + j] * Complex::cis(theta);
                    }
                }
                out[p * cols + q] = acc;
            }
        }
        out
    }

    #[test]
    fn transpose_round_trip() {
        let rows = 5;
        let cols = 7;
        let data: Vec<Complex> =
            (0..rows * cols).map(|i| Complex::new(i as f64, -(i as f64))).collect();
        let t = transpose(&data, rows, cols);
        let back = transpose(&t, cols, rows);
        assert_eq!(data, back);
    }

    #[test]
    fn matches_naive_2d_dft() {
        let (rows, cols) = (8, 4);
        let input: Vec<Complex> = (0..rows * cols)
            .map(|i| Complex::new((i as f64 * 0.23).sin(), (i as f64 * 0.71).cos()))
            .collect();
        let mut got = input.clone();
        Fft2::new(rows, cols, Direction::Forward).process(&mut got);
        let want = dft2_naive(&input, rows, cols);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-8, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn round_trip_2d() {
        let (rows, cols) = (16, 16);
        let input: Vec<Complex> =
            (0..rows * cols).map(|i| Complex::new(i as f64, (i % 7) as f64)).collect();
        let mut buf = input.clone();
        Fft2::new(rows, cols, Direction::Forward).process(&mut buf);
        Fft2::new(rows, cols, Direction::Inverse).process(&mut buf);
        for (g, w) in buf.iter().zip(&input) {
            assert!((*g - *w).abs() < 1e-8);
        }
    }

    #[test]
    fn rectangular_non_power_of_two_round_trip() {
        let (rows, cols) = (6, 10);
        let input: Vec<Complex> =
            (0..rows * cols).map(|i| Complex::new((i as f64).sqrt(), 0.1 * i as f64)).collect();
        let mut buf = input.clone();
        Fft2::new(rows, cols, Direction::Forward).process(&mut buf);
        Fft2::new(rows, cols, Direction::Inverse).process(&mut buf);
        for (g, w) in buf.iter().zip(&input) {
            assert!((*g - *w).abs() < 1e-8);
        }
    }

    #[test]
    fn real_2d_round_trip() {
        let (rows, cols) = (32, 32);
        let field: Vec<f64> = (0..rows * cols)
            .map(|i| ((i / cols) as f64 * 0.2).sin() * ((i % cols) as f64 * 0.3).cos())
            .collect();
        let spec = rfft2(&field, rows, cols);
        let back = irfft2(&spec, rows, cols);
        for (a, b) in field.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn plane_wave_hits_single_mode() {
        let (rows, cols) = (16, 16);
        let (kx, ky) = (3usize, 5usize);
        let field: Vec<f64> = (0..rows * cols)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                (2.0 * std::f64::consts::PI
                    * (kx as f64 * c as f64 / cols as f64 + ky as f64 * r as f64 / rows as f64))
                    .cos()
            })
            .collect();
        let spec = rfft2(&field, rows, cols);
        // Energy should sit at (ky,kx) and its conjugate mode only.
        let total: f64 = spec.iter().map(|z| z.norm_sqr()).sum();
        let main = spec[ky * cols + kx].norm_sqr() + spec[(rows - ky) * cols + (cols - kx)].norm_sqr();
        assert!(main / total > 1.0 - 1e-9);
    }

    #[test]
    fn scratch_entry_point_is_bitwise_identical() {
        // Cover both the sequential path and (65_536 points) the parallel
        // row-grouped path, plus a Bluestein shape, and reuse one scratch
        // across all of them to exercise buffer growth.
        let mut scratch = Fft2Scratch::new();
        for (rows, cols) in [(8, 8), (6, 10), (256, 256)] {
            let input: Vec<Complex> = (0..rows * cols)
                .map(|i| Complex::new((i as f64 * 0.17).sin(), (i as f64 * 0.29).cos()))
                .collect();
            for dir in [Direction::Forward, Direction::Inverse] {
                let plan = Fft2::new(rows, cols, dir);
                let mut plain = input.clone();
                plan.process(&mut plain);
                let mut buffered = input.clone();
                plan.process_with_scratch(&mut buffered, &mut scratch);
                assert_eq!(plain, buffered, "scratch reuse changed bits at {rows}x{cols}");
            }
        }
    }

    #[test]
    fn large_grid_parallel_path_round_trip() {
        let (rows, cols) = (128, 128); // crosses PAR_THRESHOLD
        let input: Vec<Complex> =
            (0..rows * cols).map(|i| Complex::new((i as f64 * 0.011).sin(), 0.0)).collect();
        let mut buf = input.clone();
        Fft2::new(rows, cols, Direction::Forward).process(&mut buf);
        Fft2::new(rows, cols, Direction::Inverse).process(&mut buf);
        for (g, w) in buf.iter().zip(&input) {
            assert!((*g - *w).abs() < 1e-8);
        }
    }
}
