//! FFT plans: precomputed twiddle factors and bit-reversal permutations.
//!
//! A [`FftPlan`] is created once for a given length and direction and can be
//! reused across many transforms (the SQG model performs four transforms per
//! grid row per Runge-Kutta stage, so amortizing the trigonometric setup
//! matters). Plans are immutable after construction and therefore `Sync`,
//! allowing them to be shared across rayon worker threads.

use crate::complex::Complex;
use std::sync::Arc;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Forward transform: `X[k] = sum_n x[n] exp(-2*pi*i*n*k/N)`.
    Forward,
    /// Inverse transform: `x[n] = (1/N) sum_k X[k] exp(+2*pi*i*n*k/N)`.
    ///
    /// The `1/N` normalization is applied by the executor, so a forward
    /// transform followed by an inverse transform is the identity.
    Inverse,
}

impl Direction {
    /// Sign of the exponent in the transform kernel.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Forward => Direction::Inverse,
            Direction::Inverse => Direction::Forward,
        }
    }
}

/// Precomputed data for a radix-2 transform of a power-of-two length.
#[derive(Debug)]
pub(crate) struct Radix2Plan {
    /// Transform length; always a power of two.
    pub n: usize,
    /// Per-stage twiddle factors, stage `s` holding `2^s` entries
    /// (`w^0 .. w^(2^s - 1)` for the stage's butterfly half-length `2^s`).
    pub twiddles: Vec<Vec<Complex>>,
    /// Bit-reversal permutation of `0..n`.
    pub bitrev: Vec<u32>,
}

impl Radix2Plan {
    pub(crate) fn new(n: usize, dir: Direction) -> Self {
        assert!(n.is_power_of_two(), "radix-2 plan requires power-of-two length, got {n}");
        let stages = n.trailing_zeros() as usize;
        let sign = dir.sign();
        let mut twiddles = Vec::with_capacity(stages);
        for s in 0..stages {
            let half = 1usize << s; // butterfly half-length at this stage
            let step = std::f64::consts::PI / half as f64; // 2*pi / (2*half)
            let tw: Vec<Complex> =
                (0..half).map(|j| Complex::cis(sign * step * j as f64)).collect();
            twiddles.push(tw);
        }
        let mut bitrev = vec![0u32; n];
        if stages > 0 {
            let shift = u32::BITS - stages as u32;
            for (i, r) in bitrev.iter_mut().enumerate() {
                *r = (i as u32).reverse_bits() >> shift;
            }
        }
        Radix2Plan { n, twiddles, bitrev }
    }
}

/// Strategy used by a plan, chosen from the transform length.
#[derive(Debug)]
pub(crate) enum PlanKind {
    /// Pure power-of-two Cooley-Tukey.
    Radix2(Radix2Plan),
    /// Bluestein chirp-z for arbitrary lengths (internally uses a radix-2
    /// convolution of length `>= 2n - 1`).
    Bluestein(crate::bluestein::BluesteinPlan),
}

/// Reusable FFT plan for one length and direction.
///
/// Construct with [`FftPlan::new`] and execute with
/// [`FftPlan::process`] / [`FftPlan::process_buffered`].
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    dir: Direction,
    kind: PlanKind,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n` in direction `dir`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, dir: Direction) -> Self {
        assert!(n > 0, "cannot plan a zero-length FFT");
        let kind = if n.is_power_of_two() {
            PlanKind::Radix2(Radix2Plan::new(n, dir))
        } else {
            PlanKind::Bluestein(crate::bluestein::BluesteinPlan::new(n, dir))
        };
        FftPlan { n, dir, kind }
    }

    /// Convenience constructor returning an `Arc` for cross-thread sharing.
    pub fn new_shared(n: usize, dir: Direction) -> Arc<Self> {
        Arc::new(Self::new(n, dir))
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the (disallowed) zero length; kept for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Transform direction.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// Executes the transform in place.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn process(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length must match plan length");
        match &self.kind {
            PlanKind::Radix2(p) => {
                crate::radix2::fft_in_place(p, data);
                if self.dir == Direction::Inverse {
                    let inv = 1.0 / self.n as f64;
                    for z in data.iter_mut() {
                        *z *= inv;
                    }
                }
            }
            PlanKind::Bluestein(p) => p.process(data),
        }
    }

    /// Executes the transform in place, reusing `scratch` for intermediate
    /// storage (only needed by Bluestein plans; radix-2 ignores it).
    ///
    /// `scratch` is resized as needed; passing the same buffer across calls
    /// avoids per-transform allocations in hot loops.
    pub fn process_buffered(&self, data: &mut [Complex], scratch: &mut Vec<Complex>) {
        assert_eq!(data.len(), self.n, "buffer length must match plan length");
        match &self.kind {
            PlanKind::Radix2(p) => {
                crate::radix2::fft_in_place(p, data);
                if self.dir == Direction::Inverse {
                    let inv = 1.0 / self.n as f64;
                    for z in data.iter_mut() {
                        *z *= inv;
                    }
                }
            }
            PlanKind::Bluestein(p) => p.process_buffered(data, scratch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_sign_and_reverse() {
        assert_eq!(Direction::Forward.sign(), -1.0);
        assert_eq!(Direction::Inverse.sign(), 1.0);
        assert_eq!(Direction::Forward.reverse(), Direction::Inverse);
        assert_eq!(Direction::Inverse.reverse(), Direction::Forward);
    }

    #[test]
    fn bitrev_is_an_involution() {
        let p = Radix2Plan::new(16, Direction::Forward);
        for i in 0..16usize {
            let r = p.bitrev[i] as usize;
            assert_eq!(p.bitrev[r] as usize, i);
        }
    }

    #[test]
    fn twiddle_counts_per_stage() {
        let p = Radix2Plan::new(32, Direction::Forward);
        assert_eq!(p.twiddles.len(), 5);
        for (s, tw) in p.twiddles.iter().enumerate() {
            assert_eq!(tw.len(), 1 << s);
        }
    }

    #[test]
    fn twiddles_unit_modulus() {
        let p = Radix2Plan::new(64, Direction::Inverse);
        for tw in &p.twiddles {
            for z in tw {
                assert!((z.abs() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_length_panics() {
        let _ = FftPlan::new(0, Direction::Forward);
    }

    #[test]
    fn plan_reports_metadata() {
        let p = FftPlan::new(8, Direction::Forward);
        assert_eq!(p.len(), 8);
        assert!(!p.is_empty());
        assert_eq!(p.direction(), Direction::Forward);
    }

    #[test]
    #[should_panic]
    fn wrong_buffer_length_panics() {
        let p = FftPlan::new(8, Direction::Forward);
        let mut buf = vec![Complex::ZERO; 4];
        p.process(&mut buf);
    }
}
