//! # fft — spectral transform substrate
//!
//! From-scratch FFTs backing the SQG turbulence model and the spectral
//! diagnostics of the data-assimilation framework:
//!
//! - [`Complex`] — a minimal `f64` complex type.
//! - [`FftPlan`] — reusable 1-D plans; radix-2 Cooley–Tukey for power-of-two
//!   lengths, Bluestein chirp-z for everything else.
//! - [`Fft2`] — 2-D transforms with cache-blocked transposes and rayon
//!   parallelism for large grids; [`Fft2Scratch`] makes hot loops
//!   allocation-free via [`Fft2::process_with_scratch`].
//! - [`plan_cache`] — process-wide memoization of 2-D plans keyed on
//!   `(rows, cols, direction)`, shared as `Arc<Fft2>`.
//! - [`real`] — real-signal helpers and Hermitian-symmetry utilities.
//!
//! ## Conventions
//!
//! Forward: `X[k] = Σ_n x[n] e^{-2πi nk/N}` (unnormalized).
//! Inverse: `x[n] = (1/N) Σ_k X[k] e^{+2πi nk/N}`.
//! A forward followed by an inverse transform is the identity.
//!
//! ```
//! use fft::{Complex, Direction, FftPlan};
//!
//! let plan = FftPlan::new(8, Direction::Forward);
//! let mut data = vec![Complex::ONE; 8];
//! plan.process(&mut data);
//! assert!((data[0].re - 8.0).abs() < 1e-12); // DC bin picks up the sum
//! ```

#![warn(missing_docs)]
// Numeric kernels here read/write several arrays at matched indices;
// explicit index loops are the clearer idiom (butterfly kernels index multiple parallel arrays).
#![allow(clippy::needless_range_loop)]

mod bluestein;
mod complex;
mod fft2;
mod plan;
pub mod plan_cache;
mod radix2;
pub mod real;

pub use complex::Complex;
pub use fft2::{irfft2, rfft2, transpose, transpose_into, Fft2, Fft2Scratch};
pub use plan::{Direction, FftPlan};
