//! Iterative radix-2 decimation-in-time Cooley-Tukey kernel.
//!
//! The executor operates in place on a bit-reversed copy of the input and
//! walks the butterfly stages with precomputed twiddles from the plan. It is
//! deliberately allocation-free: plans own every table the kernel touches.

use crate::complex::Complex;
use crate::plan::Radix2Plan;

/// Executes an unnormalized radix-2 FFT in place using `plan`'s tables.
///
/// The caller (via [`crate::FftPlan`]) is responsible for the `1/N` inverse
/// normalization.
pub(crate) fn fft_in_place(plan: &Radix2Plan, data: &mut [Complex]) {
    let n = plan.n;
    debug_assert_eq!(data.len(), n);
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation (swap once per pair).
    for i in 0..n {
        let j = plan.bitrev[i] as usize;
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterfly stages. Stage `s` combines blocks of length 2^(s+1) from two
    // halves of length `half = 2^s`.
    for (s, tw) in plan.twiddles.iter().enumerate() {
        let half = 1usize << s;
        let block = half << 1;
        let mut base = 0;
        while base < n {
            for j in 0..half {
                let w = tw[j];
                let a = data[base + j];
                let b = data[base + j + half] * w;
                data[base + j] = a + b;
                data[base + j + half] = a - b;
            }
            base += block;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Direction, FftPlan};

    /// Naive O(n^2) DFT used as the reference implementation in tests.
    pub(crate) fn dft_naive(input: &[Complex], dir: Direction) -> Vec<Complex> {
        let n = input.len();
        let sign = dir.sign();
        let mut out = vec![Complex::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            let mut acc = Complex::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc += x * Complex::cis(theta);
            }
            if dir == Direction::Inverse {
                acc /= n as f64;
            }
            *o = acc;
        }
        out
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch: {x:?} vs {y:?} (tol {tol})"
            );
        }
    }

    #[test]
    fn matches_naive_dft_various_sizes() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let plan = FftPlan::new(n, Direction::Forward);
            let mut got = input.clone();
            plan.process(&mut got);
            let want = dft_naive(&input, Direction::Forward);
            assert_close(&got, &want, 1e-9 * n as f64);
        }
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        let n = 128;
        let input: Vec<Complex> =
            (0..n).map(|i| Complex::new(i as f64, -(i as f64) * 0.5)).collect();
        let fwd = FftPlan::new(n, Direction::Forward);
        let inv = FftPlan::new(n, Direction::Inverse);
        let mut buf = input.clone();
        fwd.process(&mut buf);
        inv.process(&mut buf);
        assert_close(&buf, &input, 1e-10 * n as f64);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 32;
        let mut buf = vec![Complex::ZERO; n];
        buf[0] = Complex::ONE;
        FftPlan::new(n, Direction::Forward).process(&mut buf);
        for z in &buf {
            assert!((*z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let n = 32;
        let mut buf = vec![Complex::ONE; n];
        FftPlan::new(n, Direction::Forward).process(&mut buf);
        assert!((buf[0] - Complex::from_re(n as f64)).abs() < 1e-10);
        for z in &buf[1..] {
            assert!(z.abs() < 1e-10);
        }
    }

    #[test]
    fn pure_tone_hits_single_bin() {
        let n = 64;
        let k0 = 5usize;
        let buf0: Vec<Complex> = (0..n)
            .map(|j| Complex::cis(2.0 * std::f64::consts::PI * (j * k0) as f64 / n as f64))
            .collect();
        let mut buf = buf0;
        FftPlan::new(n, Direction::Forward).process(&mut buf);
        for (k, z) in buf.iter().enumerate() {
            if k == k0 {
                assert!((*z - Complex::from_re(n as f64)).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leakage at bin {k}: {z:?}");
            }
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        let a: Vec<Complex> = (0..n).map(|i| Complex::new((i as f64).sin(), 0.0)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(0.0, (i as f64).cos())).collect();
        let plan = FftPlan::new(n, Direction::Forward);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.process(&mut fa);
        plan.process(&mut fb);
        let mut fab: Vec<Complex> =
            a.iter().zip(&b).map(|(x, y)| *x * 2.0 + *y * 3.0).collect();
        plan.process(&mut fab);
        for i in 0..n {
            assert!((fab[i] - (fa[i] * 2.0 + fb[i] * 3.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 256;
        let input: Vec<Complex> =
            (0..n).map(|i| Complex::new((i as f64 * 1.7).sin(), (i as f64 * 0.3).cos())).collect();
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = input;
        FftPlan::new(n, Direction::Forward).process(&mut buf);
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }
}
