//! Property-based tests for the partial-observation mask algebra and the
//! inpainting EnSF's dense-limit behavior.

use da_core::osse::MaskKind;
use da_core::{AnalysisScheme, EnsfScheme, MaskedEnsfScheme, ObsOperatorKind};
use ensf::{ArctanObs, EnsfConfig, MaskedObs, ObservationOperator};
use proptest::prelude::*;
use stats::gaussian::fill_standard_normal;
use stats::rng::member_rng;
use stats::Ensemble;

/// Decodes a sampled `(selector, a, b)` triple into a mask; every variant
/// of the enum is reachable and the parameters are clamped to `dim`.
fn decode_mask(selector: u8, a: usize, b: usize, dim: usize) -> MaskKind {
    match selector % 4 {
        0 => MaskKind::Full,
        1 => MaskKind::Block { start: a % dim, len: b % (dim + 1) },
        2 => MaskKind::Strided { stride: a % 7 + 1, phase: b },
        _ => MaskKind::Track { width: a % dim + 1, speed: b % (dim + 3) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `observed_indices` is a bijection onto the unmasked components:
    /// strictly ascending (hence injective), every listed index is
    /// observed, every omitted index is not, and the count matches
    /// `obs_dim`.
    #[test]
    fn observed_indices_biject_onto_unmasked_components(
        selector in 0u8..4,
        a in 0usize..512,
        b in 0usize..512,
        dim in 4usize..160,
        cycle in 0u64..50,
    ) {
        let mask = decode_mask(selector, a, b, dim);
        let observed = mask.observed_indices(dim, cycle);
        prop_assert_eq!(observed.len(), mask.obs_dim(dim, cycle));
        prop_assert!(observed.windows(2).all(|w| w[0] < w[1]), "not strictly ascending");
        let mut in_list = vec![false; dim];
        for &i in &observed {
            prop_assert!(i < dim, "index {} out of range {}", i, dim);
            in_list[i] = true;
        }
        for (i, &listed) in in_list.iter().enumerate() {
            prop_assert_eq!(
                listed,
                mask.is_observed(i, dim, cycle),
                "index {} listed ≠ observed", i
            );
        }
    }

    /// Composing the arctan operator with a mask commutes with component
    /// selection: masked-apply equals dense-apply restricted to the
    /// observed indices, bit for bit.
    #[test]
    fn arctan_mask_composition_commutes_with_selection(
        selector in 0u8..4,
        a in 0usize..512,
        b in 0usize..512,
        gain in 0.5f64..50.0,
        seed in 0u64..1000,
        cycle in 0u64..20,
    ) {
        let dim = 32;
        let mask = decode_mask(selector, a, b, dim);
        let observed = mask.observed_indices(dim, cycle);
        let mut rng = member_rng(seed, 0);
        let mut state = vec![0.0; dim];
        fill_standard_normal(&mut rng, &mut state);

        let dense_op = ArctanObs::with_gain(dim, 0.1, gain);
        let mut dense = vec![0.0; dim];
        dense_op.apply(&state, &mut dense);

        let masked_op = MaskedObs::arctan(dim, observed.clone(), 0.1, gain);
        let mut shrunk = vec![0.0; masked_op.obs_dim()];
        masked_op.apply(&state, &mut shrunk);

        prop_assert_eq!(shrunk.len(), observed.len());
        for (k, &i) in observed.iter().enumerate() {
            prop_assert_eq!(
                shrunk[k].to_bits(),
                dense[i].to_bits(),
                "component {} (obs slot {})", i, k
            );
        }
    }

    /// Moving-track masks never go dark and are periodic in the cycle
    /// index: advancing the cycle by `dim` returns the window to the same
    /// set of live sensors.
    #[test]
    fn track_masks_are_periodic_and_never_empty(
        width in 1usize..96,
        speed in 0usize..100,
        dim in 4usize..96,
        cycle in 0u64..200,
    ) {
        let mask = MaskKind::Track { width, speed };
        let now = mask.observed_indices(dim, cycle);
        prop_assert!(!now.is_empty(), "track went dark at cycle {}", cycle);
        let later = mask.observed_indices(dim, cycle + dim as u64);
        prop_assert_eq!(now, later, "track not periodic with period {}", dim);
    }

    /// When the mask observes everything, the inpainting scheme reduces
    /// exactly — bit for bit — to the standard dense EnSF: the inpainting
    /// path must be a strict generalization, not a parallel numerics.
    #[test]
    fn full_mask_inpainting_reduces_to_dense_ensf(
        seed in 0u64..1000,
        members in 4usize..9,
        y_shift in -2.0f64..2.0,
    ) {
        let dim = 8; // 2-level 2×2 grid, the smallest inpaintable state
        let mut forecast = Ensemble::zeros(members, dim);
        for m in 0..members {
            let mut rng = member_rng(seed, m);
            fill_standard_normal(&mut rng, forecast.member_mut(m));
        }
        let y: Vec<f64> = (0..dim).map(|i| y_shift + 0.1 * i as f64).collect();
        let config = EnsfConfig { n_steps: 4, seed: 7, ..Default::default() };

        let mut dense = EnsfScheme::new(config.clone(), dim, 0.3);
        let mut masked = MaskedEnsfScheme::new(
            config,
            dim,
            0.3,
            ObsOperatorKind::Identity,
            MaskKind::Full,
        );
        let a = dense.analyze(&forecast, &y);
        let b = masked.analyze(&forecast, &y);
        prop_assert_eq!(a.as_slice(), b.as_slice(), "full-mask inpainting drifted from dense");
    }
}
