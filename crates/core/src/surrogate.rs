//! The ViT surrogate as a forecast model, with offline pre-training on SQG
//! trajectories and the *online* fine-tuning of Fig. 1.
//!
//! Offline: roll the SQG model along its attractor and collect
//! `(state_t, state_{t+Δ})` pairs of the Δ = 12 h flow map. Online: each
//! assimilation cycle contributes the pair (previous analysis mean →
//! current analysis mean), letting the surrogate absorb information from the
//! observations — the paper's mechanism for correcting offline-trained
//! foundation models.

use crate::traits::ForecastModel;
use sqg::{SqgModel, SqgParams};
use stats::OnlineMoments;
use vit::train::{Sample, Trainer};
use vit::{SqgVit, VitConfig};

/// ViT surrogate of the SQG 12-hour flow map.
pub struct VitSurrogate {
    model: SqgVit,
    trainer: Trainer,
    /// Simulated-hours step the network was trained to predict.
    interval_hours: f64,
    /// Normalization scale (states divided by this before the network).
    scale: f64,
    /// Gradient steps taken per `assimilate_feedback` call (0 disables
    /// online learning — e.g. for the "ViT only" free run).
    pub online_steps: usize,
    /// Replay buffer of online samples.
    online_buffer: Vec<Sample>,
    /// Max replay-buffer length.
    buffer_cap: usize,
    /// Loss history (diagnostics).
    pub loss_history: Vec<f32>,
}

impl VitSurrogate {
    /// Creates an untrained surrogate for an `n × n × 2` SQG state.
    pub fn new(config: VitConfig, interval_hours: f64, lr: f32, seed: u64) -> Self {
        assert!(interval_hours > 0.0);
        VitSurrogate {
            model: SqgVit::new(config, seed),
            trainer: Trainer::new(lr, 8, seed ^ 0x7A17),
            interval_hours,
            scale: 1.0,
            online_steps: 0,
            online_buffer: Vec::new(),
            buffer_cap: 256,
            loss_history: Vec::new(),
        }
    }

    /// Generates `pairs` training pairs from an SQG trajectory started at
    /// `seed`, after `spinup` model steps.
    pub fn generate_training_data(
        params: &SqgParams,
        interval_hours: f64,
        pairs: usize,
        spinup: usize,
        seed: u64,
    ) -> Vec<(Vec<f64>, Vec<f64>)> {
        let mut model = SqgModel::new(params.clone());
        let steps = model.steps_per_hours(interval_hours);
        let mut state = model.spinup_nature(seed, 0.05, spinup).to_state_vector();
        let mut out = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            let x = state.clone();
            model.forecast(&mut state, steps);
            out.push((x, state.clone()));
        }
        out
    }

    /// Offline pre-training on `(x, y)` state pairs for `epochs` epochs.
    /// Sets the normalization scale from the data. Returns the final loss.
    pub fn pretrain(&mut self, pairs: &[(Vec<f64>, Vec<f64>)], epochs: usize) -> f32 {
        assert!(!pairs.is_empty(), "need training data");
        // Scale: RMS of the inputs keeps activations O(1).
        let mut acc = OnlineMoments::new();
        for (x, _) in pairs {
            for &v in x {
                acc.push(v * v);
            }
        }
        self.scale = acc.mean().sqrt().max(1e-12);

        let data: Vec<Sample> = pairs
            .iter()
            .map(|(x, y)| Sample { x: self.to_f32(x), y: self.to_f32(y) })
            .collect();
        let mut last = f32::NAN;
        for _ in 0..epochs {
            last = self.trainer.epoch(&mut self.model, &data);
            self.loss_history.push(last);
        }
        last
    }

    /// Online update: fine-tune on the latest analysis transition
    /// (previous analysis mean → current analysis mean), plus replay.
    pub fn online_update(&mut self, prev_analysis: &[f64], curr_analysis: &[f64], steps: usize) {
        let sample =
            Sample { x: self.to_f32(prev_analysis), y: self.to_f32(curr_analysis) };
        self.online_buffer.push(sample);
        if self.online_buffer.len() > self.buffer_cap {
            self.online_buffer.remove(0);
        }
        for _ in 0..steps {
            // Train on the freshest window of the replay buffer.
            let window = 8.min(self.online_buffer.len());
            let batch: Vec<Sample> =
                self.online_buffer[self.online_buffer.len() - window..].to_vec();
            let loss = self.trainer.step(&mut self.model, &batch);
            self.loss_history.push(loss);
        }
    }

    /// Number of learnable parameters.
    pub fn num_params(&mut self) -> usize {
        self.model.num_params()
    }

    fn to_f32(&self, state: &[f64]) -> Vec<f32> {
        state.iter().map(|&v| (v / self.scale) as f32).collect()
    }

    fn rescale_f64(&self, state: &[f32]) -> Vec<f64> {
        state.iter().map(|&v| v as f64 * self.scale).collect()
    }
}

impl ForecastModel for VitSurrogate {
    fn state_dim(&self) -> usize {
        let c = self.model.config();
        c.in_chans * c.input_size * c.input_size
    }

    fn assimilate_feedback(&mut self, prev_analysis: &[f64], curr_analysis: &[f64]) {
        if self.online_steps > 0 {
            self.online_update(prev_analysis, curr_analysis, self.online_steps);
        }
    }

    /// Checkpoints the adapted network weights (the online fine-tuning
    /// state). Optimizer moments are not captured, so a resumed run's
    /// *future* online updates are approximate — the restored forecasts
    /// themselves are exact.
    fn save_state(&mut self) -> Option<Vec<u8>> {
        Some(vit::save_weights(&mut self.model).to_vec())
    }

    fn load_state(&mut self, bytes: &[u8]) -> bool {
        let blob = bytes::Bytes::from(bytes.to_vec());
        vit::load_weights(&mut self.model, &blob).is_ok()
    }

    fn forecast(&mut self, state: &mut [f64], hours: f64) {
        let intervals = (hours / self.interval_hours).round() as usize;
        assert!(
            (hours - intervals as f64 * self.interval_hours).abs() < 1e-9,
            "surrogate trained for {}h intervals, asked for {hours}h",
            self.interval_hours
        );
        for _ in 0..intervals {
            let x = self.to_f32(state);
            let y = self.model.predict(&x);
            state.copy_from_slice(&self.rescale_f64(&y));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> SqgParams {
        SqgParams { n: 16, ..Default::default() }
    }

    fn small_vit() -> VitConfig {
        VitConfig::small(16)
    }

    #[test]
    fn training_data_consecutive_pairs_chain() {
        let pairs =
            VitSurrogate::generate_training_data(&small_params(), 12.0, 4, 10, 1);
        assert_eq!(pairs.len(), 4);
        // y of pair k is x of pair k+1 (a single trajectory).
        for w in pairs.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        // Pairs must differ (the model moves).
        for (x, y) in &pairs {
            let d: f64 = x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum();
            assert!(d > 1e-10);
        }
    }

    #[test]
    fn pretraining_beats_persistence_proxy() {
        // After pre-training, the surrogate's prediction should be closer to
        // the true 12 h evolution than an untrained network's output is.
        let params = small_params();
        let pairs = VitSurrogate::generate_training_data(&params, 12.0, 24, 50, 2);
        let mut sur = VitSurrogate::new(small_vit(), 12.0, 3e-3, 7);
        let first_loss = sur.pretrain(&pairs[..16], 1);
        let final_loss = sur.pretrain(&pairs[..16], 30);
        assert!(
            final_loss < 0.7 * first_loss,
            "pre-training must reduce loss: {first_loss} -> {final_loss}"
        );
    }

    #[test]
    fn forecast_respects_interval() {
        let pairs = VitSurrogate::generate_training_data(&small_params(), 12.0, 4, 10, 3);
        let mut sur = VitSurrogate::new(small_vit(), 12.0, 1e-3, 5);
        sur.pretrain(&pairs, 2);
        let mut state = pairs[0].0.clone();
        sur.forecast(&mut state, 24.0); // two intervals: fine
        assert!(state.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic]
    fn fractional_interval_rejected() {
        let pairs = VitSurrogate::generate_training_data(&small_params(), 12.0, 2, 5, 4);
        let mut sur = VitSurrogate::new(small_vit(), 12.0, 1e-3, 5);
        sur.pretrain(&pairs, 1);
        let mut state = pairs[0].0.clone();
        sur.forecast(&mut state, 7.0);
    }

    #[test]
    fn online_update_reduces_loss_on_new_regime() {
        let mut sur = VitSurrogate::new(small_vit(), 12.0, 3e-3, 9);
        // Pretrain on a trivial map so scale is set.
        let dim = 512;
        let pairs: Vec<(Vec<f64>, Vec<f64>)> = (0..8)
            .map(|k| {
                let x: Vec<f64> = (0..dim).map(|i| ((i + k) as f64 * 0.1).sin()).collect();
                (x.clone(), x)
            })
            .collect();
        sur.pretrain(&pairs, 5);
        // New regime: negated identity.
        let x: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.05).cos()).collect();
        let y: Vec<f64> = x.iter().map(|v| -v).collect();
        let err_before = {
            let mut s = x.clone();
            sur.forecast(&mut s, 12.0);
            stats::metrics::rmse(&s, &y)
        };
        for _ in 0..40 {
            sur.online_update(&x, &y, 2);
        }
        let err_after = {
            let mut s = x.clone();
            sur.forecast(&mut s, 12.0);
            stats::metrics::rmse(&s, &y)
        };
        assert!(
            err_after < 0.6 * err_before,
            "online updates must adapt: {err_before} -> {err_after}"
        );
    }

    #[test]
    fn state_dim_matches_config() {
        let sur = VitSurrogate::new(small_vit(), 12.0, 1e-3, 1);
        assert_eq!(sur.state_dim(), 512);
    }
}
