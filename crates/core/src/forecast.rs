//! Forecast-model adapters: the physics-based SQG model (perfect or
//! imperfect) as a [`ForecastModel`].

use crate::model_error::ModelError;
use crate::traits::ForecastModel;
use sqg::{SqgModel, SqgParams};

/// The SQG model as a forecast model, optionally corrupted by the
/// stochastic model-error process after each forecast interval
/// (the paper's imperfect-model scenario).
pub struct SqgForecast {
    model: SqgModel,
    error: Option<ModelError>,
}

impl SqgForecast {
    /// Perfect-model forecaster.
    pub fn perfect(params: SqgParams) -> Self {
        SqgForecast { model: SqgModel::new(params), error: None }
    }

    /// Imperfect-model forecaster: `error` fires once per `forecast` call.
    pub fn imperfect(params: SqgParams, error: ModelError) -> Self {
        SqgForecast { model: SqgModel::new(params), error: Some(error) }
    }

    /// Access to the wrapped model (diagnostics, spin-up).
    pub fn model_mut(&mut self) -> &mut SqgModel {
        &mut self.model
    }

    /// SQG parameters.
    pub fn params(&self) -> &SqgParams {
        self.model.params()
    }
}

impl ForecastModel for SqgForecast {
    fn state_dim(&self) -> usize {
        self.model.state_dim()
    }

    fn forecast(&mut self, state: &mut [f64], hours: f64) {
        let steps = self.model.steps_per_hours(hours);
        self.model.forecast(state, steps);
        if let Some(err) = &mut self.error {
            err.perturb(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_error::ModelErrorConfig;

    fn params() -> SqgParams {
        SqgParams { n: 16, ..Default::default() }
    }

    #[test]
    fn perfect_forecast_is_deterministic() {
        let mut a = SqgForecast::perfect(params());
        let mut b = SqgForecast::perfect(params());
        let ic = a.model_mut().spinup_nature(3, 0.05, 5).to_state_vector();
        let mut s1 = ic.clone();
        let mut s2 = ic;
        a.forecast(&mut s1, 12.0);
        b.forecast(&mut s2, 12.0);
        assert_eq!(s1, s2);
    }

    #[test]
    fn imperfect_forecast_differs_from_perfect() {
        let mut perfect = SqgForecast::perfect(params());
        let mut imperfect = SqgForecast::imperfect(
            params(),
            ModelError::new(
                // Always-on error so the test is deterministic in effect.
                ModelErrorConfig { probabilities: vec![1.0], amplitudes: vec![0.2] },
                1,
            ),
        );
        let ic = perfect.model_mut().spinup_nature(3, 0.05, 5).to_state_vector();
        let mut s1 = ic.clone();
        let mut s2 = ic;
        perfect.forecast(&mut s1, 12.0);
        imperfect.forecast(&mut s2, 12.0);
        let diff: f64 = s1.iter().zip(&s2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-8, "model error must perturb the forecast");
    }

    #[test]
    fn state_dim_matches_grid() {
        let f = SqgForecast::perfect(params());
        assert_eq!(f.state_dim(), 512);
    }
}
