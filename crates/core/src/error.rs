//! Typed errors for the OSSE harness and the supervised cycling loop.
//!
//! The seed harness aborted on configuration mismatches (`assert_eq!`),
//! which is fine for twin experiments run by hand but useless for callers
//! that must *report* failures — bench binaries, CI jobs, or a future
//! service layer. Everything the cycling stack can refuse to do is an
//! [`OsseError`] instead.

use crate::resilience::CheckpointError;

/// Why an OSSE experiment could not run (or could not continue).
#[derive(Debug, Clone, PartialEq)]
pub enum OsseError {
    /// The forecast model's state dimension differs from the nature run's.
    DimensionMismatch {
        /// `model.state_dim()`.
        model: usize,
        /// Dimension of the nature-run truth states.
        nature: usize,
    },
    /// The nature run carries no truth states at all.
    EmptyNatureRun,
    /// The nature run holds fewer observations than the requested cycles.
    ObservationShortfall {
        /// Cycles requested by the configuration.
        cycles: usize,
        /// Observations available in the nature run.
        observations: usize,
    },
    /// The supervised loop ran out of recovery options at a cycle (e.g.
    /// every ensemble member went non-finite at once).
    Unrecoverable {
        /// Zero-based cycle index where cycling had to stop.
        cycle: usize,
        /// Human-readable cause.
        reason: String,
    },
    /// Writing or reading a cycle checkpoint failed.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for OsseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsseError::DimensionMismatch { model, nature } => {
                write!(f, "model state dimension {model} does not match nature run {nature}")
            }
            OsseError::EmptyNatureRun => write!(f, "nature run has no truth states"),
            OsseError::ObservationShortfall { cycles, observations } => {
                write!(f, "{cycles} cycles requested but only {observations} observations available")
            }
            OsseError::Unrecoverable { cycle, reason } => {
                write!(f, "cycle {cycle} unrecoverable: {reason}")
            }
            OsseError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for OsseError {}

impl From<CheckpointError> for OsseError {
    fn from(e: CheckpointError) -> Self {
        OsseError::Checkpoint(e)
    }
}
