//! Wiring between the pure statistics in [`stats::diagnostics`] and the
//! [`telemetry::DaDiagnostics`] payload attached to cycle records.
//!
//! The diagnostics split across the analysis step: the O−F innovation
//! moments, chi-squared consistency, and rank histogram are functions of
//! the **forecast** ensemble (capture them with [`forecast_stats`] before
//! calling the analysis scheme), while the O−A residual moments and the
//! spread–skill ratio are functions of the **analysis** ensemble
//! ([`complete`]). Callers pass the truth-based RMSE they already compute
//! as the skill denominator, so no extra passes over the state are needed.

use stats::diagnostics as sd;
use stats::Ensemble;
use telemetry::DaDiagnostics;

/// Observation-space statistics of the forecast ensemble, captured before
/// the analysis update overwrites it.
#[derive(Debug, Clone)]
pub struct ForecastObsStats {
    /// Mean of the O−F innovation.
    pub of_mean: f64,
    /// Variance of the O−F innovation.
    pub of_var: f64,
    /// Chi-squared innovation consistency per degree of freedom.
    pub chi2: f64,
    /// Rank histogram of the observations against the forecast ensemble.
    pub rank_hist: Vec<u64>,
}

/// Computes the forecast half of the per-cycle diagnostics: innovation
/// moments, chi-squared consistency, and the rank histogram (subsampled
/// via [`sd::rank_histogram_stride`] so cost stays bounded at any state
/// dimension).
///
/// # Panics
/// Panics if `y` does not match the ensemble dimension or `sigma_obs` is
/// not positive.
pub fn forecast_stats(forecast: &Ensemble, y: &[f64], sigma_obs: f64) -> ForecastObsStats {
    let mean = forecast.mean();
    let (of_mean, of_var) = sd::residual_moments(&mean, y);
    ForecastObsStats {
        of_mean,
        of_var,
        chi2: sd::chi_squared(forecast, y, sigma_obs),
        rank_hist: sd::rank_histogram(forecast, y, sd::rank_histogram_stride(y.len())),
    }
}

/// Completes the per-cycle diagnostics after the analysis update: O−A
/// residual moments from the analysis ensemble plus the spread–skill
/// ratio, with `skill_rmse` the truth-based analysis RMSE the harness
/// already computed (the skill denominator).
///
/// # Panics
/// Panics if `y` does not match the analysis ensemble dimension.
pub fn complete(
    pre: &ForecastObsStats,
    analysis: &Ensemble,
    y: &[f64],
    skill_rmse: f64,
) -> DaDiagnostics {
    let mean = analysis.mean();
    let (oa_mean, oa_var) = sd::residual_moments(&mean, y);
    DaDiagnostics {
        of_mean: pre.of_mean,
        of_var: pre.of_var,
        oa_mean,
        oa_var,
        chi2: pre.chi2,
        spread_skill: sd::spread_skill(analysis.spread(), skill_rmse),
        rank_hist: pre.rank_hist.clone(),
    }
}

/// Projects an ensemble into the observation space of a masked operator:
/// each member is mapped through `h` at the observed components for the
/// given cycle, yielding a reduced ensemble whose dimension matches the
/// shrunk observation vector.
pub fn project_ensemble(
    ens: &Ensemble,
    operator: crate::osse::ObsOperatorKind,
    mask: crate::osse::MaskKind,
    cycle: u64,
) -> Ensemble {
    let observed = mask.observed_indices(ens.dim(), cycle);
    let mut out = Ensemble::zeros(ens.members(), observed.len());
    for m in 0..ens.members() {
        let src = ens.member(m);
        let dst = out.member_mut(m);
        for (d, &i) in dst.iter_mut().zip(&observed) {
            *d = operator.h(src[i]);
        }
    }
    out
}

/// Mask-aware [`forecast_stats`]: full masks take the dense path bitwise
/// unchanged; partial masks project the forecast ensemble through `h` at
/// the cycle's observed components so the statistics compare like with
/// like against the shrunk observation vector.
pub fn forecast_stats_masked(
    forecast: &Ensemble,
    y: &[f64],
    sigma_obs: f64,
    operator: crate::osse::ObsOperatorKind,
    mask: crate::osse::MaskKind,
    cycle: u64,
) -> ForecastObsStats {
    if mask.is_full() {
        forecast_stats(forecast, y, sigma_obs)
    } else {
        forecast_stats(&project_ensemble(forecast, operator, mask, cycle), y, sigma_obs)
    }
}

/// Mask-aware [`complete`] (same projection contract as
/// [`forecast_stats_masked`]).
pub fn complete_masked(
    pre: &ForecastObsStats,
    analysis: &Ensemble,
    y: &[f64],
    skill_rmse: f64,
    operator: crate::osse::ObsOperatorKind,
    mask: crate::osse::MaskKind,
    cycle: u64,
) -> DaDiagnostics {
    if mask.is_full() {
        complete(pre, analysis, y, skill_rmse)
    } else {
        // Spread–skill still uses the full-state analysis spread and the
        // truth-based RMSE; only the obs-space residuals are projected.
        let projected = project_ensemble(analysis, operator, mask, cycle);
        let (oa_mean, oa_var) = sd::residual_moments(&projected.mean(), y);
        DaDiagnostics {
            of_mean: pre.of_mean,
            of_var: pre.of_var,
            oa_mean,
            oa_var,
            chi2: pre.chi2,
            spread_skill: sd::spread_skill(analysis.spread(), skill_rmse),
            rank_hist: pre.rank_hist.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osse::{MaskKind, ObsOperatorKind};

    fn three_member() -> Ensemble {
        Ensemble::from_members(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]])
    }

    #[test]
    fn forecast_stats_match_underlying_functions() {
        let ens = three_member();
        let y = [2.5, 1.5];
        let s = forecast_stats(&ens, &y, 0.5);
        // Forecast mean is [2, 2]: residuals are [0.5, -0.5].
        assert!(s.of_mean.abs() < 1e-15);
        assert!((s.of_var - 0.25).abs() < 1e-15);
        assert_eq!(s.rank_hist, sd::rank_histogram(&ens, &y, 1));
        assert!((s.chi2 - sd::chi_squared(&ens, &y, 0.5)).abs() < 1e-15);
    }

    #[test]
    fn complete_merges_both_halves() {
        let ens = three_member();
        let y = [2.5, 1.5];
        let pre = forecast_stats(&ens, &y, 0.5);
        let d = complete(&pre, &ens, &y, 0.1);
        assert_eq!(d.of_mean, pre.of_mean);
        assert_eq!(d.chi2, pre.chi2);
        assert_eq!(d.rank_hist, pre.rank_hist);
        assert!(d.oa_var > 0.0);
        assert!((d.spread_skill - ens.spread() / 0.1).abs() < 1e-12);
        // Zero skill never yields a non-finite ratio.
        assert_eq!(complete(&pre, &ens, &y, 0.0).spread_skill, 0.0);
    }

    #[test]
    fn masked_diagnostics_project_to_observed_components() {
        let ens = three_member();
        // Observe only component 1.
        let mask = MaskKind::Block { start: 0, len: 1 };
        let y = [1.5];
        let pre = forecast_stats_masked(&ens, &y, 0.5, ObsOperatorKind::Identity, mask, 0);
        // Projected mean is [2.0]: residual −0.5.
        assert!((pre.of_mean + 0.5).abs() < 1e-15);
        let d = complete_masked(&pre, &ens, &y, 0.1, ObsOperatorKind::Identity, mask, 0);
        assert!((d.oa_mean + 0.5).abs() < 1e-15);
        assert!((d.spread_skill - ens.spread() / 0.1).abs() < 1e-12);
    }

    #[test]
    fn full_mask_diagnostics_take_the_dense_path() {
        let ens = three_member();
        let y = [2.5, 1.5];
        let dense = forecast_stats(&ens, &y, 0.5);
        let via_mask =
            forecast_stats_masked(&ens, &y, 0.5, ObsOperatorKind::Identity, MaskKind::Full, 3);
        assert_eq!(dense.of_mean.to_bits(), via_mask.of_mean.to_bits());
        assert_eq!(dense.chi2.to_bits(), via_mask.chi2.to_bits());
        assert_eq!(dense.rank_hist, via_mask.rank_hist);
    }

    #[test]
    fn project_ensemble_applies_operator_at_observed_indices() {
        let ens = three_member();
        let mask = MaskKind::Block { start: 1, len: 1 };
        let gain = 2.0;
        let p = project_ensemble(&ens, ObsOperatorKind::Arctan { gain }, mask, 0);
        assert_eq!(p.dim(), 1);
        assert_eq!(p.members(), 3);
        assert!((p.member(2)[0] - (gain * 3.0f64).atan()).abs() < 1e-15);
    }
}
