//! Observing-system simulation experiment (OSSE) harness.
//!
//! Twin experiments exactly as in §IV-A: a *nature run* of the perfect SQG
//! model provides the truth; synthetic observations are the truth plus
//! Gaussian noise every `obs_interval_hours` (12 h in the paper, `h = I`,
//! `R = σ² I`); the experiment under test forecasts with its own (possibly
//! imperfect, possibly surrogate) model and assimilates with its scheme.

use crate::model_error::ModelError;
use crate::traits::{AnalysisScheme, ForecastModel};
use sqg::{SqgModel, SqgParams};
use stats::gaussian::standard_normal;
use stats::rng::seeded;
use stats::Ensemble;

/// The observation operator `h` of the OSSE scenario, applied componentwise
/// to the truth when observations are generated (and by schemes/guardrails
/// when comparing states against observations).
///
/// `Identity` reproduces the paper's baseline `h = I` bit-for-bit;
/// `Arctan` promotes the `nonlinear_obs` stress operator
/// `h(x) = arctan(γ x)` (the EnSF papers' saturating nonlinearity) into
/// the standard scenario configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ObsOperatorKind {
    /// Direct observation of every state component (`h = I`).
    #[default]
    Identity,
    /// Componentwise saturating observation `h(x) = arctan(gain · x)`.
    Arctan {
        /// Saturation gain γ (> 0): larger values bite harder.
        gain: f64,
    },
}

impl ObsOperatorKind {
    /// Applies `h` to one state component.
    pub fn h(self, v: f64) -> f64 {
        match self {
            ObsOperatorKind::Identity => v,
            ObsOperatorKind::Arctan { gain } => (gain * v).atan(),
        }
    }

    /// Maps a full state into observation space.
    pub fn apply(self, state: &[f64]) -> Vec<f64> {
        state.iter().map(|&v| self.h(v)).collect()
    }
}

/// Which state components the observing network actually sees.
///
/// A mask composes with [`ObsOperatorKind`]: the operator maps state to
/// observation space componentwise, the mask then *selects* which of those
/// components reach the filter. The observation vector shrinks to the
/// observed components in ascending state-index order — unobserved state is
/// reconstructed by the filter (inpainting), never fabricated by the OSSE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaskKind {
    /// Every component observed (the paper's baseline network).
    #[default]
    Full,
    /// Contiguous sensor outage: components `[start, start + len)` are
    /// unobserved (clamped to the state dimension).
    Block {
        /// First unobserved component.
        start: usize,
        /// Number of unobserved components.
        len: usize,
    },
    /// Strided network with gaps: component `i` is observed iff
    /// `i % stride == phase`.
    Strided {
        /// Spacing between observed components (≥ 1).
        stride: usize,
        /// Offset of the observed comb (< `stride`).
        phase: usize,
    },
    /// Moving satellite track: a wrapping window of `width` observed
    /// components whose start advances by `speed` components per cycle.
    /// Periodic in the cycle index with period dividing the state dim.
    Track {
        /// Observed window width (≥ 1).
        width: usize,
        /// Window advance per assimilation cycle.
        speed: usize,
    },
}

impl MaskKind {
    /// True when the mask hides nothing (all fast paths stay bitwise
    /// identical to the pre-mask code under this).
    pub fn is_full(self) -> bool {
        match self {
            MaskKind::Full => true,
            MaskKind::Block { len, .. } => len == 0,
            MaskKind::Strided { stride, .. } => stride <= 1,
            MaskKind::Track { width: _, speed: _ } => false,
        }
    }

    /// Is state component `i` observed at assimilation `cycle` (0-based)
    /// in a state of dimension `dim`?
    pub fn is_observed(self, i: usize, dim: usize, cycle: u64) -> bool {
        debug_assert!(i < dim);
        match self {
            MaskKind::Full => true,
            MaskKind::Block { start, len } => !(i >= start && i < start.saturating_add(len)),
            MaskKind::Strided { stride, phase } => {
                if stride <= 1 {
                    true
                } else {
                    i % stride == phase % stride
                }
            }
            MaskKind::Track { width, speed } => {
                if width >= dim {
                    return true;
                }
                let d = dim as u64;
                let start = ((speed as u64 % d) * (cycle % d)) % d;
                ((i as u64 + d - start) % d) < width as u64
            }
        }
    }

    /// Ascending state indices observed at `cycle` — the bijection from
    /// observation-vector slots onto unmasked components.
    pub fn observed_indices(self, dim: usize, cycle: u64) -> Vec<usize> {
        (0..dim).filter(|&i| self.is_observed(i, dim, cycle)).collect()
    }

    /// Number of observed components at `cycle`.
    pub fn obs_dim(self, dim: usize, cycle: u64) -> usize {
        match self {
            MaskKind::Full => dim,
            MaskKind::Block { start, len } => {
                dim - (start.saturating_add(len)).min(dim).saturating_sub(start.min(dim))
            }
            _ => (0..dim).filter(|&i| self.is_observed(i, dim, cycle)).count(),
        }
    }

    /// Short label for scenario names and telemetry keys.
    pub fn label(self) -> String {
        match self {
            MaskKind::Full => "full".to_string(),
            MaskKind::Block { start, len } => format!("block{start}+{len}"),
            MaskKind::Strided { stride, phase } => format!("stride{stride}p{phase}"),
            MaskKind::Track { width, speed } => format!("track{width}v{speed}"),
        }
    }
}

/// OSSE configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct OsseConfig {
    /// SQG parameters of the nature run (and the DA model's grid).
    pub params: SqgParams,
    /// Number of assimilation cycles.
    pub cycles: usize,
    /// Hours between observations (12 in the paper).
    pub obs_interval_hours: f64,
    /// Observation error standard deviation (in observation units).
    pub obs_sigma: f64,
    /// Observation operator `h` (identity in the paper's baseline).
    pub obs_operator: ObsOperatorKind,
    /// Observing-network mask (full coverage in the paper's baseline).
    /// Non-full masks shrink each cycle's observation vector to the
    /// observed components, in ascending state-index order.
    pub obs_mask: MaskKind,
    /// Ensemble size `M` (20 in the paper).
    pub ens_size: usize,
    /// Initial-condition perturbation std for ensemble generation.
    pub ic_sigma: f64,
    /// Nature-run spin-up steps before cycling starts.
    pub spinup_steps: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for OsseConfig {
    fn default() -> Self {
        OsseConfig {
            params: SqgParams::default(),
            cycles: 50,
            obs_interval_hours: 12.0,
            obs_sigma: 0.01,
            obs_operator: ObsOperatorKind::Identity,
            obs_mask: MaskKind::Full,
            ens_size: 20,
            ic_sigma: 0.02,
            spinup_steps: 500,
            seed: 42,
        }
    }
}

/// Truth states and synthetic observations for every cycle.
#[derive(Debug, Clone)]
pub struct NatureRun {
    /// Truth at each cycle (index 0 = the initial truth before cycling).
    pub truth: Vec<Vec<f64>>,
    /// Observation (truth + noise) at cycles `1..=cycles`.
    pub observations: Vec<Vec<f64>>,
    /// Climatological standard deviation of the truth states (for scaling).
    pub climatology_sd: f64,
}

/// Generates the nature run with the *perfect* SQG model.
pub fn nature_run(config: &OsseConfig) -> NatureRun {
    nature_run_with_error(config, None)
}

/// Generates the nature run, optionally perturbing the *truth* with the
/// stochastic model-error process after every observation interval — the
/// paper's imperfect-model scenario: the real atmosphere is subject to
/// "unexpected errors" the forecast model does not represent, so the DA
/// system's model drifts away from reality between observations.
pub fn nature_run_with_error(
    config: &OsseConfig,
    mut error: Option<ModelError>,
) -> NatureRun {
    let mut model = SqgModel::new(config.params.clone());
    let steps = model.steps_per_hours(config.obs_interval_hours);
    let mut state = model
        .spinup_nature(config.seed, 0.05, config.spinup_steps)
        .to_state_vector();

    let mut rng = seeded(stats::rng::split_seed(config.seed, 0x0B5));
    let mut truth = Vec::with_capacity(config.cycles + 1);
    let mut observations = Vec::with_capacity(config.cycles);
    truth.push(state.clone());
    for cycle in 0..config.cycles {
        model.forecast(&mut state, steps);
        if let Some(err) = error.as_mut() {
            err.perturb(&mut state);
        }
        truth.push(state.clone());
        // The full-mask arm must stay byte-identical to the pre-mask code:
        // one normal per state component from the same stream. The masked
        // arm draws one normal per *observed* component (same stream, fewer
        // draws), in ascending state-index order.
        let obs: Vec<f64> = if config.obs_mask.is_full() {
            state
                .iter()
                .map(|&v| config.obs_operator.h(v) + config.obs_sigma * standard_normal(&mut rng))
                .collect()
        } else {
            config
                .obs_mask
                .observed_indices(state.len(), cycle as u64)
                .into_iter()
                .map(|i| {
                    config.obs_operator.h(state[i])
                        + config.obs_sigma * standard_normal(&mut rng)
                })
                .collect()
        };
        observations.push(obs);
    }
    // Climatology: std over all truth states about their global mean.
    let all: Vec<f64> = truth.iter().flatten().copied().collect();
    let mean = all.iter().sum::<f64>() / all.len() as f64;
    let sd =
        (all.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / all.len() as f64).sqrt();
    NatureRun { truth, observations, climatology_sd: sd }
}

/// Builds the initial ensemble: the initial truth plus independent Gaussian
/// perturbations of std `ic_sigma` (a stand-in for the paper's random draws
/// from a long integration, which live on the same attractor).
pub fn initial_ensemble(config: &OsseConfig, truth0: &[f64]) -> Ensemble {
    let mut ens = Ensemble::zeros(config.ens_size, truth0.len());
    for m in 0..config.ens_size {
        let mut rng = stats::rng::member_rng(config.seed ^ 0xE45, m);
        let member = ens.member_mut(m);
        for (x, t) in member.iter_mut().zip(truth0) {
            *x = t + config.ic_sigma * standard_normal(&mut rng);
        }
    }
    ens
}

/// Per-cycle verification series from one experiment.
#[derive(Debug, Clone)]
pub struct CycleSeries {
    /// Experiment label.
    pub label: String,
    /// Simulated time (hours) of each analysis.
    pub hours: Vec<f64>,
    /// Analysis-mean RMSE against the truth.
    pub rmse: Vec<f64>,
    /// Analysis ensemble spread.
    pub spread: Vec<f64>,
    /// Final-cycle analysis mean (Fig. 5 snapshots).
    pub final_mean: Vec<f64>,
}

impl CycleSeries {
    /// Mean RMSE over the last half of the cycles (steady-state skill).
    ///
    /// Degenerate series are handled rather than poisoned: an empty series
    /// returns `0.0` (no cycles, no error) and a single-cycle series
    /// returns that cycle's RMSE.
    pub fn steady_rmse(&self) -> f64 {
        if self.rmse.is_empty() {
            return 0.0;
        }
        let tail = &self.rmse[self.rmse.len() / 2..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Checks that a nature run, configuration, and model agree before cycling.
pub(crate) fn validate_experiment(
    config: &OsseConfig,
    nature: &NatureRun,
    model: &dyn ForecastModel,
) -> Result<(), crate::OsseError> {
    let Some(truth0) = nature.truth.first() else {
        return Err(crate::OsseError::EmptyNatureRun);
    };
    if model.state_dim() != truth0.len() {
        return Err(crate::OsseError::DimensionMismatch {
            model: model.state_dim(),
            nature: truth0.len(),
        });
    }
    if nature.observations.len() < config.cycles || nature.truth.len() < config.cycles + 1 {
        return Err(crate::OsseError::ObservationShortfall {
            cycles: config.cycles,
            observations: nature.observations.len().min(nature.truth.len().saturating_sub(1)),
        });
    }
    Ok(())
}

/// Runs one DA experiment against a prepared nature run.
///
/// After every analysis, `model.assimilate_feedback` receives the analyzed
/// transition (previous analysis mean → current analysis mean) — the online
/// training channel of Fig. 1; physics models ignore it.
///
/// Configuration mismatches (wrong model dimension, empty or too-short
/// nature run) are reported as [`crate::OsseError`] instead of aborting,
/// so batch drivers can skip a bad experiment and keep going. For cycling
/// that also survives *runtime* faults, see
/// [`resilience::run_supervised`](crate::resilience::run_supervised).
pub fn run_experiment(
    label: &str,
    config: &OsseConfig,
    nature: &NatureRun,
    model: &mut dyn ForecastModel,
    scheme: &mut dyn AnalysisScheme,
) -> Result<CycleSeries, crate::OsseError> {
    validate_experiment(config, nature, model)?;
    let mut ensemble = initial_ensemble(config, &nature.truth[0]);
    let mut hours = Vec::with_capacity(config.cycles);
    let mut rmse = Vec::with_capacity(config.cycles);
    let mut spread = Vec::with_capacity(config.cycles);
    let mut prev_mean = ensemble.mean();

    for cycle in 0..config.cycles {
        let _cycle_span = telemetry::span!("osse.cycle");
        // Forecast every member to the next observation time.
        let t_fc = telemetry::enabled().then(std::time::Instant::now);
        model.forecast_ensemble(&mut ensemble, config.obs_interval_hours);
        let forecast_secs = t_fc.map(|t| t.elapsed().as_secs_f64());
        // Forecast half of the per-cycle diagnostics, captured before the
        // analysis overwrites the forecast ensemble (projected through the
        // mask when the network is partial).
        let pre_diag = telemetry::enabled().then(|| {
            crate::diagnostics::forecast_stats_masked(
                &ensemble,
                &nature.observations[cycle],
                config.obs_sigma,
                config.obs_operator,
                config.obs_mask,
                cycle as u64,
            )
        });
        // Analysis.
        let t_an = telemetry::enabled().then(std::time::Instant::now);
        let analysis = scheme.analyze(&ensemble, &nature.observations[cycle]);
        let analysis_secs = t_an.map(|t| t.elapsed().as_secs_f64());
        ensemble = analysis;

        let mean = ensemble.mean();
        hours.push((cycle + 1) as f64 * config.obs_interval_hours);
        rmse.push(stats::metrics::rmse(&mean, &nature.truth[cycle + 1]));
        spread.push(ensemble.spread());

        if telemetry::enabled() {
            telemetry::record_cycle(telemetry::CycleRecord {
                label: label.to_string(),
                cycle,
                hours: (cycle + 1) as f64 * config.obs_interval_hours,
                // INVARIANT: both series were pushed to this cycle above.
                rmse: *rmse.last().unwrap(),
                spread: *spread.last().unwrap(), // INVARIANT: pushed above
                obs_count: nature.observations[cycle].len(),
                phases: vec![
                    ("forecast".to_string(), forecast_secs.unwrap_or(0.0)),
                    ("analysis".to_string(), analysis_secs.unwrap_or(0.0)),
                ],
                events: Vec::new(),
                diagnostics: pre_diag.as_ref().map(|pre| {
                    crate::diagnostics::complete_masked(
                        pre,
                        &ensemble,
                        &nature.observations[cycle],
                        // INVARIANT: rmse was pushed for this cycle above.
                        *rmse.last().unwrap(),
                        config.obs_operator,
                        config.obs_mask,
                        cycle as u64,
                    )
                }),
            });
        }

        model.assimilate_feedback(&prev_mean, &mean);
        prev_mean = mean;
    }

    Ok(CycleSeries {
        label: label.to_string(),
        hours,
        rmse,
        spread,
        final_mean: ensemble.mean(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast::SqgForecast;
    use crate::traits::{EnsfScheme, NoAssimilation};

    fn tiny_config() -> OsseConfig {
        OsseConfig {
            params: SqgParams { n: 16, ..Default::default() },
            cycles: 5,
            obs_sigma: 0.005,
            ens_size: 8,
            ic_sigma: 0.01,
            spinup_steps: 40,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn nature_run_shapes_and_determinism() {
        let cfg = tiny_config();
        let a = nature_run(&cfg);
        let b = nature_run(&cfg);
        assert_eq!(a.truth.len(), 6);
        assert_eq!(a.observations.len(), 5);
        assert_eq!(a.truth[0].len(), 512);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.observations, b.observations);
        assert!(a.climatology_sd > 0.0);
    }

    #[test]
    fn observations_are_noisy_truth() {
        let cfg = tiny_config();
        let nr = nature_run(&cfg);
        for (obs, truth) in nr.observations.iter().zip(&nr.truth[1..]) {
            let err = stats::metrics::rmse(obs, truth);
            assert!(
                (err - cfg.obs_sigma).abs() < 0.3 * cfg.obs_sigma,
                "obs noise should be ≈{}: {err}",
                cfg.obs_sigma
            );
        }
    }

    #[test]
    fn arctan_operator_observes_saturated_truth() {
        let gain = 40.0;
        let cfg = OsseConfig {
            obs_operator: ObsOperatorKind::Arctan { gain },
            ..tiny_config()
        };
        let nr = nature_run(&cfg);
        for (obs, truth) in nr.observations.iter().zip(&nr.truth[1..]) {
            let h_truth: Vec<f64> = truth.iter().map(|&v| (gain * v).atan()).collect();
            let err = stats::metrics::rmse(obs, &h_truth);
            assert!(
                (err - cfg.obs_sigma).abs() < 0.3 * cfg.obs_sigma,
                "obs noise about h(truth) should be ≈{}: {err}",
                cfg.obs_sigma
            );
            // The saturating operator genuinely moved the observations.
            assert!(stats::metrics::rmse(obs, truth) > 2.0 * cfg.obs_sigma);
        }
        // Identity config stays bitwise what it always was (the golden
        // harness depends on this: the operator is a no-op map).
        let id = nature_run(&tiny_config());
        let id2 = nature_run(&OsseConfig {
            obs_operator: ObsOperatorKind::Identity,
            ..tiny_config()
        });
        assert_eq!(id.observations, id2.observations);
    }

    #[test]
    fn full_mask_nature_run_is_bitwise_unchanged() {
        // The mask plumbing must not perturb the baseline RNG stream.
        let plain = nature_run(&tiny_config());
        let full = nature_run(&OsseConfig { obs_mask: MaskKind::Full, ..tiny_config() });
        assert_eq!(plain.observations, full.observations);
        assert_eq!(plain.truth, full.truth);
    }

    #[test]
    fn block_mask_shrinks_observations_to_observed_components() {
        let mask = MaskKind::Block { start: 128, len: 128 };
        let cfg = OsseConfig { obs_mask: mask, ..tiny_config() };
        let nr = nature_run(&cfg);
        for (cycle, (obs, truth)) in nr.observations.iter().zip(&nr.truth[1..]).enumerate() {
            let idx = mask.observed_indices(truth.len(), cycle as u64);
            assert_eq!(obs.len(), idx.len());
            assert_eq!(obs.len(), 512 - 128);
            let h_truth: Vec<f64> = idx.iter().map(|&i| truth[i]).collect();
            let err = stats::metrics::rmse(obs, &h_truth);
            assert!((err - cfg.obs_sigma).abs() < 0.3 * cfg.obs_sigma, "{err}");
        }
    }

    #[test]
    fn track_mask_moves_with_the_cycle_index() {
        let mask = MaskKind::Track { width: 100, speed: 37 };
        let cfg = OsseConfig { obs_mask: mask, ..tiny_config() };
        let nr = nature_run(&cfg);
        let dim = nr.truth[0].len();
        let mut seen: Vec<Vec<usize>> = Vec::new();
        for (cycle, (obs, truth)) in nr.observations.iter().zip(&nr.truth[1..]).enumerate() {
            let idx = mask.observed_indices(dim, cycle as u64);
            assert_eq!(obs.len(), idx.len());
            assert_eq!(obs.len(), 100);
            let h_truth: Vec<f64> = idx.iter().map(|&i| truth[i]).collect();
            assert!(stats::metrics::rmse(obs, &h_truth) < 2.0 * cfg.obs_sigma);
            seen.push(idx);
        }
        assert_ne!(seen[0], seen[1], "the track must move between cycles");
    }

    #[test]
    fn mask_obs_dim_matches_observed_indices() {
        let dim = 512;
        let masks = [
            MaskKind::Full,
            MaskKind::Block { start: 0, len: 64 },
            MaskKind::Block { start: 400, len: 200 }, // clamped at dim
            MaskKind::Strided { stride: 4, phase: 1 },
            MaskKind::Track { width: 77, speed: 13 },
        ];
        for mask in masks {
            for cycle in [0u64, 1, 7, 511, 512] {
                let idx = mask.observed_indices(dim, cycle);
                assert_eq!(idx.len(), mask.obs_dim(dim, cycle), "{mask:?} cycle {cycle}");
                assert!(idx.windows(2).all(|w| w[0] < w[1]), "ascending, unique");
            }
        }
    }

    #[test]
    fn initial_ensemble_centered_on_truth() {
        let cfg = tiny_config();
        let nr = nature_run(&cfg);
        let ens = initial_ensemble(&cfg, &nr.truth[0]);
        assert_eq!(ens.members(), 8);
        let err = stats::metrics::rmse(&ens.mean(), &nr.truth[0]);
        assert!(err < cfg.ic_sigma, "mean of perturbations shrinks: {err}");
        assert!((ens.spread() - cfg.ic_sigma).abs() < 0.5 * cfg.ic_sigma);
    }

    #[test]
    fn steady_rmse_handles_degenerate_series() {
        let mut s = CycleSeries {
            label: "empty".to_string(),
            hours: Vec::new(),
            rmse: Vec::new(),
            spread: Vec::new(),
            final_mean: Vec::new(),
        };
        assert_eq!(s.steady_rmse(), 0.0, "empty series must not divide by zero");
        s.rmse = vec![0.25];
        assert_eq!(s.steady_rmse(), 0.25, "single cycle is its own steady state");
        s.rmse = vec![10.0, 2.0, 4.0];
        assert_eq!(s.steady_rmse(), 3.0, "only the last half counts");
    }

    #[test]
    fn dimension_mismatch_is_reported_not_fatal() {
        let cfg = tiny_config();
        let nr = nature_run(&cfg);
        let wrong = SqgParams { n: 8, ..Default::default() };
        let mut model = SqgForecast::perfect(wrong);
        let mut scheme = NoAssimilation;
        let err = run_experiment("bad", &cfg, &nr, &mut model, &mut scheme).unwrap_err();
        assert_eq!(err, crate::OsseError::DimensionMismatch { model: 128, nature: 512 });
    }

    #[test]
    fn short_nature_run_is_reported() {
        let cfg = tiny_config();
        let mut nr = nature_run(&cfg);
        nr.observations.pop();
        let mut model = SqgForecast::perfect(cfg.params.clone());
        let mut scheme = NoAssimilation;
        let err = run_experiment("short", &cfg, &nr, &mut model, &mut scheme).unwrap_err();
        assert_eq!(err, crate::OsseError::ObservationShortfall { cycles: 5, observations: 4 });

        nr.truth.clear();
        let err = run_experiment("empty", &cfg, &nr, &mut model, &mut scheme).unwrap_err();
        assert_eq!(err, crate::OsseError::EmptyNatureRun);
    }

    #[test]
    fn free_run_rmse_grows() {
        let cfg = tiny_config();
        let nr = nature_run(&cfg);
        let mut model = SqgForecast::perfect(cfg.params.clone());
        let mut scheme = NoAssimilation;
        let series = run_experiment("free", &cfg, &nr, &mut model, &mut scheme).unwrap();
        assert_eq!(series.rmse.len(), 5);
        // Chaotic growth: the last RMSE exceeds the first.
        assert!(series.rmse[4] > series.rmse[0], "{:?}", series.rmse);
    }

    #[test]
    fn assimilation_beats_free_run() {
        let cfg = OsseConfig { cycles: 8, ..tiny_config() };
        let nr = nature_run(&cfg);

        let mut free_model = SqgForecast::perfect(cfg.params.clone());
        let mut free = NoAssimilation;
        let free_series =
            run_experiment("free", &cfg, &nr, &mut free_model, &mut free).unwrap();

        let mut da_model = SqgForecast::perfect(cfg.params.clone());
        let mut scheme = EnsfScheme::new(
            ensf::EnsfConfig { n_steps: 25, seed: 5, ..Default::default() },
            cfg.params.state_dim(),
            cfg.obs_sigma,
        );
        let da_series = run_experiment("ensf", &cfg, &nr, &mut da_model, &mut scheme).unwrap();

        assert!(
            da_series.steady_rmse() < free_series.steady_rmse(),
            "DA must beat the free run: {} vs {}",
            da_series.steady_rmse(),
            free_series.steady_rmse()
        );
    }

    #[test]
    fn noisy_nature_differs_from_clean() {
        use crate::model_error::{ModelError, ModelErrorConfig};
        let cfg = tiny_config();
        let clean = nature_run(&cfg);
        let noisy = nature_run_with_error(
            &cfg,
            Some(ModelError::new(ModelErrorConfig::default(), 5)),
        );
        // Same initial truth, diverging trajectories.
        assert_eq!(clean.truth[0], noisy.truth[0]);
        let d: f64 = clean
            .truth
            .last()
            .unwrap()
            .iter()
            .zip(noisy.truth.last().unwrap())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 1e-9, "model error must perturb the nature run");
    }

    #[test]
    fn feedback_called_every_cycle() {
        struct Probe {
            dim: usize,
            calls: usize,
        }
        impl crate::traits::ForecastModel for Probe {
            fn state_dim(&self) -> usize {
                self.dim
            }
            fn forecast(&mut self, _state: &mut [f64], _hours: f64) {}
            fn assimilate_feedback(&mut self, _p: &[f64], _c: &[f64]) {
                self.calls += 1;
            }
        }
        let cfg = tiny_config();
        let nr = nature_run(&cfg);
        let mut model = Probe { dim: 512, calls: 0 };
        let mut scheme = NoAssimilation;
        run_experiment("probe", &cfg, &nr, &mut model, &mut scheme).unwrap();
        assert_eq!(model.calls, cfg.cycles);
    }
}
