//! Partial-observation scenario library.
//!
//! A [`ScenarioSpec`] names one observing-network configuration — a mask
//! from [`MaskKind`] composed with an [`ObsOperatorKind`] — and
//! [`run_scenario`] runs a full OSSE under it with any of the comparison
//! methods (inpainting EnSF over the reverse SDE or the probability-flow
//! ODE, the mask-ignoring dense-EnSF baseline, or masked LETKF), returning
//! the observed/unobserved RMSE split and the analysis latency. One call
//! per (scenario, method) pair is all a comparison study needs; the
//! `scenario_suite` bench bin drives the full matrix into
//! `BENCH_scenarios.json`.

use crate::forecast::SqgForecast;
use crate::osse::{initial_ensemble, nature_run, MaskKind, ObsOperatorKind, OsseConfig};
use crate::traits::{
    AnalysisScheme, ForecastModel, MaskIgnoringEnsfScheme, MaskedEnsfScheme, MaskedLetkfScheme,
};

/// One named observing-network scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (stable across runs; used as the JSON key).
    pub name: &'static str,
    /// Which components the network observes.
    pub mask: MaskKind,
    /// The componentwise observation map.
    pub operator: ObsOperatorKind,
}

/// The analysis methods a scenario can be run with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioMethod {
    /// Inpainting EnSF over the stochastic reverse SDE: real observations
    /// on observed components, harmonically inpainted innovation
    /// pseudo-observations across the outage.
    InpaintEnsf,
    /// Inpainting EnSF over the deterministic few-step probability-flow
    /// ODE.
    InpaintFlow,
    /// Mask-ignoring dense EnSF: dead sensors flat-line at zero and those
    /// zeros are assimilated as real measurements (the baseline inpainting
    /// must beat on unobserved regions).
    MaskIgnoringEnsf,
    /// Masked LETKF (identity base): localization spreads the partial
    /// network's information.
    MaskedLetkf,
}

impl ScenarioMethod {
    /// Stable method label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioMethod::InpaintEnsf => "ensf_inpaint",
            ScenarioMethod::InpaintFlow => "flow_inpaint",
            ScenarioMethod::MaskIgnoringEnsf => "ensf_ignore",
            ScenarioMethod::MaskedLetkf => "letkf_masked",
        }
    }
}

/// Result of one (scenario, method) OSSE run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name.
    pub scenario: &'static str,
    /// Method label.
    pub method: &'static str,
    /// Steady-state RMSE over the *observed* components (mean of the last
    /// half of the cycles).
    pub rmse_observed: f64,
    /// Steady-state RMSE over the *unobserved* components (`0.0` when the
    /// mask observes everything).
    pub rmse_unobserved: f64,
    /// Steady-state full-state RMSE.
    pub rmse_total: f64,
    /// Total analysis wall time across all cycles (seconds).
    pub analysis_secs: f64,
    /// Number of assimilation cycles run.
    pub cycles: usize,
}

/// The standard scenario registry for a `dim`-dimensional state: the four
/// partial-observation configurations the issue's Fig.-3-style study
/// compares. The 25 % contiguous block outage is the headline scenario the
/// bench gate floors on.
pub fn standard_scenarios(dim: usize) -> Vec<ScenarioSpec> {
    let block = MaskKind::Block { start: 3 * dim / 8, len: dim / 4 };
    vec![
        ScenarioSpec { name: "block25", mask: block, operator: ObsOperatorKind::Identity },
        ScenarioSpec {
            name: "strided2",
            mask: MaskKind::Strided { stride: 2, phase: 0 },
            operator: ObsOperatorKind::Identity,
        },
        ScenarioSpec {
            name: "track",
            mask: MaskKind::Track { width: dim / 2, speed: dim / 13 + 1 },
            operator: ObsOperatorKind::Identity,
        },
        // Gain 4.0, not the deep-saturation 40.0 of the golden harness: at
        // gain 40 even the *dense* arctan filter leaves the attractor on
        // this reduced OSSE shape (every component saturates against
        // σ = 0.005), which would tell us nothing about masking. Gain 4
        // keeps the operator saturating yet informative, so the scenario
        // isolates the outage: inpainting stays on the attractor while the
        // mask-ignoring baseline diverges to non-finite RMSE.
        ScenarioSpec {
            name: "arctan_block25",
            mask: block,
            operator: ObsOperatorKind::Arctan { gain: 4.0 },
        },
    ]
}

/// RMSE of `mean − truth` split into the observed and unobserved index
/// sets (either RMSE is `0.0` when its set is empty).
fn split_rmse(mean: &[f64], truth: &[f64], observed: &[usize]) -> (f64, f64) {
    let mut in_mask = vec![false; mean.len()];
    for &i in observed {
        in_mask[i] = true;
    }
    let (mut so, mut no, mut su, mut nu) = (0.0, 0usize, 0.0, 0usize);
    for i in 0..mean.len() {
        let d = mean[i] - truth[i];
        if in_mask[i] {
            so += d * d;
            no += 1;
        } else {
            su += d * d;
            nu += 1;
        }
    }
    let rmse = |s: f64, n: usize| if n == 0 { 0.0 } else { (s / n as f64).sqrt() };
    (rmse(so, no), rmse(su, nu))
}

/// Runs one scenario with one method over a fresh nature run, returning
/// the steady-state observed/unobserved RMSE split and the cumulative
/// analysis latency. `base` supplies the grid, cycle count, noise levels
/// and seed; its `obs_operator`/`obs_mask` are overridden by the spec.
pub fn run_scenario(
    base: &OsseConfig,
    spec: &ScenarioSpec,
    method: ScenarioMethod,
    ensf_config: &ensf::EnsfConfig,
) -> ScenarioResult {
    let config = OsseConfig {
        obs_operator: spec.operator,
        obs_mask: spec.mask,
        ..base.clone()
    };
    let nature = nature_run(&config);
    let dim = nature.truth[0].len();

    let mut scheme: Box<dyn AnalysisScheme> = match method {
        ScenarioMethod::InpaintEnsf => Box::new(MaskedEnsfScheme::new(
            ensf::EnsfConfig { method: ensf::AnalysisMethod::ReverseSde, ..ensf_config.clone() },
            dim,
            config.obs_sigma,
            spec.operator,
            spec.mask,
        )),
        ScenarioMethod::InpaintFlow => Box::new(MaskedEnsfScheme::new(
            ensf::EnsfConfig {
                method: ensf::AnalysisMethod::FlowMatching,
                ..ensf_config.clone()
            },
            dim,
            config.obs_sigma,
            spec.operator,
            spec.mask,
        )),
        ScenarioMethod::MaskIgnoringEnsf => Box::new(MaskIgnoringEnsfScheme::new(
            ensf::EnsfConfig { method: ensf::AnalysisMethod::ReverseSde, ..ensf_config.clone() },
            dim,
            config.obs_sigma,
            spec.operator,
            spec.mask,
        )),
        ScenarioMethod::MaskedLetkf => Box::new(MaskedLetkfScheme::new(
            letkf::LetkfConfig::default(),
            &config.params,
            config.obs_sigma,
            spec.mask,
        )),
    };

    let mut model = SqgForecast::perfect(config.params.clone());
    let mut ensemble = initial_ensemble(&config, &nature.truth[0]);
    let mut per_cycle: Vec<(f64, f64, f64)> = Vec::with_capacity(config.cycles);
    let mut analysis_secs = 0.0;
    for cycle in 0..config.cycles {
        model.forecast_ensemble(&mut ensemble, config.obs_interval_hours);
        let t = std::time::Instant::now();
        ensemble = scheme.analyze(&ensemble, &nature.observations[cycle]);
        analysis_secs += t.elapsed().as_secs_f64();
        let mean = ensemble.mean();
        let observed = spec.mask.observed_indices(dim, cycle as u64);
        let (ro, ru) = split_rmse(&mean, &nature.truth[cycle + 1], &observed);
        per_cycle.push((ro, ru, stats::metrics::rmse(&mean, &nature.truth[cycle + 1])));
    }

    // Steady state: mean over the last half of the cycles (same convention
    // as `CycleSeries::steady_rmse`).
    let tail = &per_cycle[per_cycle.len() / 2..];
    let n = tail.len().max(1) as f64;
    ScenarioResult {
        scenario: spec.name,
        method: method.label(),
        rmse_observed: tail.iter().map(|r| r.0).sum::<f64>() / n,
        rmse_unobserved: tail.iter().map(|r| r.1).sum::<f64>() / n,
        rmse_total: tail.iter().map(|r| r.2).sum::<f64>() / n,
        analysis_secs,
        cycles: config.cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqg::SqgParams;

    fn tiny_base(cycles: usize) -> OsseConfig {
        OsseConfig {
            params: SqgParams { n: 16, ..Default::default() },
            cycles,
            obs_sigma: 0.005,
            ens_size: 8,
            ic_sigma: 0.01,
            spinup_steps: 40,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn registry_covers_the_issue_scenarios() {
        let scenarios = standard_scenarios(512);
        let names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["block25", "strided2", "track", "arctan_block25"]);
        // The headline block outage hides exactly a quarter of the state.
        let block = &scenarios[0];
        assert_eq!(block.mask.obs_dim(512, 0), 384);
        // Composed scenario: arctan base through the same outage (gain 4 —
        // saturating but informative, see the registry comment).
        assert_eq!(scenarios[3].operator, ObsOperatorKind::Arctan { gain: 4.0 });
        assert_eq!(scenarios[3].mask, block.mask);
    }

    #[test]
    fn split_rmse_partitions_the_error() {
        let mean = [1.0, 2.0, 3.0, 4.0];
        let truth = [0.0, 2.0, 3.0, 2.0];
        let (ro, ru) = split_rmse(&mean, &truth, &[0, 1]);
        assert!((ro - (0.5f64).sqrt()).abs() < 1e-15);
        assert!((ru - (2.0f64).sqrt()).abs() < 1e-15);
        let (all, none) = split_rmse(&mean, &truth, &[0, 1, 2, 3]);
        assert!((all - stats::metrics::rmse(&mean, &truth)).abs() < 1e-15);
        assert_eq!(none, 0.0);
    }

    #[test]
    fn scenario_run_is_deterministic_and_finite() {
        let base = tiny_base(3);
        let spec = ScenarioSpec {
            name: "block25",
            mask: MaskKind::Block { start: 192, len: 128 },
            operator: ObsOperatorKind::Identity,
        };
        let ec = ensf::EnsfConfig { n_steps: 10, seed: 5, ..Default::default() };
        let a = run_scenario(&base, &spec, ScenarioMethod::InpaintEnsf, &ec);
        let b = run_scenario(&base, &spec, ScenarioMethod::InpaintEnsf, &ec);
        assert_eq!(a.rmse_observed.to_bits(), b.rmse_observed.to_bits());
        assert_eq!(a.rmse_unobserved.to_bits(), b.rmse_unobserved.to_bits());
        assert!(a.rmse_observed.is_finite() && a.rmse_observed > 0.0);
        assert!(a.rmse_unobserved.is_finite() && a.rmse_unobserved > 0.0);
        assert!(a.analysis_secs > 0.0);
        assert_eq!(a.method, "ensf_inpaint");
        assert_eq!(a.cycles, 3);
    }

    #[test]
    fn inpainting_beats_mask_ignoring_on_unobserved_block() {
        // The acceptance comparison at reduced size: on a 25 % contiguous
        // block outage the inpainting guidance must reconstruct the
        // unobserved region at least 20 % better than the mask-ignoring
        // dense baseline (the bench gate enforces the same floor on the
        // committed BENCH_scenarios.json numbers).
        let base = tiny_base(8);
        let spec = ScenarioSpec {
            name: "block25",
            mask: MaskKind::Block { start: 192, len: 128 },
            operator: ObsOperatorKind::Identity,
        };
        let ec = ensf::EnsfConfig { n_steps: 10, seed: 5, ..Default::default() };
        let inpaint = run_scenario(&base, &spec, ScenarioMethod::InpaintEnsf, &ec);
        let ignore = run_scenario(&base, &spec, ScenarioMethod::MaskIgnoringEnsf, &ec);
        assert!(
            ignore.rmse_unobserved > 1.25 * inpaint.rmse_unobserved,
            "inpainting {} must beat mask-ignoring {} by >=20% on the outage region",
            inpaint.rmse_unobserved,
            ignore.rmse_unobserved
        );
    }
}
