//! The Lorenz-96 model (Lorenz 1996).
//!
//! The EnSF's nonlinear/non-Gaussian credentials cited by the paper
//! (refs [24], [25]) were established on Lorenz-96 with up to O(10⁶)
//! variables and highly nonlinear observations; this module provides that
//! testbed as a second [`ForecastModel`], used by the nonlinear-observation
//! demonstrations and the high-dimensional EnSF stress tests.
//!
//! ```text
//! dx_k/dt = (x_{k+1} − x_{k−2}) x_{k−1} − x_k + F,   k cyclic
//! ```
//!
//! with the classic chaotic forcing `F = 8`. Time is measured in model time
//! units (MTU); 0.05 MTU ≈ 6 h of "atmospheric" time by Lorenz's analogy, so
//! [`ForecastModel::forecast`]'s `hours` are converted at 0.05 MTU / 6 h.

use crate::traits::ForecastModel;

/// Lorenz-96 configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Lorenz96Params {
    /// Number of variables (≥ 4).
    pub dim: usize,
    /// Forcing term (8.0 = standard chaos).
    pub forcing: f64,
    /// RK4 step in MTU.
    pub dt: f64,
}

impl Default for Lorenz96Params {
    fn default() -> Self {
        Lorenz96Params { dim: 40, forcing: 8.0, dt: 0.01 }
    }
}

/// The Lorenz-96 forecast model.
#[derive(Debug, Clone)]
pub struct Lorenz96 {
    params: Lorenz96Params,
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
}

impl Lorenz96 {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics if `dim < 4` or `dt <= 0`.
    pub fn new(params: Lorenz96Params) -> Self {
        assert!(params.dim >= 4, "Lorenz-96 needs at least 4 variables");
        assert!(params.dt > 0.0);
        let z = vec![0.0; params.dim];
        Lorenz96 { params, k1: z.clone(), k2: z.clone(), k3: z.clone(), k4: z.clone(), tmp: z }
    }

    /// Model parameters.
    pub fn params(&self) -> &Lorenz96Params {
        &self.params
    }

    fn tendency(params: &Lorenz96Params, x: &[f64], out: &mut [f64]) {
        let n = params.dim;
        for k in 0..n {
            let xp1 = x[(k + 1) % n];
            let xm1 = x[(k + n - 1) % n];
            let xm2 = x[(k + n - 2) % n];
            out[k] = (xp1 - xm2) * xm1 - x[k] + params.forcing;
        }
    }

    /// One RK4 step of `dt` MTU, in place.
    pub fn step(&mut self, x: &mut [f64]) {
        let n = self.params.dim;
        assert_eq!(x.len(), n);
        let dt = self.params.dt;
        Self::tendency(&self.params, x, &mut self.k1);
        for i in 0..n {
            self.tmp[i] = x[i] + 0.5 * dt * self.k1[i];
        }
        Self::tendency(&self.params, &self.tmp, &mut self.k2);
        for i in 0..n {
            self.tmp[i] = x[i] + 0.5 * dt * self.k2[i];
        }
        Self::tendency(&self.params, &self.tmp, &mut self.k3);
        for i in 0..n {
            self.tmp[i] = x[i] + dt * self.k3[i];
        }
        Self::tendency(&self.params, &self.tmp, &mut self.k4);
        for i in 0..n {
            x[i] += dt / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.k4[i]);
        }
    }

    /// Integrates for `mtu` model time units.
    pub fn integrate(&mut self, x: &mut [f64], mtu: f64) {
        let steps = (mtu / self.params.dt).round().max(0.0) as usize;
        for _ in 0..steps {
            self.step(x);
        }
    }

    /// A spun-up state on the attractor from a seed perturbation.
    pub fn spinup(&mut self, seed: u64, mtu: f64) -> Vec<f64> {
        let mut x = vec![self.params.forcing; self.params.dim];
        // Deterministic seed-dependent kick.
        let kick = (seed % 1000) as f64 / 1000.0 + 0.001;
        x[0] += kick;
        x[self.params.dim / 2] -= 0.5 * kick;
        self.integrate(&mut x, mtu);
        x
    }
}

impl ForecastModel for Lorenz96 {
    fn state_dim(&self) -> usize {
        self.params.dim
    }

    fn forecast(&mut self, state: &mut [f64], hours: f64) {
        // Lorenz's analogy: 0.05 MTU per 6 h.
        let mtu = hours / 6.0 * 0.05;
        self.integrate(state, mtu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_without_gradient() {
        // x = F everywhere is a (unstable) fixed point.
        let mut m = Lorenz96::new(Lorenz96Params::default());
        let mut x = vec![8.0; 40];
        m.step(&mut x);
        for v in &x {
            assert!((v - 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn chaotic_divergence() {
        let mut m = Lorenz96::new(Lorenz96Params::default());
        let a0 = m.spinup(1, 10.0);
        let mut a = a0.clone();
        let mut b = a0;
        b[0] += 1e-8;
        // Leading Lyapunov exponent ~1.7/MTU: 8 MTU amplifies 1e-8 by ~1e6.
        m.integrate(&mut a, 8.0);
        m.integrate(&mut b, 8.0);
        let d: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        assert!(d > 1e-4, "no chaotic growth: {d}");
    }

    #[test]
    fn attractor_statistics() {
        // Climatological mean ≈ 2.3, std ≈ 3.6 for F = 8 (textbook values).
        let mut m = Lorenz96::new(Lorenz96Params::default());
        let mut x = m.spinup(3, 20.0);
        let mut acc = stats::OnlineMoments::new();
        for _ in 0..2000 {
            m.step(&mut x);
            for v in &x {
                acc.push(*v);
            }
        }
        assert!((acc.mean() - 2.3).abs() < 0.6, "mean {:.2}", acc.mean());
        assert!((acc.std_dev() - 3.6).abs() < 0.8, "std {:.2}", acc.std_dev());
    }

    #[test]
    fn energy_stays_bounded() {
        let mut m = Lorenz96::new(Lorenz96Params::default());
        let mut x = m.spinup(5, 5.0);
        m.integrate(&mut x, 50.0);
        assert!(x.iter().all(|v| v.abs() < 30.0), "state escaped the attractor");
    }

    #[test]
    fn forecast_model_conversion() {
        let mut m = Lorenz96::new(Lorenz96Params::default());
        assert_eq!(m.state_dim(), 40);
        let mut x = m.spinup(7, 5.0);
        let before = x.clone();
        // 6 hours = 0.05 MTU = 5 steps at dt 0.01.
        m.forecast(&mut x, 6.0);
        let d: f64 = x.iter().zip(&before).map(|(a, b)| (a - b).abs()).sum();
        assert!(d > 1e-6);
    }

    #[test]
    fn works_at_high_dimension() {
        let mut m = Lorenz96::new(Lorenz96Params { dim: 10_000, ..Default::default() });
        let mut x = m.spinup(9, 1.0);
        m.integrate(&mut x, 0.5);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic]
    fn tiny_dimension_rejected() {
        let _ = Lorenz96::new(Lorenz96Params { dim: 3, ..Default::default() });
    }
}
