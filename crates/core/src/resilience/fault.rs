//! Deterministic, seedable fault injection for the cycling loop.
//!
//! A [`FaultPlan`] scripts every failure the supervised OSSE loop must
//! survive: ensemble members corrupted mid-forecast, observation batches
//! dropped / delayed / thinned, analysis steps that fail a set number of
//! attempts, and a simulated process kill. Plans are plain data — the same
//! plan replayed against the same configuration produces the same run, so
//! chaos tests are as reproducible as clean ones. (Rank-level faults for
//! the simulated collectives live in `hpc::resilience`, next to the cost
//! models they perturb.)

use stats::Ensemble;

/// How an ensemble member is damaged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemberFaultKind {
    /// The member's state becomes all-NaN (e.g. a crashed forecast rank).
    Nan,
    /// The member's state is scaled by a factor (silent numerical blowup;
    /// use a large factor to trip the divergence guardrails).
    Corrupt {
        /// Multiplicative damage factor.
        scale: f64,
    },
}

/// One scripted member fault, applied right after the member's forecast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemberFault {
    /// Zero-based cycle at which the fault fires.
    pub cycle: usize,
    /// Ensemble member index to damage.
    pub member: usize,
    /// Damage applied.
    pub kind: MemberFaultKind,
}

/// How an observation batch is degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsFault {
    /// The batch never arrives: the loop must run a forecast-only cycle.
    Drop,
    /// The batch arrives `by` cycles late. It is unusable at its own cycle
    /// (forecast-only) and stale on arrival, where it is discarded.
    Delay {
        /// Cycles of delay.
        by: usize,
    },
    /// Only every `stride`-th component arrives (partial network outage).
    Thin {
        /// Keep-every-`stride` subsampling factor (≥ 2 to thin anything).
        stride: usize,
    },
}

/// A forced analysis failure: the first `failures` analysis attempts at
/// `cycle` return a poisoned (all-NaN) ensemble, exercising the
/// retry-with-fresh-seed and fallback-scheme recovery paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisFault {
    /// Zero-based cycle at which the analysis misbehaves.
    pub cycle: usize,
    /// Number of attempts that fail before one succeeds.
    pub failures: usize,
}

/// A scripted rank death in the distributed runtime: the victim registers
/// itself dead at its scripted point inside `cycle`'s analysis, after
/// contributing to `after_steps` SDE-step exchanges (0 = before the first
/// one), so survivors observe the failure mid-collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankKill {
    /// Zero-based cycle during whose analysis the rank dies.
    pub cycle: usize,
    /// World rank of the victim.
    pub rank: usize,
    /// SDE-step exchanges the victim completes before dying.
    pub after_steps: usize,
}

/// A scripted rank rejoin: at the start of `cycle` the coordinator grants
/// world rank `rank` re-admission, and the rejoiner restores its state
/// from the latest checkpoint before re-entering the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankRejoin {
    /// Zero-based cycle at whose start the rank rejoins.
    pub cycle: usize,
    /// World rank of the rejoiner.
    pub rank: usize,
}

/// The full fault script for one supervised run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Member corruptions, applied after the forecast of their cycle.
    pub member_faults: Vec<MemberFault>,
    /// Observation-batch faults, at most one per cycle (the first match
    /// wins).
    pub obs_faults: Vec<(usize, ObsFault)>,
    /// Forced analysis failures.
    pub analysis_faults: Vec<AnalysisFault>,
    /// Simulated process kill: the run stops (checkpointing if configured)
    /// after completing this many cycles. `None` runs to completion.
    pub kill_after: Option<usize>,
    /// Scripted rank deaths (distributed runtime only).
    pub rank_kills: Vec<RankKill>,
    /// Scripted rank rejoins (distributed runtime only; each rank rejoins
    /// at most once per plan).
    pub rank_rejoins: Vec<RankRejoin>,
}

impl FaultPlan {
    /// A plan injecting nothing (the supervised loop then behaves like the
    /// plain one, plus health monitoring).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.member_faults.is_empty()
            && self.obs_faults.is_empty()
            && self.analysis_faults.is_empty()
            && self.kill_after.is_none()
            && self.rank_kills.is_empty()
            && self.rank_rejoins.is_empty()
    }

    /// The scripted death of `rank` during `cycle`'s analysis, if any.
    pub fn rank_kill_at(&self, cycle: usize, rank: usize) -> Option<RankKill> {
        self.rank_kills.iter().copied().find(|k| k.cycle == cycle && k.rank == rank)
    }

    /// The scripted rejoin of `rank`, if any.
    pub fn rank_rejoin_of(&self, rank: usize) -> Option<RankRejoin> {
        self.rank_rejoins.iter().copied().find(|r| r.rank == rank)
    }

    /// World ranks alive at the *start* of `cycle` under this script,
    /// assuming an initial world of `world` ranks: a kill removes its rank
    /// from every later cycle, a rejoin restores it. This is the pure
    /// function every rank evaluates locally to agree on membership
    /// without a consensus protocol.
    pub fn membership_at(&self, cycle: usize, world: usize) -> Vec<usize> {
        (0..world)
            .filter(|&r| {
                // Latest scripted event effective at or before `cycle`
                // decides: a kill at cycle c takes effect at c + 1 (the
                // victim dies *during* c's analysis), a rejoin at cycle j
                // takes effect at j's start.
                let last_kill = self
                    .rank_kills
                    .iter()
                    .filter(|k| k.rank == r && k.cycle < cycle)
                    .map(|k| k.cycle + 1)
                    .max();
                let last_rejoin = self
                    .rank_rejoins
                    .iter()
                    .filter(|j| j.rank == r && j.cycle <= cycle)
                    .map(|j| j.cycle)
                    .max();
                match (last_kill, last_rejoin) {
                    (None, _) => true,
                    (Some(_), None) => false,
                    (Some(k), Some(j)) => j >= k,
                }
            })
            .collect()
    }

    /// Applies this cycle's member faults to a freshly forecast ensemble,
    /// returning one event string per fault actually applied.
    pub fn inject_member_faults(&self, cycle: usize, ensemble: &mut Ensemble) -> Vec<String> {
        let mut events = Vec::new();
        for fault in self.member_faults.iter().filter(|f| f.cycle == cycle) {
            if fault.member >= ensemble.members() {
                continue;
            }
            let member = ensemble.member_mut(fault.member);
            match fault.kind {
                MemberFaultKind::Nan => member.fill(f64::NAN),
                MemberFaultKind::Corrupt { scale } => {
                    for v in member.iter_mut() {
                        *v *= scale;
                    }
                }
            }
            events.push(format!("member_fault_injected:{}", fault.member));
        }
        events
    }

    /// The observation fault scheduled for `cycle`, if any.
    pub fn obs_fault_at(&self, cycle: usize) -> Option<ObsFault> {
        self.obs_faults.iter().find(|(c, _)| *c == cycle).map(|(_, f)| *f)
    }

    /// How many analysis attempts are forced to fail at `cycle`.
    pub fn analysis_failures_at(&self, cycle: usize) -> usize {
        self.analysis_faults
            .iter()
            .find(|f| f.cycle == cycle)
            .map(|f| f.failures)
            .unwrap_or(0)
    }

    /// Number of delayed batches whose stale copies arrive at `cycle`
    /// (the supervisor discards them and counts the discard).
    pub fn stale_arrivals_at(&self, cycle: usize) -> usize {
        self.obs_faults
            .iter()
            .filter(|(c, f)| matches!(f, ObsFault::Delay { by } if c + by == cycle))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            member_faults: vec![
                MemberFault { cycle: 2, member: 1, kind: MemberFaultKind::Nan },
                MemberFault { cycle: 2, member: 0, kind: MemberFaultKind::Corrupt { scale: 1e6 } },
            ],
            obs_faults: vec![(3, ObsFault::Drop), (5, ObsFault::Delay { by: 2 })],
            analysis_faults: vec![AnalysisFault { cycle: 4, failures: 1 }],
            kill_after: None,
            rank_kills: Vec::new(),
            rank_rejoins: Vec::new(),
        }
    }

    #[test]
    fn member_faults_apply_only_at_their_cycle() {
        let p = plan();
        let mut e = Ensemble::from_members(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        assert!(p.inject_member_faults(0, &mut e).is_empty());
        assert!(e.as_slice().iter().all(|v| v.is_finite()));
        let events = p.inject_member_faults(2, &mut e);
        assert_eq!(events.len(), 2);
        assert!(e.member(1).iter().all(|v| v.is_nan()));
        assert_eq!(e.member(0), &[1e6, 1e6]);
        assert_eq!(e.member(2), &[3.0, 3.0], "unfaulted members untouched");
    }

    #[test]
    fn out_of_range_member_ignored() {
        let p = FaultPlan {
            member_faults: vec![MemberFault { cycle: 0, member: 9, kind: MemberFaultKind::Nan }],
            ..FaultPlan::none()
        };
        let mut e = Ensemble::from_members(&[vec![1.0]]);
        assert!(p.inject_member_faults(0, &mut e).is_empty());
        assert!(e.as_slice()[0].is_finite());
    }

    #[test]
    fn obs_and_analysis_lookups() {
        let p = plan();
        assert_eq!(p.obs_fault_at(3), Some(ObsFault::Drop));
        assert_eq!(p.obs_fault_at(5), Some(ObsFault::Delay { by: 2 }));
        assert_eq!(p.obs_fault_at(0), None);
        assert_eq!(p.analysis_failures_at(4), 1);
        assert_eq!(p.analysis_failures_at(3), 0);
        assert_eq!(p.stale_arrivals_at(7), 1, "delayed batch from cycle 5 lands at 7");
        assert_eq!(p.stale_arrivals_at(6), 0);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(!plan().is_empty());
        assert!(!FaultPlan { kill_after: Some(3), ..FaultPlan::none() }.is_empty());
        assert!(!FaultPlan {
            rank_kills: vec![RankKill { cycle: 1, rank: 0, after_steps: 0 }],
            ..FaultPlan::none()
        }
        .is_empty());
    }

    #[test]
    fn membership_tracks_kills_and_rejoins() {
        let p = FaultPlan {
            rank_kills: vec![
                RankKill { cycle: 2, rank: 1, after_steps: 0 },
                RankKill { cycle: 6, rank: 1, after_steps: 1 },
            ],
            rank_rejoins: vec![RankRejoin { cycle: 5, rank: 1 }],
            ..FaultPlan::none()
        };
        // Present through its kill cycle (it dies *during* cycle 2).
        assert_eq!(p.membership_at(0, 4), vec![0, 1, 2, 3]);
        assert_eq!(p.membership_at(2, 4), vec![0, 1, 2, 3]);
        // Absent afterwards, back at its rejoin cycle.
        assert_eq!(p.membership_at(3, 4), vec![0, 2, 3]);
        assert_eq!(p.membership_at(4, 4), vec![0, 2, 3]);
        assert_eq!(p.membership_at(5, 4), vec![0, 1, 2, 3]);
        // Killed again at cycle 6: gone from cycle 7 on.
        assert_eq!(p.membership_at(6, 4), vec![0, 1, 2, 3]);
        assert_eq!(p.membership_at(7, 4), vec![0, 2, 3]);
        assert_eq!(p.rank_kill_at(2, 1), Some(RankKill { cycle: 2, rank: 1, after_steps: 0 }));
        assert_eq!(p.rank_kill_at(2, 0), None);
        assert_eq!(p.rank_rejoin_of(1), Some(RankRejoin { cycle: 5, rank: 1 }));
        assert_eq!(p.rank_rejoin_of(2), None);
    }
}
