//! The supervised cycling loop: a fault-tolerant `run_experiment`.
//!
//! The plain OSSE loop assumes every forecast is finite, every observation
//! batch arrives, and every analysis succeeds. This supervisor assumes none
//! of that. Each cycle runs through guardrails — non-finite/outlier member
//! quarantine, observation-outage degradation, bounded analysis retry with
//! a fresh noise stream and an optional fallback scheme, spread-collapse
//! re-inflation, and climatology-relative divergence detection — and the
//! loop tracks an explicit health state machine:
//!
//! ```text
//! Healthy ──fault──▶ Degraded ──clean cycle──▶ Recovering ──clean cycle──▶ Healthy
//!    ▲                  ▲  │                        │
//!    └──────────────────┘  └────────◀───fault───────┘
//! ```
//!
//! Every recovery action is appended to the cycle's telemetry record, and
//! the full cycling state can be checkpointed each `every` cycles so a
//! killed run resumes *bit-identically* (all repair randomness is a pure
//! function of the master seed and the cycle index).

use super::checkpoint::{Checkpoint, CheckpointError};
use super::fault::ObsFault;
use super::health;
use crate::error::OsseError;
use crate::osse::{initial_ensemble, CycleSeries, NatureRun, OsseConfig};
use crate::traits::{AnalysisScheme, ForecastModel};
use stats::rng::split_seed;
use stats::Ensemble;

/// Seed salts keeping the supervisor's repair streams independent of the
/// nature run, the initial ensemble, and each other.
const RESAMPLE_SALT: u64 = 0xFA07_5A1E;
const RETRY_SALT: u64 = 0xFA07_11E7;
const REINFLATE_SALT: u64 = 0xFA07_1F1A;

/// Health state of the supervised loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LoopState {
    /// No recent faults.
    Healthy = 0,
    /// At least one guardrail fired this cycle.
    Degraded = 1,
    /// One clean cycle after a degraded one; a second promotes to healthy.
    Recovering = 2,
}

impl LoopState {
    /// Lower-case state name used in telemetry counter keys and flight
    /// recorder labels (`"healthy"`, `"degraded"`, `"recovering"`).
    pub fn name(self) -> &'static str {
        match self {
            LoopState::Healthy => "healthy",
            LoopState::Degraded => "degraded",
            LoopState::Recovering => "recovering",
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(LoopState::Healthy),
            1 => Some(LoopState::Degraded),
            2 => Some(LoopState::Recovering),
            _ => None,
        }
    }
}

/// Totals of every recovery action taken over a run (checkpointed, so they
/// keep accumulating across resumes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Members replaced by perturbed copies of healthy donors.
    pub quarantined_members: u64,
    /// Spread-collapse re-inflations.
    pub reinflations: u64,
    /// Cycles completed without an analysis (forecast only).
    pub degraded_cycles: u64,
    /// Analysis attempts retried with a fresh noise stream.
    pub analysis_retries: u64,
    /// Analyses produced by the fallback scheme.
    pub analysis_fallbacks: u64,
    /// Cycles where the analysis mean diverged from the observations.
    pub divergence_flags: u64,
    /// Delayed observation batches discarded on (late) arrival.
    pub stale_obs_discarded: u64,
}

impl RecoveryCounters {
    pub(crate) const FIELDS: usize = 7;

    /// Sum of all counters (0 ⇒ the run never needed recovery).
    pub fn total(&self) -> u64 {
        self.as_array().iter().sum()
    }

    pub(crate) fn as_array(&self) -> [u64; Self::FIELDS] {
        [
            self.quarantined_members,
            self.reinflations,
            self.degraded_cycles,
            self.analysis_retries,
            self.analysis_fallbacks,
            self.divergence_flags,
            self.stale_obs_discarded,
        ]
    }

    pub(crate) fn from_array(a: [u64; Self::FIELDS]) -> Self {
        RecoveryCounters {
            quarantined_members: a[0],
            reinflations: a[1],
            degraded_cycles: a[2],
            analysis_retries: a[3],
            analysis_fallbacks: a[4],
            divergence_flags: a[5],
            stale_obs_discarded: a[6],
        }
    }
}

/// Where and how often to checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Checkpoint file (overwritten at each boundary).
    pub path: std::path::PathBuf,
    /// Checkpoint after every `every` completed cycles (0 disables the
    /// periodic write; a simulated kill still writes a final one).
    pub every: usize,
}

/// Fault script + guardrail policy + checkpointing for a supervised run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceConfig {
    /// Scripted faults (empty plan ⇒ pure supervision).
    pub plan: super::FaultPlan,
    /// Guardrail thresholds; `None` derives
    /// [`HealthPolicy::for_obs_sigma`](super::HealthPolicy::for_obs_sigma)
    /// from the run's `obs_sigma`.
    pub health: Option<super::HealthPolicy>,
    /// Optional periodic checkpointing.
    pub checkpoint: Option<CheckpointConfig>,
}

/// One executed cycle, as the supervisor saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisedCycle {
    /// Zero-based cycle index.
    pub cycle: usize,
    /// Health state *after* this cycle.
    pub state: LoopState,
    /// Recovery events fired this cycle (empty ⇒ clean).
    pub events: Vec<String>,
}

/// Result of a supervised run (complete or interrupted).
#[derive(Debug, Clone)]
pub struct SupervisedRun {
    /// Verification series over the cycles completed so far (including
    /// cycles restored from a checkpoint on resume).
    pub series: CycleSeries,
    /// Per-cycle states and events for the cycles executed *in this call*.
    pub cycles: Vec<SupervisedCycle>,
    /// Accumulated recovery counters (across resumes).
    pub counters: RecoveryCounters,
    /// True when a scripted kill stopped the run before the final cycle.
    pub interrupted: bool,
    /// Health state at the end of the run.
    pub final_state: LoopState,
    /// Cycling state at the end of the run — what a crash-restart would
    /// resume from (also written to disk when checkpointing is configured).
    pub checkpoint: Checkpoint,
}

/// Runs a supervised OSSE experiment from cycle 0.
///
/// `fallback` is tried once per cycle after the retry budget is exhausted
/// (e.g. LETKF behind EnSF); pass `None` to degrade straight to a
/// forecast-only cycle instead.
pub fn run_supervised(
    label: &str,
    config: &OsseConfig,
    resilience: &ResilienceConfig,
    nature: &NatureRun,
    model: &mut dyn ForecastModel,
    scheme: &mut dyn AnalysisScheme,
    fallback: Option<&mut dyn AnalysisScheme>,
) -> Result<SupervisedRun, OsseError> {
    cycle_loop(label, config, resilience, nature, model, scheme, fallback, None)
}

/// Resumes a supervised run from a checkpoint, replaying the remaining
/// cycles bit-identically to an uninterrupted run of the same
/// configuration and fault plan.
#[allow(clippy::too_many_arguments)] // run_supervised's signature + the checkpoint
pub fn resume_supervised(
    label: &str,
    config: &OsseConfig,
    resilience: &ResilienceConfig,
    nature: &NatureRun,
    model: &mut dyn ForecastModel,
    scheme: &mut dyn AnalysisScheme,
    fallback: Option<&mut dyn AnalysisScheme>,
    checkpoint: Checkpoint,
) -> Result<SupervisedRun, OsseError> {
    cycle_loop(label, config, resilience, nature, model, scheme, fallback, Some(checkpoint))
}

#[allow(clippy::too_many_arguments)]
fn cycle_loop(
    label: &str,
    config: &OsseConfig,
    resilience: &ResilienceConfig,
    nature: &NatureRun,
    model: &mut dyn ForecastModel,
    scheme: &mut dyn AnalysisScheme,
    mut fallback: Option<&mut dyn AnalysisScheme>,
    start: Option<Checkpoint>,
) -> Result<SupervisedRun, OsseError> {
    crate::osse::validate_experiment(config, nature, model)?;
    let plan = &resilience.plan;
    let policy = resilience
        .health
        .clone()
        .unwrap_or_else(|| super::HealthPolicy::for_obs_sigma(config.obs_sigma));
    let dim = nature.truth[0].len();

    let (start_cycle, mut state, mut ensemble, mut prev_mean, mut hours, mut rmse, mut spread, mut counters) =
        match start {
            Some(ck) => {
                if ck.ensemble.dim() != dim
                    || ck.prev_mean.len() != dim
                    || ck.ensemble.members() != config.ens_size
                    || ck.cycle > config.cycles
                {
                    return Err(CheckpointError::BadHeader.into());
                }
                scheme.set_rng_state(ck.scheme_epoch, ck.scheme_seed);
                if let Some(blob) = &ck.model_state {
                    if !model.load_state(blob) {
                        return Err(CheckpointError::ModelStateRejected.into());
                    }
                }
                (ck.cycle, ck.state, ck.ensemble, ck.prev_mean, ck.hours, ck.rmse, ck.spread, ck.counters)
            }
            None => {
                let ens = initial_ensemble(config, &nature.truth[0]);
                let mean = ens.mean();
                (
                    0,
                    LoopState::Healthy,
                    ens,
                    mean,
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                    RecoveryCounters::default(),
                )
            }
        };

    let mut cycles_log: Vec<SupervisedCycle> = Vec::new();
    let mut interrupted = false;

    for cycle in start_cycle..config.cycles {
        let _span = telemetry::span!("osse.supervised_cycle");
        let mut events: Vec<String> = Vec::new();

        // Forecast, then apply this cycle's scripted member damage.
        let t_fc = telemetry::enabled().then(std::time::Instant::now);
        model.forecast_ensemble(&mut ensemble, config.obs_interval_hours);
        let forecast_secs = t_fc.map(|t| t.elapsed().as_secs_f64());
        events.extend(plan.inject_member_faults(cycle, &mut ensemble));

        // Guardrail 1: quarantine non-finite and physically impossible
        // members, resampling them from healthy donors.
        let mut bad = health::scan_members(&ensemble);
        let outlier_limit = policy.outlier_factor * nature.climatology_sd;
        for o in health::scan_outliers(&ensemble, outlier_limit) {
            if !bad.contains(&o) {
                bad.push(o);
            }
        }
        bad.sort_unstable();
        if !bad.is_empty() {
            let seed = split_seed(config.seed ^ RESAMPLE_SALT, cycle as u64);
            if !health::quarantine_and_resample(&mut ensemble, &bad, seed, policy.resample_sigma)
            {
                return Err(OsseError::Unrecoverable {
                    cycle,
                    reason: "every ensemble member is corrupt; no healthy donor to resample from"
                        .to_string(),
                });
            }
            counters.quarantined_members += bad.len() as u64;
            for b in &bad {
                events.push(format!("member_quarantined:{b}"));
            }
        }

        // Stale copies of earlier delayed batches are discarded, never
        // assimilated (the analysis they would correct already happened).
        for _ in 0..plan.stale_arrivals_at(cycle) {
            counters.stale_obs_discarded += 1;
            events.push("stale_obs_discarded".to_string());
        }

        // Observation delivery, possibly degraded by the fault plan.
        let obs: Option<Vec<f64>> = match plan.obs_fault_at(cycle) {
            Some(ObsFault::Drop) => {
                events.push("obs_dropped".to_string());
                None
            }
            Some(ObsFault::Delay { by }) => {
                events.push(format!("obs_delayed:{by}"));
                None
            }
            Some(ObsFault::Thin { stride }) if stride > 1 => {
                // Thinned components are back-filled with the forecast
                // mean's observation equivalent: the scheme sees zero
                // innovation there, so only the surviving network
                // constrains the analysis. Under a masked network the
                // batch is already the shrunk observed vector, so thinning
                // strides over observation slots, back-filling the rest
                // with `h(x̄_f)` at the corresponding state indices.
                let real = &nature.observations[cycle];
                let mut y = if config.obs_mask.is_full() {
                    ensemble.mean()
                } else {
                    let mean = ensemble.mean();
                    config
                        .obs_mask
                        .observed_indices(dim, cycle as u64)
                        .into_iter()
                        .map(|i| config.obs_operator.h(mean[i]))
                        .collect()
                };
                for i in (0..y.len()).step_by(stride) {
                    y[i] = real[i];
                }
                events.push(format!("obs_thinned:{stride}"));
                Some(y)
            }
            _ => Some(nature.observations[cycle].clone()),
        };

        // Forecast half of the per-cycle diagnostics (innovation moments,
        // chi², rank histogram) — must be captured before the analysis
        // overwrites the forecast ensemble.
        let pre_diag = match (&obs, telemetry::enabled()) {
            (Some(y), true) => Some(crate::diagnostics::forecast_stats_masked(
                &ensemble,
                y,
                config.obs_sigma,
                config.obs_operator,
                config.obs_mask,
                cycle as u64,
            )),
            _ => None,
        };

        // Analysis with bounded retry, optional fallback, and forecast-only
        // degradation as the last resort.
        let t_an = telemetry::enabled().then(std::time::Instant::now);
        let mut retry_exhausted = false;
        let analysis = match &obs {
            None => {
                counters.degraded_cycles += 1;
                events.push("degraded_cycle:forecast_only".to_string());
                None
            }
            Some(y) => {
                let forced_failures = plan.analysis_failures_at(cycle);
                let mut produced = None;
                for attempt in 0..=policy.max_analysis_retries {
                    let mut candidate = scheme.analyze(&ensemble, y);
                    if attempt < forced_failures {
                        candidate.as_mut_slice().fill(f64::NAN);
                    }
                    if health::all_finite(&candidate) {
                        produced = Some(candidate);
                        break;
                    }
                    if attempt < policy.max_analysis_retries {
                        let seed = split_seed(
                            config.seed ^ RETRY_SALT,
                            ((cycle as u64) << 8) | (attempt as u64 + 1),
                        );
                        scheme.reseed(seed);
                        counters.analysis_retries += 1;
                        events.push(format!("analysis_retry:{}", attempt + 1));
                    }
                }
                if produced.is_none() {
                    if let Some(fb) = fallback.as_deref_mut() {
                        let candidate = fb.analyze(&ensemble, y);
                        if health::all_finite(&candidate) {
                            counters.analysis_fallbacks += 1;
                            events.push(format!("analysis_fallback:{}", fb.name()));
                            produced = Some(candidate);
                        }
                    }
                }
                if produced.is_none() {
                    counters.degraded_cycles += 1;
                    events.push("degraded_cycle:analysis_failed".to_string());
                    retry_exhausted = true;
                    telemetry::flight_record(
                        telemetry::FlightKind::RetryExhausted,
                        cycle as i64,
                        "analysis_retry_exhausted",
                        (policy.max_analysis_retries + 1) as f64,
                        forced_failures as f64,
                    );
                }
                produced
            }
        };
        let analysis_secs = t_an.map(|t| t.elapsed().as_secs_f64());
        if let Some(a) = analysis {
            ensemble = a;
        }

        // Guardrail 2: spread collapse → re-inflate.
        if ensemble.spread() < policy.spread_floor {
            health::reinflate(
                &mut ensemble,
                policy.reinflate_target,
                split_seed(config.seed ^ REINFLATE_SALT, cycle as u64),
            );
            counters.reinflations += 1;
            events.push("spread_reinflated".to_string());
        }

        // Guardrail 3: climatology-relative divergence from the batch we
        // actually assimilated. A large innovation alone can just be a hard
        // cycle; divergence is flagged only when the ensemble is *also*
        // overconfident about it — obs-space spread–skill below the policy
        // threshold — then the ensemble is loosened by inflation.
        if let Some(y) = &obs {
            // Compare in observation space: map the analysis mean through the
            // configured operator (identity is an elementwise no-op) at the
            // components the mask actually observes — on partial networks
            // the innovation must not mix unobserved state into the RMSE.
            let mean_a = if config.obs_mask.is_full() {
                config.obs_operator.apply(&ensemble.mean())
            } else {
                let mean = ensemble.mean();
                config
                    .obs_mask
                    .observed_indices(dim, cycle as u64)
                    .into_iter()
                    .map(|i| config.obs_operator.h(mean[i]))
                    .collect()
            };
            let innovation = stats::metrics::rmse(&mean_a, y);
            let ratio = stats::diagnostics::spread_skill(ensemble.spread(), innovation);
            if innovation > policy.divergence_factor * nature.climatology_sd
                && ratio < policy.divergence_spread_skill
            {
                ensemble.inflate(policy.divergence_inflation);
                counters.divergence_flags += 1;
                events.push("divergence_detected".to_string());
            }
        }

        let mean = ensemble.mean();
        hours.push((cycle + 1) as f64 * config.obs_interval_hours);
        rmse.push(stats::metrics::rmse(&mean, &nature.truth[cycle + 1]));
        spread.push(ensemble.spread());

        let prev_state = state;
        state = if events.is_empty() {
            match state {
                LoopState::Degraded => LoopState::Recovering,
                LoopState::Recovering | LoopState::Healthy => LoopState::Healthy,
            }
        } else {
            LoopState::Degraded
        };

        if telemetry::enabled() {
            for event in &events {
                let key = event.split(':').next().unwrap_or(event);
                telemetry::counter_add(&format!("resilience.{key}"), 1);
                telemetry::flight_record(
                    telemetry::FlightKind::Guardrail,
                    cycle as i64,
                    key,
                    0.0,
                    0.0,
                );
            }
            if state != prev_state {
                telemetry::counter_add("supervisor.transitions", 1);
                telemetry::counter_add(
                    &format!("supervisor.transition.{}_to_{}", prev_state.name(), state.name()),
                    1,
                );
                telemetry::flight_record(
                    telemetry::FlightKind::Transition,
                    cycle as i64,
                    &format!("{}->{}", prev_state.name(), state.name()),
                    prev_state as u8 as f64,
                    state as u8 as f64,
                );
            }
            telemetry::gauge_set("supervisor.state", state as u8 as f64);
            telemetry::gauge_set("supervisor.retries", counters.analysis_retries as f64);
            telemetry::gauge_set("supervisor.fallbacks", counters.analysis_fallbacks as f64);
            telemetry::gauge_set(
                "supervisor.quarantined_members",
                counters.quarantined_members as f64,
            );
            telemetry::gauge_set("supervisor.divergence_flags", counters.divergence_flags as f64);
            let diagnostics = pre_diag.as_ref().zip(obs.as_ref()).map(|(pre, y)| {
                // INVARIANT: rmse was pushed for this cycle above.
                let skill = *rmse.last().unwrap();
                crate::diagnostics::complete_masked(
                    pre,
                    &ensemble,
                    y,
                    skill,
                    config.obs_operator,
                    config.obs_mask,
                    cycle as u64,
                )
            });
            if let Some(d) = &diagnostics {
                telemetry::gauge_set("supervisor.spread_skill", d.spread_skill);
                telemetry::gauge_set("supervisor.chi2", d.chi2);
                telemetry::flight_record(
                    telemetry::FlightKind::CycleDiag,
                    cycle as i64,
                    "cycle_diagnostics",
                    d.chi2,
                    d.spread_skill,
                );
            }
            telemetry::record_cycle(telemetry::CycleRecord {
                label: label.to_string(),
                cycle,
                // INVARIANT: all three series were pushed to this cycle above.
                hours: *hours.last().unwrap(),
                rmse: *rmse.last().unwrap(), // INVARIANT: pushed above
                spread: *spread.last().unwrap(), // INVARIANT: pushed above
                obs_count: obs.as_ref().map_or(0, Vec::len),
                phases: vec![
                    ("forecast".to_string(), forecast_secs.unwrap_or(0.0)),
                    ("analysis".to_string(), analysis_secs.unwrap_or(0.0)),
                ],
                events: events.clone(),
                diagnostics,
            });
            // Postmortem: dump *after* the cycle record so the snapshot's
            // recent-cycles window includes the cycle that went wrong.
            if retry_exhausted {
                telemetry::dump_postmortem("analysis_retry_exhausted");
            } else if prev_state == LoopState::Healthy && state == LoopState::Degraded {
                telemetry::dump_postmortem("left_healthy");
            }
        }

        model.assimilate_feedback(&prev_mean, &mean);
        prev_mean = mean;
        cycles_log.push(SupervisedCycle { cycle, state, events });

        let completed = cycle + 1;
        let killed = plan.kill_after == Some(completed) && completed < config.cycles;
        let due = resilience
            .checkpoint
            .as_ref()
            .is_some_and(|c| c.every > 0 && completed % c.every == 0);
        if due || killed {
            if let Some(ckcfg) = &resilience.checkpoint {
                make_checkpoint(
                    completed, state, scheme, model, &ensemble, &prev_mean, &hours, &rmse,
                    &spread, counters,
                )
                .save(&ckcfg.path)?;
            }
        }
        if killed {
            interrupted = true;
            break;
        }
    }

    let completed = start_cycle + cycles_log.len();
    let checkpoint = make_checkpoint(
        completed, state, scheme, model, &ensemble, &prev_mean, &hours, &rmse, &spread,
        counters,
    );
    let series = CycleSeries {
        label: label.to_string(),
        hours,
        rmse,
        spread,
        final_mean: ensemble.mean(),
    };
    Ok(SupervisedRun {
        series,
        cycles: cycles_log,
        counters,
        interrupted,
        final_state: state,
        checkpoint,
    })
}

#[allow(clippy::too_many_arguments)]
fn make_checkpoint(
    cycle: usize,
    state: LoopState,
    scheme: &mut dyn AnalysisScheme,
    model: &mut dyn ForecastModel,
    ensemble: &Ensemble,
    prev_mean: &[f64],
    hours: &[f64],
    rmse: &[f64],
    spread: &[f64],
    counters: RecoveryCounters,
) -> Checkpoint {
    let (scheme_epoch, scheme_seed) = scheme.rng_state();
    Checkpoint {
        cycle,
        state,
        scheme_epoch,
        scheme_seed,
        ensemble: ensemble.clone(),
        prev_mean: prev_mean.to_vec(),
        hours: hours.to_vec(),
        rmse: rmse.to_vec(),
        spread: spread.to_vec(),
        counters,
        model_state: model.save_state(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::fault::{AnalysisFault, FaultPlan, MemberFault, MemberFaultKind};
    use super::*;
    use crate::forecast::SqgForecast;
    use crate::osse::nature_run;
    use crate::traits::{EnsfScheme, LetkfScheme, NoAssimilation};
    use sqg::SqgParams;

    fn tiny_config(cycles: usize) -> OsseConfig {
        OsseConfig {
            params: SqgParams { n: 8, ..Default::default() },
            cycles,
            obs_sigma: 0.005,
            ens_size: 6,
            ic_sigma: 0.01,
            spinup_steps: 30,
            seed: 11,
            ..Default::default()
        }
    }

    fn ensf_scheme(cfg: &OsseConfig, dim: usize) -> EnsfScheme {
        EnsfScheme::new(
            ensf::EnsfConfig { n_steps: 15, seed: cfg.seed ^ 0xE45F, ..Default::default() },
            dim,
            cfg.obs_sigma,
        )
    }

    #[test]
    fn clean_plan_matches_plain_run_and_stays_healthy() {
        let cfg = tiny_config(4);
        let nr = nature_run(&cfg);
        let dim = nr.truth[0].len();

        let mut m1 = SqgForecast::perfect(cfg.params.clone());
        let mut s1 = ensf_scheme(&cfg, dim);
        let plain =
            crate::osse::run_experiment("plain", &cfg, &nr, &mut m1, &mut s1).unwrap();

        let mut m2 = SqgForecast::perfect(cfg.params.clone());
        let mut s2 = ensf_scheme(&cfg, dim);
        let res = ResilienceConfig::default();
        let run =
            run_supervised("sup", &cfg, &res, &nr, &mut m2, &mut s2, None).unwrap();

        assert_eq!(run.series.rmse, plain.rmse, "no faults ⇒ bit-identical to plain loop");
        assert_eq!(run.counters.total(), 0);
        assert!(!run.interrupted);
        assert!(run.cycles.iter().all(|c| c.events.is_empty()));
        assert_eq!(run.final_state, LoopState::Healthy);
    }

    #[test]
    fn member_faults_are_quarantined_and_recovered() {
        let cfg = tiny_config(5);
        let nr = nature_run(&cfg);
        let dim = nr.truth[0].len();
        let mut model = SqgForecast::perfect(cfg.params.clone());
        let mut scheme = ensf_scheme(&cfg, dim);
        let res = ResilienceConfig {
            plan: FaultPlan {
                member_faults: vec![
                    MemberFault { cycle: 1, member: 2, kind: MemberFaultKind::Nan },
                    MemberFault { cycle: 1, member: 4, kind: MemberFaultKind::Corrupt { scale: 1e8 } },
                ],
                ..FaultPlan::none()
            },
            ..Default::default()
        };
        let run =
            run_supervised("quarantine", &cfg, &res, &nr, &mut model, &mut scheme, None)
                .unwrap();
        assert_eq!(run.counters.quarantined_members, 2);
        assert_eq!(run.cycles[1].state, LoopState::Degraded);
        assert!(run.cycles[1].events.iter().any(|e| e == "member_quarantined:2"));
        assert!(run.cycles[1].events.iter().any(|e| e == "member_quarantined:4"));
        // Two clean cycles later the loop is healthy again.
        assert_eq!(run.cycles[2].state, LoopState::Recovering);
        assert_eq!(run.cycles[3].state, LoopState::Healthy);
        assert!(run.series.rmse.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn all_members_corrupt_is_unrecoverable() {
        let cfg = tiny_config(3);
        let nr = nature_run(&cfg);
        let mut model = SqgForecast::perfect(cfg.params.clone());
        let mut scheme = NoAssimilation;
        let res = ResilienceConfig {
            plan: FaultPlan {
                member_faults: (0..cfg.ens_size)
                    .map(|m| MemberFault { cycle: 1, member: m, kind: MemberFaultKind::Nan })
                    .collect(),
                ..FaultPlan::none()
            },
            ..Default::default()
        };
        let err = run_supervised("doom", &cfg, &res, &nr, &mut model, &mut scheme, None)
            .unwrap_err();
        assert!(matches!(err, OsseError::Unrecoverable { cycle: 1, .. }), "got {err}");
    }

    #[test]
    fn analysis_failure_retries_then_falls_back() {
        let cfg = tiny_config(4);
        let nr = nature_run(&cfg);
        let dim = nr.truth[0].len();
        let mut model = SqgForecast::perfect(cfg.params.clone());
        let mut scheme = ensf_scheme(&cfg, dim);
        let mut fallback = LetkfScheme::new(letkf::LetkfConfig::default(), &cfg.params, cfg.obs_sigma);
        // Fail more attempts than the retry budget allows: must fall back.
        let res = ResilienceConfig {
            plan: FaultPlan {
                analysis_faults: vec![AnalysisFault { cycle: 2, failures: 9 }],
                ..FaultPlan::none()
            },
            ..Default::default()
        };
        let run = run_supervised(
            "fallback",
            &cfg,
            &res,
            &nr,
            &mut model,
            &mut scheme,
            Some(&mut fallback),
        )
        .unwrap();
        assert_eq!(run.counters.analysis_retries, 2);
        assert_eq!(run.counters.analysis_fallbacks, 1);
        assert!(run.cycles[2].events.iter().any(|e| e == "analysis_fallback:LETKF"));
        assert_eq!(run.counters.degraded_cycles, 0, "fallback rescued the cycle");
    }

    #[test]
    fn analysis_failure_without_fallback_degrades() {
        let cfg = tiny_config(4);
        let nr = nature_run(&cfg);
        let dim = nr.truth[0].len();
        let mut model = SqgForecast::perfect(cfg.params.clone());
        let mut scheme = ensf_scheme(&cfg, dim);
        let res = ResilienceConfig {
            plan: FaultPlan {
                analysis_faults: vec![AnalysisFault { cycle: 1, failures: 9 }],
                ..FaultPlan::none()
            },
            ..Default::default()
        };
        let run =
            run_supervised("degrade", &cfg, &res, &nr, &mut model, &mut scheme, None).unwrap();
        assert_eq!(run.counters.degraded_cycles, 1);
        assert!(run.cycles[1].events.iter().any(|e| e == "degraded_cycle:analysis_failed"));
    }

    #[test]
    fn transient_analysis_failure_recovers_via_reseed() {
        let cfg = tiny_config(4);
        let nr = nature_run(&cfg);
        let dim = nr.truth[0].len();
        let mut model = SqgForecast::perfect(cfg.params.clone());
        let mut scheme = ensf_scheme(&cfg, dim);
        let res = ResilienceConfig {
            plan: FaultPlan {
                analysis_faults: vec![AnalysisFault { cycle: 1, failures: 1 }],
                ..FaultPlan::none()
            },
            ..Default::default()
        };
        let run =
            run_supervised("retry", &cfg, &res, &nr, &mut model, &mut scheme, None).unwrap();
        assert_eq!(run.counters.analysis_retries, 1);
        assert_eq!(run.counters.analysis_fallbacks, 0);
        assert_eq!(run.counters.degraded_cycles, 0);
        assert!(run.cycles[1].events.iter().any(|e| e == "analysis_retry:1"));
    }

    #[test]
    fn masked_network_survives_supervision_and_thinning() {
        use crate::osse::MaskKind;
        use crate::traits::MaskedEnsfScheme;
        let mask = MaskKind::Block { start: 32, len: 32 };
        let cfg = OsseConfig { obs_mask: mask, ..tiny_config(4) };
        let nr = nature_run(&cfg);
        let dim = nr.truth[0].len();
        assert_eq!(nr.observations[0].len(), dim - 32, "obs vector shrinks to the mask");
        let mut model = SqgForecast::perfect(cfg.params.clone());
        let mut scheme = MaskedEnsfScheme::new(
            ensf::EnsfConfig { n_steps: 15, seed: cfg.seed ^ 0xE45F, ..Default::default() },
            dim,
            cfg.obs_sigma,
            cfg.obs_operator,
            mask,
        );
        // Thin the already-masked batch at cycle 1: the guardrails (incl.
        // the masked obs-space divergence check) must keep the run finite.
        let res = ResilienceConfig {
            plan: FaultPlan {
                obs_faults: vec![(1, ObsFault::Thin { stride: 3 })],
                ..Default::default()
            },
            ..Default::default()
        };
        let run =
            run_supervised("masked", &cfg, &res, &nr, &mut model, &mut scheme, None).unwrap();
        assert!(run.cycles[1].events.iter().any(|e| e == "obs_thinned:3"));
        assert_eq!(run.counters.degraded_cycles, 0, "thinned masked batch still assimilates");
        assert!(run.series.rmse.iter().all(|r| r.is_finite()));
        assert!(!run.interrupted);
    }

    #[test]
    fn kill_after_interrupts_and_checkpoint_resumes_bit_identically() {
        let cfg = tiny_config(6);
        let nr = nature_run(&cfg);
        let dim = nr.truth[0].len();

        // Reference: uninterrupted supervised run.
        let mut m_ref = SqgForecast::perfect(cfg.params.clone());
        let mut s_ref = ensf_scheme(&cfg, dim);
        let full = run_supervised(
            "ref",
            &cfg,
            &ResilienceConfig::default(),
            &nr,
            &mut m_ref,
            &mut s_ref,
            None,
        )
        .unwrap();

        // Killed at cycle 3, then resumed from the in-memory checkpoint.
        let res_kill = ResilienceConfig {
            plan: FaultPlan { kill_after: Some(3), ..FaultPlan::none() },
            ..Default::default()
        };
        let mut m1 = SqgForecast::perfect(cfg.params.clone());
        let mut s1 = ensf_scheme(&cfg, dim);
        let killed =
            run_supervised("kill", &cfg, &res_kill, &nr, &mut m1, &mut s1, None).unwrap();
        assert!(killed.interrupted);
        assert_eq!(killed.checkpoint.cycle, 3);

        let mut m2 = SqgForecast::perfect(cfg.params.clone());
        let mut s2 = ensf_scheme(&cfg, dim);
        let resumed = resume_supervised(
            "resume",
            &cfg,
            &ResilienceConfig::default(),
            &nr,
            &mut m2,
            &mut s2,
            None,
            killed.checkpoint,
        )
        .unwrap();
        assert!(!resumed.interrupted);
        assert_eq!(resumed.series.rmse, full.series.rmse, "resume must be bit-identical");
        assert_eq!(resumed.series.spread, full.series.spread);
        assert_eq!(
            resumed.checkpoint.ensemble.as_slice(),
            full.checkpoint.ensemble.as_slice()
        );
        assert_eq!(resumed.cycles.len(), 3, "only the post-kill cycles ran in-process");
    }

    #[test]
    fn mismatched_checkpoint_rejected() {
        let cfg = tiny_config(3);
        let nr = nature_run(&cfg);
        let dim = nr.truth[0].len();
        let mut model = SqgForecast::perfect(cfg.params.clone());
        let mut scheme = ensf_scheme(&cfg, dim);
        let ck = Checkpoint {
            cycle: 1,
            state: LoopState::Healthy,
            scheme_epoch: 1,
            scheme_seed: 0,
            ensemble: Ensemble::zeros(cfg.ens_size, dim + 1), // wrong dim
            prev_mean: vec![0.0; dim + 1],
            hours: vec![12.0],
            rmse: vec![0.1],
            spread: vec![0.1],
            counters: RecoveryCounters::default(),
            model_state: None,
        };
        let err = resume_supervised(
            "bad", &cfg, &ResilienceConfig::default(), &nr, &mut model, &mut scheme, None, ck,
        )
        .unwrap_err();
        assert_eq!(err, OsseError::Checkpoint(CheckpointError::BadHeader));
    }

    #[test]
    fn dropped_and_delayed_batches_run_forecast_only_cycles() {
        let cfg = tiny_config(4);
        let nr = nature_run(&cfg);
        let dim = nr.truth[0].len();
        let mut model = SqgForecast::perfect(cfg.params.clone());
        let mut scheme = ensf_scheme(&cfg, dim);
        let res = ResilienceConfig {
            plan: FaultPlan {
                obs_faults: vec![
                    (0, super::super::fault::ObsFault::Drop),
                    (1, super::super::fault::ObsFault::Delay { by: 1 }),
                ],
                ..Default::default()
            },
            ..Default::default()
        };
        let run =
            run_supervised("obs-late", &cfg, &res, &nr, &mut model, &mut scheme, None).unwrap();
        // Both faulted cycles degrade to forecast-only; the delayed batch
        // arrives stale one cycle later and is discarded, never assimilated.
        assert_eq!(run.counters.degraded_cycles, 2);
        assert_eq!(run.counters.stale_obs_discarded, 1);
        assert!(run.cycles[0].events.iter().any(|e| e == "obs_dropped"));
        assert!(run.cycles[1].events.iter().any(|e| e == "obs_delayed:1"));
        assert!(run.cycles[2].events.iter().any(|e| e == "stale_obs_discarded"));
        // The clean trailing cycles still assimilate.
        assert!(run.cycles[3].events.is_empty());
        assert!(run.series.rmse.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn thinned_batch_still_assimilates_the_surviving_network() {
        let cfg = tiny_config(3);
        let nr = nature_run(&cfg);
        let dim = nr.truth[0].len();
        let mut model = SqgForecast::perfect(cfg.params.clone());
        let mut scheme = ensf_scheme(&cfg, dim);
        let res = ResilienceConfig {
            plan: FaultPlan {
                obs_faults: vec![(1, super::super::fault::ObsFault::Thin { stride: 4 })],
                ..Default::default()
            },
            ..Default::default()
        };
        let run =
            run_supervised("obs-thin", &cfg, &res, &nr, &mut model, &mut scheme, None).unwrap();
        // A thinned batch is degraded data, not a degraded cycle: the
        // analysis still runs on the surviving network.
        assert_eq!(run.counters.degraded_cycles, 0);
        assert!(run.cycles[1].events.iter().any(|e| e == "obs_thinned:4"));
        assert_eq!(run.series.rmse.len(), 3);
        assert!(run.series.rmse.iter().all(|r| r.is_finite()));
        // The run completes (possibly with a guardrail fired on the
        // information-starved cycle) rather than erroring out.
        assert!(!run.interrupted);
    }
}
