//! Ensemble health guardrails: detection and repair.
//!
//! Detection is cheap and total (the scans are plain finite/variance
//! arithmetic that cannot themselves fail on a damaged ensemble); repair is
//! deterministic, with every random draw seeded from the run's master seed
//! and the cycle index so that a resumed run repairs identically.

use stats::gaussian::standard_normal;
use stats::rng::{seeded, split_seed};
use stats::Ensemble;

/// Thresholds and knobs for the per-cycle health checks.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthPolicy {
    /// Ensemble spread below this is treated as filter collapse.
    pub spread_floor: f64,
    /// Spread restored (by inflation or, if fully collapsed, fresh
    /// perturbations) when collapse is detected.
    pub reinflate_target: f64,
    /// Innovation RMSE above `divergence_factor × climatology_sd` flags the
    /// filter as diverging from the observations.
    pub divergence_factor: f64,
    /// Multiplicative anomaly inflation applied when divergence is flagged.
    pub divergence_inflation: f64,
    /// Divergence additionally requires the observation-space spread–skill
    /// ratio to fall below this: a large innovation with commensurate
    /// spread is a hard cycle, not a diverging filter.
    pub divergence_spread_skill: f64,
    /// A member whose RMS amplitude exceeds `outlier_factor ×
    /// climatology_sd` is quarantined as silently corrupted (finite but
    /// physically impossible).
    pub outlier_factor: f64,
    /// Analysis attempts after the first before falling back (retry budget).
    pub max_analysis_retries: usize,
    /// Perturbation σ added to a healthy donor when resampling a
    /// quarantined member.
    pub resample_sigma: f64,
}

impl HealthPolicy {
    /// A policy scaled to an OSSE's observation error: collapse means the
    /// spread fell an order of magnitude below σ_obs, recovery restores it
    /// to σ_obs, and resampled members are perturbed at σ_obs.
    pub fn for_obs_sigma(obs_sigma: f64) -> Self {
        HealthPolicy {
            spread_floor: 0.1 * obs_sigma,
            reinflate_target: obs_sigma,
            divergence_factor: 2.0,
            divergence_inflation: 1.5,
            divergence_spread_skill: 0.5,
            outlier_factor: 20.0,
            max_analysis_retries: 2,
            resample_sigma: obs_sigma,
        }
    }
}

/// Indices of members containing any non-finite component.
pub fn scan_members(ensemble: &Ensemble) -> Vec<usize> {
    ensemble
        .iter()
        .enumerate()
        .filter(|(_, m)| m.iter().any(|v| !v.is_finite()))
        .map(|(i, _)| i)
        .collect()
}

/// Indices of members whose RMS amplitude exceeds `limit` — finite but
/// physically impossible states (e.g. a silently corrupted forecast).
// Negated comparisons deliberately treat NaN limits/amplitudes as outliers.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn scan_outliers(ensemble: &Ensemble, limit: f64) -> Vec<usize> {
    if !(limit > 0.0) || ensemble.dim() == 0 {
        return Vec::new();
    }
    ensemble
        .iter()
        .enumerate()
        .filter(|(_, m)| {
            let ms = m.iter().map(|v| v * v).sum::<f64>() / m.len() as f64;
            !(ms.sqrt() <= limit) // catches NaN RMS too
        })
        .map(|(i, _)| i)
        .collect()
}

/// True when every component of every member is finite.
pub fn all_finite(ensemble: &Ensemble) -> bool {
    ensemble.as_slice().iter().all(|v| v.is_finite())
}

/// Replaces each quarantined member with a perturbed copy of a healthy
/// donor. Donors are assigned round-robin over the healthy members, offset
/// by a seeded draw so repeated repairs don't always clone member 0.
/// Returns `false` (leaving the ensemble untouched) when no healthy donor
/// exists.
pub fn quarantine_and_resample(
    ensemble: &mut Ensemble,
    bad: &[usize],
    seed: u64,
    sigma: f64,
) -> bool {
    let healthy: Vec<usize> =
        (0..ensemble.members()).filter(|i| !bad.contains(i)).collect();
    if healthy.is_empty() {
        return false;
    }
    let mut rng = seeded(split_seed(seed, 0x4EA1));
    let offset = (standard_normal(&mut rng).abs() * 1e3) as usize;
    for (k, &b) in bad.iter().enumerate() {
        let donor = healthy[(offset + k) % healthy.len()];
        let copy: Vec<f64> = ensemble.member(donor).to_vec();
        let mut mrng = seeded(split_seed(seed, 0xBAD0 + b as u64));
        let member = ensemble.member_mut(b);
        for (x, d) in member.iter_mut().zip(&copy) {
            *x = d + sigma * standard_normal(&mut mrng);
        }
    }
    true
}

/// Restores a collapsed ensemble's spread to `target`. A merely deflated
/// ensemble is inflated about its mean; an effectively degenerate one
/// (spread ≲ rounding noise, so inflation cannot separate the members)
/// gets fresh seeded perturbations.
pub fn reinflate(ensemble: &mut Ensemble, target: f64, seed: u64) {
    let spread = ensemble.spread();
    // A spread many orders below target is indistinguishable from full
    // collapse: bitwise-identical members report ~1e-16 of rounding noise
    // as "spread", and inflating shifts every member equally, separating
    // nothing. Rebuild with fresh perturbations instead.
    if spread > target * 1e-6 {
        ensemble.inflate(target / spread);
    } else {
        let mut rng = seeded(split_seed(seed, 0x1F7A));
        for member in ensemble.iter_mut() {
            for x in member.iter_mut() {
                *x += target * standard_normal(&mut rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ens() -> Ensemble {
        Ensemble::from_members(&[
            vec![1.0, 2.0],
            vec![f64::NAN, 2.0],
            vec![1.5, f64::INFINITY],
            vec![0.5, 1.5],
        ])
    }

    #[test]
    fn scan_finds_nan_and_inf_members() {
        assert_eq!(scan_members(&ens()), vec![1, 2]);
        assert!(!all_finite(&ens()));
        assert!(all_finite(&Ensemble::zeros(3, 4)));
    }

    #[test]
    fn outlier_scan_flags_blown_up_members() {
        let e = Ensemble::from_members(&[
            vec![0.5, -0.5],
            vec![1e6, 1e6],
            vec![0.1, 0.2],
        ]);
        assert_eq!(scan_outliers(&e, 10.0), vec![1]);
        assert!(scan_outliers(&e, 0.0).is_empty(), "non-positive limit disables the scan");
        assert_eq!(scan_outliers(&Ensemble::zeros(2, 0), 1.0), Vec::<usize>::new());
    }

    #[test]
    fn resample_restores_finiteness_deterministically() {
        let mut a = ens();
        let mut b = ens();
        assert!(quarantine_and_resample(&mut a, &[1, 2], 99, 0.1));
        assert!(quarantine_and_resample(&mut b, &[1, 2], 99, 0.1));
        assert!(all_finite(&a));
        assert_eq!(a.as_slice(), b.as_slice(), "repair must be reproducible");
        assert_eq!(a.member(0), &[1.0, 2.0], "healthy members untouched");
        // Resampled members sit near a donor, not at it.
        assert_ne!(a.member(1), a.member(0));
    }

    #[test]
    fn resample_without_donors_refuses() {
        let mut e = Ensemble::from_members(&[vec![f64::NAN], vec![f64::NAN]]);
        assert!(!quarantine_and_resample(&mut e, &[0, 1], 1, 0.1));
        assert!(e.as_slice().iter().all(|v| v.is_nan()));
    }

    #[test]
    fn reinflate_scales_deflated_ensemble() {
        let mut e = Ensemble::from_members(&[vec![1.0, 1.0], vec![1.0001, 1.0001]]);
        let mean_before = e.mean();
        reinflate(&mut e, 0.5, 7);
        assert!((e.spread() - 0.5).abs() < 1e-12);
        let mean_after = e.mean();
        for (a, b) in mean_before.iter().zip(&mean_after) {
            assert!((a - b).abs() < 1e-9, "inflation preserves the mean");
        }
    }

    #[test]
    fn reinflate_rebuilds_degenerate_ensemble() {
        let mut e = Ensemble::from_members(&[vec![2.0, 2.0], vec![2.0, 2.0]]);
        assert_eq!(e.spread(), 0.0);
        reinflate(&mut e, 0.3, 11);
        assert!(e.spread() > 0.0, "zero-spread ensemble must regain spread");
        assert!(all_finite(&e));
    }

    #[test]
    fn policy_scales_with_obs_sigma() {
        let p = HealthPolicy::for_obs_sigma(0.01);
        assert!(p.spread_floor < p.reinflate_target);
        assert_eq!(p.reinflate_target, 0.01);
        assert!(p.max_analysis_retries >= 1);
    }
}
