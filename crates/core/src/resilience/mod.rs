//! Fault-tolerant DA cycling: fault injection, health guardrails,
//! checkpoint/restore, and degraded-cycle recovery.
//!
//! At the scale the paper targets (millions of state variables, real-time
//! cadence, thousands of ranks), component failures are routine rather than
//! exceptional: forecast members crash or silently blow up, observation
//! feeds stall, and stochastic analyses occasionally produce garbage. This
//! module makes the cycling loop survive all of that:
//!
//! - [`fault`] — deterministic, seedable fault scripts ([`FaultPlan`]) so
//!   every failure mode can be rehearsed reproducibly in CI;
//! - [`health`] — cheap per-cycle guardrails (non-finite/outlier member
//!   scans, spread-collapse and divergence detection) and deterministic
//!   repairs (quarantine-and-resample, re-inflation);
//! - [`checkpoint`] — binary [`Checkpoint`]s of the *full* cycling state
//!   (ensemble, scheme RNG position, verification series, health state)
//!   that resume bit-identically;
//! - [`supervisor`] — the supervised loop itself, a state machine
//!   (`Healthy → Degraded → Recovering → Healthy`) wrapping
//!   `run_experiment`'s cycle body with retry, fallback, and forecast-only
//!   degradation, reporting every recovery through telemetry.

pub mod checkpoint;
pub mod fault;
pub mod health;
pub mod supervisor;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use fault::{
    AnalysisFault, FaultPlan, MemberFault, MemberFaultKind, ObsFault, RankKill, RankRejoin,
};
pub use health::HealthPolicy;
pub use supervisor::{
    resume_supervised, run_supervised, CheckpointConfig, LoopState, RecoveryCounters,
    ResilienceConfig, SupervisedCycle, SupervisedRun,
};
