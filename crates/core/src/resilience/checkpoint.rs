//! Binary checkpoint/restore of full cycling state.
//!
//! A [`Checkpoint`] captures everything the supervised loop needs to resume
//! *bit-identically* after a crash: the analysis ensemble, the analysis
//! scheme's RNG position (epoch + current seed — enough to regenerate every
//! SDE noise stream), the verification series so far, the supervisor's
//! health state and counters, and an optional opaque forecast-model blob
//! (the ViT surrogate's online-adapted weights). The format follows
//! `sqg::io`: little-endian, magic + version framing, and deserialization
//! that rejects truncated or non-finite payloads instead of propagating
//! garbage into a restarted run.

use super::supervisor::{LoopState, RecoveryCounters};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use stats::Ensemble;

const MAGIC: u32 = 0x5351_474B; // "SQGK"
const VERSION: u32 = 1;

/// Complete cycling state at a cycle boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Number of fully completed cycles (resume starts at this cycle).
    pub cycle: usize,
    /// Supervisor health state at the boundary.
    pub state: LoopState,
    /// Analysis-scheme epoch (e.g. the EnSF internal cycle counter).
    pub scheme_epoch: u64,
    /// Analysis-scheme seed *at the boundary* (retries reseed permanently,
    /// so this can differ from the configured seed).
    pub scheme_seed: u64,
    /// The analysis ensemble.
    pub ensemble: Ensemble,
    /// Previous analysis mean (the online-feedback channel input).
    pub prev_mean: Vec<f64>,
    /// Simulated hours of each completed cycle.
    pub hours: Vec<f64>,
    /// Analysis RMSE of each completed cycle.
    pub rmse: Vec<f64>,
    /// Ensemble spread of each completed cycle.
    pub spread: Vec<f64>,
    /// Accumulated recovery counters.
    pub counters: RecoveryCounters,
    /// Opaque forecast-model state (`ForecastModel::save_state`), if the
    /// model provides one.
    pub model_state: Option<Vec<u8>>,
}

impl Checkpoint {
    /// Serializes to a byte buffer.
    pub fn to_bytes(&self) -> Bytes {
        let members = self.ensemble.members();
        let dim = self.ensemble.dim();
        let mut buf = BytesMut::with_capacity(
            128 + (members * dim + dim + 3 * self.hours.len()) * 8
                + self.model_state.as_ref().map_or(0, Vec::len),
        );
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.cycle as u64);
        buf.put_u8(self.state as u8);
        buf.put_u64_le(self.scheme_epoch);
        buf.put_u64_le(self.scheme_seed);
        buf.put_u64_le(members as u64);
        buf.put_u64_le(dim as u64);
        for &v in self.ensemble.as_slice() {
            buf.put_f64_le(v);
        }
        for &v in &self.prev_mean {
            buf.put_f64_le(v);
        }
        buf.put_u64_le(self.hours.len() as u64);
        for series in [&self.hours, &self.rmse, &self.spread] {
            for &v in series.iter() {
                buf.put_f64_le(v);
            }
        }
        for c in self.counters.as_array() {
            buf.put_u64_le(c);
        }
        match &self.model_state {
            Some(blob) => {
                buf.put_u8(1);
                buf.put_u64_le(blob.len() as u64);
                buf.put_slice(blob);
            }
            None => buf.put_u8(0),
        }
        buf.freeze()
    }

    /// Deserializes from a byte buffer, validating framing and finiteness.
    pub fn from_bytes(bytes: &Bytes) -> Result<Self, CheckpointError> {
        let mut buf = bytes.clone();
        if buf.remaining() < 49 {
            return Err(CheckpointError::Truncated);
        }
        if buf.get_u32_le() != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let cycle = buf.get_u64_le() as usize;
        let state = LoopState::from_u8(buf.get_u8()).ok_or(CheckpointError::BadHeader)?;
        let scheme_epoch = buf.get_u64_le();
        let scheme_seed = buf.get_u64_le();
        let members = buf.get_u64_le() as usize;
        let dim = buf.get_u64_le() as usize;
        if members == 0 || dim == 0 {
            return Err(CheckpointError::BadHeader);
        }
        let ens_vals = read_finite(&mut buf, members.saturating_mul(dim), "ensemble")?;
        let mut ensemble = Ensemble::zeros(members, dim);
        ensemble.as_mut_slice().copy_from_slice(&ens_vals);
        let prev_mean = read_finite(&mut buf, dim, "prev_mean")?;
        if buf.remaining() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let series_len = buf.get_u64_le() as usize;
        if series_len < cycle {
            // Fewer series points than completed cycles: inconsistent.
            return Err(CheckpointError::BadHeader);
        }
        let hours = read_finite(&mut buf, series_len, "hours")?;
        let rmse = read_finite(&mut buf, series_len, "rmse")?;
        let spread = read_finite(&mut buf, series_len, "spread")?;
        if buf.remaining() < RecoveryCounters::FIELDS * 8 + 1 {
            return Err(CheckpointError::Truncated);
        }
        let mut raw = [0u64; RecoveryCounters::FIELDS];
        for c in raw.iter_mut() {
            *c = buf.get_u64_le();
        }
        let counters = RecoveryCounters::from_array(raw);
        let model_state = match buf.get_u8() {
            0 => None,
            1 => {
                if buf.remaining() < 8 {
                    return Err(CheckpointError::Truncated);
                }
                let len = buf.get_u64_le() as usize;
                if buf.remaining() < len {
                    return Err(CheckpointError::Truncated);
                }
                let mut blob = vec![0u8; len];
                buf.copy_to_slice(&mut blob);
                Some(blob)
            }
            _ => return Err(CheckpointError::BadHeader),
        };
        Ok(Checkpoint {
            cycle,
            state,
            scheme_epoch,
            scheme_seed,
            ensemble,
            prev_mean,
            hours,
            rmse,
            spread,
            counters,
            model_state,
        })
    }

    /// Writes the checkpoint to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<(), CheckpointError> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Reads and validates a checkpoint from a file.
    pub fn load(path: &std::path::Path) -> Result<Self, CheckpointError> {
        let data = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Self::from_bytes(&Bytes::from(data))
    }
}

/// Reads `count` little-endian f64s, rejecting truncation and non-finite
/// values (a corrupt checkpoint must never seed a resumed run).
fn read_finite(
    buf: &mut Bytes,
    count: usize,
    field: &'static str,
) -> Result<Vec<f64>, CheckpointError> {
    if buf.remaining() < count.saturating_mul(8) {
        return Err(CheckpointError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let v = buf.get_f64_le();
        if !v.is_finite() {
            return Err(CheckpointError::NonFinite { field });
        }
        out.push(v);
    }
    Ok(out)
}

/// Why a checkpoint could not be written or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Buffer shorter than its framing promises.
    Truncated,
    /// Wrong magic number.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// Nonsensical header fields (zero dimensions, unknown state byte…).
    BadHeader,
    /// A float payload carries NaN/inf values.
    NonFinite {
        /// Which payload section was corrupt.
        field: &'static str,
    },
    /// The forecast model refused the stored model-state blob.
    ModelStateRejected,
    /// Filesystem failure while reading or writing.
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadHeader => write!(f, "inconsistent checkpoint header"),
            CheckpointError::NonFinite { field } => {
                write!(f, "checkpoint {field} contains non-finite values")
            }
            CheckpointError::ModelStateRejected => {
                write!(f, "forecast model rejected the checkpointed model state")
            }
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut ensemble = Ensemble::zeros(3, 4);
        for (i, v) in ensemble.as_mut_slice().iter_mut().enumerate() {
            *v = i as f64 * 0.25 - 1.0;
        }
        Checkpoint {
            cycle: 2,
            state: LoopState::Recovering,
            scheme_epoch: 2,
            scheme_seed: 0xDEAD_BEEF,
            ensemble,
            prev_mean: vec![0.1, -0.2, 0.3, -0.4],
            hours: vec![12.0, 24.0],
            rmse: vec![0.5, 0.4],
            spread: vec![0.3, 0.25],
            counters: RecoveryCounters {
                quarantined_members: 1,
                reinflations: 2,
                degraded_cycles: 3,
                analysis_retries: 4,
                analysis_fallbacks: 5,
                divergence_flags: 6,
                stale_obs_discarded: 7,
            },
            model_state: Some(vec![9, 8, 7, 6]),
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let ck = sample();
        let restored = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(restored, ck);

        let mut no_model = sample();
        no_model.model_state = None;
        assert_eq!(Checkpoint::from_bytes(&no_model.to_bytes()).unwrap(), no_model);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sqg_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle.ckpt");
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let full = sample().to_bytes();
        for cut in 0..full.len() {
            let partial = Bytes::from(full[..cut].to_vec());
            assert!(
                Checkpoint::from_bytes(&partial).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn corrupt_payloads_rejected() {
        let mut raw = sample().to_bytes().to_vec();
        raw[0] ^= 0xFF;
        assert_eq!(
            Checkpoint::from_bytes(&Bytes::from(raw)).unwrap_err(),
            CheckpointError::BadMagic
        );

        let mut nan = sample().to_bytes().to_vec();
        // First ensemble value sits right after the 49-byte header.
        nan[49..57].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            Checkpoint::from_bytes(&Bytes::from(nan)).unwrap_err(),
            CheckpointError::NonFinite { field: "ensemble" }
        );

        let mut bad_state = sample().to_bytes().to_vec();
        bad_state[16] = 9; // state byte follows magic/version/cycle.
        assert_eq!(
            Checkpoint::from_bytes(&Bytes::from(bad_state)).unwrap_err(),
            CheckpointError::BadHeader
        );
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Checkpoint::load(std::path::Path::new("/nonexistent/x.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
