//! The paper's 4-component stochastic model-error process (§IV-A-b).
//!
//! At every forecast step of the *imperfect* model, four independent white
//! (in time) Gaussian error processes may fire, with occurrence
//! probabilities 20 %, 15 %, 10 % and 5 % and amplitudes 20 %, 30 %, 40 %
//! and 50 % of the average magnitude of the SQG state. The covariance is
//! diagonal (spatially uncorrelated).

use rand::rngs::StdRng;
use rand::Rng;
use stats::gaussian::standard_normal;
use stats::rng::seeded;

/// Configuration of the stochastic error process.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelErrorConfig {
    /// Occurrence probability of each component per forecast interval.
    pub probabilities: Vec<f64>,
    /// Amplitude of each component, as a fraction of the mean |state|.
    pub amplitudes: Vec<f64>,
}

impl Default for ModelErrorConfig {
    fn default() -> Self {
        ModelErrorConfig {
            probabilities: vec![0.20, 0.15, 0.10, 0.05],
            amplitudes: vec![0.20, 0.30, 0.40, 0.50],
        }
    }
}

impl ModelErrorConfig {
    /// Validates shape and ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.probabilities.len() != self.amplitudes.len() {
            return Err("probabilities/amplitudes length mismatch".into());
        }
        if self.probabilities.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return Err("probabilities must be in [0,1]".into());
        }
        if self.amplitudes.iter().any(|a| *a < 0.0) {
            return Err("amplitudes must be nonnegative".into());
        }
        Ok(())
    }
}

/// Stateful model-error generator.
///
/// The error amplitude is anchored to a *fixed* climatological scale — the
/// paper specifies amplitudes as percentages of "the average SQG model
/// values", a property of the model climate, not of the instantaneous
/// state. (Scaling by the instantaneous state creates a positive feedback
/// that blows the trajectory up within tens of cycles.) The scale is frozen
/// from the first state the generator sees, which in the OSSE is the
/// spun-up, climatologically representative initial truth.
#[derive(Debug)]
pub struct ModelError {
    config: ModelErrorConfig,
    rng: StdRng,
    /// Frozen climatological scale (mean |state|); set on first use.
    scale: Option<f64>,
}

impl ModelError {
    /// Creates the generator.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(config: ModelErrorConfig, seed: u64) -> Self {
        config.validate().expect("invalid model-error configuration");
        ModelError { config, rng: seeded(seed), scale: None }
    }

    /// Creates a generator with an explicit climatological scale.
    pub fn with_scale(config: ModelErrorConfig, seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let mut me = Self::new(config, seed);
        me.scale = Some(scale);
        me
    }

    /// Applies one interval's worth of model error to `state` in place.
    /// Returns the total noise standard deviation that fired (0 if none).
    pub fn perturb(&mut self, state: &mut [f64]) -> f64 {
        // Climatological scale, frozen on first use.
        let scale = *self.scale.get_or_insert_with(|| {
            state.iter().map(|v| v.abs()).sum::<f64>() / state.len().max(1) as f64
        });
        // Independent components; fired variances add.
        let mut var = 0.0;
        for (p, a) in self.config.probabilities.iter().zip(&self.config.amplitudes) {
            if self.rng.random::<f64>() < *p {
                let sd = a * scale;
                var += sd * sd;
            }
        }
        if var == 0.0 { // lint: allow(float-exact-compare, reason="no component fired iff the sum is exactly 0.0")
            return 0.0;
        }
        let sd = var.sqrt();
        for v in state.iter_mut() {
            *v += sd * standard_normal(&mut self.rng);
        }
        sd
    }

    /// Expected per-interval error variance as a fraction of `scale²`
    /// (for test calibration): `Σ p_k a_k²`.
    pub fn expected_variance_fraction(&self) -> f64 {
        self.config
            .probabilities
            .iter()
            .zip(&self.config.amplitudes)
            .map(|(p, a)| p * a * a)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_valid() {
        assert!(ModelErrorConfig::default().validate().is_ok());
        let me = ModelError::new(ModelErrorConfig::default(), 1);
        // Σ p a² = .2·.04 + .15·.09 + .1·.16 + .05·.25 = 0.05
        assert!((me.expected_variance_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn perturbation_statistics_match_expectation() {
        let mut me = ModelError::new(ModelErrorConfig::default(), 7);
        let base = vec![1.0f64; 512]; // scale = 1
        let trials = 3000;
        let mut var_sum = 0.0;
        for _ in 0..trials {
            let mut s = base.clone();
            me.perturb(&mut s);
            let dv: f64 =
                s.iter().zip(&base).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / 512.0;
            var_sum += dv;
        }
        let mean_var = var_sum / trials as f64;
        assert!(
            (mean_var - 0.05).abs() < 0.01,
            "per-interval variance should be ≈0.05·scale², got {mean_var}"
        );
    }

    #[test]
    fn fires_intermittently() {
        let mut me = ModelError::new(ModelErrorConfig::default(), 3);
        let mut fired = 0;
        let trials = 2000;
        for _ in 0..trials {
            let mut s = vec![1.0; 8];
            if me.perturb(&mut s) > 0.0 {
                fired += 1;
            }
        }
        // P(any fires) = 1 − .8·.85·.9·.95 ≈ 0.4186
        let frac = fired as f64 / trials as f64;
        assert!((frac - 0.4186).abs() < 0.04, "firing fraction {frac}");
    }

    #[test]
    fn error_scales_with_climatology_not_instantaneous_state() {
        // Different climates give proportionally different error sizes...
        let mut me_small = ModelError::new(ModelErrorConfig::default(), 11);
        let mut me_big = ModelError::new(ModelErrorConfig::default(), 11);
        let small = vec![0.01f64; 256];
        let big = vec![10.0f64; 256];
        let mut ds = 0.0;
        let mut db = 0.0;
        for _ in 0..200 {
            let mut s = small.clone();
            let mut b = big.clone();
            ds += me_small.perturb(&mut s);
            db += me_big.perturb(&mut b);
        }
        assert!(db > 100.0 * ds, "error must scale with the climate: {ds} vs {db}");

        // ...but the scale is frozen: a grown state does NOT grow the error
        // (this is what prevents the positive feedback / blow-up).
        let mut me = ModelError::with_scale(ModelErrorConfig::default(), 13, 1.0);
        let mut total_small_state = 0.0;
        let mut total_big_state = 0.0;
        for _ in 0..400 {
            let mut s = vec![1.0f64; 64];
            total_small_state += me.perturb(&mut s);
            let mut b = vec![100.0f64; 64];
            total_big_state += me.perturb(&mut b);
        }
        let ratio = total_big_state / total_small_state.max(1e-12);
        assert!((0.5..2.0).contains(&ratio), "frozen scale violated: ratio {ratio}");
    }

    #[test]
    fn zero_probability_never_fires() {
        let cfg = ModelErrorConfig { probabilities: vec![0.0], amplitudes: vec![0.5] };
        let mut me = ModelError::new(cfg, 5);
        let mut s = vec![1.0; 16];
        for _ in 0..100 {
            assert_eq!(me.perturb(&mut s), 0.0);
        }
        assert!(s.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ModelErrorConfig { probabilities: vec![0.5], amplitudes: vec![] }
            .validate()
            .is_err());
        assert!(ModelErrorConfig { probabilities: vec![1.5], amplitudes: vec![0.1] }
            .validate()
            .is_err());
        assert!(ModelErrorConfig { probabilities: vec![0.5], amplitudes: vec![-0.1] }
            .validate()
            .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut me = ModelError::new(ModelErrorConfig::default(), seed);
            let mut s = vec![1.0; 32];
            for _ in 0..10 {
                me.perturb(&mut s);
            }
            s
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
