//! # da-core — the real-time data assimilation framework
//!
//! The paper's primary deliverable (Fig. 1): a sequential DA workflow that
//! is generic in the forecast model (physics-based SQG, learned ViT
//! surrogate, or any future foundation model) and in the analysis scheme
//! (EnSF, LETKF, or none), with:
//!
//! - [`osse`] — twin-experiment harness (nature run, synthetic observations
//!   every 12 h, `h = I`, diagonal R),
//! - [`ModelError`] — the 4-component stochastic model-error process of
//!   §IV-A (20/15/10/5 % occurrence, 20/30/40/50 % amplitude),
//! - [`VitSurrogate`] — offline pre-training plus the online fine-tuning
//!   channel through [`ForecastModel::assimilate_feedback`],
//! - [`experiments`] — the four architectures of Figs. 4–5
//!   (SQG-only / ViT-only / SQG+LETKF / ViT+EnSF) over a shared nature run,
//! - [`resilience`] — fault injection, ensemble health guardrails,
//!   checkpoint/restore, and the supervised (fault-tolerant) cycling loop.
//!
//! ```no_run
//! use da_core::experiments::{pretrain_surrogate, run_comparison, ComparisonConfig};
//!
//! let config = ComparisonConfig::small(10);
//! let surrogate = pretrain_surrogate(&config);
//! let cmp = run_comparison(&config, surrogate);
//! for s in &cmp.series {
//!     println!("{:>10}: steady RMSE {:.4}", s.label, s.steady_rmse());
//! }
//! ```

#![warn(missing_docs)]
// RK4 stage loops update state arrays at matched indices.
#![allow(clippy::needless_range_loop)]

pub mod diagnostics;
mod error;
pub mod experiments;
mod forecast;
pub mod inpaint;
mod lorenz96;
mod model_error;
pub mod osse;
pub mod resilience;
pub mod scenario;
mod surrogate;
mod traits;

pub use error::OsseError;
pub use forecast::SqgForecast;
pub use lorenz96::{Lorenz96, Lorenz96Params};
pub use model_error::{ModelError, ModelErrorConfig};
pub use surrogate::VitSurrogate;
pub use osse::{MaskKind, ObsOperatorKind};
pub use scenario::{run_scenario, standard_scenarios, ScenarioMethod, ScenarioResult, ScenarioSpec};
pub use traits::{
    AnalysisScheme, ArctanEnsfScheme, EnsfScheme, FlowMatchingArctanEnsfScheme,
    FlowMatchingEnsfScheme, ForecastModel, LetkfScheme, MaskIgnoringEnsfScheme, MaskedEnsfScheme,
    MaskedLetkfScheme, NoAssimilation, SparseEnsfScheme,
};
