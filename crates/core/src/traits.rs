//! Framework interfaces: forecast models and analysis schemes.
//!
//! The workflow of Fig. 1 is generic in both slots: the forecast model can
//! be the physics-based SQG, the ViT surrogate, or any AI foundation model;
//! the analysis scheme can be EnSF, LETKF, or nothing (free runs).

use stats::Ensemble;

/// A forecast model advancing a flat state vector through time.
pub trait ForecastModel {
    /// State dimension.
    fn state_dim(&self) -> usize;

    /// Advances `state` by `hours` of simulated time in place.
    fn forecast(&mut self, state: &mut [f64], hours: f64);

    /// Advances every member of an ensemble (default: member loop).
    fn forecast_ensemble(&mut self, ensemble: &mut Ensemble, hours: f64) {
        for m in 0..ensemble.members() {
            self.forecast(ensemble.member_mut(m), hours);
        }
    }

    /// Online adaptation hook (Fig. 1): after each analysis the workflow
    /// feeds the analyzed transition back to the model, letting learned
    /// surrogates absorb observational information. Physics models ignore
    /// it (default no-op).
    fn assimilate_feedback(&mut self, _prev_analysis: &[f64], _curr_analysis: &[f64]) {}

    /// Serializes adaptive internal state for checkpointing. Stateless
    /// physics models return `None` (the default): their forecasts are a
    /// pure function of the state vector, so there is nothing to save.
    fn save_state(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by [`ForecastModel::save_state`]. Returns
    /// `false` when the blob is unsupported or invalid (default).
    fn load_state(&mut self, _bytes: &[u8]) -> bool {
        false
    }
}

/// An analysis scheme combining a forecast ensemble with observations of
/// the full state (the paper's `h = I` OSSE setting).
pub trait AnalysisScheme {
    /// Human-readable name (used in reports).
    fn name(&self) -> &str;

    /// Produces the analysis ensemble from the forecast ensemble and the
    /// observation vector.
    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble;

    /// `(epoch, seed)` pinning the scheme's internal RNG streams, captured
    /// at checkpoint time. Deterministic/stateless schemes (LETKF, free
    /// runs) return `(0, 0)` (the default).
    fn rng_state(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Restores the `(epoch, seed)` captured by
    /// [`AnalysisScheme::rng_state`], so a resumed run replays the exact
    /// noise streams of the uninterrupted one. Default: no-op.
    fn set_rng_state(&mut self, _epoch: u64, _seed: u64) {}

    /// Switches the scheme onto a fresh internal noise stream — the
    /// supervised loop's retry path after a failed analysis. Deterministic
    /// schemes ignore it (a retry would reproduce the same failure, so the
    /// supervisor falls back instead).
    fn reseed(&mut self, _seed: u64) {}
}

/// The "no assimilation" scheme: analysis = forecast (free run).
#[derive(Debug, Clone, Default)]
pub struct NoAssimilation;

impl AnalysisScheme for NoAssimilation {
    fn name(&self) -> &str {
        "none"
    }

    fn analyze(&mut self, forecast: &Ensemble, _observation: &[f64]) -> Ensemble {
        forecast.clone()
    }
}

/// EnSF adapter over identity observations with error `sigma`.
pub struct EnsfScheme {
    filter: ensf::Ensf,
    obs: ensf::IdentityObs,
}

impl EnsfScheme {
    /// Builds the scheme for a `dim`-dimensional state.
    pub fn new(config: ensf::EnsfConfig, dim: usize, obs_sigma: f64) -> Self {
        EnsfScheme { filter: ensf::Ensf::new(config), obs: ensf::IdentityObs::new(dim, obs_sigma) }
    }
}

impl AnalysisScheme for EnsfScheme {
    fn name(&self) -> &str {
        "EnSF"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        self.filter.analyze(forecast, observation, &self.obs)
    }

    fn rng_state(&self) -> (u64, u64) {
        (self.filter.cycle(), self.filter.config().seed)
    }

    fn set_rng_state(&mut self, epoch: u64, seed: u64) {
        self.filter.set_cycle(epoch);
        self.filter.reseed(seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.filter.reseed(seed);
    }
}

/// EnSF adapter over the saturating `h(x) = arctan(gain · x)` observation
/// operator — the `nonlinear_obs` stress operator promoted into a standard
/// scheme so OSSE scenarios with [`crate::ObsOperatorKind::Arctan`]
/// assimilate observations generated in the matching observation space.
pub struct ArctanEnsfScheme {
    filter: ensf::Ensf,
    obs: ensf::ArctanObs,
}

impl ArctanEnsfScheme {
    /// Builds the scheme for a `dim`-dimensional state observed through
    /// `arctan(gain · x)` with error `sigma` in observation space.
    pub fn new(config: ensf::EnsfConfig, dim: usize, obs_sigma: f64, gain: f64) -> Self {
        ArctanEnsfScheme {
            filter: ensf::Ensf::new(config),
            obs: ensf::ArctanObs::with_gain(dim, obs_sigma, gain),
        }
    }
}

impl AnalysisScheme for ArctanEnsfScheme {
    fn name(&self) -> &str {
        "EnSF-arctan"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        self.filter.analyze(forecast, observation, &self.obs)
    }

    fn rng_state(&self) -> (u64, u64) {
        (self.filter.cycle(), self.filter.config().seed)
    }

    fn set_rng_state(&mut self, epoch: u64, seed: u64) {
        self.filter.set_cycle(epoch);
        self.filter.reseed(seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.filter.reseed(seed);
    }
}

/// Flow-matching EnSF adapter over identity observations: the same score
/// machinery as [`EnsfScheme`], but the analysis integrates the few-step
/// deterministic probability-flow ODE instead of the 100-step stochastic
/// reverse SDE. `config.method` is forced to
/// [`ensf::AnalysisMethod::FlowMatching`], so `n_steps` means ODE grid
/// steps (5–10 reach SDE-level accuracy).
pub struct FlowMatchingEnsfScheme {
    filter: ensf::Ensf,
    obs: ensf::IdentityObs,
}

impl FlowMatchingEnsfScheme {
    /// Builds the scheme for a `dim`-dimensional state; `config.method` is
    /// overridden to the flow-matching analysis path.
    pub fn new(config: ensf::EnsfConfig, dim: usize, obs_sigma: f64) -> Self {
        let config = ensf::EnsfConfig { method: ensf::AnalysisMethod::FlowMatching, ..config };
        FlowMatchingEnsfScheme {
            filter: ensf::Ensf::new(config),
            obs: ensf::IdentityObs::new(dim, obs_sigma),
        }
    }
}

impl AnalysisScheme for FlowMatchingEnsfScheme {
    fn name(&self) -> &str {
        "FlowEnSF"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        self.filter.analyze(forecast, observation, &self.obs)
    }

    fn rng_state(&self) -> (u64, u64) {
        (self.filter.cycle(), self.filter.config().seed)
    }

    fn set_rng_state(&mut self, epoch: u64, seed: u64) {
        self.filter.set_cycle(epoch);
        self.filter.reseed(seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.filter.reseed(seed);
    }
}

/// Flow-matching EnSF adapter over the saturating arctan observation
/// operator ([`ArctanEnsfScheme`]'s deterministic few-step counterpart).
/// The flow's guidance linearizes `h` at the denoised estimate via the
/// operator's Jacobian, so the nonlinear-obs path needs no extra wiring.
pub struct FlowMatchingArctanEnsfScheme {
    filter: ensf::Ensf,
    obs: ensf::ArctanObs,
}

impl FlowMatchingArctanEnsfScheme {
    /// Builds the scheme for a `dim`-dimensional state observed through
    /// `arctan(gain · x)` with error `sigma` in observation space;
    /// `config.method` is overridden to the flow-matching analysis path.
    pub fn new(config: ensf::EnsfConfig, dim: usize, obs_sigma: f64, gain: f64) -> Self {
        let config = ensf::EnsfConfig { method: ensf::AnalysisMethod::FlowMatching, ..config };
        FlowMatchingArctanEnsfScheme {
            filter: ensf::Ensf::new(config),
            obs: ensf::ArctanObs::with_gain(dim, obs_sigma, gain),
        }
    }
}

impl AnalysisScheme for FlowMatchingArctanEnsfScheme {
    fn name(&self) -> &str {
        "FlowEnSF-arctan"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        self.filter.analyze(forecast, observation, &self.obs)
    }

    fn rng_state(&self) -> (u64, u64) {
        (self.filter.cycle(), self.filter.config().seed)
    }

    fn set_rng_state(&mut self, epoch: u64, seed: u64) {
        self.filter.set_cycle(epoch);
        self.filter.reseed(seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.filter.reseed(seed);
    }
}

/// EnSF adapter over a *sparse* network observing every `stride`-th state
/// component. The workflow still hands the full noisy-state vector to the
/// scheme (the OSSE measures everything); the scheme subsamples it, so only
/// the network's share of the information reaches the filter.
pub struct SparseEnsfScheme {
    filter: ensf::Ensf,
    obs: ensf::StridedObs,
    stride: usize,
}

impl SparseEnsfScheme {
    /// Builds the scheme for a `dim`-dimensional state observed at every
    /// `stride`-th component.
    pub fn new(config: ensf::EnsfConfig, dim: usize, stride: usize, obs_sigma: f64) -> Self {
        assert!(stride >= 1);
        SparseEnsfScheme {
            filter: ensf::Ensf::new(config),
            obs: ensf::StridedObs::new(dim, stride, obs_sigma),
            stride,
        }
    }
}

impl AnalysisScheme for SparseEnsfScheme {
    fn name(&self) -> &str {
        "EnSF-sparse"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        let y: Vec<f64> = observation.iter().step_by(self.stride).copied().collect();
        self.filter.analyze(forecast, &y, &self.obs)
    }

    fn rng_state(&self) -> (u64, u64) {
        (self.filter.cycle(), self.filter.config().seed)
    }

    fn set_rng_state(&mut self, epoch: u64, seed: u64) {
        self.filter.set_cycle(epoch);
        self.filter.reseed(seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.filter.reseed(seed);
    }
}

/// LETKF adapter over the two-level SQG grid with identity observations,
/// optionally thinned to every `stride`-th grid point (sparse networks are
/// LETKF's home turf: localization spreads the sparse information).
pub struct LetkfScheme {
    filter: letkf::Letkf,
    obs_sigma: f64,
    stride: usize,
}

impl LetkfScheme {
    /// Builds the scheme for an `n × n × 2` grid with physical parameters
    /// from `params` (Rossby-coupled vertical localization).
    pub fn new(config: letkf::LetkfConfig, params: &sqg::SqgParams, obs_sigma: f64) -> Self {
        Self::with_stride(config, params, obs_sigma, 1)
    }

    /// Same, observing only every `stride`-th state component.
    pub fn with_stride(
        config: letkf::LetkfConfig,
        params: &sqg::SqgParams,
        obs_sigma: f64,
        stride: usize,
    ) -> Self {
        assert!(stride >= 1);
        let geometry = letkf::GridGeometry::new(
            params.n,
            sqg::LEVELS,
            params.domain,
            params.rossby_radius(),
        );
        LetkfScheme { filter: letkf::Letkf::new(config, geometry), obs_sigma, stride }
    }
}

impl AnalysisScheme for LetkfScheme {
    fn name(&self) -> &str {
        "LETKF"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        let network: Vec<letkf::PointObs> = observation
            .iter()
            .enumerate()
            .step_by(self.stride)
            .map(|(i, &v)| letkf::PointObs { state_index: i, value: v, sigma: self.obs_sigma })
            .collect();
        self.filter.analyze(forecast, &network)
    }
}

/// Runs one dense analysis through the operator kind's batched-GEMM-ready
/// dense observation operator (shared by the masked schemes, which
/// complete the observation vector before assimilating).
fn dense_analyze(
    filter: &mut ensf::Ensf,
    forecast: &Ensemble,
    y: &[f64],
    dim: usize,
    obs_sigma: f64,
    operator: crate::osse::ObsOperatorKind,
) -> Ensemble {
    match operator {
        crate::osse::ObsOperatorKind::Identity => {
            filter.analyze(forecast, y, &ensf::IdentityObs::new(dim, obs_sigma))
        }
        crate::osse::ObsOperatorKind::Arctan { gain } => {
            filter.analyze(forecast, y, &ensf::ArctanObs::with_gain(dim, obs_sigma, gain))
        }
    }
}

/// Inpainting-EnSF adapter over a partially observed network (Liang et
/// al., arXiv:2501.12419): the observation vector holds only the mask's
/// observed components; the scheme rebuilds a dense vector by harmonic
/// inpainting of the obs-space innovation field `y − h(x̄_f)` on the
/// two-level grid ([`crate::inpaint::harmonic_fill`]) and assimilates the
/// completed vector through the dense batched-GEMM score kernels. Observed
/// pixels keep their real measurements, so guidance there is exact; masked
/// pixels receive spatially interpolated pseudo-observations, anchoring
/// the diffusion inside the outage to real information from the
/// surrounding network instead of leaving it to the prior score alone
/// (which lets small ensembles drift; see the scenario bench). Pure
/// guidance masking — score-only diffusion on masked pixels — remains
/// available as the [`ensf::MaskedObs`] operator, which the sharded
/// runtime partitions per tile. Serves both transport paths — set
/// [`ensf::EnsfConfig::method`] to pick the reverse SDE or the few-step
/// probability-flow ODE.
///
/// The mask's cycle index is the filter's analysis-cycle counter, so
/// moving-track masks stay aligned with the OSSE as long as the scheme
/// performs one analysis per assimilation cycle (checkpoint restore
/// re-aligns it through [`AnalysisScheme::set_rng_state`]).
pub struct MaskedEnsfScheme {
    filter: ensf::Ensf,
    dim: usize,
    obs_sigma: f64,
    operator: crate::osse::ObsOperatorKind,
    mask: crate::osse::MaskKind,
    name: &'static str,
}

impl MaskedEnsfScheme {
    /// Builds the scheme for a `dim`-dimensional state observed through
    /// `operator` at the components `mask` leaves visible.
    pub fn new(
        config: ensf::EnsfConfig,
        dim: usize,
        obs_sigma: f64,
        operator: crate::osse::ObsOperatorKind,
        mask: crate::osse::MaskKind,
    ) -> Self {
        let name = match config.method {
            ensf::AnalysisMethod::ReverseSde => "EnSF-inpaint",
            ensf::AnalysisMethod::FlowMatching => "FlowEnSF-inpaint",
        };
        MaskedEnsfScheme { filter: ensf::Ensf::new(config), dim, obs_sigma, operator, mask, name }
    }
}

impl AnalysisScheme for MaskedEnsfScheme {
    fn name(&self) -> &str {
        self.name
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        let cycle = self.filter.cycle();
        if self.mask.is_full() {
            // Bitwise identical to the dense schemes: same operator, same
            // observation vector, no fill arithmetic on the way.
            return dense_analyze(
                &mut self.filter,
                forecast,
                observation,
                self.dim,
                self.obs_sigma,
                self.operator,
            );
        }
        let observed = self.mask.observed_indices(self.dim, cycle);
        assert_eq!(
            observation.len(),
            observed.len(),
            "observation vector must hold exactly the mask's observed components"
        );
        let mean = forecast.mean();
        // Harmonic inpainting of the obs-space innovation field: Dirichlet
        // data at observed pixels, Laplace fill across the outage.
        let mut innovation = vec![0.0; self.dim];
        let mut known = vec![false; self.dim];
        for (k, &i) in observed.iter().enumerate() {
            innovation[i] = observation[k] - self.operator.h(mean[i]);
            known[i] = true;
        }
        crate::inpaint::harmonic_fill(&mut innovation, &known, crate::inpaint::FILL_SWEEPS);
        let mut y_full = vec![0.0; self.dim];
        let mut k = 0;
        for i in 0..self.dim {
            if known[i] {
                // Real measurements pass through exactly.
                y_full[i] = observation[k];
                k += 1;
            } else {
                y_full[i] = self.operator.h(mean[i]) + innovation[i];
            }
        }
        dense_analyze(&mut self.filter, forecast, &y_full, self.dim, self.obs_sigma, self.operator)
    }

    fn rng_state(&self) -> (u64, u64) {
        (self.filter.cycle(), self.filter.config().seed)
    }

    fn set_rng_state(&mut self, epoch: u64, seed: u64) {
        self.filter.set_cycle(epoch);
        self.filter.reseed(seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.filter.reseed(seed);
    }
}

/// Mask-*ignoring* EnSF baseline: the canonical outage bug. The dense
/// pipeline is fed as if the network were complete — dead sensors
/// flat-line at zero in observation space, and those zeros are
/// assimilated as real measurements with full guidance weight, pinning
/// unobserved components toward zero regardless of the flow state. This
/// is the comparison target the inpainting guidance must beat on
/// unobserved regions (Liang et al.'s plain-EnSF comparison).
pub struct MaskIgnoringEnsfScheme {
    filter: ensf::Ensf,
    dim: usize,
    obs_sigma: f64,
    operator: crate::osse::ObsOperatorKind,
    mask: crate::osse::MaskKind,
}

impl MaskIgnoringEnsfScheme {
    /// Builds the baseline for a `dim`-dimensional state under `mask`,
    /// observing through `operator` (dead slots read zero in its
    /// observation space).
    pub fn new(
        config: ensf::EnsfConfig,
        dim: usize,
        obs_sigma: f64,
        operator: crate::osse::ObsOperatorKind,
        mask: crate::osse::MaskKind,
    ) -> Self {
        MaskIgnoringEnsfScheme { filter: ensf::Ensf::new(config), dim, obs_sigma, operator, mask }
    }
}

impl AnalysisScheme for MaskIgnoringEnsfScheme {
    fn name(&self) -> &str {
        "EnSF-ignore"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        let cycle = self.filter.cycle();
        let observed = self.mask.observed_indices(self.dim, cycle);
        assert_eq!(
            observation.len(),
            observed.len(),
            "observation vector must hold exactly the mask's observed components"
        );
        let mut y_full = vec![0.0; self.dim];
        for (k, &i) in observed.iter().enumerate() {
            y_full[i] = observation[k];
        }
        dense_analyze(&mut self.filter, forecast, &y_full, self.dim, self.obs_sigma, self.operator)
    }

    fn rng_state(&self) -> (u64, u64) {
        (self.filter.cycle(), self.filter.config().seed)
    }

    fn set_rng_state(&mut self, epoch: u64, seed: u64) {
        self.filter.set_cycle(epoch);
        self.filter.reseed(seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.filter.reseed(seed);
    }
}

/// LETKF adapter over a masked identity network: the observation vector
/// holds only the mask's observed components, each becoming a
/// [`letkf::PointObs`] at its true grid location so localization spreads
/// the partial information — LETKF's native answer to sensor outages, and
/// the masked baseline the EnSF scenarios are judged against.
pub struct MaskedLetkfScheme {
    filter: letkf::Letkf,
    obs_sigma: f64,
    dim: usize,
    mask: crate::osse::MaskKind,
    cycle: u64,
}

impl MaskedLetkfScheme {
    /// Builds the scheme for an `n × n × 2` grid under `mask` (identity
    /// observation base; LETKF linearizes about the forecast, so the
    /// saturating operators stay with the EnSF adapters).
    pub fn new(
        config: letkf::LetkfConfig,
        params: &sqg::SqgParams,
        obs_sigma: f64,
        mask: crate::osse::MaskKind,
    ) -> Self {
        let geometry = letkf::GridGeometry::new(
            params.n,
            sqg::LEVELS,
            params.domain,
            params.rossby_radius(),
        );
        MaskedLetkfScheme {
            filter: letkf::Letkf::new(config, geometry),
            obs_sigma,
            dim: params.state_dim(),
            mask,
            cycle: 0,
        }
    }
}

impl AnalysisScheme for MaskedLetkfScheme {
    fn name(&self) -> &str {
        "LETKF-masked"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        let observed = self.mask.observed_indices(self.dim, self.cycle);
        self.cycle += 1;
        let network: Vec<letkf::PointObs> = observed
            .iter()
            .zip(observation)
            .map(|(&i, &v)| letkf::PointObs { state_index: i, value: v, sigma: self.obs_sigma })
            .collect();
        self.filter.analyze(forecast, &network)
    }

    fn rng_state(&self) -> (u64, u64) {
        (self.cycle, 0)
    }

    fn set_rng_state(&mut self, epoch: u64, _seed: u64) {
        self.cycle = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl ForecastModel for Doubler {
        fn state_dim(&self) -> usize {
            3
        }
        fn forecast(&mut self, state: &mut [f64], hours: f64) {
            for v in state.iter_mut() {
                *v *= 2.0f64.powf(hours / 12.0);
            }
        }
    }

    #[test]
    fn default_ensemble_forecast_maps_members() {
        let mut model = Doubler;
        let mut e = Ensemble::from_members(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        model.forecast_ensemble(&mut e, 12.0);
        assert_eq!(e.member(0), &[2.0, 4.0, 6.0]);
        assert_eq!(e.member(1), &[8.0, 10.0, 12.0]);
    }

    #[test]
    fn no_assimilation_is_identity() {
        let mut s = NoAssimilation;
        let e = Ensemble::from_members(&[vec![1.0], vec![2.0]]);
        let a = s.analyze(&e, &[5.0]);
        assert_eq!(a, e);
        assert_eq!(s.name(), "none");
    }

    #[test]
    fn arctan_scheme_pulls_toward_obs_space_target() {
        let dim = 8;
        let gain = 4.0;
        let mut scheme = ArctanEnsfScheme::new(
            ensf::EnsfConfig { n_steps: 20, seed: 7, ..Default::default() },
            dim,
            0.05,
            gain,
        );
        assert_eq!(scheme.name(), "EnSF-arctan");
        // Ensemble scattered around 0; truth at 0.8, observed through
        // arctan(gain·x). The analysis mean must move toward the truth.
        let members: Vec<Vec<f64>> =
            (0..12).map(|m| vec![0.1 * m as f64 - 0.55; dim]).collect();
        let fc = Ensemble::from_members(&members);
        let truth = 0.8;
        let y = vec![(gain * truth).atan(); dim];
        let an = scheme.analyze(&fc, &y);
        let before = (fc.mean()[0] - truth).abs();
        let after = (an.mean()[0] - truth).abs();
        assert!(after < before, "arctan EnSF must pull toward truth: {before} -> {after}");
    }

    #[test]
    fn ensf_scheme_assimilates() {
        let mut scheme = EnsfScheme::new(
            ensf::EnsfConfig { n_steps: 20, seed: 1, ..Default::default() },
            4,
            0.5,
        );
        assert_eq!(scheme.name(), "EnSF");
        let members: Vec<Vec<f64>> = (0..12).map(|m| vec![0.1 * m as f64 - 0.55; 4]).collect();
        let fc = Ensemble::from_members(&members);
        let an = scheme.analyze(&fc, &[1.0; 4]);
        let before = fc.mean()[0];
        let after = an.mean()[0];
        assert!((after - 1.0).abs() < (before - 1.0).abs(), "EnSF must pull toward obs");
    }

    #[test]
    fn sparse_schemes_only_use_their_network() {
        // With stride 2, perturbing an UNOBSERVED component of the
        // observation vector must not change the analysis.
        let members: Vec<Vec<f64>> = (0..10).map(|m| vec![0.1 * m as f64; 8]).collect();
        let fc = Ensemble::from_members(&members);
        let mut scheme = SparseEnsfScheme::new(
            ensf::EnsfConfig { n_steps: 15, seed: 2, ..Default::default() },
            8,
            2,
            0.5,
        );
        assert_eq!(scheme.name(), "EnSF-sparse");
        let mut y = vec![1.0; 8];
        let a1 = scheme.analyze(&fc, &y);
        y[1] = 99.0; // unobserved slot
        let mut scheme2 = SparseEnsfScheme::new(
            ensf::EnsfConfig { n_steps: 15, seed: 2, ..Default::default() },
            8,
            2,
            0.5,
        );
        let a2 = scheme2.analyze(&fc, &y);
        assert_eq!(a1.as_slice(), a2.as_slice());
    }

    #[test]
    fn letkf_stride_thins_network() {
        let params = sqg::SqgParams { n: 4, ..Default::default() };
        let mut dense = LetkfScheme::new(
            letkf::LetkfConfig { rtps_alpha: 0.0, ..Default::default() },
            &params,
            0.3,
        );
        let mut sparse = LetkfScheme::with_stride(
            letkf::LetkfConfig { rtps_alpha: 0.0, ..Default::default() },
            &params,
            0.3,
            4,
        );
        let members: Vec<Vec<f64>> = (0..10).map(|m| vec![0.2 * m as f64 - 0.9; 32]).collect();
        let fc = Ensemble::from_members(&members);
        let y = vec![1.0; 32];
        let ad = dense.analyze(&fc, &y);
        let asp = sparse.analyze(&fc, &y);
        let pull = |e: &Ensemble, i: usize| (e.mean()[i] - fc.mean()[i]).abs();
        // Component 1 is unobserved by the sparse network (and, with the
        // default 2000 km cutoff on this coarse 5000 km-spacing grid, out of
        // range of every sparse observation): only the dense network
        // updates it.
        assert!(pull(&ad, 1) > 1e-6, "dense must update component 1");
        assert!(pull(&asp, 1) < 1e-12, "sparse must leave component 1 alone");
        // The observed component moves under both.
        assert!(pull(&asp, 0) > 1e-6);
        assert!(pull(&ad, 0) > 1e-6);
    }

    #[test]
    fn masked_ensf_scheme_full_mask_matches_dense_scheme_bitwise() {
        // Under ScoreKernel::Reference there is no hoisted constant-Jacobian
        // branch, so the full-mask MaskedObs must reproduce the dense
        // IdentityObs analysis bit-for-bit.
        let dim = 6;
        let config = ensf::EnsfConfig {
            n_steps: 12,
            seed: 9,
            kernel: ensf::ScoreKernel::Reference,
            ..Default::default()
        };
        let members: Vec<Vec<f64>> = (0..10).map(|m| vec![0.1 * m as f64 - 0.4; dim]).collect();
        let fc = Ensemble::from_members(&members);
        let y = vec![0.7; dim];
        let mut dense = EnsfScheme::new(config.clone(), dim, 0.5);
        let mut masked = MaskedEnsfScheme::new(
            config,
            dim,
            0.5,
            crate::osse::ObsOperatorKind::Identity,
            crate::osse::MaskKind::Full,
        );
        assert_eq!(masked.name(), "EnSF-inpaint");
        assert_eq!(dense.analyze(&fc, &y).as_slice(), masked.analyze(&fc, &y).as_slice());
    }

    #[test]
    fn masked_ensf_scheme_accepts_shrunk_observation_vector() {
        let dim = 8;
        let mask = crate::osse::MaskKind::Block { start: 2, len: 4 };
        let mut scheme = MaskedEnsfScheme::new(
            ensf::EnsfConfig { n_steps: 10, seed: 3, ..Default::default() },
            dim,
            0.5,
            crate::osse::ObsOperatorKind::Identity,
            mask,
        );
        let members: Vec<Vec<f64>> = (0..10).map(|m| vec![0.1 * m as f64; dim]).collect();
        let fc = Ensemble::from_members(&members);
        // Only 4 of 8 components observed.
        let an = scheme.analyze(&fc, &[1.0; 4]);
        assert_eq!(an.dim(), dim);
        assert!(an.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mask_ignoring_baseline_assimilates_dead_sensor_zeros() {
        let dim = 8;
        let mask = crate::osse::MaskKind::Block { start: 4, len: 4 };
        let mut scheme = MaskIgnoringEnsfScheme::new(
            ensf::EnsfConfig { n_steps: 15, seed: 4, ..Default::default() },
            dim,
            0.05,
            crate::osse::ObsOperatorKind::Identity,
            mask,
        );
        assert_eq!(scheme.name(), "EnSF-ignore");
        // Forecast mean sits at 0.55; real obs say 1.0, dead sensors say 0.
        let members: Vec<Vec<f64>> = (0..12).map(|m| vec![0.1 * m as f64; dim]).collect();
        let fc = Ensemble::from_members(&members);
        let an = scheme.analyze(&fc, &[1.0; 4]);
        // Observed half pulls toward 1.0; the outage is dragged toward the
        // flat-lined zeros instead of staying with the forecast.
        assert!((an.mean()[0] - 1.0).abs() < (fc.mean()[0] - 1.0).abs());
        // The test ensemble is perfectly cross-correlated, so the joint
        // prior tempers the conflict between the two halves; the zeros
        // still drag the outage below the forecast mean while the real
        // obs sit far above it.
        assert!(
            an.mean()[6] < fc.mean()[6] - 0.05,
            "dragged toward zero: {} vs forecast {}",
            an.mean()[6],
            fc.mean()[6]
        );
    }

    #[test]
    fn inpainting_scheme_fills_the_outage_from_the_surrounding_network() {
        // dim = 8 is a two-level 2x2 grid; blind the whole bottom level.
        // Every unknown pixel's vertical partner is observed, so the
        // harmonic fill reconstructs the (constant) innovation and the
        // analysis pulls the outage toward the observed value, not zero.
        let dim = 8;
        let mask = crate::osse::MaskKind::Block { start: 0, len: 4 };
        let mut scheme = MaskedEnsfScheme::new(
            ensf::EnsfConfig { n_steps: 15, seed: 4, ..Default::default() },
            dim,
            0.05,
            crate::osse::ObsOperatorKind::Identity,
            mask,
        );
        let members: Vec<Vec<f64>> = (0..12).map(|m| vec![0.1 * m as f64; dim]).collect();
        let fc = Ensemble::from_members(&members);
        let an = scheme.analyze(&fc, &[1.0; 4]);
        // The unobserved bottom level lands near the inpainted 1.0, far
        // from both zero and the 0.55 forecast mean.
        assert!((an.mean()[1] - 1.0).abs() < 0.15, "inpainted pull: {}", an.mean()[1]);
    }

    #[test]
    fn masked_letkf_updates_only_near_observed_components() {
        let params = sqg::SqgParams { n: 4, ..Default::default() };
        let mask = crate::osse::MaskKind::Block { start: 1, len: 30 };
        let mut scheme = MaskedLetkfScheme::new(
            letkf::LetkfConfig { rtps_alpha: 0.0, ..Default::default() },
            &params,
            0.3,
            mask,
        );
        assert_eq!(scheme.name(), "LETKF-masked");
        let members: Vec<Vec<f64>> = (0..10).map(|m| vec![0.2 * m as f64 - 0.9; 32]).collect();
        let fc = Ensemble::from_members(&members);
        // Observed indices are {0, 31}; y carries exactly those two slots.
        let an = scheme.analyze(&fc, &[1.0, 1.0]);
        let pull = |e: &Ensemble, i: usize| (e.mean()[i] - fc.mean()[i]).abs();
        assert!(pull(&an, 0) > 1e-6, "observed component must move");
        // Component 16 is state 0's vertically colocated partner — inside
        // the outage but within Rossby-coupled localization range, so the
        // partial network still updates it.
        assert!(pull(&an, 16) > 1e-9, "vertical partner of an observed point moves");
        // Component 10 (level 0, row 2, col 2) is >7000 km from both
        // observations on this coarse 5000 km-spacing grid — far outside
        // the 2000 km cutoff — and its vertical partner is unobserved too.
        assert!(pull(&an, 10) < 1e-12, "unobserved far component must not move");
        assert_eq!(scheme.rng_state().0, 1, "cycle counter advances");
    }

    #[test]
    fn letkf_scheme_assimilates() {
        let params = sqg::SqgParams { n: 4, ..Default::default() };
        let mut scheme = LetkfScheme::new(
            letkf::LetkfConfig { rtps_alpha: 0.0, ..Default::default() },
            &params,
            0.3,
        );
        assert_eq!(scheme.name(), "LETKF");
        let members: Vec<Vec<f64>> = (0..10).map(|m| vec![0.2 * m as f64 - 0.9; 32]).collect();
        let fc = Ensemble::from_members(&members);
        let an = scheme.analyze(&fc, &[1.0; 32]);
        let before = fc.mean()[0];
        let after = an.mean()[0];
        assert!((after - 1.0).abs() < (before - 1.0).abs(), "LETKF must pull toward obs");
    }
}
