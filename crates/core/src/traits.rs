//! Framework interfaces: forecast models and analysis schemes.
//!
//! The workflow of Fig. 1 is generic in both slots: the forecast model can
//! be the physics-based SQG, the ViT surrogate, or any AI foundation model;
//! the analysis scheme can be EnSF, LETKF, or nothing (free runs).

use stats::Ensemble;

/// A forecast model advancing a flat state vector through time.
pub trait ForecastModel {
    /// State dimension.
    fn state_dim(&self) -> usize;

    /// Advances `state` by `hours` of simulated time in place.
    fn forecast(&mut self, state: &mut [f64], hours: f64);

    /// Advances every member of an ensemble (default: member loop).
    fn forecast_ensemble(&mut self, ensemble: &mut Ensemble, hours: f64) {
        for m in 0..ensemble.members() {
            self.forecast(ensemble.member_mut(m), hours);
        }
    }

    /// Online adaptation hook (Fig. 1): after each analysis the workflow
    /// feeds the analyzed transition back to the model, letting learned
    /// surrogates absorb observational information. Physics models ignore
    /// it (default no-op).
    fn assimilate_feedback(&mut self, _prev_analysis: &[f64], _curr_analysis: &[f64]) {}

    /// Serializes adaptive internal state for checkpointing. Stateless
    /// physics models return `None` (the default): their forecasts are a
    /// pure function of the state vector, so there is nothing to save.
    fn save_state(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by [`ForecastModel::save_state`]. Returns
    /// `false` when the blob is unsupported or invalid (default).
    fn load_state(&mut self, _bytes: &[u8]) -> bool {
        false
    }
}

/// An analysis scheme combining a forecast ensemble with observations of
/// the full state (the paper's `h = I` OSSE setting).
pub trait AnalysisScheme {
    /// Human-readable name (used in reports).
    fn name(&self) -> &str;

    /// Produces the analysis ensemble from the forecast ensemble and the
    /// observation vector.
    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble;

    /// `(epoch, seed)` pinning the scheme's internal RNG streams, captured
    /// at checkpoint time. Deterministic/stateless schemes (LETKF, free
    /// runs) return `(0, 0)` (the default).
    fn rng_state(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Restores the `(epoch, seed)` captured by
    /// [`AnalysisScheme::rng_state`], so a resumed run replays the exact
    /// noise streams of the uninterrupted one. Default: no-op.
    fn set_rng_state(&mut self, _epoch: u64, _seed: u64) {}

    /// Switches the scheme onto a fresh internal noise stream — the
    /// supervised loop's retry path after a failed analysis. Deterministic
    /// schemes ignore it (a retry would reproduce the same failure, so the
    /// supervisor falls back instead).
    fn reseed(&mut self, _seed: u64) {}
}

/// The "no assimilation" scheme: analysis = forecast (free run).
#[derive(Debug, Clone, Default)]
pub struct NoAssimilation;

impl AnalysisScheme for NoAssimilation {
    fn name(&self) -> &str {
        "none"
    }

    fn analyze(&mut self, forecast: &Ensemble, _observation: &[f64]) -> Ensemble {
        forecast.clone()
    }
}

/// EnSF adapter over identity observations with error `sigma`.
pub struct EnsfScheme {
    filter: ensf::Ensf,
    obs: ensf::IdentityObs,
}

impl EnsfScheme {
    /// Builds the scheme for a `dim`-dimensional state.
    pub fn new(config: ensf::EnsfConfig, dim: usize, obs_sigma: f64) -> Self {
        EnsfScheme { filter: ensf::Ensf::new(config), obs: ensf::IdentityObs::new(dim, obs_sigma) }
    }
}

impl AnalysisScheme for EnsfScheme {
    fn name(&self) -> &str {
        "EnSF"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        self.filter.analyze(forecast, observation, &self.obs)
    }

    fn rng_state(&self) -> (u64, u64) {
        (self.filter.cycle(), self.filter.config().seed)
    }

    fn set_rng_state(&mut self, epoch: u64, seed: u64) {
        self.filter.set_cycle(epoch);
        self.filter.reseed(seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.filter.reseed(seed);
    }
}

/// EnSF adapter over the saturating `h(x) = arctan(gain · x)` observation
/// operator — the `nonlinear_obs` stress operator promoted into a standard
/// scheme so OSSE scenarios with [`crate::ObsOperatorKind::Arctan`]
/// assimilate observations generated in the matching observation space.
pub struct ArctanEnsfScheme {
    filter: ensf::Ensf,
    obs: ensf::ArctanObs,
}

impl ArctanEnsfScheme {
    /// Builds the scheme for a `dim`-dimensional state observed through
    /// `arctan(gain · x)` with error `sigma` in observation space.
    pub fn new(config: ensf::EnsfConfig, dim: usize, obs_sigma: f64, gain: f64) -> Self {
        ArctanEnsfScheme {
            filter: ensf::Ensf::new(config),
            obs: ensf::ArctanObs::with_gain(dim, obs_sigma, gain),
        }
    }
}

impl AnalysisScheme for ArctanEnsfScheme {
    fn name(&self) -> &str {
        "EnSF-arctan"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        self.filter.analyze(forecast, observation, &self.obs)
    }

    fn rng_state(&self) -> (u64, u64) {
        (self.filter.cycle(), self.filter.config().seed)
    }

    fn set_rng_state(&mut self, epoch: u64, seed: u64) {
        self.filter.set_cycle(epoch);
        self.filter.reseed(seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.filter.reseed(seed);
    }
}

/// Flow-matching EnSF adapter over identity observations: the same score
/// machinery as [`EnsfScheme`], but the analysis integrates the few-step
/// deterministic probability-flow ODE instead of the 100-step stochastic
/// reverse SDE. `config.method` is forced to
/// [`ensf::AnalysisMethod::FlowMatching`], so `n_steps` means ODE grid
/// steps (5–10 reach SDE-level accuracy).
pub struct FlowMatchingEnsfScheme {
    filter: ensf::Ensf,
    obs: ensf::IdentityObs,
}

impl FlowMatchingEnsfScheme {
    /// Builds the scheme for a `dim`-dimensional state; `config.method` is
    /// overridden to the flow-matching analysis path.
    pub fn new(config: ensf::EnsfConfig, dim: usize, obs_sigma: f64) -> Self {
        let config = ensf::EnsfConfig { method: ensf::AnalysisMethod::FlowMatching, ..config };
        FlowMatchingEnsfScheme {
            filter: ensf::Ensf::new(config),
            obs: ensf::IdentityObs::new(dim, obs_sigma),
        }
    }
}

impl AnalysisScheme for FlowMatchingEnsfScheme {
    fn name(&self) -> &str {
        "FlowEnSF"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        self.filter.analyze(forecast, observation, &self.obs)
    }

    fn rng_state(&self) -> (u64, u64) {
        (self.filter.cycle(), self.filter.config().seed)
    }

    fn set_rng_state(&mut self, epoch: u64, seed: u64) {
        self.filter.set_cycle(epoch);
        self.filter.reseed(seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.filter.reseed(seed);
    }
}

/// Flow-matching EnSF adapter over the saturating arctan observation
/// operator ([`ArctanEnsfScheme`]'s deterministic few-step counterpart).
/// The flow's guidance linearizes `h` at the denoised estimate via the
/// operator's Jacobian, so the nonlinear-obs path needs no extra wiring.
pub struct FlowMatchingArctanEnsfScheme {
    filter: ensf::Ensf,
    obs: ensf::ArctanObs,
}

impl FlowMatchingArctanEnsfScheme {
    /// Builds the scheme for a `dim`-dimensional state observed through
    /// `arctan(gain · x)` with error `sigma` in observation space;
    /// `config.method` is overridden to the flow-matching analysis path.
    pub fn new(config: ensf::EnsfConfig, dim: usize, obs_sigma: f64, gain: f64) -> Self {
        let config = ensf::EnsfConfig { method: ensf::AnalysisMethod::FlowMatching, ..config };
        FlowMatchingArctanEnsfScheme {
            filter: ensf::Ensf::new(config),
            obs: ensf::ArctanObs::with_gain(dim, obs_sigma, gain),
        }
    }
}

impl AnalysisScheme for FlowMatchingArctanEnsfScheme {
    fn name(&self) -> &str {
        "FlowEnSF-arctan"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        self.filter.analyze(forecast, observation, &self.obs)
    }

    fn rng_state(&self) -> (u64, u64) {
        (self.filter.cycle(), self.filter.config().seed)
    }

    fn set_rng_state(&mut self, epoch: u64, seed: u64) {
        self.filter.set_cycle(epoch);
        self.filter.reseed(seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.filter.reseed(seed);
    }
}

/// EnSF adapter over a *sparse* network observing every `stride`-th state
/// component. The workflow still hands the full noisy-state vector to the
/// scheme (the OSSE measures everything); the scheme subsamples it, so only
/// the network's share of the information reaches the filter.
pub struct SparseEnsfScheme {
    filter: ensf::Ensf,
    obs: ensf::StridedObs,
    stride: usize,
}

impl SparseEnsfScheme {
    /// Builds the scheme for a `dim`-dimensional state observed at every
    /// `stride`-th component.
    pub fn new(config: ensf::EnsfConfig, dim: usize, stride: usize, obs_sigma: f64) -> Self {
        assert!(stride >= 1);
        SparseEnsfScheme {
            filter: ensf::Ensf::new(config),
            obs: ensf::StridedObs::new(dim, stride, obs_sigma),
            stride,
        }
    }
}

impl AnalysisScheme for SparseEnsfScheme {
    fn name(&self) -> &str {
        "EnSF-sparse"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        let y: Vec<f64> = observation.iter().step_by(self.stride).copied().collect();
        self.filter.analyze(forecast, &y, &self.obs)
    }

    fn rng_state(&self) -> (u64, u64) {
        (self.filter.cycle(), self.filter.config().seed)
    }

    fn set_rng_state(&mut self, epoch: u64, seed: u64) {
        self.filter.set_cycle(epoch);
        self.filter.reseed(seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.filter.reseed(seed);
    }
}

/// LETKF adapter over the two-level SQG grid with identity observations,
/// optionally thinned to every `stride`-th grid point (sparse networks are
/// LETKF's home turf: localization spreads the sparse information).
pub struct LetkfScheme {
    filter: letkf::Letkf,
    obs_sigma: f64,
    stride: usize,
}

impl LetkfScheme {
    /// Builds the scheme for an `n × n × 2` grid with physical parameters
    /// from `params` (Rossby-coupled vertical localization).
    pub fn new(config: letkf::LetkfConfig, params: &sqg::SqgParams, obs_sigma: f64) -> Self {
        Self::with_stride(config, params, obs_sigma, 1)
    }

    /// Same, observing only every `stride`-th state component.
    pub fn with_stride(
        config: letkf::LetkfConfig,
        params: &sqg::SqgParams,
        obs_sigma: f64,
        stride: usize,
    ) -> Self {
        assert!(stride >= 1);
        let geometry = letkf::GridGeometry::new(
            params.n,
            sqg::LEVELS,
            params.domain,
            params.rossby_radius(),
        );
        LetkfScheme { filter: letkf::Letkf::new(config, geometry), obs_sigma, stride }
    }
}

impl AnalysisScheme for LetkfScheme {
    fn name(&self) -> &str {
        "LETKF"
    }

    fn analyze(&mut self, forecast: &Ensemble, observation: &[f64]) -> Ensemble {
        let network: Vec<letkf::PointObs> = observation
            .iter()
            .enumerate()
            .step_by(self.stride)
            .map(|(i, &v)| letkf::PointObs { state_index: i, value: v, sigma: self.obs_sigma })
            .collect();
        self.filter.analyze(forecast, &network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl ForecastModel for Doubler {
        fn state_dim(&self) -> usize {
            3
        }
        fn forecast(&mut self, state: &mut [f64], hours: f64) {
            for v in state.iter_mut() {
                *v *= 2.0f64.powf(hours / 12.0);
            }
        }
    }

    #[test]
    fn default_ensemble_forecast_maps_members() {
        let mut model = Doubler;
        let mut e = Ensemble::from_members(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        model.forecast_ensemble(&mut e, 12.0);
        assert_eq!(e.member(0), &[2.0, 4.0, 6.0]);
        assert_eq!(e.member(1), &[8.0, 10.0, 12.0]);
    }

    #[test]
    fn no_assimilation_is_identity() {
        let mut s = NoAssimilation;
        let e = Ensemble::from_members(&[vec![1.0], vec![2.0]]);
        let a = s.analyze(&e, &[5.0]);
        assert_eq!(a, e);
        assert_eq!(s.name(), "none");
    }

    #[test]
    fn arctan_scheme_pulls_toward_obs_space_target() {
        let dim = 8;
        let gain = 4.0;
        let mut scheme = ArctanEnsfScheme::new(
            ensf::EnsfConfig { n_steps: 20, seed: 7, ..Default::default() },
            dim,
            0.05,
            gain,
        );
        assert_eq!(scheme.name(), "EnSF-arctan");
        // Ensemble scattered around 0; truth at 0.8, observed through
        // arctan(gain·x). The analysis mean must move toward the truth.
        let members: Vec<Vec<f64>> =
            (0..12).map(|m| vec![0.1 * m as f64 - 0.55; dim]).collect();
        let fc = Ensemble::from_members(&members);
        let truth = 0.8;
        let y = vec![(gain * truth).atan(); dim];
        let an = scheme.analyze(&fc, &y);
        let before = (fc.mean()[0] - truth).abs();
        let after = (an.mean()[0] - truth).abs();
        assert!(after < before, "arctan EnSF must pull toward truth: {before} -> {after}");
    }

    #[test]
    fn ensf_scheme_assimilates() {
        let mut scheme = EnsfScheme::new(
            ensf::EnsfConfig { n_steps: 20, seed: 1, ..Default::default() },
            4,
            0.5,
        );
        assert_eq!(scheme.name(), "EnSF");
        let members: Vec<Vec<f64>> = (0..12).map(|m| vec![0.1 * m as f64 - 0.55; 4]).collect();
        let fc = Ensemble::from_members(&members);
        let an = scheme.analyze(&fc, &[1.0; 4]);
        let before = fc.mean()[0];
        let after = an.mean()[0];
        assert!((after - 1.0).abs() < (before - 1.0).abs(), "EnSF must pull toward obs");
    }

    #[test]
    fn sparse_schemes_only_use_their_network() {
        // With stride 2, perturbing an UNOBSERVED component of the
        // observation vector must not change the analysis.
        let members: Vec<Vec<f64>> = (0..10).map(|m| vec![0.1 * m as f64; 8]).collect();
        let fc = Ensemble::from_members(&members);
        let mut scheme = SparseEnsfScheme::new(
            ensf::EnsfConfig { n_steps: 15, seed: 2, ..Default::default() },
            8,
            2,
            0.5,
        );
        assert_eq!(scheme.name(), "EnSF-sparse");
        let mut y = vec![1.0; 8];
        let a1 = scheme.analyze(&fc, &y);
        y[1] = 99.0; // unobserved slot
        let mut scheme2 = SparseEnsfScheme::new(
            ensf::EnsfConfig { n_steps: 15, seed: 2, ..Default::default() },
            8,
            2,
            0.5,
        );
        let a2 = scheme2.analyze(&fc, &y);
        assert_eq!(a1.as_slice(), a2.as_slice());
    }

    #[test]
    fn letkf_stride_thins_network() {
        let params = sqg::SqgParams { n: 4, ..Default::default() };
        let mut dense = LetkfScheme::new(
            letkf::LetkfConfig { rtps_alpha: 0.0, ..Default::default() },
            &params,
            0.3,
        );
        let mut sparse = LetkfScheme::with_stride(
            letkf::LetkfConfig { rtps_alpha: 0.0, ..Default::default() },
            &params,
            0.3,
            4,
        );
        let members: Vec<Vec<f64>> = (0..10).map(|m| vec![0.2 * m as f64 - 0.9; 32]).collect();
        let fc = Ensemble::from_members(&members);
        let y = vec![1.0; 32];
        let ad = dense.analyze(&fc, &y);
        let asp = sparse.analyze(&fc, &y);
        let pull = |e: &Ensemble, i: usize| (e.mean()[i] - fc.mean()[i]).abs();
        // Component 1 is unobserved by the sparse network (and, with the
        // default 2000 km cutoff on this coarse 5000 km-spacing grid, out of
        // range of every sparse observation): only the dense network
        // updates it.
        assert!(pull(&ad, 1) > 1e-6, "dense must update component 1");
        assert!(pull(&asp, 1) < 1e-12, "sparse must leave component 1 alone");
        // The observed component moves under both.
        assert!(pull(&asp, 0) > 1e-6);
        assert!(pull(&ad, 0) > 1e-6);
    }

    #[test]
    fn letkf_scheme_assimilates() {
        let params = sqg::SqgParams { n: 4, ..Default::default() };
        let mut scheme = LetkfScheme::new(
            letkf::LetkfConfig { rtps_alpha: 0.0, ..Default::default() },
            &params,
            0.3,
        );
        assert_eq!(scheme.name(), "LETKF");
        let members: Vec<Vec<f64>> = (0..10).map(|m| vec![0.2 * m as f64 - 0.9; 32]).collect();
        let fc = Ensemble::from_members(&members);
        let an = scheme.analyze(&fc, &[1.0; 32]);
        let before = fc.mean()[0];
        let after = an.mean()[0];
        assert!((after - 1.0).abs() < (before - 1.0).abs(), "LETKF must pull toward obs");
    }
}
