//! Observation-space inpainting for partially observed networks.
//!
//! The inpainting-EnSF schemes reconstruct the missing entries of an
//! observation-space field (the innovation `y − h(x̄_f)` at the masked
//! components) before assimilation. [`harmonic_fill`] solves the discrete
//! Laplace equation on the two-level SQG grid graph — the four periodic
//! horizontal neighbours plus the vertically colocated partner level —
//! with the observed entries as Dirichlet data, using a fixed number of
//! Gauss–Seidel sweeps in ascending index order so the fill is bitwise
//! deterministic. States whose dimension is not a two-level square grid
//! (unit tests, toy problems) fall back to a periodic 1-D chain stencil.

/// Gauss–Seidel sweep count used by the schemes. With every unobserved
/// pixel at most a few cells from Dirichlet data (and usually vertically
/// anchored), 64 sweeps converge far below the observation noise floor
/// while keeping the fill cost at `O(sweeps · dim)` — negligible next to
/// one diffusion step.
pub const FILL_SWEEPS: usize = 64;

/// Side length `n` when `dim` is a two-level `n × n` row-major state.
fn grid_side(dim: usize) -> Option<usize> {
    if dim == 0 || !dim.is_multiple_of(sqg::LEVELS) {
        return None;
    }
    let n2 = dim / sqg::LEVELS;
    let n = (n2 as f64).sqrt().round() as usize;
    (n >= 2 && n * n == n2).then_some(n)
}

/// Fills the entries of `field` where `known` is `false` by harmonic
/// interpolation from the `true` entries (which are never modified).
/// Unknown entries are taken as pre-initialised (scatter zeros before
/// calling for a cold start). No-op when everything is known; if nothing
/// is known the field keeps its initial values.
///
/// # Panics
/// Panics if `field` and `known` differ in length.
pub fn harmonic_fill(field: &mut [f64], known: &[bool], sweeps: usize) {
    assert_eq!(field.len(), known.len(), "mask/field length mismatch");
    let dim = field.len();
    if dim == 0 || known.iter().all(|&k| k) {
        return;
    }
    match grid_side(dim) {
        Some(n) => {
            let level = n * n;
            for _ in 0..sweeps {
                for i in 0..dim {
                    if known[i] {
                        continue;
                    }
                    let (l, rc) = (i / level, i % level);
                    let (r, c) = (rc / n, rc % n);
                    let base = l * level;
                    let up = base + ((r + n - 1) % n) * n + c;
                    let down = base + ((r + 1) % n) * n + c;
                    let left = base + r * n + (c + n - 1) % n;
                    let right = base + r * n + (c + 1) % n;
                    // LEVELS == 2: the vertically colocated partner.
                    let vert = if l == 0 { i + level } else { i - level };
                    field[i] =
                        (field[up] + field[down] + field[left] + field[right] + field[vert]) / 5.0;
                }
            }
        }
        None => {
            for _ in 0..sweeps {
                for i in 0..dim {
                    if known[i] {
                        continue;
                    }
                    let l = (i + dim - 1) % dim;
                    let r = (i + 1) % dim;
                    field[i] = 0.5 * (field[l] + field[r]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_known_field_is_untouched() {
        let mut f = vec![1.0, -2.0, 3.0, 0.5];
        let orig = f.clone();
        harmonic_fill(&mut f, &[true; 4], 10);
        assert_eq!(f, orig);
    }

    #[test]
    fn chain_fill_interpolates_between_known_points() {
        // dim = 6 is not a two-level square, so the 1-D chain stencil runs:
        // knowns at 0 and 3 with values 0 and 3 give the linear ramp.
        let mut f = vec![0.0, 0.0, 0.0, 3.0, 0.0, 0.0];
        let known = vec![true, false, false, true, false, false];
        harmonic_fill(&mut f, &known, 200);
        assert!((f[1] - 1.0).abs() < 1e-9, "f[1] = {}", f[1]);
        assert!((f[2] - 2.0).abs() < 1e-9);
        assert!((f[4] - 2.0).abs() < 1e-9, "periodic wrap: {}", f[4]);
        assert!((f[5] - 1.0).abs() < 1e-9);
        assert_eq!(f[3], 3.0, "Dirichlet data never moves");
    }

    #[test]
    fn grid_fill_recovers_a_constant_field_exactly() {
        // 2 levels x 4x4: every unknown is surrounded by the constant, so
        // harmonic interpolation converges to the constant.
        let n = 4;
        let dim = 2 * n * n;
        let mut f = vec![0.0; dim];
        let mut known = vec![true; dim];
        for i in 8..24 {
            known[i] = false;
        }
        for i in 0..dim {
            if known[i] {
                f[i] = 2.5;
            }
        }
        harmonic_fill(&mut f, &known, 300);
        for (i, v) in f.iter().enumerate() {
            assert!((v - 2.5).abs() < 1e-9, "f[{i}] = {v}");
        }
    }

    #[test]
    fn grid_fill_uses_the_vertical_partner() {
        // Blind an entire level: every unknown pixel's only Dirichlet
        // anchor is its vertical partner, so the fill must reproduce the
        // other level's (constant) field.
        let n = 4;
        let level = n * n;
        let mut f = vec![0.0; 2 * level];
        let mut known = vec![false; 2 * level];
        for i in level..2 * level {
            known[i] = true;
            f[i] = -1.25;
        }
        harmonic_fill(&mut f, &known, 300);
        for i in 0..level {
            assert!((f[i] + 1.25).abs() < 1e-9, "f[{i}] = {}", f[i]);
        }
    }

    #[test]
    fn fill_is_deterministic() {
        let n = 4;
        let dim = 2 * n * n;
        let mut known = vec![true; dim];
        let mut a = vec![0.0; dim];
        for i in 0..dim {
            if i % 3 == 0 {
                known[i] = false;
            } else {
                a[i] = (i as f64 * 0.37).sin();
            }
        }
        let mut b = a.clone();
        harmonic_fill(&mut a, &known, FILL_SWEEPS);
        harmonic_fill(&mut b, &known, FILL_SWEEPS);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }
}
