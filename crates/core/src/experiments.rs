//! The paper's four experiment architectures (Fig. 4 / Fig. 5):
//!
//! 1. **SQG only** — free run of the (imperfect) physics model.
//! 2. **ViT only** — free run of the offline-trained surrogate.
//! 3. **SQG + LETKF** — the SOTA baseline assimilating into the physics.
//! 4. **ViT + EnSF** — the proposed framework: score-filter analyses of
//!    surrogate forecasts, with online surrogate fine-tuning.

use crate::forecast::SqgForecast;
use crate::model_error::{ModelError, ModelErrorConfig};
use crate::osse::{nature_run_with_error, run_experiment, CycleSeries, NatureRun, OsseConfig};
use crate::surrogate::VitSurrogate;
use crate::traits::{EnsfScheme, LetkfScheme, NoAssimilation};
use vit::VitConfig;

/// Knobs of the four-way comparison.
#[derive(Debug, Clone)]
pub struct ComparisonConfig {
    /// Shared OSSE setup (grid, cycles, obs interval/σ, ensemble size).
    pub osse: OsseConfig,
    /// Stochastic model error applied to the *nature run* (the paper's
    /// imperfect-model scenario: reality deviates from every forecast
    /// model by unexpected errors). `None` runs the perfect-model twin.
    pub model_error: Option<ModelErrorConfig>,
    /// ViT surrogate architecture.
    pub vit: VitConfig,
    /// Offline pre-training pairs and epochs.
    pub pretrain_pairs: usize,
    /// Offline pre-training epochs.
    pub pretrain_epochs: usize,
    /// Online fine-tuning gradient steps per cycle (0 disables).
    pub online_steps: usize,
    /// LETKF tuning: Gaspari–Cohn cutoff [m] (paper-tuned: 2000 km).
    pub letkf_cutoff: f64,
    /// LETKF tuning: RTPS factor (paper-tuned: 0.3).
    pub letkf_rtps: f64,
    /// EnSF reverse-SDE steps.
    pub ensf_steps: usize,
}

impl ComparisonConfig {
    /// A configuration sized for tests and examples (16² grid, small ViT).
    pub fn small(cycles: usize) -> Self {
        // Ekman friction provides the large-scale energy sink that keeps the
        // stochastically forced (imperfect-model) climate statistically
        // steady over long cycling.
        let params = sqg::SqgParams { n: 16, ekman: 0.05, ..Default::default() };
        ComparisonConfig {
            osse: OsseConfig {
                params,
                cycles,
                obs_sigma: 0.005,
                ens_size: 10,
                ic_sigma: 0.01,
                spinup_steps: 60,
                seed: 11,
                ..Default::default()
            },
            model_error: Some(ModelErrorConfig::default()),
            vit: VitConfig::small(16),
            pretrain_pairs: 40,
            pretrain_epochs: 25,
            online_steps: 1,
            letkf_cutoff: 2.0e6,
            letkf_rtps: 0.3,
            ensf_steps: 30,
        }
    }

    /// The paper-scale configuration: 64 × 64 × 2 grid, 20 members,
    /// observations every 12 h.
    pub fn paper(cycles: usize) -> Self {
        let params = sqg::SqgParams { ekman: 0.05, ..Default::default() };
        ComparisonConfig {
            osse: OsseConfig {
                params,
                cycles,
                obs_sigma: 0.005,
                ens_size: 20,
                ic_sigma: 0.01,
                spinup_steps: 2000,
                seed: 2024,
                ..Default::default()
            },
            model_error: Some(ModelErrorConfig::default()),
            vit: VitConfig::small(64),
            pretrain_pairs: 200,
            pretrain_epochs: 40,
            online_steps: 2,
            letkf_cutoff: 2.0e6,
            letkf_rtps: 0.3,
            ensf_steps: 30,
        }
    }

    fn model_error_instance(&self, stream: u64) -> Option<ModelError> {
        self.model_error
            .clone()
            .map(|c| ModelError::new(c, stats::rng::split_seed(self.osse.seed, stream)))
    }
}

/// Result bundle of the four-way comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The shared nature run.
    pub nature: NatureRun,
    /// Series in paper order: SQG-only, ViT-only, SQG+LETKF, ViT+EnSF.
    pub series: Vec<CycleSeries>,
}

impl Comparison {
    /// Looks a series up by label.
    pub fn get(&self, label: &str) -> Option<&CycleSeries> {
        self.series.iter().find(|s| s.label == label)
    }
}

/// Pre-trains a surrogate for the comparison (offline phase of Fig. 1).
pub fn pretrain_surrogate(config: &ComparisonConfig) -> VitSurrogate {
    let pairs = VitSurrogate::generate_training_data(
        &config.osse.params,
        config.osse.obs_interval_hours,
        config.pretrain_pairs,
        config.osse.spinup_steps,
        stats::rng::split_seed(config.osse.seed, 0x71A1),
    );
    let mut surrogate =
        VitSurrogate::new(config.vit.clone(), config.osse.obs_interval_hours, 3e-3, config.osse.seed ^ 0x517);
    surrogate.pretrain(&pairs, config.pretrain_epochs);
    surrogate
}

/// Runs all four architectures against one shared nature run.
///
/// `surrogate` is consumed (its weights continue to adapt online inside the
/// ViT+EnSF run); pre-train it with [`pretrain_surrogate`].
///
/// INVARIANT: each `run_experiment` call below uses a model/scheme pair
/// built from the same `config.osse`, so the shape checks it performs
/// cannot fail — the `.expect`s document that consistency, not a real
/// error path.
pub fn run_comparison(config: &ComparisonConfig, mut surrogate: VitSurrogate) -> Comparison {
    let nature = nature_run_with_error(&config.osse, config.model_error_instance(0xA7));
    let mut series = Vec::with_capacity(4);

    // 1. SQG only: the (now imperfect relative to reality) physics model
    //    free-running from the same initial condition.
    {
        let mut model = SqgForecast::perfect(config.osse.params.clone());
        let mut scheme = NoAssimilation;
        series.push(
            run_experiment("SQG only", &config.osse, &nature, &mut model, &mut scheme)
                .expect("comparison experiments are consistent by construction"),
        );
    }

    // 2. ViT only (offline surrogate, no DA, no online learning). Runs
    //    before the online-adapting run so both start from the same
    //    pre-trained weights.
    {
        surrogate.online_steps = 0;
        let mut scheme = NoAssimilation;
        series.push(
            run_experiment("ViT only", &config.osse, &nature, &mut surrogate, &mut scheme)
                .expect("comparison experiments are consistent by construction"),
        );
    }

    // 3. SQG + LETKF (SOTA baseline, paper-tuned inflation/localization).
    {
        let mut model = SqgForecast::perfect(config.osse.params.clone());
        let mut scheme = LetkfScheme::new(
            letkf::LetkfConfig { cutoff: config.letkf_cutoff, rtps_alpha: config.letkf_rtps },
            &config.osse.params,
            config.osse.obs_sigma,
        );
        series.push(
            run_experiment("SQG+LETKF", &config.osse, &nature, &mut model, &mut scheme)
                .expect("comparison experiments are consistent by construction"),
        );
    }

    // 4. ViT + EnSF with online surrogate fine-tuning (the proposal).
    {
        surrogate.online_steps = config.online_steps;
        let mut scheme = EnsfScheme::new(
            ensf::EnsfConfig {
                n_steps: config.ensf_steps,
                seed: config.osse.seed ^ 0xE5F,
                ..Default::default()
            },
            config.osse.params.state_dim(),
            config.osse.obs_sigma,
        );
        series.push(
            run_experiment("ViT+EnSF", &config.osse, &nature, &mut surrogate, &mut scheme)
                .expect("comparison experiments are consistent by construction"),
        );
    }

    Comparison { nature, series }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_series_in_paper_order() {
        let config = ComparisonConfig::small(4);
        let surrogate = pretrain_surrogate(&config);
        let cmp = run_comparison(&config, surrogate);
        let labels: Vec<&str> = cmp.series.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["SQG only", "ViT only", "SQG+LETKF", "ViT+EnSF"]);
        for s in &cmp.series {
            assert_eq!(s.rmse.len(), 4);
            assert!(s.rmse.iter().all(|v| v.is_finite()));
        }
        assert!(cmp.get("ViT+EnSF").is_some());
        assert!(cmp.get("nonsense").is_none());
    }

    #[test]
    fn da_architectures_beat_free_runs() {
        let config = ComparisonConfig::small(8);
        let surrogate = pretrain_surrogate(&config);
        let cmp = run_comparison(&config, surrogate);
        let sqg_free = cmp.get("SQG only").unwrap().steady_rmse();
        let letkf = cmp.get("SQG+LETKF").unwrap().steady_rmse();
        let ensf = cmp.get("ViT+EnSF").unwrap().steady_rmse();
        assert!(letkf < sqg_free, "LETKF {letkf} must beat free SQG {sqg_free}");
        assert!(ensf < sqg_free, "EnSF {ensf} must beat free SQG {sqg_free}");
    }
}
