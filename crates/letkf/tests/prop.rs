//! Property-based tests for the LETKF.

use letkf::solver::{apply_transform, solve_local};
use letkf::{gaspari_cohn, GridGeometry, Letkf, LetkfConfig, PointObs};
use linalg::Matrix;
use proptest::prelude::*;
use stats::Ensemble;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Gaspari–Cohn is a valid localization taper everywhere.
    #[test]
    fn gc_is_taper(r in -5.0f64..5.0) {
        let v = gaspari_cohn(r);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert_eq!(gaspari_cohn(-r), v);
        if r.abs() >= 2.0 {
            prop_assert_eq!(v, 0.0);
        }
    }

    /// Periodic distances form a metric on the grid (symmetry, identity,
    /// triangle inequality on sampled triples).
    #[test]
    fn grid_distance_metric(
        a in 0usize..128,
        b in 0usize..128,
        c in 0usize..128,
    ) {
        let g = GridGeometry::new(8, 2, 8.0e5, 2.0e5);
        prop_assert_eq!(g.distance(a, b), g.distance(b, a));
        prop_assert_eq!(g.distance(a, a), 0.0);
        prop_assert!(g.distance(a, c) <= g.distance(a, b) + g.distance(b, c) + 1e-9);
    }

    /// The scalar local solve reproduces the exact Kalman update for any
    /// ensemble and observation.
    #[test]
    fn scalar_solve_matches_kf(
        mut x in prop::collection::vec(-5.0f64..5.0, 4..12),
        y in -5.0f64..5.0,
        sigma in 0.1f64..3.0,
    ) {
        // Ensure nonzero spread.
        x[0] += 2.0;
        let m = x.len();
        let mean_b: f64 = x.iter().sum::<f64>() / m as f64;
        let var_b: f64 =
            x.iter().map(|v| (v - mean_b) * (v - mean_b)).sum::<f64>() / (m - 1) as f64;
        prop_assume!(var_b > 1e-6);

        let gain = var_b / (var_b + sigma * sigma);
        let mean_kf = mean_b + gain * (y - mean_b);
        let var_kf = (1.0 - gain) * var_b;

        let anom: Vec<f64> = x.iter().map(|v| v - mean_b).collect();
        let yb = Matrix::from_vec(1, m, anom);
        let t = solve_local(&yb, &[y - mean_b], &[1.0 / (sigma * sigma)]);
        let xa = apply_transform(&x, &t);
        let mean_a: f64 = xa.iter().sum::<f64>() / m as f64;
        let var_a: f64 =
            xa.iter().map(|v| (v - mean_a) * (v - mean_a)).sum::<f64>() / (m - 1) as f64;

        prop_assert!((mean_a - mean_kf).abs() < 1e-7 * (1.0 + mean_kf.abs()));
        prop_assert!((var_a - var_kf).abs() < 1e-7 * (1.0 + var_kf));
    }

    /// A full LETKF analysis is finite, preserves shape, and contracts the
    /// analysis toward observations without inflating variance beyond the
    /// forecast's (RTPS off).
    #[test]
    fn analysis_invariants(
        data in prop::collection::vec(-2.0f64..2.0, 6 * 32),
        obs_val in -2.0f64..2.0,
        sigma in 0.1f64..2.0,
    ) {
        let members: Vec<Vec<f64>> = data.chunks(32).map(|c| c.to_vec()).collect();
        let fc = Ensemble::from_members(&members);
        let geo = GridGeometry::new(4, 2, 4.0e5, 1.0e5);
        let letkf = Letkf::new(
            LetkfConfig { cutoff: 3.0e5, rtps_alpha: 0.0 },
            geo,
        );
        let obs: Vec<PointObs> = (0..32)
            .map(|i| PointObs { state_index: i, value: obs_val, sigma })
            .collect();
        let an = letkf.analyze(&fc, &obs);
        prop_assert_eq!(an.members(), 6);
        prop_assert!(an.as_slice().iter().all(|v| v.is_finite()));
        // Per-variable variance never grows (square-root filter property).
        let vf = fc.variance();
        let va = an.variance();
        for (a, f) in va.iter().zip(&vf) {
            prop_assert!(*a <= f + 1e-9, "variance grew: {a} > {f}");
        }
    }

    /// Observation order never matters.
    #[test]
    fn analysis_permutation_invariant(
        data in prop::collection::vec(-1.0f64..1.0, 5 * 32),
        seed in any::<u64>(),
    ) {
        let members: Vec<Vec<f64>> = data.chunks(32).map(|c| c.to_vec()).collect();
        let fc = Ensemble::from_members(&members);
        let geo = GridGeometry::new(4, 2, 4.0e5, 1.0e5);
        let letkf = Letkf::new(LetkfConfig::default(), geo);
        let mut obs: Vec<PointObs> = (0..32)
            .map(|i| PointObs {
                state_index: i,
                value: ((i as f64) * 0.37).sin(),
                sigma: 0.5,
            })
            .collect();
        let a1 = letkf.analyze(&fc, &obs);
        // Deterministic shuffle from the seed.
        let mut s = seed | 1;
        for i in (1..obs.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            obs.swap(i, j);
        }
        let a2 = letkf.analyze(&fc, &obs);
        for (x, y) in a1.as_slice().iter().zip(a2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-8, "obs order changed the analysis");
        }
    }
}
