//! The local ETKF transform (Hunt et al. 2007).
//!
//! Everything happens in the `m`-dimensional ensemble space. For one local
//! domain with `p` (localized) observations:
//!
//! ```text
//! A  = (m − 1) I + Yᵀ R̃⁻¹ Y          (m × m, R̃ = R-localized errors)
//! P̃ = A⁻¹                            (analysis covariance in ensemble space)
//! w̄  = P̃ Yᵀ R̃⁻¹ d                   (mean update weights; d = y − ȳ_b)
//! W  = √(m − 1) · A^{−1/2}            (symmetric square root transform)
//! ```
//!
//! Analysis member `i` at a state variable with forecast anomalies `x'`:
//! `x̄ + x'ᵀ (w̄ + W·e_i)`.

use linalg::{Matrix, SymEig};

/// Result of one local ensemble-space solve.
#[derive(Debug, Clone)]
pub struct LocalTransform {
    /// Mean-update weight vector `w̄` (length m).
    pub w_mean: Vec<f64>,
    /// Square-root transform `W` (m × m, symmetric).
    pub w_pert: Matrix,
}

/// Solves the local ETKF given
/// * `yb` — observation-space anomalies, `p x m` (rows = obs, cols = members),
/// * `innov` — innovation `y − ȳ_b` (length p),
/// * `inv_r` — effective inverse observation-error variances (length p),
///   i.e. `ρ_j / σ_j²` with the Gaspari–Cohn weight folded in (R-localization).
///
/// Observations with `inv_r == 0` contribute nothing and may be pre-filtered
/// by the caller for speed.
pub fn solve_local(yb: &Matrix, innov: &[f64], inv_r: &[f64]) -> LocalTransform {
    let (p, m) = yb.shape();
    assert_eq!(innov.len(), p, "innovation length mismatch");
    assert_eq!(inv_r.len(), p, "R length mismatch");
    assert!(m >= 2, "need at least two members");

    // C = Yᵀ R̃⁻¹ as an m x p action folded directly into the two products
    // we need: A = (m-1)I + Yᵀ R̃⁻¹ Y and g = Yᵀ R̃⁻¹ d.
    let mut a = Matrix::identity(m);
    a.scale_mut((m - 1) as f64);
    let mut g = vec![0.0; m];
    for j in 0..p {
        let w = inv_r[j];
        if w == 0.0 { // lint: allow(float-exact-compare, reason="exact-zero weight skip is a bitwise no-op")
            continue;
        }
        let row = yb.row(j);
        for i in 0..m {
            let wi = w * row[i];
            if wi == 0.0 { // lint: allow(float-exact-compare, reason="exact-zero weight skip is a bitwise no-op")
                continue;
            }
            g[i] += wi * innov[j];
            for k in 0..m {
                a[(i, k)] += wi * row[k];
            }
        }
    }

    // Symmetric eigensolve of A (SPD by construction).
    let eig = SymEig::new(&a);
    let p_tilde = eig.apply_fn(|w| 1.0 / w.max(1e-300));
    let w_mean = linalg::gemm::matvec(&p_tilde, &g);
    let sqrt_m1 = ((m - 1) as f64).sqrt();
    let w_pert = eig.apply_fn(|w| sqrt_m1 / w.max(1e-300).sqrt());

    LocalTransform { w_mean, w_pert }
}

/// Applies a transform to scalar forecast data at one state variable:
/// given the member values `x` (length m) at that variable, returns the m
/// analysis values.
pub fn apply_transform(x: &[f64], t: &LocalTransform) -> Vec<f64> {
    let m = x.len();
    assert_eq!(t.w_mean.len(), m);
    let mean = x.iter().sum::<f64>() / m as f64;
    let anom: Vec<f64> = x.iter().map(|v| v - mean).collect();
    // x̄ + x'·w̄ + x'·W column i
    let shift: f64 = anom.iter().zip(&t.w_mean).map(|(a, w)| a * w).sum();
    (0..m)
        .map(|i| {
            let pert: f64 = (0..m).map(|k| anom[k] * t.w_pert[(k, i)]).sum();
            mean + shift + pert
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar case against the exact Kalman filter: one variable, identity
    /// obs, m members. The ETKF must reproduce the KF mean and variance.
    #[test]
    fn matches_scalar_kalman_filter() {
        // Forecast members (mean 1, some spread).
        let x = vec![0.5, 0.8, 1.0, 1.2, 1.5];
        let m = x.len();
        let mean_b: f64 = x.iter().sum::<f64>() / m as f64;
        let var_b: f64 =
            x.iter().map(|v| (v - mean_b) * (v - mean_b)).sum::<f64>() / (m - 1) as f64;
        let y = 2.0;
        let sigma2 = 0.25;

        // Exact KF.
        let gain = var_b / (var_b + sigma2);
        let mean_a_kf = mean_b + gain * (y - mean_b);
        let var_a_kf = (1.0 - gain) * var_b;

        // ETKF.
        let anom: Vec<f64> = x.iter().map(|v| v - mean_b).collect();
        let yb = Matrix::from_vec(1, m, anom);
        let t = solve_local(&yb, &[y - mean_b], &[1.0 / sigma2]);
        let xa = apply_transform(&x, &t);
        let mean_a: f64 = xa.iter().sum::<f64>() / m as f64;
        let var_a: f64 =
            xa.iter().map(|v| (v - mean_a) * (v - mean_a)).sum::<f64>() / (m - 1) as f64;

        assert!((mean_a - mean_a_kf).abs() < 1e-10, "{mean_a} vs {mean_a_kf}");
        assert!((var_a - var_a_kf).abs() < 1e-10, "{var_a} vs {var_a_kf}");
    }

    #[test]
    fn no_observations_is_identity() {
        let x = vec![1.0, 2.0, 3.0];
        let yb = Matrix::zeros(0, 3);
        let t = solve_local(&yb, &[], &[]);
        let xa = apply_transform(&x, &t);
        for (a, b) in xa.iter().zip(&x) {
            assert!((a - b).abs() < 1e-10, "no-obs transform must be identity");
        }
    }

    #[test]
    fn zero_weight_obs_equivalent_to_absent() {
        let x = vec![0.5, 1.0, 1.5, 2.0];
        let mean_b: f64 = x.iter().sum::<f64>() / 4.0;
        let anom: Vec<f64> = x.iter().map(|v| v - mean_b).collect();
        let yb1 = Matrix::from_vec(1, 4, anom.clone());
        let t1 = solve_local(&yb1, &[1.0], &[0.0]); // weight zero
        let yb0 = Matrix::zeros(0, 4);
        let t0 = solve_local(&yb0, &[], &[]);
        let a1 = apply_transform(&x, &t1);
        let a0 = apply_transform(&x, &t0);
        for (p, q) in a1.iter().zip(&a0) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn analysis_variance_never_exceeds_forecast() {
        let x = vec![-1.0, -0.2, 0.1, 0.4, 1.1, 0.6];
        let m = x.len();
        let mean_b: f64 = x.iter().sum::<f64>() / m as f64;
        let anom: Vec<f64> = x.iter().map(|v| v - mean_b).collect();
        let var_b: f64 = anom.iter().map(|a| a * a).sum::<f64>() / (m - 1) as f64;
        for sigma2 in [0.01, 0.1, 1.0, 10.0] {
            let yb = Matrix::from_vec(1, m, anom.clone());
            let t = solve_local(&yb, &[0.7], &[1.0 / sigma2]);
            let xa = apply_transform(&x, &t);
            let mean_a: f64 = xa.iter().sum::<f64>() / m as f64;
            let var_a: f64 =
                xa.iter().map(|v| (v - mean_a) * (v - mean_a)).sum::<f64>() / (m - 1) as f64;
            assert!(var_a <= var_b + 1e-12, "sigma2={sigma2}: {var_a} > {var_b}");
        }
    }

    #[test]
    fn tight_obs_pull_harder() {
        let x = vec![0.0, 0.5, 1.0, 1.5, 2.0];
        let m = x.len();
        let mean_b = 1.0;
        let anom: Vec<f64> = x.iter().map(|v| v - mean_b).collect();
        let y_innov = 3.0 - mean_b;
        let yb = Matrix::from_vec(1, m, anom.clone());
        let t_tight = solve_local(&yb, &[y_innov], &[1.0 / 0.01]);
        let t_loose = solve_local(&yb, &[y_innov], &[1.0 / 10.0]);
        let ma_tight: f64 = apply_transform(&x, &t_tight).iter().sum::<f64>() / m as f64;
        let ma_loose: f64 = apply_transform(&x, &t_loose).iter().sum::<f64>() / m as f64;
        assert!(ma_tight > ma_loose, "{ma_tight} vs {ma_loose}");
        assert!(ma_tight <= 3.0 + 1e-9, "cannot overshoot the observation");
    }

    #[test]
    fn transform_is_symmetric_square_root() {
        // W must be symmetric (the ETKF's symmetric square root ensures the
        // analysis ensemble stays centered).
        let x = vec![0.1, 0.3, -0.2, 0.5];
        let mean_b: f64 = x.iter().sum::<f64>() / 4.0;
        let anom: Vec<f64> = x.iter().map(|v| v - mean_b).collect();
        let yb = Matrix::from_vec(1, 4, anom.clone());
        let t = solve_local(&yb, &[0.2], &[2.0]);
        assert!(t.w_pert.symmetry_error() < 1e-12);
        // Analysis anomalies must sum to ~0 (mean preserved by W).
        let xa = apply_transform(&x, &t);
        let mean_a: f64 = xa.iter().sum::<f64>() / 4.0;
        let mean_shift: f64 = mean_b
            + anom.iter().zip(&t.w_mean).map(|(a, w)| a * w).sum::<f64>();
        assert!((mean_a - mean_shift).abs() < 1e-9);
    }

    /// Multiple observations of the same variable behave like one obs with
    /// combined precision.
    #[test]
    fn multiple_obs_combine_precision() {
        let x = vec![0.0, 1.0, 2.0, 3.0];
        let m = x.len();
        let mean_b: f64 = x.iter().sum::<f64>() / m as f64;
        let anom: Vec<f64> = x.iter().map(|v| v - mean_b).collect();

        // Two obs of the same thing with variance 0.5 each == one with 0.25.
        let mut yb2 = Matrix::zeros(2, m);
        for i in 0..m {
            yb2[(0, i)] = anom[i];
            yb2[(1, i)] = anom[i];
        }
        let innov = 2.5 - mean_b;
        let t2 = solve_local(&yb2, &[innov, innov], &[2.0, 2.0]);
        let yb1 = Matrix::from_vec(1, m, anom.clone());
        let t1 = solve_local(&yb1, &[innov], &[4.0]);
        let a2 = apply_transform(&x, &t2);
        let a1 = apply_transform(&x, &t1);
        for (p, q) in a2.iter().zip(&a1) {
            assert!((p - q).abs() < 1e-9, "{p} vs {q}");
        }
    }
}
