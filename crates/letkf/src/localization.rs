//! Covariance localization: the Gaspari–Cohn correlation function and the
//! doubly periodic grid geometry with Rossby-coupled vertical distance.

/// Gaspari–Cohn 5th-order piecewise rational compactly supported correlation
/// function (Gaspari & Cohn 1999, Eq. 4.10).
///
/// `r = d / c` where `c` is the localization length scale; the support ends
/// at `r = 2` (so a "cutoff radius" of `D` corresponds to `c = D / 2`).
pub fn gaspari_cohn(r: f64) -> f64 {
    let r = r.abs();
    if r >= 2.0 {
        0.0
    } else if r >= 1.0 {
        // 2nd branch on [1, 2)
        let r2 = r * r;
        let r3 = r2 * r;
        let r4 = r3 * r;
        let r5 = r4 * r;
        (r5 / 12.0 - r4 / 2.0 + r3 * 5.0 / 8.0 + r2 * 5.0 / 3.0 - 5.0 * r + 4.0
            - (2.0 / 3.0) / r)
            .max(0.0)
    } else {
        // 1st branch on [0, 1)
        let r2 = r * r;
        let r3 = r2 * r;
        let r4 = r3 * r;
        let r5 = r4 * r;
        -r5 / 4.0 + r4 / 2.0 + r3 * 5.0 / 8.0 - r2 * 5.0 / 3.0 + 1.0
    }
}

/// Geometry of the two-level doubly periodic SQG grid.
///
/// Flat state index `level * n² + iy * n + ix` maps to a physical position;
/// distances combine the periodic horizontal separation with a vertical term
/// expressed as an equivalent horizontal distance (`vertical_scale`, set to
/// the Rossby radius `N H / f` following the paper's dynamically coupled
/// localization extents).
#[derive(Debug, Clone, PartialEq)]
pub struct GridGeometry {
    /// Grid points per side.
    pub n: usize,
    /// Number of vertical levels.
    pub levels: usize,
    /// Domain side length [m].
    pub domain: f64,
    /// Equivalent horizontal distance between adjacent levels [m].
    pub vertical_scale: f64,
}

impl GridGeometry {
    /// Creates the geometry.
    pub fn new(n: usize, levels: usize, domain: f64, vertical_scale: f64) -> Self {
        assert!(n > 0 && levels > 0 && domain > 0.0 && vertical_scale >= 0.0);
        GridGeometry { n, levels, domain, vertical_scale }
    }

    /// Total number of state variables.
    pub fn state_dim(&self) -> usize {
        self.levels * self.n * self.n
    }

    /// Decomposes a flat index into `(ix, iy, level)`.
    pub fn decompose(&self, idx: usize) -> (usize, usize, usize) {
        let per_level = self.n * self.n;
        let level = idx / per_level;
        let rem = idx % per_level;
        (rem % self.n, rem / self.n, level)
    }

    /// Grid spacing [m].
    pub fn dx(&self) -> f64 {
        self.domain / self.n as f64
    }

    /// Minimum-image (periodic) separation of two grid coordinates, in
    /// meters.
    fn periodic_axis_dist(&self, a: usize, b: usize) -> f64 {
        let d = (a as isize - b as isize).unsigned_abs();
        let d = d.min(self.n - d);
        d as f64 * self.dx()
    }

    /// Effective 3-D distance between two flat state indices [m].
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        let (ax, ay, al) = self.decompose(a);
        let (bx, by, bl) = self.decompose(b);
        let dx = self.periodic_axis_dist(ax, bx);
        let dy = self.periodic_axis_dist(ay, by);
        let dz = (al as f64 - bl as f64).abs() * self.vertical_scale;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_boundary_values() {
        assert!((gaspari_cohn(0.0) - 1.0).abs() < 1e-15);
        assert_eq!(gaspari_cohn(2.0), 0.0);
        assert_eq!(gaspari_cohn(5.0), 0.0);
        // Continuity at the branch point r = 1: both branches give 5/12...
        // evaluate numerically from both sides.
        let below = gaspari_cohn(1.0 - 1e-9);
        let above = gaspari_cohn(1.0 + 1e-9);
        assert!((below - above).abs() < 1e-6, "{below} vs {above}");
    }

    #[test]
    fn gc_monotone_decreasing_and_bounded() {
        let mut prev = gaspari_cohn(0.0);
        for i in 1..=200 {
            let r = i as f64 * 0.01;
            let v = gaspari_cohn(r);
            assert!((0.0..=1.0).contains(&v), "out of range at r={r}: {v}");
            assert!(v <= prev + 1e-12, "not monotone at r={r}");
            prev = v;
        }
    }

    #[test]
    fn gc_symmetric() {
        assert_eq!(gaspari_cohn(-0.7), gaspari_cohn(0.7));
    }

    #[test]
    fn gc_continuous_near_support_edge() {
        assert!(gaspari_cohn(2.0 - 1e-9) < 1e-6);
    }

    #[test]
    fn geometry_decompose_round_trip() {
        let g = GridGeometry::new(8, 2, 8.0e5, 1.0e5);
        for idx in [0usize, 7, 8, 63, 64, 127] {
            let (ix, iy, l) = g.decompose(idx);
            assert_eq!(l * 64 + iy * 8 + ix, idx);
        }
        assert_eq!(g.state_dim(), 128);
    }

    #[test]
    fn periodic_distance_wraps() {
        let g = GridGeometry::new(8, 1, 8.0e5, 0.0);
        // dx = 1e5; points 0 and 7 on a ring of 8 are 1 cell apart.
        assert!((g.distance(0, 7) - 1.0e5).abs() < 1e-6);
        assert!((g.distance(0, 4) - 4.0e5).abs() < 1e-6);
        // symmetric
        assert_eq!(g.distance(2, 5), g.distance(5, 2));
        // zero to itself
        assert_eq!(g.distance(3, 3), 0.0);
    }

    #[test]
    fn vertical_separation_adds_in_quadrature() {
        let g = GridGeometry::new(8, 2, 8.0e5, 3.0e5);
        let a = 0; // (0,0,level 0)
        let b = 64; // (0,0,level 1)
        assert!((g.distance(a, b) - 3.0e5).abs() < 1e-6);
        let c = 64 + 4; // (4,0,level 1): horizontal 4e5, vertical 3e5 -> 5e5
        assert!((g.distance(a, c) - 5.0e5).abs() < 1e-6);
    }
}
