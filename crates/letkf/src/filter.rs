//! The full gridded LETKF analysis.
//!
//! Embarrassingly parallel over grid points (the property that makes LETKF
//! the operational choice, §IV-A of the paper): every state variable gets
//! its own local ensemble-space solve using only observations within the
//! Gaspari–Cohn support, with R-localization and RTPS inflation.

use crate::inflation::rtps;
use crate::localization::{gaspari_cohn, GridGeometry};
use crate::solver::{apply_transform, solve_local, LocalTransform};
use linalg::Matrix;
use rayon::prelude::*;
use stats::Ensemble;

/// A point observation of one state variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointObs {
    /// Flat state index observed (point measurements, `h = e_i`).
    pub state_index: usize,
    /// Observed value.
    pub value: f64,
    /// Observation error standard deviation.
    pub sigma: f64,
}

/// LETKF configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LetkfConfig {
    /// Gaspari–Cohn cutoff: correlations reach zero at this distance [m]
    /// (the GC length scale is `cutoff / 2`).
    pub cutoff: f64,
    /// RTPS relaxation factor (paper's tuned value: 0.3).
    pub rtps_alpha: f64,
}

impl Default for LetkfConfig {
    fn default() -> Self {
        LetkfConfig { cutoff: 2.0e6, rtps_alpha: 0.3 }
    }
}

/// The Local Ensemble Transform Kalman Filter.
#[derive(Debug, Clone)]
pub struct Letkf {
    config: LetkfConfig,
    geometry: GridGeometry,
}

impl Letkf {
    /// Creates a filter for the given grid geometry.
    pub fn new(config: LetkfConfig, geometry: GridGeometry) -> Self {
        assert!(config.cutoff > 0.0, "cutoff must be positive");
        assert!((0.0..=1.0).contains(&config.rtps_alpha), "rtps_alpha in [0,1]");
        Letkf { config, geometry }
    }

    /// The active configuration.
    pub fn config(&self) -> &LetkfConfig {
        &self.config
    }

    /// One analysis step: assimilates `obs` into `forecast`.
    ///
    /// # Panics
    /// Panics if ensemble dimension does not match the geometry, or any
    /// observation indexes out of range.
    pub fn analyze(&self, forecast: &Ensemble, obs: &[PointObs]) -> Ensemble {
        let _span = telemetry::span!("letkf.analysis");
        let dim = forecast.dim();
        let members = forecast.members();
        assert_eq!(dim, self.geometry.state_dim(), "ensemble/geometry mismatch");
        assert!(members >= 2, "need at least two members");
        for o in obs {
            assert!(o.state_index < dim, "observation index out of range");
            assert!(o.sigma > 0.0, "observation sigma must be positive");
        }

        // Precompute observation-space forecast: for point obs this is just
        // a gather of member values at the observed indices.
        let fc_mean = forecast.mean();
        // yb_anom[j][i]: anomaly of member i at obs j.
        let yb_anom: Vec<Vec<f64>> = obs
            .iter()
            .map(|o| {
                (0..members)
                    .map(|m| forecast.member(m)[o.state_index] - fc_mean[o.state_index])
                    .collect()
            })
            .collect();
        let innov_all: Vec<f64> =
            obs.iter().map(|o| o.value - fc_mean[o.state_index]).collect();

        let cutoff = self.config.cutoff;
        let half = cutoff / 2.0; // GC length scale

        // Per-grid-point local solves, parallel over state variables.
        let mut analysis = Ensemble::zeros(members, dim);
        let columns: Vec<Vec<f64>> = (0..dim)
            .into_par_iter()
            .map(|g| {
                // Gather local observations.
                let mut rows: Vec<&[f64]> = Vec::new();
                let mut innov = Vec::new();
                let mut inv_r = Vec::new();
                for (j, o) in obs.iter().enumerate() {
                    let d = self.geometry.distance(g, o.state_index);
                    if d >= cutoff {
                        continue;
                    }
                    let rho = gaspari_cohn(d / half);
                    if rho <= 0.0 {
                        continue;
                    }
                    rows.push(&yb_anom[j]);
                    innov.push(innov_all[j]);
                    inv_r.push(rho / (o.sigma * o.sigma));
                }

                let x: Vec<f64> = (0..members).map(|m| forecast.member(m)[g]).collect();
                if rows.is_empty() {
                    return x; // no information: analysis = forecast
                }
                let p = rows.len();
                telemetry::counter_add("letkf.local_solves", 1);
                telemetry::histogram_record("letkf.local_obs", p as f64);
                let mut yb = Matrix::zeros(p, members);
                for (r, row) in rows.iter().enumerate() {
                    yb.row_mut(r).copy_from_slice(row);
                }
                let t: LocalTransform = solve_local(&yb, &innov, &inv_r);
                apply_transform(&x, &t)
            })
            .collect();

        for (g, col) in columns.into_iter().enumerate() {
            for (m, v) in col.into_iter().enumerate() {
                analysis.member_mut(m)[g] = v;
            }
        }

        rtps(&mut analysis, forecast, self.config.rtps_alpha);
        if telemetry::enabled() {
            telemetry::counter_add("letkf.analyses", 1);
            telemetry::gauge_set("letkf.analysis.spread", analysis.spread());
            // O−F innovation-consistency moments over the whole network.
            let (of_mean, of_var) = stats::diagnostics::moments(&innov_all);
            telemetry::gauge_set("letkf.innovation.mean", of_mean);
            telemetry::gauge_set("letkf.innovation.var", of_var);
        }
        analysis
    }

    /// Generates the identity observation network for this geometry:
    /// one observation per state variable with error `sigma`, taking values
    /// from `truth_obs` (typically truth + noise).
    pub fn identity_network(&self, truth_obs: &[f64], sigma: f64) -> Vec<PointObs> {
        assert_eq!(truth_obs.len(), self.geometry.state_dim());
        truth_obs
            .iter()
            .enumerate()
            .map(|(i, &v)| PointObs { state_index: i, value: v, sigma })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::gaussian::standard_normal;
    use stats::rng::seeded;

    fn geometry(n: usize) -> GridGeometry {
        GridGeometry::new(n, 2, n as f64 * 1.0e5, 1.0e5)
    }

    fn random_ensemble(members: usize, dim: usize, mean: f64, sd: f64, seed: u64) -> Ensemble {
        let mut rng = seeded(seed);
        let mut e = Ensemble::zeros(members, dim);
        for m in 0..members {
            for x in e.member_mut(m) {
                *x = mean + sd * standard_normal(&mut rng);
            }
        }
        e
    }

    #[test]
    fn no_obs_returns_forecast_up_to_inflation() {
        let geo = geometry(4);
        let letkf = Letkf::new(LetkfConfig { rtps_alpha: 0.0, ..Default::default() }, geo);
        let fc = random_ensemble(6, 32, 0.0, 1.0, 1);
        let an = letkf.analyze(&fc, &[]);
        for (a, b) in an.as_slice().iter().zip(fc.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn analysis_mean_moves_toward_dense_obs() {
        let geo = geometry(4);
        let letkf = Letkf::new(
            LetkfConfig { cutoff: 3.0e5, rtps_alpha: 0.0 },
            geo,
        );
        let fc = random_ensemble(20, 32, 0.0, 1.0, 2);
        let obs: Vec<PointObs> = (0..32)
            .map(|i| PointObs { state_index: i, value: 2.0, sigma: 0.2 })
            .collect();
        let an = letkf.analyze(&fc, &obs);
        let am = an.mean();
        let avg = am.iter().sum::<f64>() / am.len() as f64;
        assert!(avg > 1.2, "LETKF mean should approach obs: {avg}");
        assert!(avg < 2.3, "must not overshoot: {avg}");
    }

    #[test]
    fn analysis_reduces_error_against_truth() {
        let geo = geometry(4);
        let letkf =
            Letkf::new(LetkfConfig { cutoff: 3.0e5, rtps_alpha: 0.0 }, geo);
        let mut rng = seeded(7);
        let truth: Vec<f64> = (0..32).map(|_| standard_normal(&mut rng)).collect();
        let fc = random_ensemble(20, 32, 0.5, 1.0, 3);
        let obs: Vec<PointObs> = truth
            .iter()
            .enumerate()
            .map(|(i, &t)| PointObs {
                state_index: i,
                value: t + 0.2 * standard_normal(&mut rng),
                sigma: 0.2,
            })
            .collect();
        let an = letkf.analyze(&fc, &obs);
        let rmse_fc = stats::metrics::rmse(&fc.mean(), &truth);
        let rmse_an = stats::metrics::rmse(&an.mean(), &truth);
        assert!(
            rmse_an < 0.6 * rmse_fc,
            "analysis must improve on forecast: {rmse_an} vs {rmse_fc}"
        );
    }

    #[test]
    fn localization_limits_remote_influence() {
        // A single observation far from a grid point must leave it unchanged.
        let geo = geometry(8); // 8x8x2, dx = 1e5
        let letkf = Letkf::new(
            LetkfConfig { cutoff: 1.5e5, rtps_alpha: 0.0 },
            geo,
        );
        let fc = random_ensemble(10, 128, 0.0, 1.0, 4);
        // Observe index 0 (corner of level 0).
        let obs = vec![PointObs { state_index: 0, value: 3.0, sigma: 0.1 }];
        let an = letkf.analyze(&fc, &obs);
        // Index at (4,4) level 0 is ~5.6e5 away: beyond cutoff.
        let far = 4 * 8 + 4;
        for m in 0..10 {
            assert!(
                (an.member(m)[far] - fc.member(m)[far]).abs() < 1e-12,
                "remote point must be untouched"
            );
        }
        // Observed point itself must move.
        let d0: f64 = (an.member(0)[0] - fc.member(0)[0]).abs();
        assert!(d0 > 1e-6, "observed point must be updated");
    }

    #[test]
    fn rtps_preserves_mean_changes_spread() {
        let geo = geometry(4);
        let no_rtps =
            Letkf::new(LetkfConfig { cutoff: 3.0e5, rtps_alpha: 0.0 }, geo.clone());
        let with_rtps =
            Letkf::new(LetkfConfig { cutoff: 3.0e5, rtps_alpha: 0.8 }, geo);
        let fc = random_ensemble(12, 32, 0.0, 1.0, 5);
        let obs: Vec<PointObs> =
            (0..32).map(|i| PointObs { state_index: i, value: 1.0, sigma: 0.3 }).collect();
        let a0 = no_rtps.analyze(&fc, &obs);
        let a1 = with_rtps.analyze(&fc, &obs);
        // Means identical (RTPS only rescales anomalies).
        for (x, y) in a0.mean().iter().zip(a1.mean()) {
            assert!((x - y).abs() < 1e-9);
        }
        // RTPS analysis keeps more spread.
        assert!(a1.spread() > a0.spread());
    }

    #[test]
    fn deterministic() {
        let geo = geometry(4);
        let letkf = Letkf::new(LetkfConfig::default(), geo);
        let fc = random_ensemble(8, 32, 0.0, 1.0, 6);
        let obs: Vec<PointObs> =
            (0..32).map(|i| PointObs { state_index: i, value: 0.5, sigma: 0.5 }).collect();
        let a = letkf.analyze(&fc, &obs);
        let b = letkf.analyze(&fc, &obs);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn identity_network_covers_state() {
        let geo = geometry(4);
        let letkf = Letkf::new(LetkfConfig::default(), geo);
        let vals: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let net = letkf.identity_network(&vals, 0.7);
        assert_eq!(net.len(), 32);
        assert_eq!(net[5].state_index, 5);
        assert_eq!(net[5].value, 5.0);
        assert_eq!(net[5].sigma, 0.7);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let geo = geometry(4);
        let letkf = Letkf::new(LetkfConfig::default(), geo);
        let fc = random_ensemble(8, 10, 0.0, 1.0, 6);
        let _ = letkf.analyze(&fc, &[]);
    }
}
