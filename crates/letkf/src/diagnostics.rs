//! Observation-space diagnostics for ensemble filters.
//!
//! Operational EnKF systems monitor the *innovation statistics* to detect
//! filter divergence and mis-specified error covariances (Desroziers et al.
//! 2005): for a consistent filter, the innovations `d = y − H x̄_b` satisfy
//! `E[d dᵀ] = H P_b Hᵀ + R`, so the ratio of the measured innovation
//! variance to the predicted one should hover around 1. Ratios ≫ 1 are the
//! signature of the underdispersive-ensemble divergence the paper's Fig. 4
//! shows for LETKF under model error.

use stats::Ensemble;

/// Innovation-consistency statistics for one analysis cycle with point
/// observations of the full (or partial) state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InnovationStats {
    /// Mean innovation (bias in observation space).
    pub mean: f64,
    /// Measured innovation variance `mean(d²)`.
    pub measured_var: f64,
    /// Predicted innovation variance `mean(HP_bHᵀ) + σ_obs²`.
    pub predicted_var: f64,
    /// Number of observations.
    pub count: usize,
}

impl InnovationStats {
    /// Consistency ratio `measured / predicted`; ≈ 1 for a well-calibrated
    /// filter, ≫ 1 when the ensemble is overconfident (divergence
    /// precursor), ≪ 1 when it is overdispersive.
    pub fn consistency_ratio(&self) -> f64 {
        self.measured_var / self.predicted_var.max(1e-300)
    }
}

/// Computes innovation statistics for point observations `(index, value)`
/// with error std `sigma` against a forecast ensemble.
pub fn innovation_stats(
    forecast: &Ensemble,
    obs: &[(usize, f64)],
    sigma: f64,
) -> InnovationStats {
    assert!(!obs.is_empty(), "need at least one observation");
    assert!(sigma > 0.0);
    let mean_b = forecast.mean();
    let var_b = forecast.variance();
    let mut sum_d = 0.0;
    let mut sum_d2 = 0.0;
    let mut sum_pred = 0.0;
    for &(idx, value) in obs {
        assert!(idx < forecast.dim(), "observation index out of range");
        let d = value - mean_b[idx];
        sum_d += d;
        sum_d2 += d * d;
        sum_pred += var_b[idx] + sigma * sigma;
    }
    let n = obs.len() as f64;
    InnovationStats {
        mean: sum_d / n,
        measured_var: sum_d2 / n,
        predicted_var: sum_pred / n,
        count: obs.len(),
    }
}

/// Adaptive multiplicative inflation driven by the innovation consistency
/// ratio (a simplified Anderson/Desroziers scheme): the factor is nudged
/// toward the value that would reconcile measured and predicted innovation
/// variances, with relaxation `gamma` per cycle and hard bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveInflation {
    /// Current multiplicative factor (applied to forecast anomalies).
    pub factor: f64,
    /// Learning rate toward the diagnosed factor, in (0, 1].
    pub gamma: f64,
    /// Lower bound on the factor.
    pub min_factor: f64,
    /// Upper bound on the factor.
    pub max_factor: f64,
}

impl Default for AdaptiveInflation {
    fn default() -> Self {
        AdaptiveInflation { factor: 1.0, gamma: 0.2, min_factor: 1.0, max_factor: 3.0 }
    }
}

impl AdaptiveInflation {
    /// Updates the factor from this cycle's innovation statistics and
    /// returns the factor to apply. With `E[d²] = λ²·HP_bHᵀ + R`, the
    /// diagnosed λ is `sqrt((measured − R) / HP_bHᵀ)` (clamped).
    pub fn update(&mut self, stats: &InnovationStats, sigma: f64) -> f64 {
        let hpbht = (stats.predicted_var - sigma * sigma).max(1e-300);
        let excess = (stats.measured_var - sigma * sigma).max(0.0);
        let diagnosed = (excess / hpbht).sqrt().clamp(self.min_factor, self.max_factor);
        self.factor += self.gamma * (diagnosed - self.factor);
        self.factor = self.factor.clamp(self.min_factor, self.max_factor);
        self.factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::gaussian::standard_normal;
    use stats::rng::seeded;

    fn gaussian_ensemble(members: usize, dim: usize, sd: f64, seed: u64) -> Ensemble {
        let mut rng = seeded(seed);
        let mut e = Ensemble::zeros(members, dim);
        for m in 0..members {
            for x in e.member_mut(m) {
                *x = sd * standard_normal(&mut rng);
            }
        }
        e
    }

    #[test]
    fn consistent_filter_has_ratio_near_one() {
        // Truth = 0, forecast ~ N(0, 1), obs = truth + N(0, 0.5²):
        // innovations d = y - x̄_b have variance ≈ var(x̄_b) + 0.25 ≈
        // 1/M + 0.25; predicted = var_b + 0.25 ≈ 1.25. For a *consistent*
        // check we observe the forecast's own members' spread: use a large
        // ensemble so x̄_b ≈ 0 and compare against truth drawn from the
        // forecast distribution.
        let mut rng = seeded(9);
        let dim = 4000;
        let fc = gaussian_ensemble(40, dim, 1.0, 2);
        // Truth drawn from the same distribution as the members.
        let truth: Vec<f64> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
        let sigma = 0.5;
        let obs: Vec<(usize, f64)> = truth
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t + sigma * standard_normal(&mut rng)))
            .collect();
        let s = innovation_stats(&fc, &obs, sigma);
        let ratio = s.consistency_ratio();
        assert!((0.8..1.25).contains(&ratio), "consistent setup, got ratio {ratio}");
        assert!(s.mean.abs() < 0.1);
        assert_eq!(s.count, dim);
    }

    #[test]
    fn overconfident_ensemble_flagged() {
        // Collapsed ensemble (spread 0.01) far from truth: ratio >> 1.
        let mut rng = seeded(5);
        let dim = 2000;
        let fc = gaussian_ensemble(20, dim, 0.01, 3);
        let truth: Vec<f64> = (0..dim).map(|_| 1.0 + standard_normal(&mut rng)).collect();
        let obs: Vec<(usize, f64)> =
            truth.iter().enumerate().map(|(i, t)| (i, *t)).collect();
        let s = innovation_stats(&fc, &obs, 0.1);
        assert!(s.consistency_ratio() > 10.0, "ratio {}", s.consistency_ratio());
    }

    #[test]
    fn adaptive_inflation_reacts_to_overconfidence() {
        let mut infl = AdaptiveInflation::default();
        let stats = InnovationStats {
            mean: 0.0,
            measured_var: 4.0,
            predicted_var: 1.01, // HPbHt = 1, R = 0.01
            count: 100,
        };
        let sigma = 0.1;
        let before = infl.factor;
        let f1 = infl.update(&stats, sigma);
        assert!(f1 > before, "inflation must grow under overconfidence");
        // Repeated updates converge toward the diagnosed value ~ sqrt(3.99).
        for _ in 0..100 {
            infl.update(&stats, sigma);
        }
        assert!((infl.factor - (3.99f64).sqrt()).abs() < 0.05, "{}", infl.factor);
    }

    #[test]
    fn adaptive_inflation_bounded_and_idle_when_consistent() {
        let mut infl = AdaptiveInflation::default();
        // Consistent stats: measured == predicted → diagnosed ≈ 1.
        let stats = InnovationStats {
            mean: 0.0,
            measured_var: 1.0,
            predicted_var: 1.0,
            count: 10,
        };
        for _ in 0..50 {
            infl.update(&stats, 0.5);
        }
        assert!((infl.factor - 1.0).abs() < 0.05, "{}", infl.factor);

        // Absurd stats stay clamped at the bound.
        let crazy = InnovationStats {
            mean: 0.0,
            measured_var: 1e6,
            predicted_var: 1.0,
            count: 10,
        };
        for _ in 0..100 {
            infl.update(&crazy, 0.1);
        }
        assert!(infl.factor <= 3.0 + 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_observations_rejected() {
        let fc = gaussian_ensemble(4, 8, 1.0, 1);
        let _ = innovation_stats(&fc, &[], 0.5);
    }
}
