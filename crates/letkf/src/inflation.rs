//! Posterior covariance inflation.
//!
//! LETKF needs inflation to compensate for sampling error and model error;
//! the paper tunes **RTPS** (relaxation to prior spread, Whitaker & Hamill
//! 2012) with an optimal factor of 0.3 for the SQG twin experiment.

use stats::Ensemble;

/// Relaxation-to-prior-spread: per variable, the analysis std is blended
/// back toward the forecast std,
/// `σ_new = σ_a + α (σ_b − σ_a)`, by rescaling analysis anomalies.
///
/// `alpha = 0` leaves the analysis untouched; `alpha = 1` restores the full
/// forecast spread.
pub fn rtps(analysis: &mut Ensemble, forecast: &Ensemble, alpha: f64) {
    assert!((0.0..=1.0).contains(&alpha), "RTPS alpha must be in [0,1]");
    assert_eq!(analysis.dim(), forecast.dim());
    assert_eq!(analysis.members(), forecast.members());
    if alpha == 0.0 { // lint: allow(float-exact-compare, reason="alpha = 0 is the documented exact no-op sentinel")
        return;
    }
    let var_a = analysis.variance();
    let var_b = forecast.variance();
    let mean = analysis.mean();
    let dim = analysis.dim();
    let mut scale = vec![1.0; dim];
    for i in 0..dim {
        let sa = var_a[i].sqrt();
        let sb = var_b[i].sqrt();
        if sa > 1e-300 {
            scale[i] = (sa + alpha * (sb - sa)) / sa;
        }
    }
    for member in analysis.iter_mut() {
        for ((x, mu), s) in member.iter_mut().zip(&mean).zip(&scale) {
            *x = mu + (*x - mu) * s;
        }
    }
}

/// Plain multiplicative inflation of the anomalies by `factor >= 1`.
pub fn multiplicative(ensemble: &mut Ensemble, factor: f64) {
    assert!(factor >= 1.0, "multiplicative inflation must be >= 1");
    ensemble.inflate(factor);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ens(values: &[&[f64]]) -> Ensemble {
        Ensemble::from_members(&values.iter().map(|v| v.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn rtps_zero_is_identity() {
        let fc = ens(&[&[0.0, 0.0], &[2.0, 4.0]]);
        let mut an = ens(&[&[0.5, 1.0], &[1.5, 3.0]]);
        let before = an.clone();
        rtps(&mut an, &fc, 0.0);
        assert_eq!(an, before);
    }

    #[test]
    fn rtps_one_restores_forecast_spread() {
        let fc = ens(&[&[0.0, 0.0], &[2.0, 4.0], &[4.0, 8.0]]);
        let mut an = ens(&[&[0.9, 1.9], &[1.0, 2.0], &[1.1, 2.1]]);
        let mean_before = an.mean();
        rtps(&mut an, &fc, 1.0);
        let va = an.variance();
        let vf = fc.variance();
        for (a, b) in va.iter().zip(&vf) {
            assert!((a.sqrt() - b.sqrt()).abs() < 1e-12);
        }
        // Mean unchanged.
        for (a, b) in an.mean().iter().zip(&mean_before) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn rtps_intermediate_blends() {
        let fc = ens(&[&[0.0], &[4.0]]); // std = 2·sqrt(2)... variance 8
        let mut an = ens(&[&[1.0], &[3.0]]); // variance 2
        rtps(&mut an, &fc, 0.5);
        let sa = an.variance()[0].sqrt();
        let want = 2f64.sqrt() + 0.5 * (8f64.sqrt() - 2f64.sqrt());
        assert!((sa - want).abs() < 1e-12, "{sa} vs {want}");
    }

    #[test]
    fn rtps_handles_collapsed_analysis() {
        let fc = ens(&[&[0.0], &[2.0]]);
        let mut an = ens(&[&[1.0], &[1.0]]); // zero spread
        rtps(&mut an, &fc, 0.5);
        // Guarded: cannot resurrect zero anomalies, but must not NaN.
        assert!(an.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn multiplicative_scales_spread() {
        let mut e = ens(&[&[0.0, 1.0], &[2.0, 3.0]]);
        let s0 = e.spread();
        multiplicative(&mut e, 1.2);
        assert!((e.spread() - 1.2 * s0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rtps_alpha_out_of_range_panics() {
        let fc = ens(&[&[0.0], &[1.0]]);
        let mut an = fc.clone();
        rtps(&mut an, &fc, 1.5);
    }

    #[test]
    #[should_panic]
    fn deflation_rejected() {
        let mut e = ens(&[&[0.0], &[1.0]]);
        multiplicative(&mut e, 0.9);
    }
}
