//! The stochastic (perturbed-observation) EnKF of Evensen — the original
//! ensemble filter the paper's §I cites as the geosciences' workhorse, and
//! the conceptual ancestor of the LETKF baseline.
//!
//! Implemented in the ensemble-observation-space form: with forecast
//! anomalies `X' (d × m)` and observation-space anomalies `Y' = H X'`,
//!
//! ```text
//! K = X' Y'ᵀ [ Y' Y'ᵀ + (m − 1) R ]⁻¹
//! x_i ← x_i + K (y + ε_i − H x_i),   ε_i ~ N(0, R)
//! ```
//!
//! The `p × p` solve limits this global form to moderate observation
//! counts (thousands) — exactly the scaling wall that motivates the LETKF's
//! embarrassingly parallel local decomposition, which this module exists to
//! contrast with.

use linalg::{Matrix, SymEig};
use stats::gaussian::standard_normal;
use stats::rng::{seeded, split_seed};
use stats::Ensemble;

/// Configuration of the stochastic EnKF.
#[derive(Debug, Clone, PartialEq)]
pub struct EnkfConfig {
    /// Observation error standard deviation (diagonal R).
    pub obs_sigma: f64,
    /// Multiplicative prior inflation (1.0 disables).
    pub inflation: f64,
    /// Seed for the observation perturbations.
    pub seed: u64,
}

impl Default for EnkfConfig {
    fn default() -> Self {
        EnkfConfig { obs_sigma: 1.0, inflation: 1.0, seed: 0 }
    }
}

/// The global stochastic EnKF with point observations.
#[derive(Debug, Clone)]
pub struct StochasticEnkf {
    config: EnkfConfig,
    cycle: u64,
}

impl StochasticEnkf {
    /// Creates the filter.
    ///
    /// # Panics
    /// Panics on non-positive `obs_sigma` or inflation < 1.
    pub fn new(config: EnkfConfig) -> Self {
        assert!(config.obs_sigma > 0.0, "obs_sigma must be positive");
        assert!(config.inflation >= 1.0, "inflation must be >= 1");
        StochasticEnkf { config, cycle: 0 }
    }

    /// One analysis: assimilates observations of the state components
    /// listed in `obs_indices` with values `y` (same order).
    ///
    /// # Panics
    /// Panics on shape mismatches or out-of-range indices.
    pub fn analyze(
        &mut self,
        forecast: &Ensemble,
        obs_indices: &[usize],
        y: &[f64],
    ) -> Ensemble {
        let m = forecast.members();
        let d = forecast.dim();
        let p = obs_indices.len();
        assert_eq!(y.len(), p, "observation length mismatch");
        assert!(m >= 2, "need at least two members");
        assert!(obs_indices.iter().all(|&i| i < d), "obs index out of range");
        let cycle_seed = split_seed(self.config.seed, self.cycle.wrapping_add(0xE6C));
        self.cycle += 1;

        let mut fc = forecast.clone();
        if self.config.inflation > 1.0 {
            fc.inflate(self.config.inflation);
        }
        if p == 0 {
            return fc;
        }

        // Anomalies.
        let mean = fc.mean();
        // Y' (p × m): observation-space anomalies.
        let mut yp = Matrix::zeros(p, m);
        for (r, &idx) in obs_indices.iter().enumerate() {
            for c in 0..m {
                yp[(r, c)] = fc.member(c)[idx] - mean[idx];
            }
        }

        // S = Y'Y'ᵀ + (m−1) R  (p × p, SPD).
        let mut s = linalg::gemm::matmul_a_bt(&yp, &yp);
        let r_scaled = (m - 1) as f64 * self.config.obs_sigma * self.config.obs_sigma;
        s.add_diag(r_scaled);
        let s_inv = SymEig::new(&s).inverse();

        // Per-member innovations with perturbed observations.
        let mut rng = seeded(cycle_seed);
        // innovations (p × m): y + eps_i − H x_i.
        let mut innov = Matrix::zeros(p, m);
        for c in 0..m {
            for (r, &idx) in obs_indices.iter().enumerate() {
                let eps = self.config.obs_sigma * standard_normal(&mut rng);
                innov[(r, c)] = y[r] + eps - fc.member(c)[idx];
            }
        }

        // W = S⁻¹ · innov (p × m), then increments ΔX = X' Y'ᵀ W.
        let w = linalg::gemm::matmul(&s_inv, &innov);
        // Y'ᵀ W: (m × m).
        let ytw = linalg::gemm::matmul_at_b(&yp, &w);

        // ΔX = X' · ytw computed row-block-wise without materializing X'
        // (d × m can be large): for each state variable i,
        // Δx_i[c] = Σ_k x'_i[k] ytw[k][c].
        let mut analysis = fc.clone();
        for i in 0..d {
            // x'_i over members.
            let mut xi = vec![0.0; m];
            for k in 0..m {
                xi[k] = fc.member(k)[i] - mean[i];
            }
            for c in 0..m {
                let mut delta = 0.0;
                for k in 0..m {
                    delta += xi[k] * ytw[(k, c)];
                }
                analysis.member_mut(c)[i] += delta;
            }
        }
        analysis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::rng::seeded as srng;

    fn gaussian_ensemble(members: usize, dim: usize, mean: f64, sd: f64, seed: u64) -> Ensemble {
        let mut rng = srng(seed);
        let mut e = Ensemble::zeros(members, dim);
        for m in 0..members {
            for x in e.member_mut(m) {
                *x = mean + sd * standard_normal(&mut rng);
            }
        }
        e
    }

    /// Scalar case: the EnKF analysis mean and variance converge to the
    /// Kalman-filter values as the ensemble grows.
    #[test]
    fn matches_scalar_kalman_in_the_large_ensemble_limit() {
        let members = 4000;
        let fc = gaussian_ensemble(members, 1, 0.0, 1.0, 1);
        let mean_b = fc.mean()[0];
        let var_b = fc.variance()[0];
        let sigma: f64 = 0.5;
        let y = 2.0;
        let gain = var_b / (var_b + sigma * sigma);
        let mean_kf = mean_b + gain * (y - mean_b);
        let var_kf = (1.0 - gain) * var_b;

        let mut enkf = StochasticEnkf::new(EnkfConfig {
            obs_sigma: sigma,
            inflation: 1.0,
            seed: 7,
        });
        let an = enkf.analyze(&fc, &[0], &[y]);
        assert!((an.mean()[0] - mean_kf).abs() < 0.05, "{} vs {mean_kf}", an.mean()[0]);
        assert!((an.variance()[0] - var_kf).abs() < 0.05, "{} vs {var_kf}", an.variance()[0]);
    }

    #[test]
    fn no_observations_is_forecast_plus_inflation() {
        let fc = gaussian_ensemble(8, 4, 1.0, 0.5, 2);
        let mut plain =
            StochasticEnkf::new(EnkfConfig { obs_sigma: 1.0, inflation: 1.0, seed: 1 });
        let an = plain.analyze(&fc, &[], &[]);
        assert_eq!(an.as_slice(), fc.as_slice());

        let mut inflated =
            StochasticEnkf::new(EnkfConfig { obs_sigma: 1.0, inflation: 1.5, seed: 1 });
        let an2 = inflated.analyze(&fc, &[], &[]);
        assert!((an2.spread() - 1.5 * fc.spread()).abs() < 1e-9);
    }

    #[test]
    fn partial_observations_update_correlated_unobserved_state() {
        // Two perfectly correlated components; observing one must update
        // the other through the sample covariance.
        let mut e = Ensemble::zeros(40, 2);
        let mut rng = srng(5);
        for m in 0..40 {
            let v = standard_normal(&mut rng);
            e.member_mut(m)[0] = v;
            e.member_mut(m)[1] = v; // identical => correlation 1
        }
        let mut enkf =
            StochasticEnkf::new(EnkfConfig { obs_sigma: 0.1, inflation: 1.0, seed: 3 });
        let an = enkf.analyze(&e, &[0], &[2.0]);
        // Both components move toward 2.
        assert!(an.mean()[0] > 1.0, "{}", an.mean()[0]);
        assert!(an.mean()[1] > 1.0, "observed info must propagate: {}", an.mean()[1]);
        assert!((an.mean()[0] - an.mean()[1]).abs() < 0.2);
    }

    #[test]
    fn analysis_reduces_error_with_dense_obs() {
        // Members must span the error subspace for the (unlocalized) EnKF
        // to correct it, so use members > dim — the rank deficiency of
        // small ensembles in high dimensions is exactly what motivates the
        // LETKF's localization.
        let dim = 16;
        let members = 40;
        let mut rng = srng(11);
        let truth: Vec<f64> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
        let fc = gaussian_ensemble(members, dim, 0.0, 1.0, 4);
        let sigma = 0.2;
        let idx: Vec<usize> = (0..dim).collect();
        let y: Vec<f64> =
            truth.iter().map(|t| t + sigma * standard_normal(&mut rng)).collect();
        let mut enkf =
            StochasticEnkf::new(EnkfConfig { obs_sigma: sigma, inflation: 1.0, seed: 9 });
        let an = enkf.analyze(&fc, &idx, &y);
        let before = stats::metrics::rmse(&fc.mean(), &truth);
        let after = stats::metrics::rmse(&an.mean(), &truth);
        assert!(after < 0.5 * before, "EnKF must reduce error: {before} -> {after}");
    }

    #[test]
    fn rank_deficiency_limits_small_ensembles() {
        // The flip side: 10 members in 64 dimensions can only correct a
        // small fraction of the error — the scaling wall that motivates
        // localization (documented behavior, not a bug).
        let dim = 64;
        let mut rng = srng(13);
        let truth: Vec<f64> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
        let fc = gaussian_ensemble(10, dim, 0.0, 1.0, 5);
        let idx: Vec<usize> = (0..dim).collect();
        let y: Vec<f64> = truth.clone();
        let mut enkf =
            StochasticEnkf::new(EnkfConfig { obs_sigma: 0.1, inflation: 1.0, seed: 9 });
        let an = enkf.analyze(&fc, &idx, &y);
        let before = stats::metrics::rmse(&fc.mean(), &truth);
        let after = stats::metrics::rmse(&an.mean(), &truth);
        assert!(after < before, "some reduction within the span");
        assert!(
            after > 0.5 * before,
            "but rank deficiency must leave most error: {before} -> {after}"
        );
    }

    #[test]
    fn stochastic_updates_differ_across_cycles() {
        let fc = gaussian_ensemble(10, 4, 0.0, 1.0, 6);
        let mut enkf =
            StochasticEnkf::new(EnkfConfig { obs_sigma: 0.5, inflation: 1.0, seed: 2 });
        let a = enkf.analyze(&fc, &[0, 1, 2, 3], &[0.5; 4]);
        let b = enkf.analyze(&fc, &[0, 1, 2, 3], &[0.5; 4]);
        assert_ne!(a.as_slice(), b.as_slice(), "perturbed obs must be re-drawn");
    }

    #[test]
    fn deterministic_given_seed() {
        let fc = gaussian_ensemble(10, 4, 0.0, 1.0, 6);
        let run = || {
            let mut f =
                StochasticEnkf::new(EnkfConfig { obs_sigma: 0.5, inflation: 1.0, seed: 2 });
            f.analyze(&fc, &[0, 1], &[0.3, 0.4])
        };
        assert_eq!(run().as_slice(), run().as_slice());
    }

    #[test]
    #[should_panic]
    fn out_of_range_obs_index_panics() {
        let fc = gaussian_ensemble(4, 3, 0.0, 1.0, 1);
        let mut f = StochasticEnkf::new(EnkfConfig::default());
        let _ = f.analyze(&fc, &[5], &[1.0]);
    }
}
