//! # letkf — the Local Ensemble Transform Kalman Filter baseline
//!
//! The paper's SOTA comparison method (Hunt, Kostelich & Szunyogh 2007),
//! implemented as deployed operationally (e.g. in KENDA):
//!
//! - per-grid-point local analyses in ensemble space (embarrassingly
//!   parallel — rayon over state variables here, MPI ranks on a real HPC),
//! - Gaspari–Cohn **R-localization** with the horizontal/vertical extents
//!   coupled through the Rossby radius of deformation,
//! - **RTPS** (relaxation to prior spread) inflation, tuned to 0.3 in the
//!   paper's twin experiments,
//! - symmetric square-root ensemble transform via [`linalg::SymEig`].
//!
//! ```
//! use letkf::{GridGeometry, Letkf, LetkfConfig, PointObs};
//! use stats::Ensemble;
//!
//! let geo = GridGeometry::new(4, 2, 4.0e5, 1.0e5);
//! let filter = Letkf::new(LetkfConfig::default(), geo);
//! let members: Vec<Vec<f64>> = (0..4).map(|m| vec![m as f64; 32]).collect();
//! let forecast = Ensemble::from_members(&members);
//! let obs = vec![PointObs { state_index: 0, value: 1.0, sigma: 0.5 }];
//! let analysis = filter.analyze(&forecast, &obs);
//! assert_eq!(analysis.members(), 4);
//! ```

#![warn(missing_docs)]
// Ensemble-space kernels index member/variable arrays at matched positions.
#![allow(clippy::needless_range_loop)]

pub mod diagnostics;
pub mod enkf;
mod filter;
pub mod inflation;
mod localization;
pub mod solver;

pub use diagnostics::{innovation_stats, AdaptiveInflation, InnovationStats};
pub use enkf::{EnkfConfig, StochasticEnkf};
pub use filter::{Letkf, LetkfConfig, PointObs};
pub use localization::{gaspari_cohn, GridGeometry};
