//! Golden test pinning the `--sarif` output shape.
//!
//! CI annotators parse this format; accidental shape drift (renamed keys,
//! reordered rules, changed locations) must show up as a test diff. To
//! regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p analyzer --test sarif
//! ```

use std::path::PathBuf;
use std::process::Command;

const GOLDEN: &str = "tests/golden/float_exact_compare.sarif";

#[test]
fn sarif_output_matches_golden() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    // Run from the crate root with a relative path so the artifact URI in
    // the output is machine-independent.
    let out = Command::new(env!("CARGO_BIN_EXE_analyzer"))
        .current_dir(&manifest)
        .arg("check")
        .arg("--sarif")
        .arg("fixtures/float_exact_compare.rs")
        .output()
        .expect("failed to spawn the analyzer binary");
    assert!(!out.status.success(), "the fixture must produce a finding");
    let got = String::from_utf8(out.stdout).expect("SARIF must be UTF-8");

    let golden_path = manifest.join(GOLDEN);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path)
        .expect("golden file missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "SARIF shape drifted from {GOLDEN}; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Independent of the golden bytes: the invariants every SARIF consumer
/// relies on, so a regenerated golden can't silently bless a broken shape.
#[test]
fn sarif_structural_invariants() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let out = Command::new(env!("CARGO_BIN_EXE_analyzer"))
        .current_dir(&manifest)
        .arg("check")
        .arg("--sarif")
        .arg("fixtures/float_exact_compare.rs")
        .output()
        .expect("failed to spawn the analyzer binary");
    let got = String::from_utf8(out.stdout).expect("SARIF must be UTF-8");
    for needle in [
        "\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\"",
        "\"version\": \"2.1.0\"",
        "\"name\": \"analyzer\"",
        "\"ruleId\": \"float-exact-compare\"",
        "\"uri\": \"fixtures/float_exact_compare.rs\"",
        "\"startLine\": 4",
        "\"level\": \"error\"",
    ] {
        assert!(got.contains(needle), "missing {needle}\n{got}");
    }
}
