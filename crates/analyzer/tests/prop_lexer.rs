//! Property tests hardening the analyzer's lexer/parser on random token
//! soup: no panics, position monotonicity, and comment/string contents
//! never leaking into the token stream (the `unsafe`-inside-a-string-
//! literal false-positive class).

use analyzer::lexer::{lex, TokenKind};
use analyzer::{analyze_source, parse, FileKind};
use proptest::prelude::*;

/// Source fragments chosen to stress every lexer state: raw/normal strings,
/// chars vs lifetimes, nested block comments, multi-char punct, directives,
/// floats vs ranges, and non-ASCII text.
const FRAGMENTS: &[&str] = &[
    "ident", "unsafe", "fn", "let", "impl", "Instant", "r", "#", "\"", "r\"", "r#\"", "\"#", "'",
    "'a", "'x'", "b'x'", "\\", "\\\"", "//", "/*", "*/", "///", "//!", "\n", " ", "\t", "{", "}",
    "(", ")", "[", "]", "<", ">", "::", "<<=", "..=", "...", "=>", "->", "==", "0", "1.5", "1e9",
    "0x1f", "1.", "..", "0.5f64", "é", "∑", ";", ",", ".", "=", "+", "-", "lint:",
    "allow(float-exact-compare,", "reason=\"x\")", "no_alloc", "#[cfg(test)]", "mod", "q",
];

/// Identifier words that would fire lints if they leaked out of comments or
/// string literals into the token stream.
const TRIGGERS: &[&str] =
    &["unsafe", "Instant", "SystemTime", "HashMap", "thread_rng", "panic", "elapsed"];

fn soup(idxs: &[usize]) -> String {
    idxs.iter().map(|&i| FRAGMENTS[i % FRAGMENTS.len()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer, parser, and full per-file analysis must never panic,
    /// whatever bytes they are fed.
    #[test]
    fn lexing_and_analysis_never_panic(idxs in prop::collection::vec(0usize..FRAGMENTS.len(), 0..80)) {
        let src = soup(&idxs);
        let lexed = lex(&src);
        let _ = parse::analyze(&lexed.tokens);
        let _ = analyze_source("soup.rs", &src, FileKind::Library, true);
    }

    /// Token and comment positions are strictly monotone in source order,
    /// 1-based, and within the line count of the input — the invariant every
    /// downstream span computation relies on.
    #[test]
    fn positions_are_monotone_and_in_bounds(idxs in prop::collection::vec(0usize..FRAGMENTS.len(), 0..80)) {
        let src = soup(&idxs);
        let n_lines = src.lines().count().max(1) as u32;
        let lexed = lex(&src);
        let mut prev = (0u32, 0u32);
        for t in &lexed.tokens {
            prop_assert!(!t.text.is_empty(), "empty token text");
            prop_assert!(t.line >= 1 && t.line <= n_lines, "line {} of {n_lines}", t.line);
            prop_assert!(t.col >= 1);
            prop_assert!((t.line, t.col) > prev, "non-monotone at {}:{}", t.line, t.col);
            prev = (t.line, t.col);
        }
        let mut prev_comment = 0u32;
        for c in &lexed.comments {
            prop_assert!(c.line >= 1 && c.end_line >= c.line);
            prop_assert!(c.line >= prev_comment, "comments out of order");
            prev_comment = c.line;
        }
    }

    /// Words inside comments and string literals never become identifier
    /// tokens (and therefore never fire lints): the lexer must treat their
    /// contents as opaque.
    #[test]
    fn comment_and_string_contents_never_produce_lint_tokens(
        which in prop::collection::vec(0usize..TRIGGERS.len(), 1..4),
        comment_style in 0usize..3,
    ) {
        let body: Vec<&str> = which.iter().map(|&i| TRIGGERS[i]).collect();
        let body = body.join(" ");
        let comment = match comment_style {
            0 => format!("// {body}"),
            1 => format!("/* {body} */"),
            _ => format!("/// {body}"),
        };
        let src = format!("{comment}\npub fn f() -> u32 {{\n    let s = \"{body}\";\n    let r = r\"{body}\";\n    (s.len() + r.len()) as u32\n}}\n");
        let lexed = lex(&src);
        for t in &lexed.tokens {
            prop_assert!(
                !(t.kind == TokenKind::Ident && TRIGGERS.contains(&t.text.as_str())),
                "trigger `{}` leaked out of comment/string at {}:{}",
                t.text, t.line, t.col
            );
        }
        let report = analyze_source("soup.rs", &src, FileKind::Library, true);
        prop_assert!(report.diags.is_empty(), "phantom findings: {:?}", report.diags);
    }
}
