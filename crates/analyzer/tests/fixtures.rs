//! Self-tests over the seeded-violation fixture corpus.
//!
//! Each fixture file contains exactly one violation of one lint; `clean.rs`
//! contains none. The tests shell out to the real `analyzer` binary in
//! fixture mode (`check --json FILE`) and assert the exact lint name and
//! line number in the JSON diagnostics — the same invocation the CI fixture
//! step uses.

use std::path::PathBuf;
use std::process::Command;

fn run_on_all(fixtures: &[&str]) -> (bool, String) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_analyzer"));
    cmd.arg("check").arg("--json");
    for f in fixtures {
        cmd.arg(dir.join(f));
    }
    let out = cmd.output().expect("failed to spawn the analyzer binary");
    let stdout = String::from_utf8(out.stdout).expect("analyzer JSON must be UTF-8");
    (out.status.success(), stdout)
}

fn run_on(fixture: &str) -> (bool, String) {
    run_on_all(&[fixture])
}

/// Asserts `fixture` yields exactly one finding: `lint` at `line`.
fn assert_single_finding(fixture: &str, lint: &str, line: u32) {
    let (ok, json) = run_on(fixture);
    assert!(!ok, "{fixture}: expected a non-zero exit, got success\n{json}");
    let count_needle = format!("\"counts\":{{\"{lint}\":1}}");
    assert!(
        json.contains(&count_needle),
        "{fixture}: expected exactly one `{lint}` finding\n{json}"
    );
    let finding_needle = format!("\"lint\":\"{lint}\",\"file\":");
    assert!(json.contains(&finding_needle), "{fixture}: missing finding object\n{json}");
    let line_needle = format!("\"line\":{line},\"column\":");
    assert!(
        json.contains(&line_needle),
        "{fixture}: expected the finding on line {line}\n{json}"
    );
}

#[test]
fn unsafe_needs_safety_comment_fixture() {
    assert_single_finding("unsafe_needs_safety_comment.rs", "unsafe-needs-safety-comment", 4);
}

#[test]
fn simd_needs_runtime_dispatch_fixture() {
    assert_single_finding("simd_needs_runtime_dispatch.rs", "simd-needs-runtime-dispatch", 4);
}

#[test]
fn nondeterministic_api_fixture() {
    assert_single_finding("nondeterministic_api.rs", "nondeterministic-api", 4);
}

#[test]
fn no_alloc_in_hot_path_fixture() {
    assert_single_finding("no_alloc_in_hot_path.rs", "no-alloc-in-hot-path", 5);
}

/// The telemetry flight recorder's recording path is `no_alloc`-marked;
/// this fixture pins that the lint catches the realistic regression there
/// (rendering an event label with `format!`).
#[test]
fn flight_recorder_hot_path_fixture() {
    assert_single_finding("flight_recorder_hot_path.rs", "no-alloc-in-hot-path", 7);
}

#[test]
fn float_exact_compare_fixture() {
    assert_single_finding("float_exact_compare.rs", "float-exact-compare", 4);
}

#[test]
fn panic_in_library_fixture() {
    assert_single_finding("panic_in_library.rs", "panic-in-library", 4);
}

#[test]
fn no_alloc_reachable_fixture() {
    assert_single_finding("no_alloc_reachable.rs", "no-alloc-reachable", 9);
}

/// The acceptance-criterion regression: a marked fn calling an allocating
/// helper in another file. The per-file scan (one file at a time) passes
/// both halves clean; only the workspace call-graph pass connects them.
#[test]
fn cross_file_no_alloc_regression_is_caught() {
    let (ok, json) = run_on("cross/hot.rs");
    assert!(ok, "hot.rs alone must be clean (the old per-file scan misses this)\n{json}");
    let (ok, json) = run_on("cross/util.rs");
    assert!(ok, "util.rs alone must be clean (nothing marks it)\n{json}");
    let (ok, json) = run_on_all(&["cross/hot.rs", "cross/util.rs"]);
    assert!(!ok, "analyzed together the pair must fail\n{json}");
    assert!(json.contains("\"counts\":{\"no-alloc-reachable\":1}"), "{json}");
    assert!(json.contains("\"line\":5,\"column\":19"), "expected the to_vec site\n{json}");
    assert!(json.contains("util.rs"), "{json}");
    assert!(json.contains("hot -> scratch_helper"), "chain must name the path\n{json}");
}

#[test]
fn collective_protocol_fixture() {
    assert_single_finding("collective_protocol.rs", "collective-protocol", 4);
}

#[test]
fn collective_rank_guard_fixture() {
    assert_single_finding("collective_rank_guard.rs", "collective-protocol", 5);
}

#[test]
fn hash_float_fold_fixture() {
    assert_single_finding("hash_float_fold.rs", "hash-float-fold", 4);
}

#[test]
fn rng_stream_discipline_fixture() {
    assert_single_finding("rng_stream_discipline.rs", "rng-stream-discipline", 4);
}

#[test]
fn nondeterministic_elapsed_fixture() {
    assert_single_finding("nondeterministic_elapsed.rs", "nondeterministic-api", 4);
}

#[test]
fn clean_fixture_passes() {
    let (ok, json) = run_on("clean.rs");
    assert!(ok, "clean.rs must produce zero findings\n{json}");
    assert!(json.contains("\"findings\":[]"), "clean.rs findings must be empty\n{json}");
}

#[test]
fn every_fixture_is_covered_by_a_test() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir must exist")
        .map(|e| e.expect("read_dir entry").file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec![
            "clean.rs",
            "collective_protocol.rs",
            "collective_rank_guard.rs",
            "cross", // the two-file no-alloc-reachable regression pair
            "flight_recorder_hot_path.rs",
            "float_exact_compare.rs",
            "hash_float_fold.rs",
            "no_alloc_in_hot_path.rs",
            "no_alloc_reachable.rs",
            "nondeterministic_api.rs",
            "nondeterministic_elapsed.rs",
            "panic_in_library.rs",
            "rng_stream_discipline.rs",
            "simd_needs_runtime_dispatch.rs",
            "unsafe_needs_safety_comment.rs",
        ],
        "new fixtures need a matching test (and vice versa)"
    );
}
