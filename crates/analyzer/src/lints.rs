//! The per-file lints. Each is a pure scan over one file's [`FileCtx`].
//! The interprocedural passes live in [`crate::passes`].

use crate::lexer::{Token, TokenKind};
use crate::{Emitter, FileCtx};
use std::collections::BTreeSet;

/// Runs every registered lint over `ctx`.
pub fn run_all(ctx: &FileCtx<'_>, em: &mut Emitter<'_, '_>) {
    unsafe_needs_safety_comment(ctx, em);
    simd_needs_runtime_dispatch(ctx, em);
    nondeterministic_api(ctx, em);
    no_alloc_in_hot_path(ctx, em);
    float_exact_compare(ctx, em);
    panic_in_library(ctx, em);
}

/// `unsafe-needs-safety-comment`: every `unsafe` keyword (block, fn, impl)
/// must be justified by a `SAFETY:` comment on the same line or in the
/// contiguous comment block above, or a `# Safety` doc section.
fn unsafe_needs_safety_comment(ctx: &FileCtx<'_>, em: &mut Emitter<'_, '_>) {
    for t in ctx.tokens {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        let same_line = ctx
            .comments_on_line(t.line)
            .any(|c| c.text.contains("SAFETY:") || c.text.contains("# Safety"));
        let above = ctx.comment_block_above(t.line);
        if same_line || above.contains("SAFETY:") || above.contains("# Safety") {
            continue;
        }
        em.emit(
            "unsafe-needs-safety-comment",
            t.line,
            t.col,
            "`unsafe` without a safety justification".to_string(),
            "state why the invariants hold in a `// SAFETY:` comment directly above (or a `# Safety` doc section)",
        );
    }
}

/// `simd-needs-runtime-dispatch`: `#[target_feature]` attributes and `_mm*`
/// intrinsics may only appear in files that also contain the
/// `is_x86_feature_detected!` dispatch (the lexical approximation of "wired
/// through the dispatch table").
fn simd_needs_runtime_dispatch(ctx: &FileCtx<'_>, em: &mut Emitter<'_, '_>) {
    let has_dispatch =
        ctx.tokens.iter().any(|t| t.kind == TokenKind::Ident && t.text == "is_x86_feature_detected");
    if has_dispatch {
        return;
    }
    let mut seen_lines: BTreeSet<u32> = BTreeSet::new();
    for t in ctx.tokens {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let trigger = t.text == "target_feature" || t.text.starts_with("_mm");
        if trigger && seen_lines.insert(t.line) {
            em.emit(
                "simd-needs-runtime-dispatch",
                t.line,
                t.col,
                format!("`{}` in a file with no `is_x86_feature_detected!` dispatch", t.text),
                "SIMD kernels must live in a module wired through the runtime-dispatch tables",
            );
        }
    }
}

/// `nondeterministic-api`: bans wall-clock, unseeded-RNG and hash-order APIs
/// in the numeric crates' library code.
fn nondeterministic_api(ctx: &FileCtx<'_>, em: &mut Emitter<'_, '_>) {
    if !ctx.numeric {
        return;
    }
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || ctx.in_test_context(t.line) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| ctx.tokens[p].text.as_str());
        let next = ctx.tokens.get(i + 1).map(|n| n.text.as_str());
        let why = match t.text.as_str() {
            "SystemTime" | "Instant" | "UNIX_EPOCH" => {
                "wall-clock time is run-to-run nondeterministic"
            }
            "elapsed" | "duration_since" if prev == Some(".") && next == Some("(") => {
                "wall-clock durations are run-to-run nondeterministic"
            }
            "HashMap" | "HashSet" => {
                "iteration order is seeded per-process; any iteration breaks reproducibility"
            }
            "thread_rng" | "from_entropy" => "unseeded RNG construction breaks reproducibility",
            "random"
                if i >= 2
                    && ctx.tokens[i - 1].text == "::"
                    && ctx.tokens[i - 2].text == "rand" =>
            {
                "rand::random draws from an unseeded global stream"
            }
            _ => continue,
        };
        if seen.insert((t.line, t.text.clone())) {
            em.emit(
                "nondeterministic-api",
                t.line,
                t.col,
                format!("`{}` in a numeric crate: {}", t.text, why),
                "use stats::rng seeded streams / BTreeMap, or allow with an explicit reason (telemetry timing is the usual exemption)",
            );
        }
    }
}

/// Token indices of allocating calls in `tokens[a..=b]`: allocating methods
/// (`.push(`, `.collect(`, ...), `vec!`/`format!` macros, and constructor
/// paths (`Vec::new`, `Box::new`, `String::from`, ...). Shared between the
/// per-file `no-alloc-in-hot-path` scan and the interprocedural
/// `no-alloc-reachable` pass.
pub(crate) fn alloc_sites(tokens: &[Token], a: usize, b: usize) -> Vec<usize> {
    const METHODS: &[&str] = &[
        "push", "collect", "to_vec", "clone", "to_owned", "to_string", "with_capacity", "reserve",
        "extend", "extend_from_slice", "insert",
    ];
    const TYPES: &[&str] = &["Vec", "Box", "String", "VecDeque", "BTreeMap", "HashMap"];
    let mut sites = Vec::new();
    for i in a..=b.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
        let next = tokens.get(i + 1).map(|n| n.text.as_str());
        let next2 = tokens.get(i + 2).map(|n| n.text.as_str());
        let hit = (prev == Some(".") && next == Some("(") && METHODS.contains(&t.text.as_str()))
            || (next == Some("!") && (t.text == "vec" || t.text == "format"))
            || (TYPES.contains(&t.text.as_str())
                && next == Some("::")
                && matches!(next2, Some("new" | "with_capacity" | "from")));
        if hit {
            sites.push(i);
        }
    }
    sites
}

/// `no-alloc-in-hot-path`: functions marked `// lint: no_alloc` must not
/// call the allocating APIs anywhere in their body (see [`alloc_sites`]).
fn no_alloc_in_hot_path(ctx: &FileCtx<'_>, em: &mut Emitter<'_, '_>) {
    for (fn_name, a, b) in ctx.no_alloc {
        for i in alloc_sites(ctx.tokens, *a, *b) {
            let t = &ctx.tokens[i];
            em.emit(
                "no-alloc-in-hot-path",
                t.line,
                t.col,
                format!("`{}` allocates inside `// lint: no_alloc` fn `{}`", t.text, fn_name),
                "hot-path functions must reuse caller-owned scratch; hoist the allocation out of the loop",
            );
        }
    }
}

/// `float-exact-compare`: `==`/`!=` with a float literal (or an `as f64`
/// cast) operand in library code. Bitwise-determinism tests compare through
/// `.to_bits()` or live in test code, which is exempt.
fn float_exact_compare(ctx: &FileCtx<'_>, em: &mut Emitter<'_, '_>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        if ctx.in_test_context(t.line) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &ctx.tokens[p]);
        let next = ctx.tokens.get(i + 1);
        let floaty = |tok: Option<&crate::lexer::Token>| {
            tok.is_some_and(|t| {
                t.kind == TokenKind::Float
                    || (t.kind == TokenKind::Ident && (t.text == "f64" || t.text == "f32"))
            })
        };
        if floaty(prev) || floaty(next) {
            em.emit(
                "float-exact-compare",
                t.line,
                t.col,
                format!("exact float comparison `{}`", t.text),
                "compare against a tolerance, use .to_bits() for bitwise identity, or allow with a reason for exact sentinels",
            );
        }
    }
}

/// `panic-in-library`: `.unwrap()` / `.expect(...)` / `panic!` in non-test
/// library code must be justified by an `// INVARIANT:` comment (same line
/// or directly above) or the enclosing fn documenting `# Panics`.
fn panic_in_library(ctx: &FileCtx<'_>, em: &mut Emitter<'_, '_>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || ctx.in_test_context(t.line) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| ctx.tokens[p].text.as_str());
        let next = ctx.tokens.get(i + 1).map(|n| n.text.as_str());
        let call = match t.text.as_str() {
            "unwrap" | "expect" if prev == Some(".") && next == Some("(") => t.text.as_str(),
            "panic" if next == Some("!") => "panic!",
            _ => continue,
        };
        let same_line = ctx.comments_on_line(t.line).any(|c| c.text.contains("INVARIANT:"));
        let above = ctx.comment_block_above(t.line);
        let fn_doc = ctx.enclosing_fn_doc(t.line);
        if same_line
            || above.contains("INVARIANT:")
            || fn_doc.contains("INVARIANT:")
            || fn_doc.contains("# Panics")
        {
            continue;
        }
        em.emit(
            "panic-in-library",
            t.line,
            t.col,
            format!("`{call}` in library code without a documented invariant"),
            "state why this cannot fail in an `// INVARIANT:` comment, document `# Panics` on the fn, or return an error",
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::{analyze_source, FileKind};

    fn diags(src: &str) -> Vec<(String, u32)> {
        analyze_source("mem.rs", src, FileKind::Library, true)
            .diags
            .into_iter()
            .map(|d| (d.lint.to_string(), d.line))
            .collect()
    }

    #[test]
    fn unsafe_block_flagged_and_justified() {
        assert_eq!(
            diags("fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n"),
            vec![("unsafe-needs-safety-comment".to_string(), 2)]
        );
        assert!(diags(
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn unsafe_fn_with_safety_doc_passes() {
        let src = "/// Does things.\n///\n/// # Safety\n/// `p` must be valid.\npub unsafe fn f(p: *const u8) -> u8 {\n    // SAFETY: contract forwarded from the caller.\n    unsafe { *p }\n}\n";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
    }

    #[test]
    fn intrinsics_need_dispatch() {
        let src = "fn f() {\n    let x = _mm256_setzero_pd();\n}\n";
        assert_eq!(diags(src), vec![("simd-needs-runtime-dispatch".to_string(), 2)]);
        let wired = "fn pick() { if is_x86_feature_detected!(\"avx2\") {} }\nfn f() {\n    let x = _mm256_setzero_pd();\n}\n";
        assert!(diags(wired).is_empty());
    }

    #[test]
    fn nondet_apis_flagged_in_numeric_crates() {
        let src = "use std::time::Instant;\nfn f() {\n    let t = Instant::now();\n}\n";
        let d = diags(src);
        assert_eq!(d.len(), 2, "{d:?}"); // the use and the call site
        assert!(d.iter().all(|(l, _)| l == "nondeterministic-api"));
    }

    #[test]
    fn elapsed_and_epoch_flagged_in_numeric_crates() {
        let src = "fn f(t0: std::time::Instant) -> f64 {\n    t0.elapsed().as_secs_f64()\n}\n";
        // line 1 flags `Instant`, line 2 flags `.elapsed()`.
        assert_eq!(
            diags(src),
            vec![("nondeterministic-api".to_string(), 1), ("nondeterministic-api".to_string(), 2)]
        );
        let epoch = "fn f(now: std::time::SystemTime) -> u64 {\n    now.duration_since(UNIX_EPOCH).unwrap_or_default().as_secs()\n}\n";
        let d = diags(epoch);
        assert_eq!(d.len(), 3, "{d:?}"); // SystemTime, duration_since, UNIX_EPOCH
        // `elapsed` as a field or plain ident is not a call site.
        assert!(diags("fn f(s: &Stats) -> u64 { s.elapsed }\n").is_empty());
    }

    #[test]
    fn nondet_not_applied_outside_numeric_crates() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let r = crate::analyze_source("mem.rs", src, FileKind::Library, false);
        assert!(r.diags.is_empty());
    }

    #[test]
    fn no_alloc_catches_heap_calls() {
        let src = "// lint: no_alloc\nfn hot(xs: &mut Vec<f64>) {\n    xs.push(1.5);\n    let v = Vec::new();\n    let c = xs.clone();\n}\n";
        let d = diags(src);
        let lints: Vec<u32> =
            d.iter().filter(|(l, _)| l == "no-alloc-in-hot-path").map(|(_, ln)| *ln).collect();
        assert_eq!(lints, vec![3, 4, 5]);
    }

    #[test]
    fn no_alloc_clean_fn_passes() {
        let src = "// lint: no_alloc\nfn hot(xs: &mut [f64]) {\n    for x in xs.iter_mut() {\n        *x += 1.5;\n    }\n}\n";
        assert!(diags(src).is_empty(), "{:?}", diags(src));
    }

    #[test]
    fn float_compare_flagged_outside_tests() {
        let src = "fn f(x: f64) -> bool {\n    x == 0.0\n}\n";
        assert_eq!(diags(src), vec![("float-exact-compare".to_string(), 2)]);
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f(x: f64) -> bool { x == 0.0 }\n}\n";
        assert!(diags(test_src).is_empty());
    }

    #[test]
    fn panic_lint_accepts_invariant_and_panics_doc() {
        let bare = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        assert_eq!(diags(bare), vec![("panic-in-library".to_string(), 2)]);
        let invariant = "fn f(x: Option<u8>) -> u8 {\n    // INVARIANT: callers only pass Some.\n    x.unwrap()\n}\n";
        assert!(diags(invariant).is_empty());
        let panics_doc = "/// Gets it.\n///\n/// # Panics\n/// Panics when absent.\nfn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        assert!(diags(panics_doc).is_empty());
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap_or(0)\n}\n";
        assert!(diags(src).is_empty());
    }
}
