//! Hand-rolled Rust lexer.
//!
//! Produces a token stream (identifiers, literals, punctuation) plus a side
//! list of comments with their spans. The lexer understands exactly enough
//! Rust to never mistake comment/string contents for code: nested block
//! comments, raw strings with arbitrary `#` fences, byte/char literals, and
//! the char-vs-lifetime ambiguity. It does **not** resolve types or macros —
//! see `crates/analyzer/README.md` for the consequences.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Vec`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer literal (including hex/octal/binary).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f64`).
    Float,
    /// String, raw-string, byte-string or char literal.
    Str,
    /// Punctuation; multi-char operators arrive joined (`==`, `::`, `->`).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Verbatim token text.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

/// One comment (line or block) with its line span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (== `line` for line comments).
    pub end_line: u32,
    /// True when a token precedes the comment on its first line.
    pub trailing: bool,
}

/// Lex result: code tokens plus comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first (maximal munch).
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n_chars: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n_chars)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into tokens and comments. Unterminated constructs (string,
/// block comment) are tolerated: the rest of the file becomes one token.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    let mut last_token_line = 0u32;

    while let Some(c) = cur.peek() {
        let (line, col, start) = (cur.line, cur.col, cur.pos);

        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if cur.starts_with("//") {
            while let Some(ch) = cur.peek() {
                if ch == '\n' {
                    break;
                }
                cur.bump();
            }
            out.comments.push(Comment {
                text: cur.src[start..cur.pos].to_string(),
                line,
                end_line: line,
                trailing: last_token_line == line,
            });
            continue;
        }
        if cur.starts_with("/*") {
            let mut depth = 0usize;
            while cur.peek().is_some() {
                if cur.starts_with("/*") {
                    depth += 1;
                    cur.bump();
                    cur.bump();
                } else if cur.starts_with("*/") {
                    depth -= 1;
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    cur.bump();
                }
            }
            out.comments.push(Comment {
                text: cur.src[start..cur.pos].to_string(),
                line,
                end_line: cur.line,
                trailing: last_token_line == line,
            });
            continue;
        }

        // Raw / byte strings: r"..", r#".."#, br#".."#, b"..".
        if c == 'r' || c == 'b' {
            let rest = &cur.src[cur.pos..];
            let prefix_len = raw_or_byte_string_prefix(rest);
            if let Some((hashes, quote_off)) = prefix_len {
                // Consume prefix + opening quote.
                for _ in 0..quote_off + 1 {
                    cur.bump();
                }
                let fence: String = "\"".chars().chain(std::iter::repeat_n('#', hashes)).collect();
                if hashes == 0 && !rest[..quote_off].contains('r') {
                    // Plain byte string b"..": honors escapes.
                    scan_escaped_until(&mut cur, '"');
                } else {
                    // Raw string: ends at `"###...` with the right fence.
                    while cur.peek().is_some() && !cur.starts_with(&fence) {
                        cur.bump();
                    }
                    for _ in 0..fence.chars().count() {
                        cur.bump();
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: cur.src[start..cur.pos].to_string(),
                    line,
                    col,
                });
                last_token_line = cur.line;
                continue;
            }
        }

        // Plain strings.
        if c == '"' {
            cur.bump();
            scan_escaped_until(&mut cur, '"');
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: cur.src[start..cur.pos].to_string(),
                line,
                col,
            });
            last_token_line = cur.line;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let c1 = cur.peek_at(1);
            let c2 = cur.peek_at(2);
            let is_char =
                matches!((c1, c2), (Some('\\'), _) | (Some(_), Some('\'')));
            if is_char {
                cur.bump(); // '
                scan_escaped_until(&mut cur, '\'');
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: cur.src[start..cur.pos].to_string(),
                    line,
                    col,
                });
            } else {
                cur.bump(); // '
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: cur.src[start..cur.pos].to_string(),
                    line,
                    col,
                });
            }
            last_token_line = cur.line;
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let kind = scan_number(&mut cur);
            out.tokens.push(Token {
                kind,
                text: cur.src[start..cur.pos].to_string(),
                line,
                col,
            });
            last_token_line = cur.line;
            continue;
        }

        // Identifiers / keywords.
        if is_ident_start(c) {
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: cur.src[start..cur.pos].to_string(),
                line,
                col,
            });
            last_token_line = cur.line;
            continue;
        }

        // Punctuation, longest operators first.
        let mut matched = false;
        for op in MULTI_PUNCT {
            if cur.starts_with(op) {
                for _ in 0..op.len() {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (*op).to_string(),
                    line,
                    col,
                });
                matched = true;
                break;
            }
        }
        if !matched {
            cur.bump();
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: cur.src[start..cur.pos].to_string(),
                line,
                col,
            });
        }
        last_token_line = cur.line;
    }
    out
}

/// Detects `r`/`b`/`rb`/`br` string prefixes. Returns `(hash_count,
/// chars_before_quote)` when the cursor sits on a raw/byte string opener.
fn raw_or_byte_string_prefix(rest: &str) -> Option<(usize, usize)> {
    let bytes = rest.as_bytes();
    let mut i = 0;
    let mut saw_marker = false;
    while i < 2 && i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
        saw_marker = true;
        i += 1;
    }
    if !saw_marker {
        return None;
    }
    let mut hashes = 0;
    let mut j = i;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'"' {
        Some((hashes, j))
    } else {
        None
    }
}

/// Consumes characters up to and including an unescaped `delim`.
fn scan_escaped_until(cur: &mut Cursor<'_>, delim: char) {
    while let Some(ch) = cur.bump() {
        if ch == '\\' {
            cur.bump();
        } else if ch == delim {
            break;
        }
    }
}

/// Consumes a numeric literal, classifying int vs float.
fn scan_number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut kind = TokenKind::Int;
    if cur.starts_with("0x") || cur.starts_with("0o") || cur.starts_with("0b") {
        cur.bump();
        cur.bump();
        while cur.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            cur.bump();
        }
        return TokenKind::Int;
    }
    while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
        cur.bump();
    }
    // Fractional part: a dot followed by a digit (so `1..2` and `1.max(..)`
    // stay integers).
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        kind = TokenKind::Float;
        cur.bump();
        while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
            cur.bump();
        }
    }
    // Exponent.
    if cur.peek().is_some_and(|c| c == 'e' || c == 'E') {
        let sign_ok = matches!(cur.peek_at(1), Some(c) if c.is_ascii_digit() || c == '+' || c == '-');
        if sign_ok {
            kind = TokenKind::Float;
            cur.bump();
            if cur.peek().is_some_and(|c| c == '+' || c == '-') {
                cur.bump();
            }
            while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
                cur.bump();
            }
        }
    }
    // Type suffix.
    if cur.starts_with("f32") || cur.starts_with("f64") {
        kind = TokenKind::Float;
    }
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
    kind
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_tokens() {
        let toks = kinds("fn foo(x: f64) -> f64 { x == 1.0 }");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".into()));
        assert!(toks.contains(&(TokenKind::Punct, "->".into())));
        assert!(toks.contains(&(TokenKind::Punct, "==".into())));
        assert!(toks.contains(&(TokenKind::Float, "1.0".into())));
    }

    #[test]
    fn comments_are_side_channel() {
        let lexed = lex("let x = 1; // trailing\n// own line\nlet y = 2;");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comment() {
        let lexed = lex("/* a /* b */ c */ fn");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.tokens.len(), 1);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("'a' 'x: &'a str '\\n'");
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].0, TokenKind::Lifetime); // 'x
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert_eq!(toks.last().unwrap().0, TokenKind::Str);
    }

    #[test]
    fn raw_strings_hide_contents() {
        let toks = kinds(r##"let s = r#"unsafe { } // not code"#;"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(!toks.iter().any(|(_, t)| t == "unsafe"));
    }

    #[test]
    fn numbers_classified() {
        let toks = kinds("1 1.5 2e-3 0xff 1f64 1..2 x.max(1)");
        assert_eq!(toks[0].0, TokenKind::Int);
        assert_eq!(toks[1].0, TokenKind::Float);
        assert_eq!(toks[2].0, TokenKind::Float);
        assert_eq!(toks[3].0, TokenKind::Int);
        assert_eq!(toks[4].0, TokenKind::Float);
        // 1..2 lexes as Int, Punct(..), Int
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Punct && t == ".."));
    }

    #[test]
    fn line_and_column_tracking() {
        let lexed = lex("fn a() {\n    let x = 0.0;\n}\n");
        let x = lexed.tokens.iter().find(|t| t.text == "x").unwrap();
        assert_eq!((x.line, x.col), (2, 9));
    }

    #[test]
    fn strings_hide_keywords() {
        let toks = kinds(r#"let s = "unsafe { SystemTime }";"#);
        assert!(!toks.iter().any(|(_, t)| t == "unsafe" || t == "SystemTime"));
    }
}
