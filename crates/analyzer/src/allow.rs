//! Inline lint directives.
//!
//! Two comment forms are recognized anywhere in a file:
//!
//! * `// lint: allow(<lint-name>, reason="...")` — suppresses the named lint
//!   on the annotated code. A trailing directive covers its own line; a
//!   directive on its own line covers the next code line, and when that line
//!   opens a brace block (a `fn`, `mod`, `impl`, loop, ...) the whole block.
//! * `// lint: no_alloc` — marks the next `fn` as a hot path: the
//!   `no-alloc-in-hot-path` lint bans heap allocation in its body.
//!
//! A directive that names an unknown lint or omits the reason is itself a
//! `lint-directive` error, so typos fail CI instead of silently allowing.

use crate::lexer::Comment;

/// One parsed `lint:` directive.
#[derive(Debug, Clone)]
pub enum Directive {
    /// `allow(<lint>, reason="...")`.
    Allow {
        /// Lint being suppressed.
        lint: String,
        /// Mandatory human reason.
        reason: String,
        /// Line the directive comment starts on.
        line: u32,
        /// True when code precedes the comment on that line.
        trailing: bool,
    },
    /// `no_alloc` hot-path marker.
    NoAlloc {
        /// Line the directive comment starts on.
        line: u32,
    },
    /// Unparseable `lint:` comment (reported as an error).
    Malformed {
        /// Line the directive comment starts on.
        line: u32,
        /// What went wrong.
        why: String,
    },
}

/// Extracts all directives from a file's comments.
pub fn parse_directives(comments: &[Comment]) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in comments {
        let Some(rest) = directive_body(&c.text) else { continue };
        if rest.starts_with("no_alloc") {
            out.push(Directive::NoAlloc { line: c.line });
        } else if let Some(args) = rest.strip_prefix("allow") {
            out.push(parse_allow(args.trim(), c));
        } else {
            out.push(Directive::Malformed {
                line: c.line,
                why: format!(
                    "unknown directive `{}` (expected `allow(...)` or `no_alloc`)",
                    rest.split_whitespace().next().unwrap_or("")
                ),
            });
        }
    }
    out
}

/// Returns the text after a `lint:` marker, if the comment carries one.
fn directive_body(comment: &str) -> Option<&str> {
    let stripped = comment.trim_start_matches('/').trim_start_matches('!').trim_start();
    let rest = stripped.strip_prefix("lint:")?;
    Some(rest.trim_start())
}

/// Parses `(name, reason="...")`.
fn parse_allow(args: &str, c: &Comment) -> Directive {
    let malformed = |why: &str| Directive::Malformed { line: c.line, why: why.to_string() };
    let Some(inner) = args.strip_prefix('(').and_then(|a| a.rfind(')').map(|i| &a[..i])) else {
        return malformed("expected `allow(<lint>, reason=\"...\")`");
    };
    let Some((name, rest)) = inner.split_once(',') else {
        return malformed("missing `reason=\"...\"` (a justification is mandatory)");
    };
    let name = name.trim();
    if name.is_empty() || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
        return malformed("lint name must be kebab-case");
    }
    let rest = rest.trim();
    let Some(q) = rest.strip_prefix("reason=").map(str::trim) else {
        return malformed("missing `reason=\"...\"` (a justification is mandatory)");
    };
    let reason = q.trim_matches('"').trim();
    if reason.is_empty() {
        return malformed("reason must be a nonempty string");
    }
    Directive::Allow {
        lint: name.to_string(),
        reason: reason.to_string(),
        line: c.line,
        trailing: c.trailing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn directives(src: &str) -> Vec<Directive> {
        parse_directives(&lex(src).comments)
    }

    #[test]
    fn parses_allow() {
        let d = directives("// lint: allow(float-exact-compare, reason=\"exact zero skip\")\nlet x = 1;");
        match &d[0] {
            Directive::Allow { lint, reason, line, trailing } => {
                assert_eq!(lint, "float-exact-compare");
                assert_eq!(reason, "exact zero skip");
                assert_eq!(*line, 1);
                assert!(!trailing);
            }
            other => panic!("expected Allow, got {other:?}"),
        }
    }

    #[test]
    fn parses_no_alloc() {
        let d = directives("// lint: no_alloc\nfn hot() {}");
        assert!(matches!(d[0], Directive::NoAlloc { line: 1 }));
    }

    #[test]
    fn missing_reason_is_malformed() {
        let d = directives("// lint: allow(panic-in-library)\nlet x = 1;");
        assert!(matches!(&d[0], Directive::Malformed { .. }));
    }

    #[test]
    fn unknown_directive_is_malformed() {
        let d = directives("// lint: disable(everything)\n");
        assert!(matches!(&d[0], Directive::Malformed { .. }));
    }

    #[test]
    fn non_directive_comments_ignored() {
        assert!(directives("// ordinary comment about lint rules\n").is_empty());
    }
}
