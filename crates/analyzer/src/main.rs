//! `analyzer` CLI.
//!
//! ```text
//! cargo run -p analyzer -- check [--json] [--root DIR] [FILE...]
//! cargo run -p analyzer -- lints
//! ```
//!
//! `check` with no FILE arguments scans the whole workspace (honoring each
//! file's crate/test classification). With explicit FILE arguments it runs
//! in *fixture mode*: every file is treated as library code in a numeric
//! crate, so all six lints apply — that is what the self-test corpus and the
//! CI fixture step rely on.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use analyzer::{analyze_source, diag::json_str, workspace, Diagnostic, FileKind, LINTS};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("lints") => {
            for l in LINTS {
                println!("{:<28} {}", l.name, l.desc);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: analyzer check [--json] [--root DIR] [FILE...]\n       analyzer lints");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`");
                return ExitCode::from(2);
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    let worklist = if files.is_empty() {
        match workspace::discover(&root) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("analyzer: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        // Fixture mode: all lints apply to every explicit file.
        files
            .into_iter()
            .map(|p| {
                let rel = p.to_string_lossy().into_owned();
                workspace::WorkFile { path: p, rel, kind: FileKind::Library, numeric: true }
            })
            .collect()
    };

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut suppressed = 0usize;
    let mut files_scanned = 0usize;
    for wf in &worklist {
        let text = match std::fs::read_to_string(&wf.path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("analyzer: cannot read {}: {e}", wf.rel);
                return ExitCode::from(2);
            }
        };
        files_scanned += 1;
        let report = analyze_source(&wf.rel, &text, wf.kind, wf.numeric);
        suppressed += report.suppressed;
        diags.extend(report.diags);
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));

    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for d in &diags {
        *counts.entry(d.lint).or_insert(0) += 1;
    }

    if json {
        let findings: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
        let count_fields: Vec<String> =
            counts.iter().map(|(k, v)| format!("{}:{}", json_str(k), v)).collect();
        println!(
            "{{\"id\":\"analyzer\",\"version\":1,\"files_scanned\":{},\"suppressed\":{},\"counts\":{{{}}},\"findings\":[{}]}}",
            files_scanned,
            suppressed,
            count_fields.join(","),
            findings.join(","),
        );
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        println!(
            "analyzer: {} finding(s), {} suppressed by allow, {} file(s) scanned",
            diags.len(),
            suppressed,
            files_scanned
        );
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
