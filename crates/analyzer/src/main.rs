//! `analyzer` CLI.
//!
//! ```text
//! cargo run -p analyzer -- check [--json|--sarif] [--root DIR] [FILE...]
//! cargo run -p analyzer -- lints
//! ```
//!
//! `check` with no FILE arguments scans the whole workspace: per-file lints
//! under each file's crate/test classification, then the workspace passes
//! (call-graph `no_alloc` reachability, collective protocol, determinism
//! dataflow) over all files at once. With explicit FILE arguments it runs in
//! *fixture mode*: every file is treated as library code with every lint
//! family in scope, and the workspace passes run over exactly the given set
//! — that is what the self-test corpus and the CI fixture step rely on (and
//! how the cross-file fixture pair is exercised).
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use analyzer::{
    analyze_facts, diag::json_str, passes, sarif, workspace, Diagnostic, FileFacts, FileKind,
    Scope, LINTS,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("lints") => {
            for l in LINTS {
                println!("{:<28} {}", l.name, l.desc);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: analyzer check [--json|--sarif] [--root DIR] [FILE...]\n       analyzer lints"
            );
            ExitCode::from(2)
        }
    }
}

#[derive(PartialEq)]
enum Output {
    Text,
    Json,
    Sarif,
}

fn check(args: &[String]) -> ExitCode {
    let mut output = Output::Text;
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => output = Output::Json,
            "--sarif" => output = Output::Sarif,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`");
                return ExitCode::from(2);
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    let worklist = if files.is_empty() {
        match workspace::discover(&root) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("analyzer: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        // Fixture mode: all lint families apply to every explicit file.
        files
            .into_iter()
            .map(|p| {
                let rel = p.to_string_lossy().into_owned();
                workspace::WorkFile {
                    path: p,
                    rel,
                    kind: FileKind::Library,
                    numeric: true,
                    crate_name: "fixture".to_string(),
                }
            })
            .collect()
    };

    // Phase 1: collect facts and run the per-file lints.
    let mut facts: Vec<FileFacts> = Vec::with_capacity(worklist.len());
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut suppressed = 0usize;
    for wf in &worklist {
        let text = match std::fs::read_to_string(&wf.path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("analyzer: cannot read {}: {e}", wf.rel);
                return ExitCode::from(2);
            }
        };
        let scope = if wf.crate_name == "fixture" {
            Scope::fixture()
        } else {
            Scope::for_crate(&wf.crate_name)
        };
        let f = FileFacts::collect(&wf.rel, &text, wf.kind, scope);
        let report = analyze_facts(&f);
        suppressed += report.suppressed;
        diags.extend(report.diags);
        facts.push(f);
    }

    // Phase 2: workspace passes over all facts at once.
    let ws = passes::run(&facts);
    suppressed += ws.suppressed;
    diags.extend(ws.diags);
    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));

    let files_scanned = facts.len();
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for d in &diags {
        *counts.entry(d.lint).or_insert(0) += 1;
    }

    match output {
        Output::Json => {
            let findings: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
            let count_fields: Vec<String> =
                counts.iter().map(|(k, v)| format!("{}:{}", json_str(k), v)).collect();
            println!(
                "{{\"id\":\"analyzer\",\"version\":2,\"files_scanned\":{},\"suppressed\":{},\"counts\":{{{}}},\"findings\":[{}]}}",
                files_scanned,
                suppressed,
                count_fields.join(","),
                findings.join(","),
            );
        }
        Output::Sarif => {
            print!("{}", sarif::render(&diags, suppressed, files_scanned));
        }
        Output::Text => {
            for d in &diags {
                println!("{}", d.render());
            }
            println!(
                "analyzer: {} finding(s), {} suppressed by allow, {} file(s) scanned",
                diags.len(),
                suppressed,
                files_scanned
            );
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
